//! Ablation benches for the design choices Section 3.2.1 calls out:
//! piggybacking on/off, summary-assisted queries on/off, quadratic vs
//! linear split, and directional (GBU) vs uniform (LBU) ε-extension.

use bur_core::{
    GbuParams, IndexBuilder, IndexOptions, LbuParams, RTreeIndex, SplitPolicy, UpdateStrategy,
};
use bur_workload::{Workload, WorkloadConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const N: usize = 15_000;

fn gbu_opts(piggyback: bool, summary_queries: bool) -> IndexOptions {
    IndexOptions {
        strategy: UpdateStrategy::Generalized(GbuParams {
            piggyback,
            summary_queries,
            ..GbuParams::default()
        }),
        ..IndexOptions::default()
    }
}

fn setup(opts: IndexOptions) -> (RTreeIndex, Workload) {
    let wl = Workload::generate(WorkloadConfig {
        num_objects: N,
        ..WorkloadConfig::default()
    });
    let index = RTreeIndex::bulk_load_in_memory(opts, &wl.items()).unwrap();
    (index, wl)
}

fn bench_piggyback(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation-piggyback");
    group.sample_size(15);
    for (name, pb) in [("on", true), ("off", false)] {
        let (mut index, mut wl) = setup(gbu_opts(pb, true));
        group.bench_function(name, |b| {
            b.iter(|| {
                let op = wl.next_update();
                black_box(index.update(op.oid, op.old, op.new).unwrap());
            })
        });
    }
    group.finish();
}

fn bench_summary_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation-summary-query");
    group.sample_size(15);
    let (mut index, mut wl) = setup(gbu_opts(true, true));
    for _ in 0..N {
        let op = wl.next_update();
        index.update(op.oid, op.old, op.new).unwrap();
    }
    let mut buf = Vec::new();
    group.bench_function("summary", |b| {
        b.iter(|| {
            let q = wl.next_query();
            buf.clear();
            index.query_into(&q.window, &mut buf).unwrap();
            black_box(buf.len());
        })
    });
    group.bench_function("plain", |b| {
        b.iter(|| {
            let q = wl.next_query();
            buf.clear();
            index.query_top_down(&q.window, &mut buf).unwrap();
            black_box(buf.len());
        })
    });
    group.finish();
}

fn bench_split_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation-split");
    group.sample_size(10);
    for (name, policy) in [
        ("quadratic", SplitPolicy::Quadratic),
        ("linear", SplitPolicy::Linear),
        ("rstar", SplitPolicy::RStar),
    ] {
        let wl = Workload::generate(WorkloadConfig {
            num_objects: 5_000,
            ..WorkloadConfig::default()
        });
        let items = wl.items();
        let opts = IndexOptions {
            split: policy,
            ..IndexOptions::top_down()
        };
        group.bench_function(name, |b| {
            b.iter(|| {
                // Incremental build exercises the split path heavily.
                let mut index = IndexBuilder::with_options(opts).build_index().unwrap();
                for &(oid, p) in items.iter().take(2_000) {
                    index.insert(oid, p).unwrap();
                }
                black_box(index.height());
            })
        });
    }
    group.finish();
}

fn bench_extension_style(c: &mut Criterion) {
    // GBU's directional extension vs LBU's uniform extension, isolated on
    // a slow-drift workload where extension is the dominant repair.
    let mut group = c.benchmark_group("ablation-extension");
    group.sample_size(15);
    let slow = WorkloadConfig {
        num_objects: N,
        max_distance: 0.01,
        ..WorkloadConfig::default()
    };
    for (name, opts) in [
        (
            "directional-gbu",
            IndexOptions {
                strategy: UpdateStrategy::Generalized(GbuParams {
                    epsilon: 0.01,
                    ..GbuParams::default()
                }),
                ..IndexOptions::default()
            },
        ),
        (
            "uniform-lbu",
            IndexOptions {
                strategy: UpdateStrategy::Localized(LbuParams {
                    epsilon: 0.01,
                    ..LbuParams::default()
                }),
                ..IndexOptions::default()
            },
        ),
        (
            // Section 3.1's lazy-update R-tree: enlargement or top-down,
            // no sibling shifts.
            "kwon-lur",
            IndexOptions {
                strategy: UpdateStrategy::Localized(LbuParams::kwon(0.01)),
                ..IndexOptions::default()
            },
        ),
    ] {
        let mut wl = Workload::generate(slow);
        let mut index = RTreeIndex::bulk_load_in_memory(opts, &wl.items()).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| {
                let op = wl.next_update();
                black_box(index.update(op.oid, op.old, op.new).unwrap());
            })
        });
    }
    group.finish();
}

fn bench_insert_policy(c: &mut Criterion) {
    // The R*-variant extension: Guttman vs R* insertion (ChooseSubtree +
    // forced reinsertion) — build cost and post-build query cost.
    let mut group = c.benchmark_group("ablation-insert-policy");
    group.sample_size(10);
    let wl = Workload::generate(WorkloadConfig {
        num_objects: 5_000,
        ..WorkloadConfig::default()
    });
    let items = wl.items();
    for (name, opts) in [
        ("guttman-build", IndexOptions::top_down()),
        ("rstar-build", IndexOptions::top_down().rstar()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut index = IndexBuilder::with_options(opts).build_index().unwrap();
                for &(oid, p) in items.iter().take(2_000) {
                    index.insert(oid, p).unwrap();
                }
                black_box(index.height());
            })
        });
    }
    for (name, opts) in [
        ("guttman-query", IndexOptions::top_down()),
        ("rstar-query", IndexOptions::top_down().rstar()),
    ] {
        let mut index = IndexBuilder::with_options(opts).build_index().unwrap();
        for &(oid, p) in &items {
            index.insert(oid, p).unwrap();
        }
        let mut wl = Workload::generate(WorkloadConfig {
            num_objects: 5_000,
            ..WorkloadConfig::default()
        });
        let mut buf = Vec::new();
        group.bench_function(name, |b| {
            b.iter(|| {
                let q = wl.next_query();
                buf.clear();
                index.query_into(&q.window, &mut buf).unwrap();
                black_box(buf.len());
            })
        });
    }
    group.finish();
}

fn bench_bulk_loaders(c: &mut Criterion) {
    // STR tiling vs Hilbert packing vs incremental insertion: build cost.
    let mut group = c.benchmark_group("ablation-bulk-load");
    group.sample_size(10);
    let wl = Workload::generate(WorkloadConfig {
        num_objects: 10_000,
        ..WorkloadConfig::default()
    });
    let items = wl.items();
    group.bench_function("str", |b| {
        b.iter(|| {
            black_box(RTreeIndex::bulk_load_in_memory(IndexOptions::generalized(), &items).unwrap())
        })
    });
    group.bench_function("hilbert", |b| {
        b.iter(|| {
            black_box(
                RTreeIndex::bulk_load_hilbert_in_memory(IndexOptions::generalized(), &items)
                    .unwrap(),
            )
        })
    });
    group.bench_function("insert", |b| {
        b.iter(|| {
            let mut index = IndexBuilder::with_options(IndexOptions::generalized())
                .build_index()
                .unwrap();
            for &(oid, p) in &items {
                index.insert(oid, p).unwrap();
            }
            black_box(index.height());
        })
    });
    group.finish();
}

fn bench_eviction_policy(c: &mut Criterion) {
    // LRU (the experiments' policy) vs Clock (second chance) on the
    // default update stream with a tight buffer.
    use bur_storage::EvictionPolicy;
    let mut group = c.benchmark_group("ablation-eviction");
    group.sample_size(15);
    for (name, policy) in [
        ("lru", EvictionPolicy::Lru),
        ("clock", EvictionPolicy::Clock),
    ] {
        let opts = IndexOptions {
            buffer_frames: 64,
            eviction: policy,
            ..IndexOptions::generalized()
        };
        let (mut index, mut wl) = setup(opts);
        group.bench_function(name, |b| {
            b.iter(|| {
                let op = wl.next_update();
                black_box(index.update(op.oid, op.old, op.new).unwrap());
            })
        });
    }
    group.finish();
}

fn bench_knn(c: &mut Criterion) {
    // The kNN extension: plain best-first descent vs the summary-seeded
    // variant, and scaling in k.
    let mut group = c.benchmark_group("knn");
    group.sample_size(20);
    let (index, mut wl) = setup(gbu_opts(true, true));
    for k in [1usize, 10, 100] {
        group.bench_function(format!("summary-k{k}"), |b| {
            b.iter(|| {
                let q = wl.next_query();
                let p = q.window.center();
                black_box(index.nearest_neighbors(p, k).unwrap());
            })
        });
    }
    let (index, mut wl) = setup(gbu_opts(true, false));
    group.bench_function("plain-k10", |b| {
        b.iter(|| {
            let q = wl.next_query();
            let p = q.window.center();
            black_box(index.nearest_neighbors(p, 10).unwrap());
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_piggyback,
    bench_summary_query,
    bench_split_policy,
    bench_extension_style,
    bench_insert_policy,
    bench_eviction_policy,
    bench_bulk_loaders,
    bench_knn
);
criterion_main!(benches);
