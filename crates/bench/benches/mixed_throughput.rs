//! Criterion micro-benchmark: mixed update/query operation batches under
//! the shared (DGL-locked) `Bur` handle — the wall-clock companion to
//! Figure 8.

use bur_core::{Bur, IndexOptions, RTreeIndex};
use bur_workload::{Workload, WorkloadConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_mixed(c: &mut Criterion) {
    let n = 10_000;
    let mut group = c.benchmark_group("mixed-50-50");
    group.sample_size(15);
    for (name, opts) in [
        ("TD", IndexOptions::top_down()),
        ("GBU", IndexOptions::generalized()),
    ] {
        let wl = Workload::generate(WorkloadConfig {
            num_objects: n,
            query_max_side: 0.01,
            ..WorkloadConfig::default()
        });
        let index = RTreeIndex::bulk_load_in_memory(opts, &wl.items()).unwrap();
        let index = Bur::from_index(index);
        let mut parts = wl.split(1);
        let part = &mut parts[0];
        group.bench_function(name, |b| {
            b.iter(|| {
                // One update + one query per iteration (a 50/50 mix).
                let op = part.next_update();
                index.update(op.oid, op.old, op.new).unwrap();
                let q = part.next_query();
                black_box(index.query(&q.window).unwrap().count());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mixed);
criterion_main!(benches);
