//! Criterion micro-benchmark: mixed update/query operation batches under
//! the shared (DGL-locked) `Bur` handle — the wall-clock companion to
//! Figure 8 — plus the `parallel-writers` group: the same handle driven
//! by 1/2/4/8 writer threads on disjoint leaf strips, exercising the
//! concurrent (shared-phase) `Bur::apply` path end to end. The scaling
//! artifact lives in `concbench` (`BENCH_concurrency.json`); this group
//! keeps the workload compiling and running in CI's bench smoke.

use bur_bench::parallel::{build_strips, run_lanes};
use bur_core::{Bur, IndexOptions, RTreeIndex};
use bur_workload::{Workload, WorkloadConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_mixed(c: &mut Criterion) {
    let n = 10_000;
    let mut group = c.benchmark_group("mixed-50-50");
    group.sample_size(15);
    for (name, opts) in [
        ("TD", IndexOptions::top_down()),
        ("GBU", IndexOptions::generalized()),
    ] {
        let wl = Workload::generate(WorkloadConfig {
            num_objects: n,
            query_max_side: 0.01,
            ..WorkloadConfig::default()
        });
        let index = RTreeIndex::bulk_load_in_memory(opts, &wl.items()).unwrap();
        let index = Bur::from_index(index);
        let mut parts = wl.split(1);
        let part = &mut parts[0];
        group.bench_function(name, |b| {
            b.iter(|| {
                // One update + one query per iteration (a 50/50 mix).
                let op = part.next_update();
                index.update(op.oid, op.old, op.new).unwrap();
                let q = part.next_query();
                black_box(index.query(&q.window).unwrap().count());
            });
        });
    }
    group.finish();
}

fn bench_parallel_writers(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel-writers");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        let (bur, mut lanes) = build_strips(IndexOptions::generalized(), threads, 256);
        run_lanes(&bur, &mut lanes, 2); // warm the pool and the planner
        group.bench_function(format!("writers/{threads}"), |b| {
            b.iter(|| {
                // One whole-lane batch per writer thread per iteration.
                black_box(run_lanes(&bur, &mut lanes, 1));
            });
        });
        bur.validate().unwrap();
    }
    group.finish();
}

criterion_group!(benches, bench_mixed, bench_parallel_writers);
criterion_main!(benches);
