//! Criterion micro-benchmarks: window queries against TD- and
//! GBU-maintained trees (companion to Figures 5(b)/(d)).

use bur_core::{IndexOptions, RTreeIndex};
use bur_workload::{Workload, WorkloadConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn aged_index(opts: IndexOptions, n: usize, updates: usize) -> (RTreeIndex, Workload) {
    let mut wl = Workload::generate(WorkloadConfig {
        num_objects: n,
        ..WorkloadConfig::default()
    });
    let mut index = RTreeIndex::bulk_load_in_memory(opts, &wl.items()).unwrap();
    for _ in 0..updates {
        let op = wl.next_update();
        index.update(op.oid, op.old, op.new).unwrap();
    }
    (index, wl)
}

fn bench_queries(c: &mut Criterion) {
    let n = 20_000;
    let mut group = c.benchmark_group("query");
    group.sample_size(20);
    for (name, opts) in [
        ("TD-tree", IndexOptions::top_down()),
        ("GBU-tree", IndexOptions::generalized()),
    ] {
        let (index, mut wl) = aged_index(opts, n, 2 * n);
        let mut buf = Vec::new();
        group.bench_function(name, |b| {
            b.iter(|| {
                let q = wl.next_query();
                buf.clear();
                index.query_into(&q.window, &mut buf).unwrap();
                black_box(buf.len());
            });
        });
    }
    // Summary-assisted vs plain descent on the same GBU tree.
    let (index, mut wl) = aged_index(IndexOptions::generalized(), n, 2 * n);
    let mut buf = Vec::new();
    group.bench_function("GBU-plain-descent", |b| {
        b.iter(|| {
            let q = wl.next_query();
            buf.clear();
            index.query_top_down(&q.window, &mut buf).unwrap();
            black_box(buf.len());
        });
    });
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
