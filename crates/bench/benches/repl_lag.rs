//! Criterion micro-benchmark: what replication costs, and where the lag
//! lives.
//!
//! Three measurements over the same seeded durable GBU workload on an
//! in-memory disk:
//!
//! * `primary-only` — the durable update baseline (no follower at all);
//! * `ship+apply` — one primary update followed by one follower pump
//!   (`sync_once`): the full ship-decode-redo-install round trip that a
//!   tightly-coupled standby pays per update;
//! * `poll-empty` — an idle pump against a caught-up log: the floor a
//!   standby pays per poll when nothing new landed.
//!
//! `cargo run -p bur-bench --bin replbench` measures apply lag versus
//! primary update rate across pump cadences outside criterion and
//! records it as `BENCH_repl.json`.

use bur_core::{Durability, IndexOptions, WalOptions};
use bur_repl::{Follower, LogShipper};
use bur_storage::MemDisk;
use bur_workload::{Workload, WorkloadConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn durable_opts() -> IndexOptions {
    IndexOptions::generalized().with_durability(Durability::Wal(WalOptions {
        checkpoint_every: 1 << 20, // isolate shipping from rewind resyncs
        ..WalOptions::default()
    }))
}

fn bench_repl_lag(c: &mut Criterion) {
    let n = 10_000;
    let mut group = c.benchmark_group("repl_lag");
    group.sample_size(20);

    // Baseline: durable updates with nobody shipping.
    {
        let opts = durable_opts();
        let wl = Workload::generate(WorkloadConfig {
            num_objects: n,
            max_distance: 0.004,
            ..WorkloadConfig::default()
        });
        let mut index = bur_core::RTreeIndex::bulk_load_in_memory(opts, &wl.items()).unwrap();
        let mut wl = wl;
        group.bench_function("primary-only", |b| {
            b.iter(|| {
                let op = wl.next_update();
                black_box(index.update(op.oid, op.old, op.new).unwrap());
            });
        });
    }

    // Ship+apply: every update is pumped to the follower immediately.
    {
        let opts = durable_opts();
        let disk = Arc::new(MemDisk::new(opts.page_size));
        let wl = Workload::generate(WorkloadConfig {
            num_objects: n,
            max_distance: 0.004,
            ..WorkloadConfig::default()
        });
        let index =
            bur_core::RTreeIndex::bulk_load_on(disk.clone() as _, opts, &wl.items()).unwrap();
        let primary = bur_core::Bur::from_index(index);
        let mut wl = wl;
        let mut shipper = LogShipper::new(disk);
        let mut follower = Follower::attach_in_memory(&mut shipper, opts).unwrap();
        group.bench_function("ship+apply", |b| {
            b.iter(|| {
                let op = wl.next_update();
                primary.update(op.oid, op.old, op.new).unwrap();
                black_box(follower.sync_once(&mut shipper).unwrap());
            });
        });
        println!("  [ship+apply] follower stats: {:?}", follower.stats());

        // Idle pump against the caught-up log.
        follower.catch_up(&mut shipper).unwrap();
        group.bench_function("poll-empty", |b| {
            b.iter(|| black_box(follower.sync_once(&mut shipper).unwrap()));
        });
    }

    group.finish();
}

criterion_group!(benches, bench_repl_lag);
criterion_main!(benches);
