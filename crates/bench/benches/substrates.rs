//! Criterion micro-benchmarks of the substrates: geometry kernels, the
//! buffer pool, the linear-hash index and the node codec. These guard
//! against substrate regressions that would distort the figure-level
//! measurements.

use bur_core::{leaf_capacity, LeafEntry, Node};
use bur_geom::{Point, Rect};
use bur_hashindex::{HashIndexConfig, LinearHashIndex};
use bur_storage::{BufferPool, MemDisk, PoolConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn bench_geom(c: &mut Criterion) {
    let a = Rect::new(0.1, 0.1, 0.4, 0.5);
    let b = Rect::new(0.3, 0.2, 0.9, 0.8);
    let p = Point::new(0.35, 0.45);
    let mut group = c.benchmark_group("geom");
    group.bench_function("union", |bch| bch.iter(|| black_box(a.union(&b))));
    group.bench_function("intersects", |bch| bch.iter(|| black_box(a.intersects(&b))));
    group.bench_function("enlargement", |bch| {
        bch.iter(|| black_box(a.enlargement(&b)))
    });
    group.bench_function("contains_point", |bch| {
        bch.iter(|| black_box(a.contains_point(&p)))
    });
    group.finish();
}

fn bench_pool(c: &mut Criterion) {
    let pool = BufferPool::new(
        Arc::new(MemDisk::new(1024)),
        PoolConfig {
            capacity: 64,
            ..PoolConfig::default()
        },
    );
    let mut pids = Vec::new();
    for _ in 0..256 {
        let (pid, g) = pool.new_page().unwrap();
        drop(g);
        pids.push(pid);
    }
    let mut group = c.benchmark_group("buffer-pool");
    let mut i = 0usize;
    group.bench_function("fetch-hit", |b| {
        b.iter(|| {
            // Cycle inside the cached set.
            let pid = pids[i % 32];
            i += 1;
            black_box(pool.fetch(pid).unwrap().pid());
        })
    });
    let mut j = 0usize;
    group.bench_function("fetch-miss-evict", |b| {
        b.iter(|| {
            // Cycle over 4x the capacity: mostly misses + evictions.
            let pid = pids[j % 256];
            j += 37;
            black_box(pool.fetch(pid).unwrap().pid());
        })
    });
    group.finish();
}

fn bench_hash(c: &mut Criterion) {
    let pool = Arc::new(BufferPool::new(
        Arc::new(MemDisk::new(1024)),
        PoolConfig {
            capacity: 512,
            ..PoolConfig::default()
        },
    ));
    let idx = LinearHashIndex::create(pool, HashIndexConfig::default()).unwrap();
    for k in 0..50_000u64 {
        idx.insert(k, k as u32).unwrap();
    }
    let mut group = c.benchmark_group("hash-index");
    let mut k = 0u64;
    group.bench_function("probe", |b| {
        b.iter(|| {
            k = (k * 2862933555777941757 + 3037000493) % 50_000;
            black_box(idx.get(k).unwrap());
        })
    });
    group.bench_function("upsert", |b| {
        b.iter(|| {
            k = (k * 2862933555777941757 + 3037000493) % 50_000;
            black_box(idx.insert(k, (k % 97) as u32).unwrap());
        })
    });
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut node = Node::new_leaf();
    for i in 0..leaf_capacity(1024) as u64 {
        node.leaf_entries_mut()
            .push(LeafEntry::point(i, Point::new(i as f32 * 0.01, 0.5)));
    }
    let mut buf = vec![0u8; 1024];
    let mut group = c.benchmark_group("node-codec");
    group.bench_function("encode-full-leaf", |b| {
        b.iter(|| {
            node.encode(&mut buf);
            black_box(&buf);
        })
    });
    node.encode(&mut buf);
    group.bench_function("decode-full-leaf", |b| {
        b.iter(|| black_box(Node::decode(0, &buf).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_geom, bench_pool, bench_hash, bench_codec);
criterion_main!(benches);
