//! Criterion micro-benchmarks: one update under each strategy
//! (the wall-clock companion to Figures 5(a)/(c)).

use bur_core::{GbuParams, IndexOptions, LbuParams, RTreeIndex, UpdateStrategy};
use bur_workload::{Workload, WorkloadConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn build(opts: IndexOptions, n: usize) -> (RTreeIndex, Workload) {
    let wl = Workload::generate(WorkloadConfig {
        num_objects: n,
        ..WorkloadConfig::default()
    });
    let index = RTreeIndex::bulk_load_in_memory(opts, &wl.items()).unwrap();
    (index, wl)
}

fn bench_updates(c: &mut Criterion) {
    let n = 20_000;
    let mut group = c.benchmark_group("update");
    group.sample_size(20);
    for (name, opts) in [
        ("TD", IndexOptions::top_down()),
        (
            "LBU",
            IndexOptions {
                strategy: UpdateStrategy::Localized(LbuParams::default()),
                ..IndexOptions::default()
            },
        ),
        (
            "GBU",
            IndexOptions {
                strategy: UpdateStrategy::Generalized(GbuParams::default()),
                ..IndexOptions::default()
            },
        ),
    ] {
        let (mut index, mut wl) = build(opts, n);
        group.bench_function(name, |b| {
            b.iter(|| {
                let op = wl.next_update();
                black_box(index.update(op.oid, op.old, op.new).unwrap());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_updates);
criterion_main!(benches);
