//! Criterion micro-benchmark: what durability costs per update.
//!
//! Five configurations over the same seeded GBU workload:
//!
//! * `off` — the paper's setup, no write-ahead log (baseline);
//! * `wal-full` — every update logged as full 1 KiB page images (the
//!   pre-delta protocol), group-committed, no checkpoints in the
//!   measured window;
//! * `wal` — delta logging (byte-range diffs with full-image anchors),
//!   group-committed, no checkpoints;
//! * `wal+ckpt` — delta logging plus an aggressive checkpoint cadence,
//!   so the measured window pays for pool flushes and log rewinds too;
//! * `wal+async+batch` — the full durable fast path: delta logging,
//!   asynchronous group commit (background sync thread) and per-batch
//!   commit records.
//!
//! All configurations run on an in-memory disk: the numbers isolate the
//! CPU and page-copy overhead of the logging protocol itself, not
//! `fsync` latency (which `SyncPolicy` amortizes in real deployments).
//! `cargo run -p bur-bench --bin walbench` measures the same matrix
//! outside criterion and records it as `BENCH_wal.json`.

use bur_core::{DeltaPolicy, Durability, IndexOptions, RTreeIndex, WalOptions};
use bur_storage::SyncPolicy;
use bur_workload::{Workload, WorkloadConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn build(opts: IndexOptions, n: usize) -> (RTreeIndex, Workload) {
    let wl = Workload::generate(WorkloadConfig {
        num_objects: n,
        ..WorkloadConfig::default()
    });
    let index = RTreeIndex::bulk_load_in_memory(opts, &wl.items()).unwrap();
    (index, wl)
}

fn bench_wal_overhead(c: &mut Criterion) {
    let n = 20_000;
    let mut group = c.benchmark_group("wal_overhead");
    group.sample_size(20);
    for (name, durability) in [
        ("off", Durability::None),
        (
            "wal-full",
            Durability::Wal(WalOptions {
                sync: SyncPolicy::GroupCommit(64),
                checkpoint_every: u64::MAX,
                delta: DeltaPolicy::full_images(),
                batch_ops: 1,
                ..WalOptions::default()
            }),
        ),
        (
            "wal",
            Durability::Wal(WalOptions {
                sync: SyncPolicy::GroupCommit(64),
                checkpoint_every: u64::MAX,
                ..WalOptions::default()
            }),
        ),
        (
            "wal+ckpt",
            Durability::Wal(WalOptions {
                sync: SyncPolicy::GroupCommit(64),
                checkpoint_every: 512,
                ..WalOptions::default()
            }),
        ),
        (
            "wal+async+batch",
            Durability::Wal(WalOptions {
                sync: SyncPolicy::Async,
                checkpoint_every: 512,
                batch_ops: 8,
                ..WalOptions::default()
            }),
        ),
    ] {
        let opts = IndexOptions::generalized().with_durability(durability);
        let (mut index, mut wl) = build(opts, n);
        group.bench_function(name, |b| {
            b.iter(|| {
                let op = wl.next_update();
                black_box(index.update(op.oid, op.old, op.new).unwrap());
            });
        });
        index.flush_commits().unwrap();
        if let Some(stats) = index.wal_stats() {
            println!("  [{name}] {stats}");
        }
    }
    group.finish();
}

criterion_group!(benches, bench_wal_overhead);
criterion_main!(benches);
