//! `concbench` — measure how batch-apply throughput scales with writer
//! threads and record it as a machine-readable perf artifact.
//!
//! ```text
//! concbench [--objects N] [--batches N] [--out FILE]
//! ```
//!
//! Runs the disjoint-strip parallel-writer workload (`bur_bench::parallel`,
//! GBU on an in-memory disk, volatile — the scaling measurement isolates
//! the write path, not the log sync) at 1/2/4/8 writer threads over a
//! fixed total operation count, and writes `BENCH_concurrency.json`:
//! ops/second per thread count, the 1→8 scaling ratio, and the observed
//! in-flight batch high watermark proving the batches physically
//! overlapped. CI uploads the file so future PRs have a concurrency
//! trajectory to regress against; the target recorded inside
//! (`scaling_1_to_8_min: 2.5`) is the latch-per-page rework's
//! acceptance bar, and `single_thread_ops_per_sec` is the row to watch
//! for single-writer regressions.

use bur_bench::parallel::{build_strips, run_lanes};
use bur_core::IndexOptions;
use std::fmt::Write as _;
use std::process::ExitCode;

struct Row {
    threads: usize,
    ops_per_sec: f64,
    peak_concurrent: usize,
}

fn measure(threads: usize, per_thread: usize, total_batches: usize) -> Row {
    let (bur, mut lanes) = build_strips(IndexOptions::generalized(), threads, per_thread);
    let batches = total_batches / threads;
    // Warm the pool and the planner before the timed window.
    run_lanes(&bur, &mut lanes, batches / 8 + 1);
    let secs = run_lanes(&bur, &mut lanes, batches);
    bur.validate().expect("validate");
    Row {
        threads,
        ops_per_sec: (threads * per_thread * batches) as f64 / secs,
        peak_concurrent: bur.peak_concurrent_batches(),
    }
}

fn main() -> ExitCode {
    let mut per_thread = 1_024usize;
    let mut total_batches = 256usize;
    let mut out = String::from("BENCH_concurrency.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--objects" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => per_thread = v,
                None => return usage(),
            },
            "--batches" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => total_batches = v,
                None => return usage(),
            },
            "--out" => match args.next() {
                Some(v) => out = v,
                None => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    let rows: Vec<Row> = [1usize, 2, 4, 8]
        .into_iter()
        .map(|threads| {
            let r = measure(threads, per_thread, total_batches);
            eprintln!(
                "{:>2} writers: {:10.0} ops/s (peak in-flight batches {})",
                r.threads, r.ops_per_sec, r.peak_concurrent
            );
            r
        })
        .collect();

    let single = rows[0].ops_per_sec;
    let scaling = rows.last().map(|r| r.ops_per_sec / single).unwrap_or(0.0);
    let overlapped = rows.iter().any(|r| r.threads > 1 && r.peak_concurrent >= 2);

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"parallel_writers\",");
    let _ = writeln!(json, "  \"objects_per_writer\": {per_thread},");
    let _ = writeln!(json, "  \"batches_total\": {total_batches},");
    let _ = writeln!(json, "  \"batch_ops\": {per_thread},");
    let _ = writeln!(json, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"threads\": {}, \"ops_per_sec\": {:.0}, \"peak_concurrent_batches\": {}}}{}",
            r.threads,
            r.ops_per_sec,
            r.peak_concurrent,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"single_thread_ops_per_sec\": {single:.0},");
    let _ = writeln!(json, "  \"scaling_1_to_8\": {scaling:.3},");
    let _ = writeln!(json, "  \"batches_overlapped\": {overlapped},");
    let _ = writeln!(json, "  \"targets\": {{\"scaling_1_to_8_min\": 2.5}},");
    let _ = writeln!(json, "  \"targets_met\": {}", scaling >= 2.5 && overlapped);
    let _ = writeln!(json, "}}");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("concbench: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "\n1 -> 8 writer scaling: {scaling:.2}x (target >= 2.5x), overlap observed: {overlapped}\n\
         written to {out}"
    );
    ExitCode::SUCCESS
}

fn usage() -> ExitCode {
    eprintln!("usage: concbench [--objects N] [--batches N] [--out FILE]");
    ExitCode::FAILURE
}
