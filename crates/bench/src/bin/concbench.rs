//! `concbench` — measure how batch-apply throughput scales with writer
//! threads and record it as a machine-readable perf artifact.
//!
//! ```text
//! concbench [--objects N] [--batches N] [--churn N] [--out FILE]
//! ```
//!
//! Runs two disjoint-strip parallel-writer workloads (`bur_bench::parallel`,
//! GBU on an in-memory disk, volatile — the scaling measurement isolates
//! the write path, not the log sync) at 1/2/4/8 writer threads over a
//! fixed total operation count, and writes `BENCH_concurrency.json`:
//!
//! - `update` — pure in-place bottom-up updates, the original scaling
//!   workload (target: ≥ 2.5x 1→8);
//! - `structural` — insert/delete churn that grows and shrinks leaves.
//!   Before latch-coupled group planning, every one of these batches
//!   escalated to the exclusive whole-tree path and the workload scaled
//!   at ~1.0x; the targets pin both the recovered scaling (≥ 1.5x) and
//!   the escalation rate (≤ 10% of batches — overflowing leaves take
//!   preparatory make-room splits instead).
//!
//! Each row also records the in-flight batch high watermark (reset per
//! measurement, proving the batches physically overlapped) and the
//! escalation / make-room-split counter deltas for the timed window.
//! CI regenerates and commits the file so future PRs have a concurrency
//! trajectory to regress against.

use bur_bench::parallel::{build_strips, build_structural_strips, run_lanes, run_structural_lanes};
use bur_core::IndexOptions;
use std::fmt::Write as _;
use std::process::ExitCode;

struct Row {
    threads: usize,
    ops_per_sec: f64,
    peak_concurrent: usize,
    escalations: u64,
    make_room_splits: u64,
    batches: usize,
}

fn measure_updates(threads: usize, per_thread: usize, total_batches: usize) -> Row {
    let (bur, mut lanes) = build_strips(IndexOptions::generalized(), threads, per_thread);
    let batches = total_batches / threads;
    // Warm the pool and the planner before the timed window.
    run_lanes(&bur, &mut lanes, batches / 8 + 1);
    bur.reset_peak_concurrent_batches();
    let before = bur.with_op_stats(|s| s.snapshot());
    let secs = run_lanes(&bur, &mut lanes, batches);
    let delta = bur.with_op_stats(|s| s.snapshot()).since(&before);
    bur.validate().expect("validate");
    Row {
        threads,
        ops_per_sec: (threads * per_thread * batches) as f64 / secs,
        peak_concurrent: bur.peak_concurrent_batches(),
        escalations: delta.escalations,
        make_room_splits: delta.make_room_splits,
        batches: threads * batches,
    }
}

fn measure_structural(
    threads: usize,
    per_thread: usize,
    total_batches: usize,
    churn: usize,
) -> Row {
    let (bur, mut lanes) =
        build_structural_strips(IndexOptions::generalized(), threads, per_thread, churn);
    let batches = (total_batches / threads + 1) & !1;
    run_structural_lanes(&bur, &mut lanes, batches / 8 + 2);
    bur.reset_peak_concurrent_batches();
    let before = bur.with_op_stats(|s| s.snapshot());
    let secs = run_structural_lanes(&bur, &mut lanes, batches);
    let delta = bur.with_op_stats(|s| s.snapshot()).since(&before);
    bur.validate().expect("validate");
    Row {
        threads,
        ops_per_sec: (threads * churn * batches) as f64 / secs,
        peak_concurrent: bur.peak_concurrent_batches(),
        escalations: delta.escalations,
        make_room_splits: delta.make_room_splits,
        batches: threads * batches,
    }
}

struct Workload {
    name: &'static str,
    rows: Vec<Row>,
}

impl Workload {
    fn scaling(&self) -> f64 {
        let single = self.rows[0].ops_per_sec;
        self.rows
            .last()
            .map(|r| r.ops_per_sec / single)
            .unwrap_or(0.0)
    }

    fn overlapped(&self) -> bool {
        self.rows
            .iter()
            .any(|r| r.threads > 1 && r.peak_concurrent >= 2)
    }

    /// Escalated batches as a fraction of all batches across the rows.
    fn escalation_rate(&self) -> f64 {
        let batches: usize = self.rows.iter().map(|r| r.batches).sum();
        let escalations: u64 = self.rows.iter().map(|r| r.escalations).sum();
        escalations as f64 / batches.max(1) as f64
    }

    fn emit(&self, json: &mut String, last: bool) {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"workload\": \"{}\",", self.name);
        let _ = writeln!(json, "      \"rows\": [");
        for (i, r) in self.rows.iter().enumerate() {
            let _ = writeln!(
                json,
                "        {{\"threads\": {}, \"ops_per_sec\": {:.0}, \
                 \"peak_concurrent_batches\": {}, \"escalations\": {}, \
                 \"make_room_splits\": {}, \"batches\": {}}}{}",
                r.threads,
                r.ops_per_sec,
                r.peak_concurrent,
                r.escalations,
                r.make_room_splits,
                r.batches,
                if i + 1 < self.rows.len() { "," } else { "" }
            );
        }
        let _ = writeln!(json, "      ],");
        let _ = writeln!(
            json,
            "      \"single_thread_ops_per_sec\": {:.0},",
            self.rows[0].ops_per_sec
        );
        let _ = writeln!(json, "      \"scaling_1_to_8\": {:.3},", self.scaling());
        let _ = writeln!(
            json,
            "      \"escalation_rate\": {:.4},",
            self.escalation_rate()
        );
        let _ = writeln!(json, "      \"batches_overlapped\": {}", self.overlapped());
        let _ = writeln!(json, "    }}{}", if last { "" } else { "," });
    }
}

fn main() -> ExitCode {
    let mut per_thread = 1_024usize;
    let mut total_batches = 256usize;
    let mut churn = 64usize;
    let mut out = String::from("BENCH_concurrency.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--objects" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => per_thread = v,
                None => return usage(),
            },
            "--batches" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => total_batches = v,
                None => return usage(),
            },
            "--churn" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => churn = v,
                None => return usage(),
            },
            "--out" => match args.next() {
                Some(v) => out = v,
                None => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    const THREADS: [usize; 4] = [1, 2, 4, 8];
    let workloads = [
        Workload {
            name: "update",
            rows: THREADS
                .into_iter()
                .map(|t| report(measure_updates(t, per_thread, total_batches)))
                .collect(),
        },
        Workload {
            name: "structural",
            rows: THREADS
                .into_iter()
                .map(|t| report(measure_structural(t, per_thread, total_batches, churn)))
                .collect(),
        },
    ];

    let update = &workloads[0];
    let structural = &workloads[1];
    // A single-core box cannot express parallel speedup no matter how
    // good the locking is; the scaling clauses only bind where the
    // hardware can show them. Overlap and escalation-rate always bind.
    let cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let scaling_enforced = cpus >= 2;
    let targets_met = update.overlapped()
        && structural.overlapped()
        && structural.escalation_rate() <= 0.1
        && (!scaling_enforced || (update.scaling() >= 2.5 && structural.scaling() >= 1.5));

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"parallel_writers\",");
    let _ = writeln!(json, "  \"cpus\": {cpus},");
    let _ = writeln!(json, "  \"objects_per_writer\": {per_thread},");
    let _ = writeln!(json, "  \"batches_total\": {total_batches},");
    let _ = writeln!(json, "  \"churn_ops_per_batch\": {churn},");
    let _ = writeln!(json, "  \"workloads\": [");
    update.emit(&mut json, false);
    structural.emit(&mut json, true);
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"targets\": {{\"update_scaling_1_to_8_min\": 2.5, \
         \"structural_scaling_1_to_8_min\": 1.5, \
         \"structural_max_escalation_rate\": 0.1}},"
    );
    let _ = writeln!(json, "  \"scaling_targets_enforced\": {scaling_enforced},");
    let _ = writeln!(json, "  \"targets_met\": {targets_met}");
    let _ = writeln!(json, "}}");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("concbench: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "\nupdate 1 -> 8 scaling: {:.2}x (target >= 2.5x); \
         structural 1 -> 8 scaling: {:.2}x (target >= 1.5x, escalation rate {:.3} <= 0.1)\n\
         targets met: {targets_met}; written to {out}",
        update.scaling(),
        structural.scaling(),
        structural.escalation_rate(),
    );
    ExitCode::SUCCESS
}

fn report(r: Row) -> Row {
    eprintln!(
        "{:>2} writers: {:10.0} ops/s (peak in-flight {}, escalations {}, make-room {})",
        r.threads, r.ops_per_sec, r.peak_concurrent, r.escalations, r.make_room_splits
    );
    r
}

fn usage() -> ExitCode {
    eprintln!("usage: concbench [--objects N] [--batches N] [--churn N] [--out FILE]");
    ExitCode::FAILURE
}
