//! `replbench` — measure warm-standby apply lag versus primary update
//! rate and record it as a machine-readable perf artifact.
//!
//! ```text
//! replbench [--objects N] [--updates N] [--soak-secs S] [--out FILE]
//! ```
//!
//! Runs the in-place update workload (seeded GBU, in-memory disk — the
//! `wal_overhead` setup) on a durable primary while a [`Follower`]
//! ships its write-ahead log, across a matrix of pump cadences (how
//! many primary updates land between follower polls). For each cadence
//! it writes into `BENCH_repl.json`: the primary's update rate, the
//! follower's apply throughput, the *apply lag* observed just before
//! each pump (mean and max, in LSNs — records the follower had not yet
//! made visible), and the time the follower needed to catch up after
//! the primary stopped. The recorded target: at the per-update cadence
//! the follower must keep the mean lag under one commit's worth of
//! records, and every cadence must catch up after the run.
//!
//! With `--soak-secs S > 0` (the CI smoke) it additionally runs a
//! two-thread soak — a writer hammering the primary while a pump thread
//! ships continuously — then has the follower catch up, promotes it,
//! and verifies the promoted index validates and matches the primary's
//! object count. The soak result is part of the JSON (`soak_ok`).

use bur_core::{Bur, Durability, IndexOptions, RTreeIndex, WalOptions};
use bur_repl::{Follower, LogShipper};
use bur_storage::MemDisk;
use bur_workload::{Workload, WorkloadConfig};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct CadenceResult {
    name: &'static str,
    pump_every: usize,
    primary_ns_per_update: f64,
    follower_ns_per_record: f64,
    mean_lag_records: f64,
    max_lag_records: u64,
    catchup_ms: f64,
    records_shipped: u64,
    resyncs: u64,
}

fn durable_opts() -> IndexOptions {
    IndexOptions::generalized().with_durability(Durability::Wal(WalOptions {
        checkpoint_every: 8192,
        ..WalOptions::default()
    }))
}

fn build_primary(objects: usize) -> (Bur, Arc<MemDisk>, Workload) {
    let opts = durable_opts();
    let disk = Arc::new(MemDisk::new(opts.page_size));
    let wl = Workload::generate(WorkloadConfig {
        num_objects: objects,
        max_distance: 0.004,
        ..WorkloadConfig::default()
    });
    let index = RTreeIndex::bulk_load_on(disk.clone() as _, opts, &wl.items()).expect("bulk load");
    (Bur::from_index(index), disk, wl)
}

fn measure(name: &'static str, pump_every: usize, objects: usize, updates: usize) -> CadenceResult {
    let (primary, disk, mut wl) = build_primary(objects);
    let mut shipper = LogShipper::new(disk);
    let mut follower = Follower::attach_in_memory(&mut shipper, durable_opts()).expect("attach");

    let mut primary_ns = 0u128;
    let mut pump_ns = 0u128;
    let mut lag_sum = 0u64;
    let mut lag_max = 0u64;
    let mut pumps = 0u64;
    for i in 0..updates {
        let op = wl.next_update();
        let t = Instant::now();
        primary.update(op.oid, op.old, op.new).expect("update");
        primary_ns += t.elapsed().as_nanos();
        if (i + 1) % pump_every == 0 {
            // Apply lag right before the pump: records durable on the
            // primary but not yet visible on the replica.
            let last = primary.wal_stats().map_or(0, |s| s.last_lsn);
            let lag = last.saturating_sub(follower.applied_lsn());
            lag_sum += lag;
            lag_max = lag_max.max(lag);
            pumps += 1;
            let t = Instant::now();
            follower.sync_once(&mut shipper).expect("pump");
            pump_ns += t.elapsed().as_nanos();
        }
    }
    // Primary stops; how long until the standby is fully caught up?
    primary.wait_durable().expect("quiesce");
    let t = Instant::now();
    follower.catch_up(&mut shipper).expect("catch up");
    let catchup_ms = t.elapsed().as_secs_f64() * 1e3;
    let stats = follower.stats();
    assert_eq!(
        follower.applied_lsn(),
        primary.wal_stats().map_or(0, |s| s.durable_lsn),
        "{name}: follower must catch up to the primary's durable watermark"
    );
    CadenceResult {
        name,
        pump_every,
        primary_ns_per_update: primary_ns as f64 / updates as f64,
        follower_ns_per_record: if stats.records_shipped == 0 {
            0.0
        } else {
            pump_ns as f64 / stats.records_shipped as f64
        },
        mean_lag_records: if pumps == 0 {
            0.0
        } else {
            lag_sum as f64 / pumps as f64
        },
        max_lag_records: lag_max,
        catchup_ms,
        records_shipped: stats.records_shipped,
        resyncs: stats.resyncs,
    }
}

/// Concurrent writer + pump soak; returns `(updates, records, resyncs)`
/// after verifying the promoted follower.
fn soak(objects: usize, secs: u64) -> (u64, u64, u64) {
    let (primary, disk, mut wl) = build_primary(objects);
    let mut shipper = LogShipper::new(disk);
    let mut follower = Follower::attach_in_memory(&mut shipper, durable_opts()).expect("attach");
    let stop = Arc::new(AtomicBool::new(false));

    let writer_stop = stop.clone();
    let writer_bur = primary.clone();
    let writer = std::thread::spawn(move || {
        let mut updates = 0u64;
        while !writer_stop.load(Ordering::Relaxed) {
            let op = wl.next_update();
            writer_bur.update(op.oid, op.old, op.new).expect("update");
            updates += 1;
        }
        updates
    });
    let deadline = Instant::now() + Duration::from_secs(secs);
    while Instant::now() < deadline {
        follower.sync_once(&mut shipper).expect("pump");
    }
    stop.store(true, Ordering::Relaxed);
    let updates = writer.join().expect("writer");
    primary.wait_durable().expect("quiesce");
    follower.catch_up(&mut shipper).expect("catch up");
    let stats = follower.stats();

    let promoted = follower.promote().expect("promote");
    promoted.validate().expect("promoted index validates");
    assert_eq!(promoted.len(), primary.len(), "soak: object count");
    (updates, stats.records_shipped, stats.resyncs)
}

fn main() -> ExitCode {
    let mut objects = 20_000usize;
    let mut updates = 20_000usize;
    let mut soak_secs = 0u64;
    let mut out = String::from("BENCH_repl.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--objects" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => objects = v,
                None => return usage(),
            },
            "--updates" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => updates = v,
                None => return usage(),
            },
            "--soak-secs" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => soak_secs = v,
                None => return usage(),
            },
            "--out" => match args.next() {
                Some(v) => out = v,
                None => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    let configs: [(&'static str, usize); 4] = [
        ("pump-per-update", 1),
        ("pump-per-16", 16),
        ("pump-per-256", 256),
        ("pump-at-end", usize::MAX),
    ];
    let results: Vec<CadenceResult> = configs
        .into_iter()
        .map(|(name, every)| {
            let every = every.min(updates); // "at end" = one pump after all updates
            let r = measure(name, every, objects, updates);
            eprintln!(
                "{:>16}: primary {:7.0} ns/update | follower {:6.0} ns/record | lag mean {:7.1} \
                 max {:5} records | catch-up {:7.2} ms ({} records, {} resyncs)",
                r.name,
                r.primary_ns_per_update,
                r.follower_ns_per_record,
                r.mean_lag_records,
                r.max_lag_records,
                r.catchup_ms,
                r.records_shipped,
                r.resyncs
            );
            r
        })
        .collect();

    // Target: pumped per update, the standby stays within one commit's
    // worth of records (a page record or two plus the commit itself).
    let tight = &results[0];
    let lag_target_met = tight.mean_lag_records <= 8.0;

    let soak_result = if soak_secs > 0 {
        let (u, r, s) = soak(objects, soak_secs);
        eprintln!(
            "soak {soak_secs}s: {u} concurrent updates, {r} records shipped, {s} resyncs, \
             promoted follower validated"
        );
        Some((u, r, s))
    } else {
        None
    };

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"repl_lag\",");
    let _ = writeln!(json, "  \"objects\": {objects},");
    let _ = writeln!(json, "  \"updates_measured\": {updates},");
    let _ = writeln!(json, "  \"configs\": [");
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"pump_every\": {}, \"primary_ns_per_update\": {:.1}, \
             \"follower_ns_per_record\": {:.1}, \"mean_lag_records\": {:.2}, \
             \"max_lag_records\": {}, \"catchup_ms\": {:.3}, \"records_shipped\": {}, \
             \"resyncs\": {}}}{}",
            r.name,
            r.pump_every,
            r.primary_ns_per_update,
            r.follower_ns_per_record,
            r.mean_lag_records,
            r.max_lag_records,
            r.catchup_ms,
            r.records_shipped,
            r.resyncs,
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"targets\": {{\"mean_lag_records_at_per_update_pump_max\": 8.0}},"
    );
    match soak_result {
        Some((u, r, s)) => {
            let _ = writeln!(
                json,
                "  \"soak\": {{\"secs\": {soak_secs}, \"updates\": {u}, \"records_shipped\": {r}, \
                 \"resyncs\": {s}, \"soak_ok\": true}},"
            );
        }
        None => {
            let _ = writeln!(json, "  \"soak\": null,");
        }
    }
    let _ = writeln!(json, "  \"targets_met\": {lag_target_met}");
    let _ = writeln!(json, "}}");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("replbench: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "\nmean apply lag at per-update pump: {:.2} records (target <= 8)\nwritten to {out}",
        tight.mean_lag_records
    );
    ExitCode::SUCCESS
}

fn usage() -> ExitCode {
    eprintln!("usage: replbench [--objects N] [--updates N] [--soak-secs S] [--out FILE]");
    ExitCode::FAILURE
}
