//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [--scale smoke|default|paper] [--smoke] [--out DIR] <experiment>|all
//! ```
//!
//! `--smoke` is the CI shorthand for `--scale smoke all`: it forces smoke
//! scale and, when no experiment is named, runs the full sweep.
//!
//! Prints each figure as an aligned table (the same series the paper
//! plots) and writes a CSV per table under `--out` (default `results/`).

use bur_bench::{figures, Scale};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro [--scale smoke|default|paper] [--smoke] [--out DIR] <experiment>|all\n\
         experiments: {}",
        figures::EXPERIMENTS.join(", ")
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut scale = Scale::Default;
    let mut out_dir = PathBuf::from("results");
    let mut targets: Vec<String> = Vec::new();
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let Some(v) = args.next().and_then(|s| Scale::parse(&s)) else {
                    return usage();
                };
                scale = v;
            }
            "--smoke" => smoke = true,
            "--out" => {
                let Some(v) = args.next() else { return usage() };
                out_dir = PathBuf::from(v);
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => targets.push(other.to_string()),
        }
    }
    if smoke {
        scale = Scale::Smoke;
        if targets.is_empty() {
            targets.push("all".to_string());
        }
    }
    if targets.is_empty() {
        return usage();
    }

    let run_list: Vec<String> = if targets.iter().any(|t| t == "all") {
        figures::EXPERIMENTS
            .iter()
            .map(|s| (*s).to_string())
            .collect()
    } else {
        targets
    };

    for name in &run_list {
        let Some(tables) = figures::by_name(name, scale) else {
            eprintln!("unknown experiment: {name}");
            return usage();
        };
        for (i, table) in tables.iter().enumerate() {
            table.print();
            let suffix = if tables.len() > 1 {
                format!("{name}-{}", (b'a' + i as u8) as char)
            } else {
                name.clone()
            };
            if let Err(e) = table.save_csv(&out_dir, &suffix) {
                eprintln!("warning: could not save {suffix}.csv: {e}");
            }
        }
    }
    eprintln!("\nscale = {scale}; CSVs under {}", out_dir.display());
    ExitCode::SUCCESS
}
