//! `servebench` — loadtest `burd` over loopback and record the serving
//! profile as a machine-readable perf artifact.
//!
//! ```text
//! servebench [--batches N] [--per-batch N] [--out FILE]
//! servebench --chaos [--seed S] [--drop RATE] [--batches N] [--per-batch N] [--out FILE]
//! servebench --shards [--batches N] [--per-batch N] [--queries N] [--out FILE]
//! ```
//!
//! Starts an in-process `burd` (temp data directory, durable GBU
//! index), then drives it at 1, 4 and 16 client connections, each
//! connection applying `--batches` insert batches of `--per-batch`
//! operations and measuring per-apply latency client-side. Writes
//! `BENCH_serve.json`: throughput (ops/s), apply p50/p99, and the
//! coalescing ratio (client batches per WAL group-commit round) for
//! each connection count. The interesting shape: the coalescing ratio
//! should *grow* with connections — more concurrent clients means more
//! batches merged per fsync, which is exactly where the server beats N
//! independent handles. The recorded target (`coalesce_gain_min: 2.0`)
//! asks the 16-connection ratio to be at least twice the 1-connection
//! ratio.
//!
//! `--shards` profiles the Hilbert-range sharding axis: the same
//! durable GBU workload at 1, 2, 4 and 8 shards (4 client connections
//! each) plus an unsharded baseline, recording write throughput and
//! window-query p50/p99 per shard count as `BENCH_shard.json`. The
//! recorded target (`single_shard_overhead_max: 1.15`) asks the
//! one-shard sharded index to stay within 15% of the plain index's
//! write throughput — the routing layer must be close to free when it
//! routes everything to one place.
//!
//! `--chaos` measures fault tolerance instead of raw throughput: the
//! same server sits behind a seeded [`ChaosProxy`] dropping `--drop`
//! (default 10%) of frames, and 4 retrying clients push their batches
//! through it. `BENCH_chaos.json` records the acked-write survival
//! rate (acked inserts present on the server afterwards — the target
//! is exactly 1.0: no losses, no double-applies), the retry and
//! reconnect counts the faults forced, and apply p50/p99 including
//! retry time.

use bur_client::{BurClient, ClientConfig, RetryPolicy};
use bur_core::Batch;
use bur_geom::{Point, Rect};
use bur_serve::{start, ChaosProxy, FaultPlan, ServerConfig};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

struct RunResult {
    connections: usize,
    ops_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    coalescing_ratio: f64,
}

fn pos(oid: u64) -> Point {
    let h = oid.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    Point::new(
        (h % 1000) as f32 / 1000.0,
        ((h >> 32) % 1000) as f32 / 1000.0,
    )
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn run(connections: usize, batches: u64, per_batch: u64) -> RunResult {
    let dir = std::env::temp_dir().join(format!(
        "bur-servebench-{}-{connections}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let handle = start(ServerConfig::new(&dir)).expect("server starts");
    BurClient::connect(handle.addr())
        .expect("connect")
        .create_index("bench", "gbu", true)
        .expect("create");

    let started = Instant::now();
    let workers: Vec<_> = (0..connections as u64)
        .map(|t| {
            let addr = handle.addr();
            std::thread::spawn(move || {
                let mut client = BurClient::connect(addr).expect("connect");
                let mut latencies = Vec::with_capacity(batches as usize);
                for b in 0..batches {
                    let base = t * 1_000_000_000 + b * per_batch;
                    let mut batch = Batch::new();
                    for oid in base..base + per_batch {
                        batch.insert(oid, pos(oid));
                    }
                    let t0 = Instant::now();
                    client.apply("bench", &batch).expect("apply");
                    latencies.push(t0.elapsed().as_secs_f64() * 1e6);
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<f64> = workers
        .into_iter()
        .flat_map(|w| w.join().expect("worker"))
        .collect();
    let elapsed = started.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.total_cmp(b));

    let stats = handle
        .registry()
        .get("bench")
        .expect("entry")
        .as_plain()
        .expect("plain index")
        .coalescer
        .stats();
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    let total_ops = connections as u64 * batches * per_batch;
    RunResult {
        connections,
        ops_per_sec: total_ops as f64 / elapsed,
        p50_us: quantile(&latencies, 0.50),
        p99_us: quantile(&latencies, 0.99),
        coalescing_ratio: stats.ratio(),
    }
}

struct ShardRunResult {
    /// 0 encodes the plain (unsharded) baseline.
    shards: u32,
    ops_per_sec: f64,
    apply_p50_us: f64,
    apply_p99_us: f64,
    query_p50_us: f64,
    query_p99_us: f64,
}

/// One `--shards` data point: 4 connections write, then one connection
/// runs window queries; `shards == None` is the plain baseline.
fn run_sharded(shards: Option<u32>, batches: u64, per_batch: u64, queries: u64) -> ShardRunResult {
    const CONNECTIONS: u64 = 4;
    let dir = std::env::temp_dir().join(format!(
        "bur-servebench-shard-{}-{}",
        std::process::id(),
        shards.unwrap_or(0)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let handle = start(ServerConfig::new(&dir)).expect("server starts");
    let mut admin = BurClient::connect(handle.addr()).expect("connect");
    match shards {
        Some(n) => admin
            .create_sharded_index("bench", "gbu", true, n)
            .expect("create sharded"),
        None => admin.create_index("bench", "gbu", true).expect("create"),
    }

    let started = Instant::now();
    let workers: Vec<_> = (0..CONNECTIONS)
        .map(|t| {
            let addr = handle.addr();
            std::thread::spawn(move || {
                let mut client = BurClient::connect(addr).expect("connect");
                let mut latencies = Vec::with_capacity(batches as usize);
                for b in 0..batches {
                    let base = t * 1_000_000_000 + b * per_batch;
                    let mut batch = Batch::new();
                    for oid in base..base + per_batch {
                        batch.insert(oid, pos(oid));
                    }
                    let t0 = Instant::now();
                    client.apply("bench", &batch).expect("apply");
                    latencies.push(t0.elapsed().as_secs_f64() * 1e6);
                }
                latencies
            })
        })
        .collect();
    let mut apply: Vec<f64> = workers
        .into_iter()
        .flat_map(|w| w.join().expect("worker"))
        .collect();
    let elapsed = started.elapsed().as_secs_f64();
    apply.sort_by(|a, b| a.total_cmp(b));

    // Query phase: small scattered windows, latency measured per call
    // (a sharded index scatter-gathers only the overlapping shards).
    let mut query: Vec<f64> = Vec::with_capacity(queries as usize);
    for q in 0..queries {
        let c = pos(q.wrapping_mul(0x5851_f42d_4c95_7f2d));
        let window = Rect::new(c.x, c.y, (c.x + 0.08).min(1.0), (c.y + 0.08).min(1.0));
        let t0 = Instant::now();
        let hits: Result<Vec<u64>, _> = admin.query("bench", &window).expect("query").collect();
        hits.expect("stream");
        query.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    query.sort_by(|a, b| a.total_cmp(b));
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    let total_ops = CONNECTIONS * batches * per_batch;
    ShardRunResult {
        shards: shards.unwrap_or(0),
        ops_per_sec: total_ops as f64 / elapsed,
        apply_p50_us: quantile(&apply, 0.50),
        apply_p99_us: quantile(&apply, 0.99),
        query_p50_us: quantile(&query, 0.50),
        query_p99_us: quantile(&query, 0.99),
    }
}

/// `--shards` mode: the sharding axis (plain baseline, then 1/2/4/8
/// shards), recorded as `BENCH_shard.json`.
fn run_shard_axis(batches: u64, per_batch: u64, queries: u64, out: &str) -> ExitCode {
    let label = |shards: u32| -> String {
        if shards == 0 {
            "plain".to_string()
        } else {
            format!("{shards} shard(s)")
        }
    };
    let results: Vec<ShardRunResult> = [None, Some(1), Some(2), Some(4), Some(8)]
        .into_iter()
        .map(|shards| {
            let r = run_sharded(shards, batches, per_batch, queries);
            eprintln!(
                "{:>10}: {:9.0} ops/s, apply p50 {:7.0} µs p99 {:7.0} µs, \
                 query p50 {:7.0} µs p99 {:7.0} µs",
                label(r.shards),
                r.ops_per_sec,
                r.apply_p50_us,
                r.apply_p99_us,
                r.query_p50_us,
                r.query_p99_us
            );
            r
        })
        .collect();

    // The router must be close to free when there is nothing to route:
    // plain throughput over one-shard sharded throughput.
    let plain = results[0].ops_per_sec.max(1.0);
    let one_shard = results[1].ops_per_sec.max(1.0);
    let overhead = plain / one_shard;

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"serve_shards\",");
    let _ = writeln!(json, "  \"connections\": 4,");
    let _ = writeln!(json, "  \"batches_per_connection\": {batches},");
    let _ = writeln!(json, "  \"ops_per_batch\": {per_batch},");
    let _ = writeln!(json, "  \"queries\": {queries},");
    let _ = writeln!(json, "  \"runs\": [");
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"shards\": {}, \"ops_per_sec\": {:.0}, \"apply_p50_us\": {:.1}, \
             \"apply_p99_us\": {:.1}, \"query_p50_us\": {:.1}, \"query_p99_us\": {:.1}}}{}",
            r.shards,
            r.ops_per_sec,
            r.apply_p50_us,
            r.apply_p99_us,
            r.query_p50_us,
            r.query_p99_us,
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"single_shard_overhead\": {overhead:.3},");
    let _ = writeln!(
        json,
        "  \"targets\": {{\"single_shard_overhead_max\": 1.15}},"
    );
    let _ = writeln!(json, "  \"targets_met\": {}", overhead <= 1.15);
    let _ = writeln!(json, "}}");
    if let Err(e) = std::fs::write(out, &json) {
        eprintln!("servebench: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "\nsingle-shard overhead vs plain: {overhead:.2}x (target <= 1.15x)\n\
         written to {out}"
    );
    ExitCode::SUCCESS
}

/// `--chaos` mode: drive the server through a frame-dropping proxy
/// with retrying clients and record the survival profile.
fn run_chaos(seed: u64, drop_rate: f64, batches: u64, per_batch: u64, out: &str) -> ExitCode {
    const CONNECTIONS: u64 = 4;
    let dir = std::env::temp_dir().join(format!("bur-servebench-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let handle = start(ServerConfig::new(&dir)).expect("server starts");
    BurClient::connect(handle.addr())
        .expect("connect")
        .create_index("bench", "gbu", true)
        .expect("create");
    let plan = FaultPlan {
        seed,
        drop_rate,
        truncate_rate: drop_rate / 4.0,
        delay_rate: 0.05,
        delay: std::time::Duration::from_millis(1),
        ..FaultPlan::default()
    };
    let proxy = ChaosProxy::start("127.0.0.1:0", handle.addr(), plan).expect("proxy starts");
    let config = ClientConfig {
        initial_backoff: std::time::Duration::from_millis(2),
        max_backoff: std::time::Duration::from_millis(50),
        op_timeout: Some(std::time::Duration::from_millis(500)),
        retry: RetryPolicy {
            max_attempts: 16,
            initial_backoff: std::time::Duration::from_millis(2),
            max_backoff: std::time::Duration::from_millis(100),
            max_elapsed: std::time::Duration::from_secs(60),
        },
        ..ClientConfig::default()
    };

    let started = Instant::now();
    let workers: Vec<_> = (0..CONNECTIONS)
        .map(|t| {
            let addr = proxy.addr();
            let config = config.clone();
            std::thread::spawn(move || {
                let mut client = BurClient::connect_with(addr, &config).expect("connect");
                let mut latencies = Vec::with_capacity(batches as usize);
                let mut acked = 0u64;
                for b in 0..batches {
                    let base = t * 1_000_000_000 + b * per_batch;
                    let mut batch = Batch::new();
                    for oid in base..base + per_batch {
                        batch.insert(oid, pos(oid));
                    }
                    let t0 = Instant::now();
                    client
                        .apply("bench", &batch)
                        .expect("apply survives faults");
                    latencies.push(t0.elapsed().as_secs_f64() * 1e6);
                    acked += per_batch;
                }
                (latencies, acked, client.retries(), client.reconnects())
            })
        })
        .collect();
    let mut latencies = Vec::new();
    let (mut acked, mut retries, mut reconnects) = (0u64, 0u64, 0u64);
    for w in workers {
        let (lat, a, r, rc) = w.join().expect("worker");
        latencies.extend(lat);
        acked += a;
        retries += r;
        reconnects += rc;
    }
    let elapsed = started.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.total_cmp(b));

    let mut oracle = BurClient::connect(handle.addr()).expect("oracle connect");
    let served = oracle.len("bench").expect("len");
    let survival = served as f64 / acked.max(1) as f64;
    let dedup_hits = handle
        .registry()
        .get("bench")
        .expect("entry")
        .as_plain()
        .expect("plain index")
        .coalescer
        .stats()
        .dedup_hits;
    let faults = proxy.stats();
    proxy.shutdown();
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    eprintln!(
        "chaos (seed {seed}, drop {drop_rate}): {acked} acked inserts, {served} served, \
         survival {survival:.4}, {retries} retries, {reconnects} reconnects, \
         {} dedup hits, {} faults injected",
        dedup_hits,
        faults.faults()
    );
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"serve_chaos\",");
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"drop_rate\": {drop_rate},");
    let _ = writeln!(json, "  \"connections\": {CONNECTIONS},");
    let _ = writeln!(json, "  \"batches_per_connection\": {batches},");
    let _ = writeln!(json, "  \"ops_per_batch\": {per_batch},");
    let _ = writeln!(json, "  \"acked_ops\": {acked},");
    let _ = writeln!(json, "  \"served_ops\": {served},");
    let _ = writeln!(json, "  \"acked_write_survival\": {survival:.6},");
    let _ = writeln!(json, "  \"retries\": {retries},");
    let _ = writeln!(json, "  \"reconnects\": {reconnects},");
    let _ = writeln!(json, "  \"dedup_hits\": {dedup_hits},");
    let _ = writeln!(
        json,
        "  \"faults\": {{\"drops\": {}, \"truncations\": {}, \"blackholes\": {}, \"delays\": {}}},",
        faults.drops, faults.truncations, faults.blackholes, faults.delays
    );
    let _ = writeln!(json, "  \"ops_per_sec\": {:.0},", acked as f64 / elapsed);
    let _ = writeln!(
        json,
        "  \"apply_p50_us\": {:.1},",
        quantile(&latencies, 0.50)
    );
    let _ = writeln!(
        json,
        "  \"apply_p99_us\": {:.1},",
        quantile(&latencies, 0.99)
    );
    let _ = writeln!(json, "  \"targets\": {{\"acked_write_survival\": 1.0}},");
    let survived = (survival - 1.0).abs() < f64::EPSILON;
    let _ = writeln!(json, "  \"targets_met\": {survived}");
    let _ = writeln!(json, "}}");
    if let Err(e) = std::fs::write(out, &json) {
        eprintln!("servebench: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("written to {out}");
    if survived {
        ExitCode::SUCCESS
    } else {
        eprintln!("ACKED-WRITE SURVIVAL {survival:.6} != 1.0 — writes lost or double-applied");
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let mut batches = 200u64;
    let mut per_batch = 32u64;
    let mut out: Option<String> = None;
    let mut chaos = false;
    let mut shards = false;
    let mut queries = 400u64;
    let mut seed = 42u64;
    let mut drop_rate = 0.10f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--shards" => shards = true,
            "--queries" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => queries = v,
                None => return usage(),
            },
            "--batches" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => batches = v,
                None => return usage(),
            },
            "--per-batch" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => per_batch = v,
                None => return usage(),
            },
            "--out" => match args.next() {
                Some(v) => out = Some(v),
                None => return usage(),
            },
            "--chaos" => chaos = true,
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return usage(),
            },
            "--drop" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if (0.0..=1.0).contains(&v) => drop_rate = v,
                _ => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }
    if chaos {
        let out = out.unwrap_or_else(|| "BENCH_chaos.json".to_string());
        return run_chaos(seed, drop_rate, batches, per_batch, &out);
    }
    if shards {
        let out = out.unwrap_or_else(|| "BENCH_shard.json".to_string());
        return run_shard_axis(batches, per_batch, queries, &out);
    }
    let out = out.unwrap_or_else(|| "BENCH_serve.json".to_string());

    let results: Vec<RunResult> = [1usize, 4, 16]
        .into_iter()
        .map(|connections| {
            let r = run(connections, batches, per_batch);
            eprintln!(
                "{:>2} connection(s): {:9.0} ops/s, apply p50 {:7.0} µs, p99 {:7.0} µs, \
                 {:.2} batches/group-commit",
                r.connections, r.ops_per_sec, r.p50_us, r.p99_us, r.coalescing_ratio
            );
            r
        })
        .collect();

    let base_ratio = results[0].coalescing_ratio.max(1.0);
    let peak_ratio = results
        .last()
        .map(|r| r.coalescing_ratio)
        .unwrap_or(base_ratio);
    let coalesce_gain = peak_ratio / base_ratio;

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"serve_loopback\",");
    let _ = writeln!(json, "  \"batches_per_connection\": {batches},");
    let _ = writeln!(json, "  \"ops_per_batch\": {per_batch},");
    let _ = writeln!(json, "  \"runs\": [");
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"connections\": {}, \"ops_per_sec\": {:.0}, \"apply_p50_us\": {:.1}, \
             \"apply_p99_us\": {:.1}, \"coalescing_ratio\": {:.3}}}{}",
            r.connections,
            r.ops_per_sec,
            r.p50_us,
            r.p99_us,
            r.coalescing_ratio,
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"coalesce_gain_16_vs_1\": {coalesce_gain:.3},");
    let _ = writeln!(json, "  \"targets\": {{\"coalesce_gain_min\": 2.0}},");
    let _ = writeln!(json, "  \"targets_met\": {}", coalesce_gain >= 2.0);
    let _ = writeln!(json, "}}");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("servebench: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "\ncoalescing gain 16-vs-1 connections: {coalesce_gain:.2}x (target >= 2.0x)\n\
         written to {out}"
    );
    ExitCode::SUCCESS
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: servebench [--batches N] [--per-batch N] [--out FILE]\n\
         \x20      servebench --chaos [--seed S] [--drop RATE] [--batches N] [--per-batch N] [--out FILE]\n\
         \x20      servebench --shards [--batches N] [--per-batch N] [--queries N] [--out FILE]"
    );
    ExitCode::FAILURE
}
