//! `servebench` — loadtest `burd` over loopback and record the serving
//! profile as a machine-readable perf artifact.
//!
//! ```text
//! servebench [--batches N] [--per-batch N] [--out FILE]
//! ```
//!
//! Starts an in-process `burd` (temp data directory, durable GBU
//! index), then drives it at 1, 4 and 16 client connections, each
//! connection applying `--batches` insert batches of `--per-batch`
//! operations and measuring per-apply latency client-side. Writes
//! `BENCH_serve.json`: throughput (ops/s), apply p50/p99, and the
//! coalescing ratio (client batches per WAL group-commit round) for
//! each connection count. The interesting shape: the coalescing ratio
//! should *grow* with connections — more concurrent clients means more
//! batches merged per fsync, which is exactly where the server beats N
//! independent handles. The recorded target (`coalesce_gain_min: 2.0`)
//! asks the 16-connection ratio to be at least twice the 1-connection
//! ratio.

use bur_client::BurClient;
use bur_core::Batch;
use bur_geom::Point;
use bur_serve::{start, ServerConfig};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

struct RunResult {
    connections: usize,
    ops_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    coalescing_ratio: f64,
}

fn pos(oid: u64) -> Point {
    let h = oid.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    Point::new(
        (h % 1000) as f32 / 1000.0,
        ((h >> 32) % 1000) as f32 / 1000.0,
    )
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn run(connections: usize, batches: u64, per_batch: u64) -> RunResult {
    let dir = std::env::temp_dir().join(format!(
        "bur-servebench-{}-{connections}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let handle = start(ServerConfig::new(&dir)).expect("server starts");
    BurClient::connect(handle.addr())
        .expect("connect")
        .create_index("bench", "gbu", true)
        .expect("create");

    let started = Instant::now();
    let workers: Vec<_> = (0..connections as u64)
        .map(|t| {
            let addr = handle.addr();
            std::thread::spawn(move || {
                let mut client = BurClient::connect(addr).expect("connect");
                let mut latencies = Vec::with_capacity(batches as usize);
                for b in 0..batches {
                    let base = t * 1_000_000_000 + b * per_batch;
                    let mut batch = Batch::new();
                    for oid in base..base + per_batch {
                        batch.insert(oid, pos(oid));
                    }
                    let t0 = Instant::now();
                    client.apply("bench", &batch).expect("apply");
                    latencies.push(t0.elapsed().as_secs_f64() * 1e6);
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<f64> = workers
        .into_iter()
        .flat_map(|w| w.join().expect("worker"))
        .collect();
    let elapsed = started.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.total_cmp(b));

    let stats = handle
        .registry()
        .get("bench")
        .expect("entry")
        .coalescer
        .stats();
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    let total_ops = connections as u64 * batches * per_batch;
    RunResult {
        connections,
        ops_per_sec: total_ops as f64 / elapsed,
        p50_us: quantile(&latencies, 0.50),
        p99_us: quantile(&latencies, 0.99),
        coalescing_ratio: stats.ratio(),
    }
}

fn main() -> ExitCode {
    let mut batches = 200u64;
    let mut per_batch = 32u64;
    let mut out = String::from("BENCH_serve.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--batches" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => batches = v,
                None => return usage(),
            },
            "--per-batch" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => per_batch = v,
                None => return usage(),
            },
            "--out" => match args.next() {
                Some(v) => out = v,
                None => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    let results: Vec<RunResult> = [1usize, 4, 16]
        .into_iter()
        .map(|connections| {
            let r = run(connections, batches, per_batch);
            eprintln!(
                "{:>2} connection(s): {:9.0} ops/s, apply p50 {:7.0} µs, p99 {:7.0} µs, \
                 {:.2} batches/group-commit",
                r.connections, r.ops_per_sec, r.p50_us, r.p99_us, r.coalescing_ratio
            );
            r
        })
        .collect();

    let base_ratio = results[0].coalescing_ratio.max(1.0);
    let peak_ratio = results
        .last()
        .map(|r| r.coalescing_ratio)
        .unwrap_or(base_ratio);
    let coalesce_gain = peak_ratio / base_ratio;

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"serve_loopback\",");
    let _ = writeln!(json, "  \"batches_per_connection\": {batches},");
    let _ = writeln!(json, "  \"ops_per_batch\": {per_batch},");
    let _ = writeln!(json, "  \"runs\": [");
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"connections\": {}, \"ops_per_sec\": {:.0}, \"apply_p50_us\": {:.1}, \
             \"apply_p99_us\": {:.1}, \"coalescing_ratio\": {:.3}}}{}",
            r.connections,
            r.ops_per_sec,
            r.p50_us,
            r.p99_us,
            r.coalescing_ratio,
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"coalesce_gain_16_vs_1\": {coalesce_gain:.3},");
    let _ = writeln!(json, "  \"targets\": {{\"coalesce_gain_min\": 2.0}},");
    let _ = writeln!(json, "  \"targets_met\": {}", coalesce_gain >= 2.0);
    let _ = writeln!(json, "}}");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("servebench: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "\ncoalescing gain 16-vs-1 connections: {coalesce_gain:.2}x (target >= 2.0x)\n\
         written to {out}"
    );
    ExitCode::SUCCESS
}

fn usage() -> ExitCode {
    eprintln!("usage: servebench [--batches N] [--per-batch N] [--out FILE]");
    ExitCode::FAILURE
}
