//! `walbench` — measure what durability costs per update and record it
//! as a machine-readable perf artifact.
//!
//! ```text
//! walbench [--objects N] [--updates N] [--out FILE]
//! ```
//!
//! Runs the in-place update workload (seeded GBU, in-memory disk — the
//! `wal_overhead` criterion bench's setup) against a matrix of durability
//! configurations and writes `BENCH_wal.json` (dependency-free JSON):
//! per-update wall time, logged bytes per update, and the headline
//! ratios — durable-vs-volatile latency and full-image-vs-delta log
//! volume. CI uploads the file as an artifact so future PRs have a perf
//! trajectory to regress against; the targets recorded inside
//! (`latency_ratio_max: 2.0`, `log_reduction_min: 3.0`) are evaluated
//! against the `wal-delta-batch` configuration (deltas + batched
//! synchronous group commit — the durable fast path for a single update
//! stream). Two async rows record the single-writer async-commit gap:
//! `wal-delta-async-batch` with the sync-request debounce off
//! (`async_coalesce: 1`, the pre-debounce behavior — one condvar signal
//! and usually a tail-page write per commit record) and
//! `wal-delta-async-coalesce` with the default debounce + ~2 ms
//! coalescing window.

use bur_core::{DeltaPolicy, Durability, IndexOptions, RTreeIndex, WalOptions};
use bur_storage::SyncPolicy;
use bur_workload::{Workload, WorkloadConfig};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

struct ConfigResult {
    name: &'static str,
    ns_per_update: f64,
    log_bytes_per_update: f64,
    deltas: u64,
    images: u64,
    syncs: u64,
}

fn measure(
    name: &'static str,
    durability: Durability,
    objects: usize,
    updates: usize,
) -> ConfigResult {
    let opts = IndexOptions::generalized().with_durability(durability);
    // Short movements — the workload regime the paper's bottom-up
    // techniques target, where GBU serves almost every update in place
    // (one leaf page touched per operation).
    let wl = Workload::generate(WorkloadConfig {
        num_objects: objects,
        max_distance: 0.004,
        ..WorkloadConfig::default()
    });
    let mut index = RTreeIndex::bulk_load_in_memory(opts, &wl.items()).expect("bulk load");
    let mut wl = wl;
    // Warm the pool and the log's delta tracks.
    for _ in 0..updates / 4 {
        let op = wl.next_update();
        index.update(op.oid, op.old, op.new).expect("warmup update");
    }
    let before = index.wal_stats();
    let start = Instant::now();
    for _ in 0..updates {
        let op = wl.next_update();
        index.update(op.oid, op.old, op.new).expect("update");
    }
    index.flush_commits().expect("flush");
    index.wait_durable().expect("wait durable");
    let elapsed = start.elapsed();
    let (bytes, deltas, images, syncs) = match (before, index.wal_stats()) {
        (Some(b), Some(a)) => (
            a.bytes_appended - b.bytes_appended,
            a.deltas - b.deltas,
            a.images - b.images,
            a.syncs - b.syncs,
        ),
        _ => (0, 0, 0, 0),
    };
    ConfigResult {
        name,
        ns_per_update: elapsed.as_nanos() as f64 / updates as f64,
        log_bytes_per_update: bytes as f64 / updates as f64,
        deltas,
        images,
        syncs,
    }
}

fn main() -> ExitCode {
    let mut objects = 20_000usize;
    let mut updates = 30_000usize;
    let mut out = String::from("BENCH_wal.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--objects" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => objects = v,
                None => return usage(),
            },
            "--updates" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => updates = v,
                None => return usage(),
            },
            "--out" => match args.next() {
                Some(v) => out = v,
                None => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    // All durable configurations share the checkpoint cadence (4096 ops
    // per generation bounds recovery replay) so the before/after numbers
    // isolate the logging protocol, not the checkpoint frequency.
    const CKPT: u64 = 4096;
    let configs = [
        ("off", Durability::None),
        (
            "wal-full-images",
            Durability::Wal(WalOptions {
                sync: SyncPolicy::GroupCommit(64),
                checkpoint_every: CKPT,
                delta: DeltaPolicy::full_images(),
                batch_ops: 1,
                ..WalOptions::default()
            }),
        ),
        (
            "wal-delta",
            Durability::Wal(WalOptions {
                sync: SyncPolicy::GroupCommit(64),
                checkpoint_every: CKPT,
                ..WalOptions::default()
            }),
        ),
        (
            // GroupCommit counts commit *records*; with 8-op batches,
            // 8 records ≈ the same 64-op sync cadence as `wal-delta`.
            "wal-delta-batch",
            Durability::Wal(WalOptions {
                sync: SyncPolicy::GroupCommit(8),
                checkpoint_every: CKPT,
                batch_ops: 8,
                ..WalOptions::default()
            }),
        ),
        (
            // Async *without* the sync-request debounce (async_coalesce
            // 1 reproduces the pre-debounce behavior: one sync request —
            // condvar signal + tail write — per commit record). This is
            // the "before" row of the single-writer async-commit gap.
            "wal-delta-async-batch",
            Durability::Wal(WalOptions {
                sync: SyncPolicy::Async,
                checkpoint_every: CKPT,
                batch_ops: 8,
                async_coalesce: 1,
                ..WalOptions::default()
            }),
        ),
        (
            // Async with the default sync-request debounce + coalescing
            // window: single-threaded streams stop paying a condvar +
            // tail-write round per commit (the "after" row).
            "wal-delta-async-coalesce",
            Durability::Wal(WalOptions {
                sync: SyncPolicy::Async,
                checkpoint_every: CKPT,
                batch_ops: 8,
                ..WalOptions::default()
            }),
        ),
    ];
    let results: Vec<ConfigResult> = configs
        .into_iter()
        .map(|(name, d)| {
            let r = measure(name, d, objects, updates);
            eprintln!(
                "{:>22}: {:8.0} ns/update, {:7.1} log B/update ({} images, {} deltas, {} syncs)",
                r.name, r.ns_per_update, r.log_bytes_per_update, r.images, r.deltas, r.syncs
            );
            r
        })
        .collect();

    // Headline numbers: the full durable fast path (deltas + commit
    // batching) against the volatile baseline, and against the pre-delta
    // full-image protocol for log volume.
    let volatile = results[0].ns_per_update;
    let full_bytes = results[1].log_bytes_per_update;
    let fast = &results[3];
    let latency_ratio = fast.ns_per_update / volatile;
    let log_reduction = if fast.log_bytes_per_update > 0.0 {
        full_bytes / fast.log_bytes_per_update
    } else {
        f64::INFINITY
    };

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"wal_overhead\",");
    let _ = writeln!(json, "  \"objects\": {objects},");
    let _ = writeln!(json, "  \"updates_measured\": {updates},");
    let _ = writeln!(json, "  \"configs\": [");
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"ns_per_update\": {:.1}, \"log_bytes_per_update\": {:.1}, \
             \"images\": {}, \"deltas\": {}, \"syncs\": {}}}{}",
            r.name,
            r.ns_per_update,
            r.log_bytes_per_update,
            r.images,
            r.deltas,
            r.syncs,
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"durable_vs_volatile_latency_ratio\": {latency_ratio:.3},"
    );
    let _ = writeln!(
        json,
        "  \"log_bytes_reduction_full_vs_delta\": {log_reduction:.3},"
    );
    let _ = writeln!(
        json,
        "  \"targets\": {{\"latency_ratio_max\": 2.0, \"log_reduction_min\": 3.0}},"
    );
    let _ = writeln!(
        json,
        "  \"targets_met\": {}",
        latency_ratio <= 2.0 && log_reduction >= 3.0
    );
    let _ = writeln!(json, "}}");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("walbench: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "\ndurable/volatile latency ratio: {latency_ratio:.2}x (target <= 2.0x)\n\
         log bytes full/delta reduction: {log_reduction:.2}x (target >= 3.0x)\n\
         written to {out}"
    );
    ExitCode::SUCCESS
}

fn usage() -> ExitCode {
    eprintln!("usage: walbench [--objects N] [--updates N] [--out FILE]");
    ExitCode::FAILURE
}
