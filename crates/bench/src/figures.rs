//! Per-figure experiment sweeps. Each function reproduces one figure (or
//! table) of the paper and returns the result tables; the `repro` binary
//! prints them and saves CSVs.

use crate::report::{fnum, Table};
use crate::runner::{run_experiment, ExperimentConfig, Measurement};
use crate::scale::Scale;
use crate::throughput;
use bur_core::{GbuParams, IndexOptions, LbuParams, UpdateStrategy};
use bur_workload::{DataDistribution, WorkloadConfig};

/// Paper defaults for the strategy parameters (Section 5.1).
pub const DEFAULT_EPSILON: f32 = 0.003;
/// Paper default distance threshold τ (Section 5.1.2).
pub const DEFAULT_TAU: f32 = 0.03;

fn base_workload(scale: Scale) -> WorkloadConfig {
    WorkloadConfig {
        num_objects: scale.objects(),
        distribution: DataDistribution::Uniform,
        max_distance: scale.max_distance(),
        movement: bur_workload::MovementModel::RandomWalk,
        query_max_side: 0.1,
        seed: 0xB0_77_03,
        clamp: false,
    }
}

/// TD options.
fn td() -> IndexOptions {
    IndexOptions::top_down()
}

/// LBU with a given ε.
fn lbu(epsilon: f32) -> IndexOptions {
    IndexOptions {
        strategy: UpdateStrategy::Localized(LbuParams {
            epsilon,
            ..LbuParams::default()
        }),
        ..IndexOptions::default()
    }
}

/// GBU with given ε, τ and level threshold.
fn gbu(epsilon: f32, tau: f32, level: Option<u16>) -> IndexOptions {
    IndexOptions {
        strategy: UpdateStrategy::Generalized(GbuParams {
            epsilon,
            distance_threshold: tau,
            level_threshold: level,
            piggyback: true,
            summary_queries: true,
        }),
        ..IndexOptions::default()
    }
}

fn cell(
    scale: Scale,
    index: IndexOptions,
    workload: WorkloadConfig,
    buffer_pct: f64,
) -> Measurement {
    cell_with(scale, index, workload, buffer_pct, scale.updates())
}

fn cell_with(
    scale: Scale,
    index: IndexOptions,
    workload: WorkloadConfig,
    buffer_pct: f64,
    updates: usize,
) -> Measurement {
    let cfg = ExperimentConfig {
        index,
        workload,
        updates,
        queries: scale.queries(),
        buffer_pct,
        build: crate::runner::BuildMethod::Insert,
    };
    let m = run_experiment(&cfg);
    eprintln!(
        "  [{} N={} U={}] upd_io={:.2} qry_io={:.1} (h={}, pages={})",
        index.strategy.name(),
        workload.num_objects,
        updates,
        m.update_io,
        m.query_io,
        m.height,
        m.data_pages
    );
    m
}

/// Figure 5(a)–(d): effect of ε on update and query cost for TD, LBU,
/// GBU. TD does not depend on ε and is measured once.
pub fn fig5_epsilon(scale: Scale) -> Vec<Table> {
    let epsilons = [0.0f32, 0.003, 0.007, 0.015, 0.03];
    let wl = base_workload(scale);
    eprintln!("fig5-epsilon: measuring TD baseline");
    let td_m = cell(scale, td(), wl, 1.0);
    let mut upd_io = Table::new(
        "Figure 5(a): varying epsilon — avg disk I/O, update",
        &["epsilon", "TD", "LBU", "GBU"],
    );
    let mut qry_io = Table::new(
        "Figure 5(b): varying epsilon — avg disk I/O, querying",
        &["epsilon", "TD", "LBU", "GBU"],
    );
    let mut upd_cpu = Table::new(
        "Figure 5(c): varying epsilon — total CPU time (s), update",
        &["epsilon", "TD", "LBU", "GBU"],
    );
    let mut qry_cpu = Table::new(
        "Figure 5(d): varying epsilon — total CPU time (s), querying",
        &["epsilon", "TD", "LBU", "GBU"],
    );
    for &eps in &epsilons {
        eprintln!("fig5-epsilon: eps={eps}");
        let l = cell(scale, lbu(eps), wl, 1.0);
        let g = cell(scale, gbu(eps, DEFAULT_TAU, None), wl, 1.0);
        upd_io.row(vec![
            fnum(eps as f64),
            fnum(td_m.update_io),
            fnum(l.update_io),
            fnum(g.update_io),
        ]);
        qry_io.row(vec![
            fnum(eps as f64),
            fnum(td_m.query_io),
            fnum(l.query_io),
            fnum(g.query_io),
        ]);
        upd_cpu.row(vec![
            fnum(eps as f64),
            fnum(td_m.update_secs),
            fnum(l.update_secs),
            fnum(g.update_secs),
        ]);
        qry_cpu.row(vec![
            fnum(eps as f64),
            fnum(td_m.query_secs),
            fnum(l.query_secs),
            fnum(g.query_secs),
        ]);
    }
    vec![upd_io, qry_io, upd_cpu, qry_cpu]
}

/// Figure 5(e)–(f): effect of the distance threshold τ (GBU only; TD and
/// LBU are constants).
pub fn fig5_tau(scale: Scale) -> Vec<Table> {
    let taus = [0.0f32, 0.03, 0.3, 3.0];
    let wl = base_workload(scale);
    eprintln!("fig5-tau: measuring TD/LBU baselines");
    let td_m = cell(scale, td(), wl, 1.0);
    let lbu_m = cell(scale, lbu(DEFAULT_EPSILON), wl, 1.0);
    let mut upd = Table::new(
        "Figure 5(e): varying distance threshold — avg disk I/O, update",
        &["tau", "TD", "LBU", "GBU"],
    );
    let mut qry = Table::new(
        "Figure 5(f): varying distance threshold — avg disk I/O, querying",
        &["tau", "TD", "LBU", "GBU"],
    );
    for &tau in &taus {
        eprintln!("fig5-tau: tau={tau}");
        let g = cell(scale, gbu(DEFAULT_EPSILON, tau, None), wl, 1.0);
        upd.row(vec![
            fnum(tau as f64),
            fnum(td_m.update_io),
            fnum(lbu_m.update_io),
            fnum(g.update_io),
        ]);
        qry.row(vec![
            fnum(tau as f64),
            fnum(td_m.query_io),
            fnum(lbu_m.query_io),
            fnum(g.query_io),
        ]);
    }
    vec![upd, qry]
}

/// Figure 5(g)–(h): effect of the maximum distance moved between
/// updates.
pub fn fig5_maxdist(scale: Scale) -> Vec<Table> {
    let dists = [0.003f32, 0.015, 0.03, 0.06, 0.1, 0.15];
    let mut upd = Table::new(
        "Figure 5(g): varying maximum distance — avg disk I/O, update",
        &["max_dist", "TD", "LBU", "GBU"],
    );
    let mut qry = Table::new(
        "Figure 5(h): varying maximum distance — avg disk I/O, querying",
        &["max_dist", "TD", "LBU", "GBU"],
    );
    for &d in &dists {
        eprintln!("fig5-maxdist: d={d}");
        let wl = WorkloadConfig {
            max_distance: d,
            ..base_workload(scale)
        };
        let t = cell(scale, td(), wl, 1.0);
        let l = cell(scale, lbu(DEFAULT_EPSILON), wl, 1.0);
        let g = cell(scale, gbu(DEFAULT_EPSILON, DEFAULT_TAU, None), wl, 1.0);
        upd.row(vec![
            fnum(d as f64),
            fnum(t.update_io),
            fnum(l.update_io),
            fnum(g.update_io),
        ]);
        qry.row(vec![
            fnum(d as f64),
            fnum(t.query_io),
            fnum(l.query_io),
            fnum(g.query_io),
        ]);
    }
    vec![upd, qry]
}

/// Figure 6(a)–(b): effect of the level threshold L (GBU-0 … GBU-3)
/// across the maximum-distance sweep.
pub fn fig6_level(scale: Scale) -> Vec<Table> {
    let dists = [0.003f32, 0.03, 0.06, 0.1, 0.15];
    let headers = ["max_dist", "TD", "LBU", "GBU-0", "GBU-1", "GBU-2", "GBU-3"];
    let mut upd = Table::new(
        "Figure 6(a): ascending the R-tree — avg disk I/O, update",
        &headers,
    );
    let mut qry = Table::new(
        "Figure 6(b): ascending the R-tree — avg disk I/O, querying",
        &headers,
    );
    for &d in &dists {
        eprintln!("fig6-level: d={d}");
        let wl = WorkloadConfig {
            max_distance: d,
            ..base_workload(scale)
        };
        let t = cell(scale, td(), wl, 1.0);
        let l = cell(scale, lbu(DEFAULT_EPSILON), wl, 1.0);
        let mut upd_row = vec![fnum(d as f64), fnum(t.update_io), fnum(l.update_io)];
        let mut qry_row = vec![fnum(d as f64), fnum(t.query_io), fnum(l.query_io)];
        for level in 0..=3u16 {
            let g = cell(
                scale,
                gbu(DEFAULT_EPSILON, DEFAULT_TAU, Some(level)),
                wl,
                1.0,
            );
            upd_row.push(fnum(g.update_io));
            qry_row.push(fnum(g.query_io));
        }
        upd.row(upd_row);
        qry.row(qry_row);
    }
    vec![upd, qry]
}

/// Figure 6(c)–(d): effect of the initial data distribution.
pub fn fig6_dist(scale: Scale) -> Vec<Table> {
    let dists = [
        DataDistribution::Uniform,
        DataDistribution::Gaussian,
        DataDistribution::Skewed,
    ];
    let mut upd = Table::new(
        "Figure 6(c): varying data distributions — avg disk I/O, update",
        &["distribution", "TD", "LBU", "GBU"],
    );
    let mut qry = Table::new(
        "Figure 6(d): varying data distributions — avg disk I/O, querying",
        &["distribution", "TD", "LBU", "GBU"],
    );
    for &d in &dists {
        eprintln!("fig6-dist: {}", d.name());
        let wl = WorkloadConfig {
            distribution: d,
            ..base_workload(scale)
        };
        let t = cell(scale, td(), wl, 1.0);
        let l = cell(scale, lbu(DEFAULT_EPSILON), wl, 1.0);
        let g = cell(scale, gbu(DEFAULT_EPSILON, DEFAULT_TAU, None), wl, 1.0);
        upd.row(vec![
            d.name().to_string(),
            fnum(t.update_io),
            fnum(l.update_io),
            fnum(g.update_io),
        ]);
        qry.row(vec![
            d.name().to_string(),
            fnum(t.query_io),
            fnum(l.query_io),
            fnum(g.query_io),
        ]);
    }
    vec![upd, qry]
}

/// Figure 6(e)–(f): effect of the number of updates (multiples of the
/// base update count).
pub fn fig6_updates(scale: Scale) -> Vec<Table> {
    let multiples = [1usize, 2, 3, 5, 7, 10];
    let wl = base_workload(scale);
    let mut upd = Table::new(
        "Figure 6(e): varying amounts of updates — avg disk I/O, update",
        &["updates", "TD", "LBU", "GBU"],
    );
    let mut qry = Table::new(
        "Figure 6(f): varying amounts of updates — avg disk I/O, querying",
        &["updates", "TD", "LBU", "GBU"],
    );
    for &mult in &multiples {
        let updates = scale.updates() * mult;
        eprintln!("fig6-updates: U={updates}");
        let t = cell_with(scale, td(), wl, 1.0, updates);
        let l = cell_with(scale, lbu(DEFAULT_EPSILON), wl, 1.0, updates);
        let g = cell_with(
            scale,
            gbu(DEFAULT_EPSILON, DEFAULT_TAU, None),
            wl,
            1.0,
            updates,
        );
        upd.row(vec![
            updates.to_string(),
            fnum(t.update_io),
            fnum(l.update_io),
            fnum(g.update_io),
        ]);
        qry.row(vec![
            updates.to_string(),
            fnum(t.query_io),
            fnum(l.query_io),
            fnum(g.query_io),
        ]);
    }
    vec![upd, qry]
}

/// Figure 6(g)–(h): effect of the buffer size (percent of database
/// pages).
pub fn fig6_buffer(scale: Scale) -> Vec<Table> {
    let pcts = [0.0f64, 1.0, 3.0, 5.0, 10.0];
    let wl = base_workload(scale);
    let mut upd = Table::new(
        "Figure 6(g): varying buffer size — avg disk I/O, update",
        &["buffer_pct", "TD", "LBU", "GBU"],
    );
    let mut qry = Table::new(
        "Figure 6(h): varying buffer size — avg disk I/O, querying",
        &["buffer_pct", "TD", "LBU", "GBU"],
    );
    for &pct in &pcts {
        eprintln!("fig6-buffer: {pct}%");
        let t = cell(scale, td(), wl, pct);
        let l = cell(scale, lbu(DEFAULT_EPSILON), wl, pct);
        let g = cell(scale, gbu(DEFAULT_EPSILON, DEFAULT_TAU, None), wl, pct);
        upd.row(vec![
            fnum(pct),
            fnum(t.update_io),
            fnum(l.update_io),
            fnum(g.update_io),
        ]);
        qry.row(vec![
            fnum(pct),
            fnum(t.query_io),
            fnum(l.query_io),
            fnum(g.query_io),
        ]);
    }
    vec![upd, qry]
}

/// Figure 7: scalability — database size multiples (density grows, the
/// space is not expanded).
pub fn fig7_scale(scale: Scale) -> Vec<Table> {
    let multiples = [1usize, 2, 5, 10];
    let mut upd = Table::new(
        "Figure 7(a): scalability — avg disk I/O, update",
        &["objects", "TD", "LBU", "GBU"],
    );
    let mut qry = Table::new(
        "Figure 7(b): scalability — avg disk I/O, querying",
        &["objects", "TD", "LBU", "GBU"],
    );
    for &mult in &multiples {
        let objects = scale.objects() * mult;
        eprintln!("fig7-scale: N={objects}");
        let wl = WorkloadConfig {
            num_objects: objects,
            ..base_workload(scale)
        };
        let t = cell(scale, td(), wl, 1.0);
        let l = cell(scale, lbu(DEFAULT_EPSILON), wl, 1.0);
        let g = cell(scale, gbu(DEFAULT_EPSILON, DEFAULT_TAU, None), wl, 1.0);
        upd.row(vec![
            objects.to_string(),
            fnum(t.update_io),
            fnum(l.update_io),
            fnum(g.update_io),
        ]);
        qry.row(vec![
            objects.to_string(),
            fnum(t.query_io),
            fnum(l.query_io),
            fnum(g.query_io),
        ]);
    }
    vec![upd, qry]
}

/// Figure 8: throughput under DGL with a varying update/query mix.
pub fn fig8_throughput(scale: Scale) -> Vec<Table> {
    throughput::fig8(scale)
}

/// Table 1: the parameter space (echoed for the record).
pub fn params_table() -> Vec<Table> {
    let mut t = Table::new(
        "Table 1: parameters and their values (* = default)",
        &["parameter", "values"],
    );
    for (k, v) in bur_workload::paper_parameter_table() {
        t.row(vec![k.to_string(), v.to_string()]);
    }
    vec![t]
}

/// Section 3.2 size claims: measure the summary structure's footprint
/// against the R-tree it summarizes, and recompute the paper's 4 KiB
/// geometry analytically.
pub fn summary_size(scale: Scale) -> Vec<Table> {
    let wl = base_workload(scale);
    let items = bur_workload::Workload::generate(wl).items();
    let index =
        bur_core::RTreeIndex::bulk_load_in_memory(gbu(DEFAULT_EPSILON, DEFAULT_TAU, None), &items)
            .expect("bulk load");
    let summary = index.summary().expect("GBU summary");
    let tree_pages = index.tree_pages().expect("pages");
    let internal = summary.internal_count() as u64;
    let table_bytes = summary.table_size_bytes() as u64;
    let bitvec_bytes = summary.bitvec_size_bytes() as u64;
    let tree_bytes = tree_pages * index.options().page_size as u64;
    let entry_ratio =
        table_bytes as f64 / internal.max(1) as f64 / index.options().page_size as f64;
    let node_ratio = internal as f64 / tree_pages as f64;
    let space_ratio = table_bytes as f64 / tree_bytes as f64;

    let mut t = Table::new(
        "Section 3.2: summary structure size (measured at this build)",
        &["quantity", "measured", "paper (4KiB pages, fanout 204)"],
    );
    // Paper's analytic geometry: entry = 20.4 % of node, internal/node =
    // 0.75 %, table/tree = 0.16 %.
    t.row(vec![
        "avg table entry / node size".into(),
        format!("{:.1}%", entry_ratio * 100.0),
        "20.4%".into(),
    ]);
    t.row(vec![
        "internal nodes / all nodes".into(),
        format!("{:.2}%", node_ratio * 100.0),
        "0.75%".into(),
    ]);
    t.row(vec![
        "table bytes / tree bytes".into(),
        format!("{:.3}%", space_ratio * 100.0),
        "0.16%".into(),
    ]);
    t.row(vec![
        "bit vector bytes".into(),
        bitvec_bytes.to_string(),
        "-".into(),
    ]);
    t.row(vec![
        "tree pages".into(),
        tree_pages.to_string(),
        "-".into(),
    ]);
    vec![t]
}

/// Section 4: analytic cost model vs measurement.
pub fn cost_model(scale: Scale) -> Vec<Table> {
    use bur_core::cost_model as cm;
    let dists = [0.003f32, 0.015, 0.03, 0.06, 0.1];
    let mut t = Table::new(
        "Section 4: analytic costs vs measured I/O (buffer 0%)",
        &[
            "max_dist",
            "analytic BU",
            "measured GBU",
            "TD best case",
            "measured TD",
        ],
    );
    for &d in &dists {
        eprintln!("cost-model: d={d}");
        let wl = WorkloadConfig {
            max_distance: d,
            ..base_workload(scale)
        };
        let g = cell(scale, gbu(DEFAULT_EPSILON, DEFAULT_TAU, None), wl, 0.0);
        let td_m = cell(scale, td(), wl, 0.0);
        // Average leaf side: objects uniform in the unit square packed
        // ~27/leaf → leaf area ≈ 27/N, side ≈ sqrt of that.
        let s = (27.0f64 / wl.num_objects as f64).sqrt();
        // Expected travel distance is half the maximum (uniform draw).
        let analytic = cm::bottom_up_update_cost(d as f64 / 2.0, (s, s), DEFAULT_EPSILON as f64);
        let td_best = cm::top_down_best_case(g.height);
        t.row(vec![
            fnum(d as f64),
            fnum(analytic),
            fnum(g.update_io),
            fnum(td_best),
            fnum(td_m.update_io),
        ]);
    }
    vec![t]
}

/// Extension (paper future work, §6): the update strategies on the
/// R*-tree variant. Guttman vs R* builds, TD vs GBU updates on each.
pub fn ext_rstar(scale: Scale) -> Vec<Table> {
    let wl = base_workload(scale);
    let mut upd = Table::new(
        "Extension: R*-tree variant — avg disk I/O, update",
        &["tree", "TD", "GBU"],
    );
    let mut qry = Table::new(
        "Extension: R*-tree variant — avg disk I/O, querying",
        &["tree", "TD", "GBU"],
    );
    for (name, rstar) in [("guttman", false), ("rstar", true)] {
        eprintln!("ext-rstar: {name}");
        let mk = |o: IndexOptions| if rstar { o.rstar() } else { o };
        let t = cell(scale, mk(td()), wl, 1.0);
        let g = cell(scale, mk(gbu(DEFAULT_EPSILON, DEFAULT_TAU, None)), wl, 1.0);
        upd.row(vec![name.to_string(), fnum(t.update_io), fnum(g.update_io)]);
        qry.row(vec![name.to_string(), fnum(t.query_io), fnum(g.query_io)]);
    }
    vec![upd, qry]
}

/// Extension (§5.1.4's "persistent movement according to a trend"):
/// random-walk vs trend movement at the same speed. Trend movement keeps
/// crossing leaf boundaries in one direction, stressing extension/shift/
/// ascent harder than diffusion does.
pub fn ext_trend(scale: Scale) -> Vec<Table> {
    use bur_workload::MovementModel;
    let mut upd = Table::new(
        "Extension: movement model — avg disk I/O, update",
        &["movement", "TD", "LBU", "GBU"],
    );
    let mut qry = Table::new(
        "Extension: movement model — avg disk I/O, querying",
        &["movement", "TD", "LBU", "GBU"],
    );
    for (name, movement) in [
        ("random-walk", MovementModel::RandomWalk),
        ("trend", MovementModel::Trend { jitter: 0.3 }),
    ] {
        eprintln!("ext-trend: {name}");
        let wl = WorkloadConfig {
            movement,
            ..base_workload(scale)
        };
        let t = cell(scale, td(), wl, 1.0);
        let l = cell(scale, lbu(DEFAULT_EPSILON), wl, 1.0);
        let g = cell(scale, gbu(DEFAULT_EPSILON, DEFAULT_TAU, None), wl, 1.0);
        upd.row(vec![
            name.to_string(),
            fnum(t.update_io),
            fnum(l.update_io),
            fnum(g.update_io),
        ]);
        qry.row(vec![
            name.to_string(),
            fnum(t.query_io),
            fnum(l.query_io),
            fnum(g.query_io),
        ]);
    }
    vec![upd, qry]
}

/// Run every experiment at the given scale.
pub fn all(scale: Scale) -> Vec<(String, Vec<Table>)> {
    EXPERIMENTS
        .iter()
        .map(|name| {
            (
                (*name).to_string(),
                by_name(name, scale).expect("EXPERIMENTS entries resolve"),
            )
        })
        .collect()
}

/// Look up one experiment by CLI name.
pub fn by_name(name: &str, scale: Scale) -> Option<Vec<Table>> {
    Some(match name {
        "fig5-epsilon" => fig5_epsilon(scale),
        "fig5-tau" => fig5_tau(scale),
        "fig5-maxdist" => fig5_maxdist(scale),
        "fig6-level" => fig6_level(scale),
        "fig6-dist" => fig6_dist(scale),
        "fig6-updates" => fig6_updates(scale),
        "fig6-buffer" => fig6_buffer(scale),
        "fig7-scale" => fig7_scale(scale),
        "fig8-throughput" => fig8_throughput(scale),
        "params" => params_table(),
        "summary-size" => summary_size(scale),
        "cost-model" => cost_model(scale),
        "ext-rstar" => ext_rstar(scale),
        "ext-trend" => ext_trend(scale),
        _ => return None,
    })
}

/// All experiment names (CLI help + `all`).
pub const EXPERIMENTS: &[&str] = &[
    "params",
    "fig5-epsilon",
    "fig5-tau",
    "fig5-maxdist",
    "fig6-level",
    "fig6-dist",
    "fig6-updates",
    "fig6-buffer",
    "fig7-scale",
    "fig8-throughput",
    "summary-size",
    "cost-model",
    "ext-rstar",
    "ext-trend",
];
