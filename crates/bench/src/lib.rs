//! Experiment harness reproducing the paper's evaluation (Section 5).
//!
//! Every table and figure has a sweep function in [`figures`]; the
//! `repro` binary drives them and prints the same series the paper plots
//! (average disk I/O per update / per query, total CPU time, throughput).
//! Results are also written as CSV for EXPERIMENTS.md.
//!
//! The harness is deliberately scale-aware: `--scale paper` runs the
//! original 1M-object / 1M-update / 1M-query configuration; the default
//! scale keeps the same tree geometry (5 levels at 1 KiB pages) at
//! laptop-friendly sizes, and `smoke` exists so the whole sweep can run
//! in CI and in integration tests.

#![warn(missing_docs)]

pub mod figures;
pub mod parallel;
pub mod report;
pub mod runner;
pub mod scale;
pub mod throughput;

pub use report::Table;
pub use runner::{run_experiment, BuildMethod, ExperimentConfig, Measurement};
pub use scale::Scale;
