//! Shared harness for the concurrent-writer scaling measurements: `N`
//! writer threads, each owning a private spatial strip of the unit
//! square, pushing pure bottom-up update batches through one clonable
//! [`Bur`] handle. Because every thread's objects live on leaves no
//! other thread touches, the batches take disjoint leaf granules and
//! ride the handle's concurrent (shared-phase) write path end to end —
//! the workload behind `BENCH_concurrency.json` and the
//! `parallel-writers` criterion group.

use bur_core::{Batch, Bur, IndexOptions, RTreeIndex};
use bur_geom::Point;

/// One writer's private object set and its zigzag phase. Batches move
/// every owned object by a tiny alternating x-offset, so each update is
/// leaf-local (almost always in place) and the object returns to its
/// home position every second batch.
pub struct Lane {
    oids: Vec<u64>,
    home: Vec<Point>,
    dx: f32,
    round: usize,
}

impl Lane {
    /// The next whole-lane update batch (one op per owned object).
    pub fn next_batch(&mut self) -> Batch {
        let (from, to) = if self.round % 2 == 0 {
            (0.0, self.dx)
        } else {
            (self.dx, 0.0)
        };
        self.round += 1;
        let mut batch = Batch::new();
        for (&oid, &p) in self.oids.iter().zip(&self.home) {
            batch.update(oid, Point::new(p.x + from, p.y), Point::new(p.x + to, p.y));
        }
        batch
    }

    /// Operations per batch.
    #[must_use]
    pub fn ops(&self) -> usize {
        self.oids.len()
    }
}

/// Build an index whose objects are dealt into `threads` disjoint
/// spatial strips of `per_thread` objects each, plus one [`Lane`] per
/// strip. Strategy and durability come from `opts`; the disk is the
/// builder's in-memory default.
pub fn build_strips(opts: IndexOptions, threads: usize, per_thread: usize) -> (Bur, Vec<Lane>) {
    let width = 1.0 / threads as f32;
    let cols = 64usize;
    let rows = per_thread.div_ceil(cols);
    let mut items: Vec<(u64, Point)> = Vec::with_capacity(threads * per_thread);
    let mut lanes: Vec<Lane> = Vec::with_capacity(threads);
    for t in 0..threads {
        let x0 = t as f32 * width;
        let mut oids = Vec::with_capacity(per_thread);
        let mut home = Vec::with_capacity(per_thread);
        for i in 0..per_thread {
            let oid = (t * per_thread + i) as u64;
            let p = Point::new(
                x0 + width * (0.05 + 0.88 * (i % cols) as f32 / cols as f32),
                0.02 + 0.96 * (i / cols) as f32 / rows as f32,
            );
            oids.push(oid);
            home.push(p);
            items.push((oid, p));
        }
        lanes.push(Lane {
            oids,
            home,
            // A hair of a leaf MBR: the move stays in place.
            dx: width * 0.002,
            round: 0,
        });
    }
    let index = RTreeIndex::bulk_load_in_memory(opts, &items).expect("bulk load");
    (Bur::from_index(index), lanes)
}

/// Drive every lane for `batches` whole-lane batches on its own thread
/// and return the elapsed wall-clock seconds.
pub fn run_lanes(bur: &Bur, lanes: &mut [Lane], batches: usize) -> f64 {
    let start = std::time::Instant::now();
    std::thread::scope(|s| {
        for lane in lanes.iter_mut() {
            s.spawn(move || {
                for _ in 0..batches {
                    bur.apply(&lane.next_batch()).expect("apply");
                }
            });
        }
    });
    start.elapsed().as_secs_f64()
}
