//! Shared harness for the concurrent-writer scaling measurements: `N`
//! writer threads, each owning a private spatial strip of the unit
//! square, pushing batches through one clonable [`Bur`] handle. Because
//! every thread's objects live on leaves no other thread touches, the
//! batches take disjoint leaf granules and ride the handle's concurrent
//! (shared-phase) write path end to end — the workloads behind
//! `BENCH_concurrency.json` and the `parallel-writers` criterion group.
//!
//! Two lane flavors:
//! - [`Lane`] — pure bottom-up *updates* (zigzag moves, no structure
//!   change), the original scaling workload;
//! - [`StructuralLane`] — insert/delete churn that grows and shrinks
//!   leaves, the workload that used to escalate every batch to the
//!   exclusive path and now rides latch-coupled group plans with
//!   make-room splits.

use bur_core::{Batch, Bur, IndexOptions, RTreeIndex};
use bur_geom::Point;

/// One writer's private object set and its zigzag phase. Batches move
/// every owned object by a tiny alternating x-offset, so each update is
/// leaf-local (almost always in place) and the object returns to its
/// home position every second batch.
pub struct Lane {
    oids: Vec<u64>,
    home: Vec<Point>,
    dx: f32,
    round: usize,
}

impl Lane {
    /// The next whole-lane update batch (one op per owned object).
    pub fn next_batch(&mut self) -> Batch {
        let (from, to) = if self.round % 2 == 0 {
            (0.0, self.dx)
        } else {
            (self.dx, 0.0)
        };
        self.round += 1;
        let mut batch = Batch::new();
        for (&oid, &p) in self.oids.iter().zip(&self.home) {
            batch.update(oid, Point::new(p.x + from, p.y), Point::new(p.x + to, p.y));
        }
        batch
    }

    /// Operations per batch.
    #[must_use]
    pub fn ops(&self) -> usize {
        self.oids.len()
    }
}

/// Build an index whose objects are dealt into `threads` disjoint
/// spatial strips of `per_thread` objects each, plus one [`Lane`] per
/// strip. Strategy and durability come from `opts`; the disk is the
/// builder's in-memory default.
pub fn build_strips(opts: IndexOptions, threads: usize, per_thread: usize) -> (Bur, Vec<Lane>) {
    let width = 1.0 / threads as f32;
    let cols = 64usize;
    let rows = per_thread.div_ceil(cols);
    let mut items: Vec<(u64, Point)> = Vec::with_capacity(threads * per_thread);
    let mut lanes: Vec<Lane> = Vec::with_capacity(threads);
    for t in 0..threads {
        let x0 = t as f32 * width;
        let mut oids = Vec::with_capacity(per_thread);
        let mut home = Vec::with_capacity(per_thread);
        for i in 0..per_thread {
            let oid = (t * per_thread + i) as u64;
            let p = Point::new(
                x0 + width * (0.05 + 0.88 * (i % cols) as f32 / cols as f32),
                0.02 + 0.96 * (i / cols) as f32 / rows as f32,
            );
            oids.push(oid);
            home.push(p);
            items.push((oid, p));
        }
        lanes.push(Lane {
            oids,
            home,
            // A hair of a leaf MBR: the move stays in place.
            dx: width * 0.002,
            round: 0,
        });
    }
    let index = RTreeIndex::bulk_load_in_memory(opts, &items).expect("bulk load");
    (Bur::from_index(index), lanes)
}

/// One writer's private insert/delete churn. Even rounds insert `ops`
/// fresh objects at positions strided across the lane's strip (each
/// lands inside some existing leaf MBR, so group planning admits it);
/// odd rounds delete exactly those objects. The stride spreads the
/// churn over many leaves, so no single leaf swings past its fill
/// bounds — batches stay on the shared path, overflowing leaves get
/// make-room splits instead of whole-batch escalations.
pub struct StructuralLane {
    slots: Vec<Point>,
    alive: Vec<(u64, Point)>,
    next_oid: u64,
    cursor: usize,
    ops: usize,
    round: usize,
}

impl StructuralLane {
    /// The next churn batch: all inserts or all deletes, alternating.
    pub fn next_batch(&mut self) -> Batch {
        let mut batch = Batch::new();
        if self.round % 2 == 0 {
            let stride = (self.slots.len() / self.ops).max(1);
            for _ in 0..self.ops {
                let p = self.slots[self.cursor % self.slots.len()];
                self.cursor = self.cursor.wrapping_add(stride) + 1;
                let oid = self.next_oid;
                self.next_oid += 1;
                batch.insert(oid, p);
                self.alive.push((oid, p));
            }
        } else {
            for (oid, p) in self.alive.drain(..) {
                batch.delete(oid, p);
            }
        }
        self.round += 1;
        batch
    }

    /// Operations per batch.
    #[must_use]
    pub fn ops(&self) -> usize {
        self.ops
    }
}

/// Build the same strip-partitioned index as [`build_strips`] plus one
/// [`StructuralLane`] of `churn_ops` ops per batch for each strip.
/// Churn oids start far above the base objects' so the id spaces never
/// collide.
pub fn build_structural_strips(
    opts: IndexOptions,
    threads: usize,
    per_thread: usize,
    churn_ops: usize,
) -> (Bur, Vec<StructuralLane>) {
    let (bur, lanes) = build_strips(opts, threads, per_thread);
    let churn = lanes
        .iter()
        .enumerate()
        .map(|(t, lane)| StructuralLane {
            slots: lane.home.clone(),
            alive: Vec::with_capacity(churn_ops),
            next_oid: (1 + t as u64) << 32,
            cursor: 0,
            ops: churn_ops.max(1),
            round: 0,
        })
        .collect();
    (bur, churn)
}

/// Drive every lane for `batches` whole-lane batches on its own thread
/// and return the elapsed wall-clock seconds.
pub fn run_lanes(bur: &Bur, lanes: &mut [Lane], batches: usize) -> f64 {
    let start = std::time::Instant::now();
    std::thread::scope(|s| {
        for lane in lanes.iter_mut() {
            s.spawn(move || {
                for _ in 0..batches {
                    bur.apply(&lane.next_batch()).expect("apply");
                }
            });
        }
    });
    start.elapsed().as_secs_f64()
}

/// [`run_lanes`] for structural churn lanes. Rounds are forced even so
/// every insert round is paired with its delete round and the index
/// returns to its base population.
pub fn run_structural_lanes(bur: &Bur, lanes: &mut [StructuralLane], batches: usize) -> f64 {
    let batches = (batches + 1) & !1;
    let start = std::time::Instant::now();
    std::thread::scope(|s| {
        for lane in lanes.iter_mut() {
            s.spawn(move || {
                for _ in 0..batches {
                    bur.apply(&lane.next_batch()).expect("apply");
                }
            });
        }
    });
    start.elapsed().as_secs_f64()
}
