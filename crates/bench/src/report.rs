//! Table printing and CSV output for the experiment harness.

use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// A printable/saveable result table (one per figure).
#[derive(Debug, Clone)]
pub struct Table {
    /// Title, e.g. `"Figure 5(a): varying epsilon — avg disk I/O, update"`.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New empty table.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render as an aligned text table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(line, "{:>width$}  ", cell, width = widths[i]);
            }
            line.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "{}", "-".repeat(total.min(120)));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        let stdout = std::io::stdout();
        let mut lock = stdout.lock();
        let _ = writeln!(lock, "\n{}", self.render());
    }

    /// Write as CSV under `dir/name.csv`.
    pub fn save_csv(&self, dir: &Path, name: &str) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        fs::write(dir.join(format!("{name}.csv")), out)
    }
}

/// Format a float with sensible precision for report cells.
#[must_use]
pub fn fnum(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("Demo", &["x", "value"]);
        t.row(vec!["0.003".into(), "12.5".into()]);
        t.row(vec!["0.03".into(), "7".into()]);
        let s = t.render();
        assert!(s.contains("## Demo"));
        assert!(s.contains("value"));
        assert_eq!(s.lines().count(), 5);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join(format!("bur-report-{}", std::process::id()));
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.save_csv(&dir, "demo").unwrap();
        let got = std::fs::read_to_string(dir.join("demo.csv")).unwrap();
        assert_eq!(got, "a,b\n1,2\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(0.1234567), "0.1235");
        assert_eq!(fnum(12.345), "12.35");
        assert_eq!(fnum(1234.5), "1234.5");
    }
}
