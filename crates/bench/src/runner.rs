//! The single-experiment executor: build a tree, run updates, run
//! queries, measure average physical I/O and CPU time per phase.

use bur_core::{IndexOptions, OpSnapshot, RTreeIndex};
use bur_workload::{Workload, WorkloadConfig};
use std::time::Instant;

/// How the initial tree is built.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BuildMethod {
    /// One-by-one insertion — the paper's protocol ("We implemented ...
    /// the original R-tree with re-insertions"). Insertion-built trees
    /// carry realistic node overlap, which is what makes top-down
    /// searches follow multiple partial paths.
    #[default]
    Insert,
    /// STR bulk load (66 % fill). Faster to build but nearly
    /// overlap-free, flattering TD; used by the bulk-load ablation.
    Bulk,
}

/// One experiment cell: a strategy (inside [`IndexOptions`]) crossed with
/// a workload configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Index construction options (strategy, split policy, page size).
    pub index: IndexOptions,
    /// Workload parameters (objects, distribution, movement, queries).
    pub workload: WorkloadConfig,
    /// Number of updates to run and measure.
    pub updates: usize,
    /// Number of queries to run and measure (after the updates, on the
    /// updated tree — the paper's protocol).
    pub queries: usize,
    /// Buffer size as a percentage of the database pages (tree + hash).
    /// The paper's default is 1.0 (%).
    pub buffer_pct: f64,
    /// Initial build method (default: insertion, like the paper).
    pub build: BuildMethod,
}

/// Measured outcomes of one experiment cell.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Average physical page transfers per update.
    pub update_io: f64,
    /// Average physical page transfers per query.
    pub query_io: f64,
    /// Total CPU (wall) time of the update phase, seconds.
    pub update_secs: f64,
    /// Total CPU (wall) time of the query phase, seconds.
    pub query_secs: f64,
    /// Tree height after the build.
    pub height: u16,
    /// Data pages (tree + hash) after the build.
    pub data_pages: u64,
    /// Buffer frames granted.
    pub buffer_frames: usize,
    /// Update outcome counters for the measured phase.
    pub outcomes: OpSnapshot,
    /// Total results returned by the query phase (sanity anchor).
    pub query_results: u64,
}

/// Run one experiment cell.
///
/// Protocol (matching Section 5): generate the initial objects, build
/// the tree (STR bulk load at the paper's 66 % utilization), size the
/// buffer as a percentage of the database pages, start cold, run and
/// measure the update stream, then run and measure the query stream on
/// the updated index.
pub fn run_experiment(cfg: &ExperimentConfig) -> Measurement {
    let workload = Workload::generate(cfg.workload);
    let items = workload.items();
    let mut index = match cfg.build {
        BuildMethod::Bulk => {
            RTreeIndex::bulk_load_in_memory(cfg.index, &items).expect("bulk load failed")
        }
        BuildMethod::Insert => {
            // Build with a generous buffer (build I/O is not measured),
            // inserting one object at a time like the paper.
            let mut build_opts = cfg.index;
            build_opts.buffer_frames = 4096;
            let mut index = bur_core::IndexBuilder::with_options(build_opts)
                .build_index()
                .expect("create failed");
            for &(oid, p) in &items {
                index.insert(oid, p).expect("build insert failed");
            }
            index
        }
    };

    let data_pages = index.data_pages().expect("page count");
    let buffer_frames =
        ((data_pages as f64 * cfg.buffer_pct / 100.0).round() as usize).min(data_pages as usize);
    index
        .set_buffer_capacity(buffer_frames)
        .expect("buffer resize");
    index.pool().evict_all().expect("cold start");
    index.io_stats().reset();
    index.op_stats().reset();

    // ---- update phase ----
    let mut wl = workload;
    let io_before = index.io_stats().snapshot();
    let t0 = Instant::now();
    for _ in 0..cfg.updates {
        let op = wl.next_update();
        index.update(op.oid, op.old, op.new).expect("update failed");
    }
    let update_secs = t0.elapsed().as_secs_f64();
    let io_updates = index.io_stats().snapshot().since(&io_before);
    let outcomes = index.op_stats().snapshot();

    // ---- query phase ----
    let io_before = index.io_stats().snapshot();
    let mut results = 0u64;
    let mut buf = Vec::new();
    let t0 = Instant::now();
    for _ in 0..cfg.queries {
        let q = wl.next_query();
        buf.clear();
        index.query_into(&q.window, &mut buf).expect("query failed");
        results += buf.len() as u64;
    }
    let query_secs = t0.elapsed().as_secs_f64();
    let io_queries = index.io_stats().snapshot().since(&io_before);

    Measurement {
        update_io: io_updates.physical() as f64 / cfg.updates.max(1) as f64,
        query_io: io_queries.physical() as f64 / cfg.queries.max(1) as f64,
        update_secs,
        query_secs,
        height: index.height(),
        data_pages,
        buffer_frames,
        outcomes,
        query_results: results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bur_workload::DataDistribution;

    fn small_cfg(index: IndexOptions) -> ExperimentConfig {
        ExperimentConfig {
            index,
            workload: WorkloadConfig {
                num_objects: 2_000,
                distribution: DataDistribution::Uniform,
                max_distance: 0.06,
                movement: bur_workload::MovementModel::RandomWalk,
                query_max_side: 0.1,
                seed: 77,
                clamp: false,
            },
            updates: 3_000,
            queries: 30,
            buffer_pct: 1.0,
            build: BuildMethod::default(),
        }
    }

    #[test]
    fn runner_produces_sane_measurements() {
        let m = run_experiment(&small_cfg(IndexOptions::generalized()));
        assert!(
            m.update_io > 0.0 && m.update_io < 50.0,
            "update io {}",
            m.update_io
        );
        assert!(m.query_io > 0.0, "query io {}", m.query_io);
        assert!(m.height >= 3);
        assert!(m.data_pages > 50);
        assert_eq!(m.outcomes.updates, 3_000);
        assert!(m.query_results > 0);
    }

    #[test]
    fn gbu_beats_td_on_update_io() {
        // The paper's headline claim at miniature scale.
        let td = run_experiment(&small_cfg(IndexOptions::top_down()));
        let gbu = run_experiment(&small_cfg(IndexOptions::generalized()));
        assert!(
            gbu.update_io < td.update_io,
            "GBU ({}) must beat TD ({}) on update I/O",
            gbu.update_io,
            td.update_io
        );
    }

    #[test]
    fn identical_config_reproducible() {
        let a = run_experiment(&small_cfg(IndexOptions::generalized()));
        let b = run_experiment(&small_cfg(IndexOptions::generalized()));
        assert_eq!(a.update_io, b.update_io);
        assert_eq!(a.query_io, b.query_io);
        assert_eq!(a.query_results, b.query_results);
    }
}
