//! Experiment scales.

/// How big to run the experiments.
///
/// The paper uses 1 M objects, 1 M updates (up to 10 M in Figure 6(e))
/// and 1 M queries. `Paper` reproduces that; `Default` keeps every ratio
/// (updates = 2 × objects base unit, query window sizes, buffer
/// percentages) at 1/10 of the object count so a full sweep finishes on
/// a laptop; `Smoke` is for tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny: integration-test sized.
    Smoke,
    /// Laptop: 100 k objects.
    Default,
    /// The paper's original sizes: 1 M objects.
    Paper,
}

impl Scale {
    /// Parse CLI names.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "smoke" => Some(Self::Smoke),
            "default" | "laptop" => Some(Self::Default),
            "paper" | "full" => Some(Self::Paper),
            _ => None,
        }
    }

    /// Base number of objects ("database size" 1× unit).
    #[must_use]
    pub fn objects(&self) -> usize {
        match self {
            Self::Smoke => 3_000,
            Self::Default => 100_000,
            Self::Paper => 1_000_000,
        }
    }

    /// Base number of updates (the paper's default equals the object
    /// count; Figure 6(e) sweeps multiples of it).
    #[must_use]
    pub fn updates(&self) -> usize {
        match self {
            Self::Smoke => 6_000,
            Self::Default => 100_000,
            Self::Paper => 1_000_000,
        }
    }

    /// Number of measured queries. The paper uses 1 M; queries are two
    /// orders of magnitude more expensive than updates, so the scaled
    /// runs use enough for a stable mean.
    #[must_use]
    pub fn queries(&self) -> usize {
        match self {
            Self::Smoke => 50,
            Self::Default => 400,
            Self::Paper => 10_000,
        }
    }

    /// Duration of each throughput cell (Figure 8), milliseconds.
    #[must_use]
    pub fn throughput_millis(&self) -> u64 {
        match self {
            Self::Smoke => 200,
            Self::Default => 1_500,
            Self::Paper => 5_000,
        }
    }

    /// Default maximum distance moved between updates. The paper's
    /// Section 3.1 measurement (82 % of updates escape their leaf on a
    /// 1 M-point uniform set when only in-place placement is allowed)
    /// pins the paper's default near 0.003 — *sub-leaf-size movement*,
    /// the locality-preserving regime that motivates bottom-up updates.
    /// Scaled runs keep the same movement / leaf-side ratio (≈ 0.6).
    #[must_use]
    pub fn max_distance(&self) -> f32 {
        match self {
            Self::Smoke => 0.05,   // leaf side ≈ 0.095 at 3 k objects
            Self::Default => 0.01, // leaf side ≈ 0.017 at 100 k
            Self::Paper => 0.003,  // leaf side ≈ 0.0054 at 1 M
        }
    }

    /// Threads for the throughput study (the paper: 50).
    #[must_use]
    pub fn threads(&self) -> usize {
        match self {
            Self::Smoke => 8,
            Self::Default | Self::Paper => 50,
        }
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Self::Smoke => "smoke",
            Self::Default => "default",
            Self::Paper => "paper",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_sizes() {
        assert_eq!(Scale::parse("smoke"), Some(Scale::Smoke));
        assert_eq!(Scale::parse("PAPER"), Some(Scale::Paper));
        assert_eq!(Scale::parse("nope"), None);
        assert!(Scale::Paper.objects() > Scale::Default.objects());
        assert!(Scale::Default.objects() > Scale::Smoke.objects());
        assert_eq!(Scale::Paper.objects(), 1_000_000);
        assert_eq!(format!("{}", Scale::Default), "default");
    }
}
