//! Figure 8: throughput of TD / LBU / GBU under DGL with 50 client
//! threads and a varying update/query mix.
//!
//! The paper: "We employ the Dynamic Granular Locking in R-trees and run
//! the experiments with 50 threads, varying the percentage of updates
//! versus queries. We use window queries within the range of [0, 0.01]
//! with updates." Execution here serializes on the simulated disk (one
//! page transfer at a time — the 2003 testbed's single spindle), so
//! throughput is governed by per-operation cost exactly as in the paper;
//! DGL provides the logical locking.

use crate::report::{fnum, Table};
use crate::scale::Scale;
use bur_core::{Bur, GbuParams, IndexOptions, LbuParams, RTreeIndex, UpdateStrategy};
use bur_workload::{Workload, WorkloadConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// One throughput cell: ops/second at `update_pct` % updates.
pub fn measure_tps(opts: IndexOptions, scale: Scale, update_pct: u32, duration: Duration) -> f64 {
    let wl_cfg = WorkloadConfig {
        num_objects: scale.objects(),
        query_max_side: 0.01, // the paper's throughput queries
        max_distance: scale.max_distance(),
        ..WorkloadConfig::default()
    };
    let workload = Workload::generate(wl_cfg);
    let items = workload.items();
    let index = RTreeIndex::bulk_load_in_memory(opts, &items).expect("bulk load");
    let data_pages = index.data_pages().expect("pages");
    index
        .set_buffer_capacity((data_pages as f64 * 0.01).round() as usize)
        .expect("buffer");
    index.pool().evict_all().expect("cold start");
    let index = Bur::from_index(index);

    let threads = scale.threads();
    let parts = workload.split(threads);
    let stop = AtomicBool::new(false);
    let ops = AtomicU64::new(0);
    let started = Instant::now();
    std::thread::scope(|s| {
        for (t, mut part) in parts.into_iter().enumerate() {
            let index = &index;
            let stop = &stop;
            let ops = &ops;
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xF168 + t as u64);
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    if rng.random_range(0u32..100) < update_pct {
                        let op = part.next_update();
                        index.update(op.oid, op.old, op.new).expect("update");
                    } else {
                        let q = part.next_query();
                        // Consume the streaming cursor (recycles its
                        // buffer on drop).
                        index.query(&q.window).expect("query").count();
                    }
                    local += 1;
                }
                ops.fetch_add(local, Ordering::Relaxed);
            });
        }
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
    });
    let elapsed = started.elapsed().as_secs_f64();
    ops.load(Ordering::Relaxed) as f64 / elapsed
}

/// Figure 8 sweep: update share ∈ {0, 25, 50, 75, 100} %.
pub fn fig8(scale: Scale) -> Vec<Table> {
    let mixes = [0u32, 25, 50, 75, 100];
    let duration = Duration::from_millis(scale.throughput_millis());
    let strategies: Vec<(&str, IndexOptions)> = vec![
        ("TD", IndexOptions::top_down()),
        (
            "LBU",
            IndexOptions {
                strategy: UpdateStrategy::Localized(LbuParams {
                    epsilon: 0.003,
                    ..LbuParams::default()
                }),
                ..IndexOptions::default()
            },
        ),
        (
            "GBU",
            IndexOptions {
                strategy: UpdateStrategy::Generalized(GbuParams::default()),
                ..IndexOptions::default()
            },
        ),
    ];
    let mut t = Table::new(
        format!(
            "Figure 8: throughput (ops/s) for varying update/query mix — {} threads, DGL",
            scale.threads()
        ),
        &["pct_updates", "TD", "LBU", "GBU"],
    );
    for &mix in &mixes {
        eprintln!("fig8: {mix}% updates");
        let mut row = vec![mix.to_string()];
        for (name, opts) in &strategies {
            let tps = measure_tps(*opts, scale, mix, duration);
            eprintln!("  [{name}] {tps:.0} ops/s");
            row.push(fnum(tps));
        }
        t.row(row);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_smoke() {
        let tps = measure_tps(
            IndexOptions::generalized(),
            Scale::Smoke,
            50,
            Duration::from_millis(100),
        );
        assert!(tps > 0.0, "no operations completed");
    }
}
