//! `bur-client` — blocking client for the `burd` server.
//!
//! The surface mirrors the in-process [`bur_core::Bur`] handle:
//! batch-first writes ([`BurClient::apply`] returns a [`RemoteAck`]
//! once the server's durable-LSN watermark covers the batch — the
//! network analogue of `CommitTicket::wait`), streaming query
//! iterators ([`BurClient::query`] / [`BurClient::nearest`]), and
//! index lifecycle calls mapping one-to-one onto server opcodes.
//! Connecting retries with exponential backoff, so a client racing a
//! server restart (or a test racing `burd` startup) just works.
//!
//! ```no_run
//! use bur_client::BurClient;
//! use bur_core::Batch;
//! use bur_geom::{Point, Rect};
//!
//! let mut client = BurClient::connect("127.0.0.1:4000")?;
//! client.create_index("fleet", "gbu", true)?;
//! let mut batch = Batch::new();
//! batch.insert(1, Point::new(0.2, 0.7));
//! let ack = client.apply("fleet", &batch)?; // durable once this returns
//! assert!(ack.lsn > 0);
//! let hits: Vec<u64> = client
//!     .query("fleet", &Rect::new(0.0, 0.0, 1.0, 1.0))?
//!     .collect::<Result<_, _>>()?;
//! # Ok::<(), bur_client::ClientError>(())
//! ```

use bur_core::{Batch, Neighbor};
use bur_geom::{Point, Rect};
use bur_serve::protocol::{Request, Response, StrategyKind, WireNeighbor};
use bur_serve::wire::{self, FrameError, WireError};
use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write).
    Io(io::Error),
    /// The server sent bytes violating the wire protocol.
    Wire(WireError),
    /// The server answered with an error response; the message is the
    /// server's verbatim diagnosis.
    Server(String),
    /// The server answered with a well-formed but unexpected response
    /// (wrong opcode for the request, wrong request id).
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Wire(e) => write!(f, "wire: {e}"),
            ClientError::Server(msg) => write!(f, "server: {msg}"),
            ClientError::Protocol(msg) => write!(f, "protocol: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => ClientError::Io(e),
            FrameError::Wire(e) => ClientError::Wire(e),
        }
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// Result alias for client operations.
pub type ClientResult<T> = Result<T, ClientError>;

/// Connection-retry knobs for [`BurClient::connect_with`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Connection attempts before giving up.
    pub connect_attempts: u32,
    /// Delay after the first failed attempt; doubles per retry.
    pub initial_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_attempts: 10,
            initial_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
        }
    }
}

/// Durable acknowledgement for one [`BurClient::apply`] — the network
/// analogue of waiting on a `CommitTicket`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteAck {
    /// LSN of the WAL group-commit record covering the batch (0 on a
    /// non-durable index).
    pub lsn: u64,
    /// Operations applied for this client.
    pub applied: u64,
    /// Client submissions the server merged into the same group commit
    /// (including this one); values above 1 mean coalescing happened.
    pub merged: u64,
}

/// A blocking connection to one `burd` server.
#[derive(Debug)]
pub struct BurClient {
    stream: TcpStream,
    next_id: u64,
}

impl BurClient {
    /// Connect with default retry/backoff ([`ClientConfig::default`]).
    pub fn connect(addr: impl ToSocketAddrs) -> ClientResult<Self> {
        Self::connect_with(addr, &ClientConfig::default())
    }

    /// Connect, retrying with exponential backoff on refusal (a server
    /// mid-restart is briefly unreachable; give it time to come back).
    pub fn connect_with(addr: impl ToSocketAddrs, config: &ClientConfig) -> ClientResult<Self> {
        let mut backoff = config.initial_backoff;
        let mut last_err: Option<io::Error> = None;
        for attempt in 0..config.connect_attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(config.max_backoff);
            }
            match TcpStream::connect(&addr) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    return Ok(BurClient { stream, next_id: 1 });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(ClientError::Io(last_err.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::AddrNotAvailable, "no address to connect to")
        })))
    }

    fn send(&mut self, req: &Request) -> ClientResult<u64> {
        let id = self.next_id;
        self.next_id += 1;
        let mut out = Vec::with_capacity(64);
        wire::write_frame(&mut out, id, req.opcode(), &req.encode_payload());
        self.stream.write_all(&out)?;
        Ok(id)
    }

    fn recv(&mut self, id: u64) -> ClientResult<Response> {
        let frame = wire::read_frame(&mut self.stream)?.ok_or_else(|| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))
        })?;
        if frame.request_id != id {
            return Err(ClientError::Protocol(format!(
                "response for request {} while waiting on {}",
                frame.request_id, id
            )));
        }
        Ok(Response::decode(frame.opcode, &frame.payload)?)
    }

    /// One request, one response frame.
    fn round_trip(&mut self, req: &Request) -> ClientResult<Response> {
        let id = self.send(req)?;
        self.recv(id)
    }

    fn expect_ok(&mut self, req: &Request) -> ClientResult<()> {
        match self.round_trip(req)? {
            Response::Ok => Ok(()),
            Response::Err { message } => Err(ClientError::Server(message)),
            other => Err(unexpected("Ok", &other)),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> ClientResult<()> {
        match self.round_trip(&Request::Ping)? {
            Response::Pong => Ok(()),
            Response::Err { message } => Err(ClientError::Server(message)),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Create a named index on the server. `strategy` is the CLI-style
    /// short name (`td` / `lbu` / `gbu`).
    pub fn create_index(&mut self, name: &str, strategy: &str, durable: bool) -> ClientResult<()> {
        let strategy = StrategyKind::parse(strategy).ok_or_else(|| {
            ClientError::Protocol(format!("unknown strategy {strategy:?} (td, lbu, gbu)"))
        })?;
        self.expect_ok(&Request::Create {
            name: name.to_string(),
            strategy,
            durable,
        })
    }

    /// Open a named index (idempotent).
    pub fn open_index(&mut self, name: &str) -> ClientResult<()> {
        self.expect_ok(&Request::Open {
            name: name.to_string(),
        })
    }

    /// Close a named index: the server drains its coalescer, flushes
    /// and checkpoints before acknowledging.
    pub fn close_index(&mut self, name: &str) -> ClientResult<()> {
        self.expect_ok(&Request::Close {
            name: name.to_string(),
        })
    }

    /// Indexes the server knows about, as `(name, open)` pairs.
    pub fn list_indexes(&mut self) -> ClientResult<Vec<(String, bool)>> {
        match self.round_trip(&Request::List)? {
            Response::Names { names } => Ok(names),
            Response::Err { message } => Err(ClientError::Server(message)),
            other => Err(unexpected("Names", &other)),
        }
    }

    /// Apply a batch. Blocks until the server acks it durable; the
    /// server is free to coalesce it with concurrent clients' batches
    /// into one WAL group commit ([`RemoteAck::merged`] reports how
    /// many shared the round).
    pub fn apply(&mut self, index: &str, batch: &Batch) -> ClientResult<RemoteAck> {
        match self.round_trip(&Request::Apply {
            index: index.to_string(),
            ops: batch.ops().to_vec(),
        })? {
            Response::Ack {
                lsn,
                applied,
                merged,
            } => Ok(RemoteAck {
                lsn,
                applied,
                merged,
            }),
            Response::Err { message } => Err(ClientError::Server(message)),
            other => Err(unexpected("Ack", &other)),
        }
    }

    /// Window query; results stream back in chunks, surfaced as a
    /// borrowing iterator (drop it early and it drains the stream to
    /// keep the connection usable).
    pub fn query(&mut self, index: &str, window: &Rect) -> ClientResult<IdStream<'_>> {
        let id = self.send(&Request::Query {
            index: index.to_string(),
            window: *window,
        })?;
        Ok(IdStream {
            client: self,
            id,
            buf: Vec::new(),
            pos: 0,
            done: false,
        })
    }

    /// k-nearest-neighbor query, closest first, streamed like
    /// [`BurClient::query`].
    pub fn nearest(
        &mut self,
        index: &str,
        point: Point,
        k: usize,
    ) -> ClientResult<NeighborStream<'_>> {
        let id = self.send(&Request::Knn {
            index: index.to_string(),
            point,
            k: k as u32,
        })?;
        Ok(NeighborStream {
            client: self,
            id,
            buf: Vec::new(),
            pos: 0,
            done: false,
        })
    }

    /// Number of objects in the named index.
    pub fn len(&mut self, index: &str) -> ClientResult<u64> {
        match self.round_trip(&Request::Len {
            index: index.to_string(),
        })? {
            Response::Count { value } => Ok(value),
            Response::Err { message } => Err(ClientError::Server(message)),
            other => Err(unexpected("Count", &other)),
        }
    }

    /// Per-index gauge dump (plaintext `name{index="..."} value` lines).
    pub fn stats(&mut self, index: &str) -> ClientResult<String> {
        self.text(&Request::Stats {
            index: index.to_string(),
        })
    }

    /// Server-wide metrics dump (plaintext).
    pub fn metrics(&mut self) -> ClientResult<String> {
        self.text(&Request::Metrics)
    }

    fn text(&mut self, req: &Request) -> ClientResult<String> {
        match self.round_trip(req)? {
            Response::Text { text } => Ok(text),
            Response::Err { message } => Err(ClientError::Server(message)),
            other => Err(unexpected("Text", &other)),
        }
    }

    /// Ask the server to shut down gracefully (drain writes, flush,
    /// checkpoint). The acknowledgement arrives before the listener
    /// closes.
    pub fn shutdown_server(&mut self) -> ClientResult<()> {
        self.expect_ok(&Request::Shutdown)
    }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    ClientError::Protocol(format!("expected {wanted}, got {got:?}"))
}

macro_rules! chunk_stream {
    ($(#[$doc:meta])* $name:ident, $item:ty, $variant:ident, $field:ident, $map:expr) => {
        $(#[$doc])*
        #[derive(Debug)]
        pub struct $name<'a> {
            client: &'a mut BurClient,
            id: u64,
            buf: Vec<$item>,
            pos: usize,
            done: bool,
        }

        impl $name<'_> {
            fn refill(&mut self) -> ClientResult<()> {
                match self.client.recv(self.id)? {
                    Response::$variant { $field, last } => {
                        self.buf = $field.into_iter().map($map).collect();
                        self.pos = 0;
                        self.done = last;
                        Ok(())
                    }
                    Response::Err { message } => {
                        self.done = true;
                        Err(ClientError::Server(message))
                    }
                    other => {
                        self.done = true;
                        Err(unexpected(stringify!($variant), &other))
                    }
                }
            }

            /// Drain the remainder into a vector.
            pub fn collect_all(mut self) -> ClientResult<Vec<$item>> {
                let mut out = Vec::new();
                for item in &mut self {
                    out.push(item?);
                }
                Ok(out)
            }
        }

        impl Iterator for $name<'_> {
            type Item = ClientResult<$item>;

            fn next(&mut self) -> Option<Self::Item> {
                loop {
                    if self.pos < self.buf.len() {
                        let item = self.buf[self.pos];
                        self.pos += 1;
                        return Some(Ok(item));
                    }
                    if self.done {
                        return None;
                    }
                    if let Err(e) = self.refill() {
                        return Some(Err(e));
                    }
                }
            }
        }

        impl Drop for $name<'_> {
            /// Drain unread chunk frames so the connection stays framed
            /// for the next request.
            fn drop(&mut self) {
                while !self.done {
                    if self.refill().is_err() {
                        break;
                    }
                }
            }
        }
    };
}

chunk_stream!(
    /// Streaming window-query results (the network analogue of
    /// `QueryCursor`).
    IdStream,
    u64,
    IdChunk,
    ids,
    |id| id
);

chunk_stream!(
    /// Streaming kNN results, closest first (the network analogue of
    /// `NeighborCursor`).
    NeighborStream,
    Neighbor,
    NeighborChunk,
    neighbors,
    |n: WireNeighbor| Neighbor {
        oid: n.oid,
        distance: n.distance,
    }
);
