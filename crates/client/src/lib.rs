//! `bur-client` — blocking client for the `burd` server.
//!
//! The surface mirrors the in-process [`bur_core::Bur`] handle:
//! batch-first writes ([`BurClient::apply`] returns a [`RemoteAck`]
//! once the server's durable-LSN watermark covers the batch — the
//! network analogue of `CommitTicket::wait`), streaming query
//! iterators ([`BurClient::query`] / [`BurClient::nearest`]), and
//! index lifecycle calls mapping one-to-one onto server opcodes.
//!
//! The client is built for unreliable networks:
//!
//! - **Idempotent retries.** Every connection carries a random
//!   client-session id, and every [`BurClient::apply`] is stamped with
//!   a monotonic sequence number. The server deduplicates on
//!   `(session, seq)`, so when an ack is lost in transit the client
//!   reconnects and resends the *same* batch under the *same* sequence
//!   number — and gets the original ack back instead of applying
//!   twice. Read-only and idempotent calls (`ping`, `open`, `list`,
//!   `len`, `stats`, `metrics`) retry the same way; non-idempotent
//!   lifecycle calls (`create`, `close`, `shutdown`) and streaming
//!   queries are single-attempt, surfacing the error for the caller to
//!   decide.
//! - **Deadlines.** [`ClientConfig::op_timeout`] bounds every
//!   operation: the budget rides in the frame header so the server can
//!   shed the request if it expires queued, and the client arms socket
//!   read timeouts from the same budget so a black-holed server cannot
//!   hang the calling thread.
//! - **Connection poisoning.** After any transport or framing failure
//!   the stream may be mid-frame, so the client drops it; the next
//!   retryable call reconnects transparently ([`BurClient::reconnects`]
//!   counts these).
//!
//! ```no_run
//! use bur_client::BurClient;
//! use bur_core::Batch;
//! use bur_geom::{Point, Rect};
//!
//! let mut client = BurClient::connect("127.0.0.1:4000")?;
//! client.create_index("fleet", "gbu", true)?;
//! let mut batch = Batch::new();
//! batch.insert(1, Point::new(0.2, 0.7));
//! let ack = client.apply("fleet", &batch)?; // durable once this returns
//! assert!(ack.lsn > 0);
//! let hits: Vec<u64> = client
//!     .query("fleet", &Rect::new(0.0, 0.0, 1.0, 1.0))?
//!     .collect::<Result<_, _>>()?;
//! # Ok::<(), bur_client::ClientError>(())
//! ```

use bur_core::{Batch, Neighbor};
use bur_geom::{Point, Rect};
use bur_serve::protocol::{Request, Response, StrategyKind, WireNeighbor};
use bur_serve::wire::{self, FrameError, WireError};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, or a read that timed
    /// out against the operation deadline).
    Io(io::Error),
    /// The server sent bytes violating the wire protocol.
    Wire(WireError),
    /// The server answered with an error response; the message is the
    /// server's verbatim diagnosis.
    Server(String),
    /// The server answered with a well-formed but unexpected response
    /// (wrong opcode for the request, wrong request id).
    Protocol(String),
    /// The server shed the request under load; nothing was applied.
    /// Safe to retry after backing off.
    Overloaded(String),
    /// The operation's deadline expired before the server served it;
    /// the server guarantees no side effects for expired writes.
    DeadlineExceeded(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Wire(e) => write!(f, "wire: {e}"),
            ClientError::Server(msg) => write!(f, "server: {msg}"),
            ClientError::Protocol(msg) => write!(f, "protocol: {msg}"),
            ClientError::Overloaded(msg) => write!(f, "overloaded: {msg}"),
            ClientError::DeadlineExceeded(msg) => write!(f, "deadline exceeded: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => ClientError::Io(e),
            FrameError::Wire(e) => ClientError::Wire(e),
        }
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl ClientError {
    /// Whether retrying the operation can help: transport and framing
    /// failures (the outcome is unknown — dedup makes the resend
    /// safe), shed requests, and expired deadlines. Server rejections
    /// and protocol violations are deterministic; retrying repeats
    /// them.
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ClientError::Io(_)
                | ClientError::Wire(_)
                | ClientError::Overloaded(_)
                | ClientError::DeadlineExceeded(_)
        )
    }

    /// Whether this failure poisons the connection (the stream may be
    /// mid-frame, so it must be dropped before the next request).
    fn poisons(&self) -> bool {
        matches!(
            self,
            ClientError::Io(_) | ClientError::Wire(_) | ClientError::Protocol(_)
        )
    }
}

/// Result alias for client operations.
pub type ClientResult<T> = Result<T, ClientError>;

/// In-flight retry knobs: how many times a retryable operation is
/// re-attempted (reconnecting between attempts) before its error is
/// surfaced.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts per operation, including the first. `1` disables
    /// retries.
    pub max_attempts: u32,
    /// Delay before the first retry; doubles per attempt.
    pub initial_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Wall-clock budget across all attempts of one operation; once
    /// exceeded, the last error is surfaced even if attempts remain.
    pub max_elapsed: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            initial_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_secs(1),
            max_elapsed: Duration::from_secs(20),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries — every failure surfaces
    /// immediately.
    #[must_use]
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }
}

/// Connection and reliability knobs for [`BurClient::connect_with`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Connection attempts before giving up.
    pub connect_attempts: u32,
    /// Delay after the first failed connect; doubles per retry.
    pub initial_backoff: Duration,
    /// Connect backoff ceiling.
    pub max_backoff: Duration,
    /// Wall-clock cap across all connect attempts — a server that is
    /// down stays down; don't let `connect_attempts` × backoff grow
    /// unbounded.
    pub max_connect_elapsed: Duration,
    /// Per-operation deadline. Sent to the server in the frame header
    /// (so expired requests are shed, not served) and armed on the
    /// socket (so a silent server cannot hang the caller). `None`
    /// waits forever.
    pub op_timeout: Option<Duration>,
    /// In-flight retry policy for idempotent operations.
    pub retry: RetryPolicy,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_attempts: 10,
            initial_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            max_connect_elapsed: Duration::from_secs(10),
            op_timeout: Some(Duration::from_secs(30)),
            retry: RetryPolicy::default(),
        }
    }
}

/// Durable acknowledgement for one [`BurClient::apply`] — the network
/// analogue of waiting on a `CommitTicket`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteAck {
    /// LSN of the WAL group-commit record covering the batch (0 on a
    /// non-durable index).
    pub lsn: u64,
    /// Operations applied for this client.
    pub applied: u64,
    /// Client submissions the server merged into the same group commit
    /// (including this one); values above 1 mean coalescing happened.
    pub merged: u64,
}

/// A blocking connection to one `burd` server.
#[derive(Debug)]
pub struct BurClient {
    addrs: Vec<SocketAddr>,
    config: ClientConfig,
    /// `None` after a transport/framing failure: the stream may be
    /// mid-frame and must not carry another request. The next
    /// retryable operation reconnects.
    stream: Option<TcpStream>,
    next_id: u64,
    session: u128,
    next_seq: u64,
    retries: u64,
    reconnects: u64,
}

impl BurClient {
    /// Connect with default retry/backoff ([`ClientConfig::default`]).
    pub fn connect(addr: impl ToSocketAddrs) -> ClientResult<Self> {
        Self::connect_with(addr, &ClientConfig::default())
    }

    /// Connect, retrying with exponential backoff on refusal (a server
    /// mid-restart is briefly unreachable; give it time to come back)
    /// but bounded by both [`ClientConfig::connect_attempts`] and
    /// [`ClientConfig::max_connect_elapsed`].
    pub fn connect_with(addr: impl ToSocketAddrs, config: &ClientConfig) -> ClientResult<Self> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let stream = connect_stream(&addrs, config)?;
        Ok(BurClient {
            addrs,
            config: config.clone(),
            stream: Some(stream),
            next_id: 1,
            session: fresh_session(),
            next_seq: 1,
            retries: 0,
            reconnects: 0,
        })
    }

    /// This connection's dedup session id (stamped on every apply).
    #[must_use]
    pub fn session(&self) -> u128 {
        self.session
    }

    /// In-flight operation retries performed so far.
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Reconnects performed after poisoned connections.
    #[must_use]
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Whether the client currently holds a (believed) usable
    /// connection. `false` after a failure poisoned it.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        self.stream.is_some()
    }

    fn ensure_connected(&mut self) -> ClientResult<()> {
        if self.stream.is_none() {
            let stream = connect_stream(&self.addrs, &self.config)?;
            self.stream = Some(stream);
            self.reconnects += 1;
        }
        Ok(())
    }

    /// Run `op` with the configured retry policy: poisoned connections
    /// are re-established between attempts, backoff doubles, and both
    /// the attempt count and the elapsed budget bound the loop. Only
    /// used for operations that are safe to resend (reads, idempotent
    /// lifecycle calls, and deduplicated applies).
    fn with_retry<T>(
        &mut self,
        mut op: impl FnMut(&mut Self) -> ClientResult<T>,
    ) -> ClientResult<T> {
        let policy = self.config.retry;
        let started = Instant::now();
        let mut backoff = policy.initial_backoff;
        let mut attempt = 0u32;
        loop {
            let result = self.ensure_connected().and_then(|()| op(self));
            let err = match result {
                Ok(v) => return Ok(v),
                Err(e) => e,
            };
            attempt += 1;
            if !err.is_retryable()
                || attempt >= policy.max_attempts.max(1)
                || started.elapsed() >= policy.max_elapsed
            {
                return Err(err);
            }
            self.retries += 1;
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(policy.max_backoff);
        }
    }

    /// The deadline for an operation starting now.
    fn op_deadline(&self) -> Option<Instant> {
        self.config.op_timeout.map(|t| Instant::now() + t)
    }

    fn poison_check<T>(&mut self, result: ClientResult<T>) -> ClientResult<T> {
        if matches!(&result, Err(e) if e.poisons()) {
            self.stream = None;
        }
        result
    }

    fn send_deadline(&mut self, req: &Request, deadline: Option<Instant>) -> ClientResult<u64> {
        let id = self.next_id;
        self.next_id += 1;
        let deadline_ms = deadline.map(|d| {
            let ms = d.saturating_duration_since(Instant::now()).as_millis();
            u32::try_from(ms).unwrap_or(u32::MAX).max(1)
        });
        let mut out = Vec::with_capacity(64);
        wire::write_frame_deadline(
            &mut out,
            id,
            req.opcode(),
            deadline_ms,
            &req.encode_payload(),
        );
        let result = match self.stream.as_mut() {
            Some(stream) => stream.write_all(&out).map_err(ClientError::Io),
            None => Err(not_connected()),
        };
        self.poison_check(result)?;
        Ok(id)
    }

    fn recv_deadline(&mut self, id: u64, deadline: Option<Instant>) -> ClientResult<Response> {
        let result = self.recv_inner(id, deadline);
        self.poison_check(result)
    }

    fn recv_inner(&mut self, id: u64, deadline: Option<Instant>) -> ClientResult<Response> {
        let stream = self.stream.as_mut().ok_or_else(not_connected)?;
        // Arm the socket timeout with the remaining budget so even the
        // wait for the first response byte is bounded; mid-frame reads
        // are then bounded by the same deadline inside
        // `read_frame_deadline`.
        match deadline {
            Some(d) => {
                let remaining = d.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "operation deadline exceeded before the reply arrived",
                    )));
                }
                stream.set_read_timeout(Some(remaining))?;
            }
            None => stream.set_read_timeout(None)?,
        }
        let frame = wire::read_frame_deadline(stream, deadline)?.ok_or_else(|| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))
        })?;
        if frame.request_id != id {
            return Err(ClientError::Protocol(format!(
                "response for request {} while waiting on {}",
                frame.request_id, id
            )));
        }
        match Response::decode(frame.opcode, &frame.payload)? {
            Response::Overloaded { message } => Err(ClientError::Overloaded(message)),
            Response::Expired { message } => Err(ClientError::DeadlineExceeded(message)),
            resp => Ok(resp),
        }
    }

    /// One request, one response frame, one deadline.
    fn round_trip(&mut self, req: &Request) -> ClientResult<Response> {
        self.ensure_connected()?;
        let deadline = self.op_deadline();
        let id = self.send_deadline(req, deadline)?;
        self.recv_deadline(id, deadline)
    }

    fn expect_ok(&mut self, req: &Request) -> ClientResult<()> {
        match self.round_trip(req)? {
            Response::Ok => Ok(()),
            Response::Err { message } => Err(ClientError::Server(message)),
            other => Err(unexpected("Ok", &other)),
        }
    }

    /// Liveness probe (retried).
    pub fn ping(&mut self) -> ClientResult<()> {
        self.with_retry(|c| match c.round_trip(&Request::Ping)? {
            Response::Pong => Ok(()),
            Response::Err { message } => Err(ClientError::Server(message)),
            other => Err(unexpected("Pong", &other)),
        })
    }

    /// Create a named index on the server. `strategy` is the CLI-style
    /// short name (`td` / `lbu` / `gbu`). Single-attempt: creation is
    /// not idempotent, so after a lost ack the caller must check
    /// [`BurClient::list_indexes`] rather than blindly resend.
    pub fn create_index(&mut self, name: &str, strategy: &str, durable: bool) -> ClientResult<()> {
        let strategy = StrategyKind::parse(strategy).ok_or_else(|| {
            ClientError::Protocol(format!("unknown strategy {strategy:?} (td, lbu, gbu)"))
        })?;
        self.expect_ok(&Request::Create {
            name: name.to_string(),
            strategy,
            durable,
        })
    }

    /// Create a named index sharded `shards` ways by Hilbert-key range:
    /// the server hosts every shard behind the one logical name (writes
    /// route by key, queries scatter-gather). Single-attempt like
    /// [`BurClient::create_index`].
    pub fn create_sharded_index(
        &mut self,
        name: &str,
        strategy: &str,
        durable: bool,
        shards: u32,
    ) -> ClientResult<()> {
        let strategy = StrategyKind::parse(strategy).ok_or_else(|| {
            ClientError::Protocol(format!("unknown strategy {strategy:?} (td, lbu, gbu)"))
        })?;
        self.expect_ok(&Request::CreateSharded {
            name: name.to_string(),
            strategy,
            durable,
            shards,
        })
    }

    /// Open a named index (idempotent, retried).
    pub fn open_index(&mut self, name: &str) -> ClientResult<()> {
        self.with_retry(|c| {
            c.expect_ok(&Request::Open {
                name: name.to_string(),
            })
        })
    }

    /// Close a named index: the server drains its coalescer, flushes
    /// and checkpoints before acknowledging. Single-attempt (closing a
    /// closed index errors).
    pub fn close_index(&mut self, name: &str) -> ClientResult<()> {
        self.expect_ok(&Request::Close {
            name: name.to_string(),
        })
    }

    /// Indexes the server knows about, as `(name, open)` pairs
    /// (retried).
    pub fn list_indexes(&mut self) -> ClientResult<Vec<(String, bool)>> {
        self.with_retry(|c| match c.round_trip(&Request::List)? {
            Response::Names { names } => Ok(names),
            Response::Err { message } => Err(ClientError::Server(message)),
            other => Err(unexpected("Names", &other)),
        })
    }

    /// Apply a batch. Blocks until the server acks it durable; the
    /// server is free to coalesce it with concurrent clients' batches
    /// into one WAL group commit ([`RemoteAck::merged`] reports how
    /// many shared the round).
    ///
    /// Retried safely: the batch is stamped with this client's session
    /// id and a sequence number allocated once per call, so a resend
    /// after a lost ack deduplicates server-side and returns the
    /// *original* ack — the batch is never applied twice.
    pub fn apply(&mut self, index: &str, batch: &Batch) -> ClientResult<RemoteAck> {
        let session = self.session;
        let seq = self.next_seq;
        self.next_seq += 1;
        let ops = batch.ops().to_vec();
        self.with_retry(|c| {
            match c.round_trip(&Request::Apply {
                index: index.to_string(),
                session,
                seq,
                ops: ops.clone(),
            })? {
                Response::Ack {
                    lsn,
                    applied,
                    merged,
                } => Ok(RemoteAck {
                    lsn,
                    applied,
                    merged,
                }),
                Response::Err { message } => Err(ClientError::Server(message)),
                other => Err(unexpected("Ack", &other)),
            }
        })
    }

    /// Window query; results stream back in chunks, surfaced as a
    /// borrowing iterator (drop it early and it drains the stream to
    /// keep the connection usable). Single-attempt: a mid-stream
    /// failure poisons the connection and surfaces the error.
    pub fn query(&mut self, index: &str, window: &Rect) -> ClientResult<IdStream<'_>> {
        self.ensure_connected()?;
        let deadline = self.op_deadline();
        let id = self.send_deadline(
            &Request::Query {
                index: index.to_string(),
                window: *window,
            },
            deadline,
        )?;
        Ok(IdStream {
            client: self,
            id,
            deadline,
            buf: Vec::new(),
            pos: 0,
            done: false,
        })
    }

    /// k-nearest-neighbor query, closest first, streamed like
    /// [`BurClient::query`].
    pub fn nearest(
        &mut self,
        index: &str,
        point: Point,
        k: usize,
    ) -> ClientResult<NeighborStream<'_>> {
        self.ensure_connected()?;
        let deadline = self.op_deadline();
        let id = self.send_deadline(
            &Request::Knn {
                index: index.to_string(),
                point,
                k: k as u32,
            },
            deadline,
        )?;
        Ok(NeighborStream {
            client: self,
            id,
            deadline,
            buf: Vec::new(),
            pos: 0,
            done: false,
        })
    }

    /// Number of objects in the named index (retried).
    pub fn len(&mut self, index: &str) -> ClientResult<u64> {
        self.with_retry(|c| {
            match c.round_trip(&Request::Len {
                index: index.to_string(),
            })? {
                Response::Count { value } => Ok(value),
                Response::Err { message } => Err(ClientError::Server(message)),
                other => Err(unexpected("Count", &other)),
            }
        })
    }

    /// Per-index gauge dump (plaintext `name{index="..."} value`
    /// lines; retried).
    pub fn stats(&mut self, index: &str) -> ClientResult<String> {
        self.with_retry(|c| {
            c.text(&Request::Stats {
                index: index.to_string(),
            })
        })
    }

    /// Server-wide metrics dump (plaintext, retried).
    pub fn metrics(&mut self) -> ClientResult<String> {
        self.with_retry(|c| c.text(&Request::Metrics))
    }

    fn text(&mut self, req: &Request) -> ClientResult<String> {
        match self.round_trip(req)? {
            Response::Text { text } => Ok(text),
            Response::Err { message } => Err(ClientError::Server(message)),
            other => Err(unexpected("Text", &other)),
        }
    }

    /// Ask the server to shut down gracefully (drain writes, flush,
    /// checkpoint). The acknowledgement arrives before the listener
    /// closes. Single-attempt.
    pub fn shutdown_server(&mut self) -> ClientResult<()> {
        self.expect_ok(&Request::Shutdown)
    }
}

fn not_connected() -> ClientError {
    ClientError::Io(io::Error::new(
        io::ErrorKind::NotConnected,
        "connection poisoned by an earlier failure",
    ))
}

/// Dial `addrs`, bounded by both an attempt count and a wall-clock
/// budget, surfacing the last underlying error on exhaustion.
fn connect_stream(addrs: &[SocketAddr], config: &ClientConfig) -> ClientResult<TcpStream> {
    const PER_ATTEMPT: Duration = Duration::from_millis(500);
    let started = Instant::now();
    let mut backoff = config.initial_backoff;
    let mut last_err: Option<io::Error> = None;
    for attempt in 0..config.connect_attempts.max(1) {
        if attempt > 0 {
            if started.elapsed() + backoff >= config.max_connect_elapsed {
                break;
            }
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(config.max_backoff);
        }
        for addr in addrs {
            match TcpStream::connect_timeout(addr, PER_ATTEMPT) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    stream.set_write_timeout(config.op_timeout)?;
                    return Ok(stream);
                }
                Err(e) => last_err = Some(e),
            }
        }
    }
    Err(ClientError::Io(match last_err {
        Some(e) => io::Error::new(e.kind(), format!("connect failed after retries: {e}")),
        None => io::Error::new(io::ErrorKind::AddrNotAvailable, "no address to connect to"),
    }))
}

/// A process-unique, collision-resistant session id for write dedup.
/// Mixed from the clock, the pid, and a process counter through
/// splitmix64 — random enough for uniqueness across client restarts
/// without pulling in an RNG dependency. Never zero (zero opts out of
/// dedup on the wire).
fn fresh_session() -> u128 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    let count = COUNTER.fetch_add(1, Ordering::Relaxed);
    let pid = u64::from(std::process::id());
    let hi = splitmix64(nanos as u64 ^ pid.rotate_left(32));
    let lo = splitmix64((nanos >> 64) as u64 ^ count.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ pid);
    let session = (u128::from(hi) << 64) | u128::from(lo);
    session.max(1)
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    ClientError::Protocol(format!("expected {wanted}, got {got:?}"))
}

macro_rules! chunk_stream {
    ($(#[$doc:meta])* $name:ident, $item:ty, $variant:ident, $field:ident, $map:expr) => {
        $(#[$doc])*
        #[derive(Debug)]
        pub struct $name<'a> {
            client: &'a mut BurClient,
            id: u64,
            deadline: Option<Instant>,
            buf: Vec<$item>,
            pos: usize,
            done: bool,
        }

        impl $name<'_> {
            fn refill(&mut self) -> ClientResult<()> {
                // Any receive failure ends the stream: there is either
                // no usable connection left (poisoned) or no further
                // frame owed (a shed/expired reply is final), so the
                // Drop drain must not wait for more.
                let received = match self.client.recv_deadline(self.id, self.deadline) {
                    Ok(resp) => resp,
                    Err(e) => {
                        self.done = true;
                        return Err(e);
                    }
                };
                match received {
                    Response::$variant { $field, last } => {
                        self.buf = $field.into_iter().map($map).collect();
                        self.pos = 0;
                        self.done = last;
                        Ok(())
                    }
                    Response::Err { message } => {
                        self.done = true;
                        Err(ClientError::Server(message))
                    }
                    other => {
                        self.done = true;
                        Err(unexpected(stringify!($variant), &other))
                    }
                }
            }

            /// Drain the remainder into a vector.
            pub fn collect_all(mut self) -> ClientResult<Vec<$item>> {
                let mut out = Vec::new();
                for item in &mut self {
                    out.push(item?);
                }
                Ok(out)
            }
        }

        impl Iterator for $name<'_> {
            type Item = ClientResult<$item>;

            fn next(&mut self) -> Option<Self::Item> {
                loop {
                    if self.pos < self.buf.len() {
                        let item = self.buf[self.pos];
                        self.pos += 1;
                        return Some(Ok(item));
                    }
                    if self.done {
                        return None;
                    }
                    if let Err(e) = self.refill() {
                        return Some(Err(e));
                    }
                }
            }
        }

        impl Drop for $name<'_> {
            /// Drain unread chunk frames so the connection stays framed
            /// for the next request (a refill failure has already
            /// poisoned it, so just stop).
            fn drop(&mut self) {
                while !self.done {
                    if self.refill().is_err() {
                        break;
                    }
                }
            }
        }
    };
}

chunk_stream!(
    /// Streaming window-query results (the network analogue of
    /// `QueryCursor`).
    IdStream,
    u64,
    IdChunk,
    ids,
    |id| id
);

chunk_stream!(
    /// Streaming kNN results, closest first (the network analogue of
    /// `NeighborCursor`).
    NeighborStream,
    Neighbor,
    NeighborChunk,
    neighbors,
    |n: WireNeighbor| Neighbor {
        oid: n.oid,
        distance: n.distance,
    }
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_ids_are_unique_and_nonzero() {
        let a = fresh_session();
        let b = fresh_session();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b, "counter mixing must separate same-instant calls");
    }

    #[test]
    fn retry_policy_none_is_single_attempt() {
        assert_eq!(RetryPolicy::none().max_attempts, 1);
    }

    #[test]
    fn connect_respects_elapsed_cap() {
        // A freshly released loopback port: bind, record the address,
        // drop the listener. Every connect attempt is then refused
        // locally — no routing assumptions — so the elapsed cap is
        // what ends the loop.
        let addrs: Vec<SocketAddr> = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            vec![listener.local_addr().unwrap()]
        };
        let config = ClientConfig {
            connect_attempts: 1000,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(50),
            max_connect_elapsed: Duration::from_millis(600),
            ..ClientConfig::default()
        };
        let started = Instant::now();
        let err = connect_stream(&addrs, &config).unwrap_err();
        assert!(matches!(err, ClientError::Io(_)), "surfaces the io error");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "elapsed cap must end the loop long before 1000 attempts"
        );
    }
}
