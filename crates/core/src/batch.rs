//! Mixed-operation write batches — the batch-first write path.
//!
//! The paper's point is that updates are the hot path; a production
//! index therefore wants to *amortize* the per-operation costs (commit
//! records, sync cadence, lock round-trips) across many operations. A
//! [`Batch`] is an ordered list of mixed [`Op`]s applied in one call:
//! on a durable index the whole batch is covered by **one** write-ahead
//! log group commit record, so a crash either keeps the entire batch or
//! none of it (all-or-nothing per group commit record).
//!
//! Build a batch with the fluent helpers and hand it to
//! [`crate::Bur::apply`] (or [`crate::RTreeIndex::apply_batch`] when
//! single-threaded):
//!
//! ```
//! use bur_core::{Batch, IndexBuilder};
//! use bur_geom::Point;
//!
//! let bur = IndexBuilder::generalized().build().unwrap();
//! let mut batch = Batch::new();
//! batch
//!     .insert(1, Point::new(0.2, 0.2))
//!     .insert(2, Point::new(0.8, 0.8))
//!     .update(1, Point::new(0.2, 0.2), Point::new(0.21, 0.2));
//! let ticket = bur.apply(&batch).unwrap();
//! assert_eq!(ticket.report().applied, 3);
//! assert_eq!(bur.len(), 2);
//! ```

use crate::node::ObjectId;
use bur_geom::{Point, Rect};

/// One operation in a [`Batch`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Insert an object with a rectangular extent (a point object is a
    /// degenerate rect; see [`Batch::insert`]).
    Insert {
        /// Fresh object id (duplicates are rejected on LBU/GBU indexes).
        oid: ObjectId,
        /// The object's extent.
        rect: Rect,
    },
    /// Move an object from `old` to `new` with the index's configured
    /// update strategy (the bottom-up hot path).
    Update {
        /// The object to move.
        oid: ObjectId,
        /// Where the object currently is.
        old: Point,
        /// Where it goes.
        new: Point,
    },
    /// Delete the object `oid` located at `position`. A miss is counted
    /// in [`BatchReport::missing_deletes`], not an error.
    Delete {
        /// The object to remove.
        oid: ObjectId,
        /// Where the object is indexed.
        position: Point,
    },
}

impl Op {
    /// Short display name ("insert" / "update" / "delete").
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Op::Insert { .. } => "insert",
            Op::Update { .. } => "update",
            Op::Delete { .. } => "delete",
        }
    }
}

/// An ordered batch of mixed write operations, applied atomically with
/// respect to the write-ahead log (see the crate docs).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Batch {
    ops: Vec<Op>,
}

impl Batch {
    /// An empty batch.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty batch with room for `n` operations.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        Self {
            ops: Vec::with_capacity(n),
        }
    }

    /// Queue a point-object insert.
    pub fn insert(&mut self, oid: ObjectId, position: Point) -> &mut Self {
        self.push(Op::Insert {
            oid,
            rect: Rect::from_point(position),
        })
    }

    /// Queue an insert with a rectangular extent.
    pub fn insert_rect(&mut self, oid: ObjectId, rect: Rect) -> &mut Self {
        self.push(Op::Insert { oid, rect })
    }

    /// Queue a move from `old` to `new`.
    pub fn update(&mut self, oid: ObjectId, old: Point, new: Point) -> &mut Self {
        self.push(Op::Update { oid, old, new })
    }

    /// Queue a delete of `oid` at `position`.
    pub fn delete(&mut self, oid: ObjectId, position: Point) -> &mut Self {
        self.push(Op::Delete { oid, position })
    }

    /// Queue an already-built [`Op`].
    pub fn push(&mut self, op: Op) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// The queued operations, in application order.
    #[must_use]
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of queued operations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Drop every queued operation, keeping the allocation (for reuse
    /// across rounds of a load loop).
    pub fn clear(&mut self) {
        self.ops.clear();
    }
}

impl FromIterator<Op> for Batch {
    fn from_iter<I: IntoIterator<Item = Op>>(iter: I) -> Self {
        Self {
            ops: iter.into_iter().collect(),
        }
    }
}

impl Extend<Op> for Batch {
    fn extend<I: IntoIterator<Item = Op>>(&mut self, iter: I) {
        self.ops.extend(iter);
    }
}

/// What applying a [`Batch`] did, per operation class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchReport {
    /// Operations applied (equals the batch length on success).
    pub applied: u64,
    /// Inserts performed.
    pub inserted: u64,
    /// Updates performed.
    pub updated: u64,
    /// Deletes that found (and removed) their object.
    pub deleted: u64,
    /// Deletes whose object was not indexed at the stated position
    /// (counted, not an error — batch streams are often replayed).
    pub missing_deletes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_builders_queue_in_order() {
        let mut b = Batch::with_capacity(4);
        b.insert(1, Point::new(0.1, 0.1))
            .update(1, Point::new(0.1, 0.1), Point::new(0.2, 0.2))
            .delete(1, Point::new(0.2, 0.2));
        b.insert_rect(2, Rect::new(0.0, 0.0, 0.5, 0.5));
        assert_eq!(b.len(), 4);
        assert!(!b.is_empty());
        assert_eq!(b.ops()[0].name(), "insert");
        assert_eq!(b.ops()[1].name(), "update");
        assert_eq!(b.ops()[2].name(), "delete");
        assert!(matches!(b.ops()[3], Op::Insert { oid: 2, .. }));
        b.clear();
        assert!(b.is_empty());
    }

    #[test]
    fn batch_collects_from_op_iterators() {
        let ops = vec![
            Op::Insert {
                oid: 9,
                rect: Rect::from_point(Point::new(0.3, 0.3)),
            },
            Op::Delete {
                oid: 9,
                position: Point::new(0.3, 0.3),
            },
        ];
        let mut b: Batch = ops.iter().copied().collect();
        assert_eq!(b.len(), 2);
        b.extend(ops);
        assert_eq!(b.len(), 4);
    }
}
