//! One construction path for every index: backend × open mode ×
//! durability × strategy.
//!
//! [`IndexBuilder`] subsumes the historical direct constructors
//! (`create_in_memory` / `create_on` / `open_on` / `recover_on` /
//! `recover`), which were deprecated for one release and have been
//! removed. Pick a strategy, point the builder at a backend, choose an
//! [`OpenMode`], and build either the clonable [`Bur`] handle (the
//! default — shared, DGL-locked, batch-first) or a raw [`RTreeIndex`]
//! for single-threaded embedding.
//!
//! ```
//! use bur_core::IndexBuilder;
//! use bur_geom::Point;
//!
//! // A durable GBU index on an in-memory disk, as one shared handle.
//! let bur = IndexBuilder::generalized().durable().build().unwrap();
//! bur.insert(1, Point::new(0.4, 0.4)).unwrap();
//! assert_eq!(bur.len(), 1);
//! ```

use crate::config::{Durability, IndexOptions, UpdateStrategy, WalOptions};
use crate::error::{CoreError, CoreResult};
use crate::handle::Bur;
use crate::index::{RTreeIndex, RecoveryReport};
use bur_storage::{DiskBackend, FileDisk, SyncPolicy};
use std::path::PathBuf;
use std::sync::Arc;

/// How the builder treats the backend's existing content.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OpenMode {
    /// Build a fresh index. The backend must be empty (a file backend is
    /// created; an existing file is rejected rather than clobbered).
    #[default]
    Create,
    /// Open a persisted index. Durability is a property of the *file*:
    /// when the stored metadata records a write-ahead log — or the
    /// options ask for one — the log is replayed first (always safe; a
    /// cleanly shut down log replays to exactly the stored image).
    Open,
    /// Recover a durable index after a crash: replay the write-ahead log
    /// up to the last durable commit, rebuild in-memory state, and
    /// checkpoint. The [`RecoveryReport`] is available from
    /// [`IndexBuilder::build_with_report`] /
    /// [`Bur::recovery_report`].
    Recover,
}

/// Which page store the index lives on.
enum Backend {
    /// A fresh in-memory disk (the experiment default).
    Memory,
    /// A page file at this path.
    File(PathBuf),
    /// A caller-supplied disk (fault-injection wrappers, shared disks).
    Disk(Arc<dyn DiskBackend>),
}

/// Builder for every way of constructing an index — see the
/// crate docs.
///
/// Defaults: GBU strategy with paper tuning, in-memory backend,
/// [`OpenMode::Create`], no durability.
#[must_use = "builders do nothing until `build*` is called"]
pub struct IndexBuilder {
    opts: IndexOptions,
    mode: OpenMode,
    backend: Backend,
}

impl Default for IndexBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl IndexBuilder {
    /// Default options (GBU), in-memory backend, create mode.
    pub fn new() -> Self {
        Self::with_options(IndexOptions::default())
    }

    /// Start from explicit [`IndexOptions`].
    pub fn with_options(opts: IndexOptions) -> Self {
        Self {
            opts,
            mode: OpenMode::Create,
            backend: Backend::Memory,
        }
    }

    /// Start from the classic top-down (TD) update strategy.
    pub fn top_down() -> Self {
        Self::with_options(IndexOptions::top_down())
    }

    /// Start from the localized bottom-up (LBU) strategy.
    pub fn localized() -> Self {
        Self::with_options(IndexOptions::localized())
    }

    /// Start from the generalized bottom-up (GBU) strategy — the
    /// paper's contribution and the default.
    pub fn generalized() -> Self {
        Self::with_options(IndexOptions::generalized())
    }

    // ---- options ---------------------------------------------------------

    /// Replace the update strategy.
    pub fn strategy(mut self, strategy: UpdateStrategy) -> Self {
        self.opts.strategy = strategy;
        self
    }

    /// Page size in bytes (paper default: 1024).
    pub fn page_size(mut self, bytes: usize) -> Self {
        self.opts.page_size = bytes;
        self
    }

    /// Buffer-pool capacity in frames.
    pub fn buffer_frames(mut self, frames: usize) -> Self {
        self.opts.buffer_frames = frames;
        self
    }

    /// Write-ahead-logged durability with default [`WalOptions`].
    pub fn durable(mut self) -> Self {
        self.opts.durability = Durability::Wal(WalOptions::default());
        self
    }

    /// Explicit durability mode.
    pub fn durability(mut self, durability: Durability) -> Self {
        self.opts.durability = durability;
        self
    }

    /// Set the WAL sync cadence, turning durability on (with otherwise
    /// default [`WalOptions`]) if it was off.
    pub fn sync_policy(mut self, sync: SyncPolicy) -> Self {
        let mut wopts = match self.opts.durability {
            Durability::Wal(w) => w,
            Durability::None => WalOptions::default(),
        };
        wopts.sync = sync;
        self.opts.durability = Durability::Wal(wopts);
        self
    }

    /// Set the WAL commit batch size (one group commit record per this
    /// many operations), turning durability on if it was off.
    pub fn commit_batch(mut self, ops: u32) -> Self {
        let mut wopts = match self.opts.durability {
            Durability::Wal(w) => w,
            Durability::None => WalOptions::default(),
        };
        wopts.batch_ops = ops;
        self.opts.durability = Durability::Wal(wopts);
        self
    }

    /// Arbitrary option tweaks in one closure (escape hatch for the
    /// long tail: split policy, eviction, min fill, ...).
    pub fn tune(mut self, f: impl FnOnce(&mut IndexOptions)) -> Self {
        f(&mut self.opts);
        self
    }

    /// The options as configured so far.
    #[must_use]
    pub fn options(&self) -> &IndexOptions {
        &self.opts
    }

    // ---- backend ---------------------------------------------------------

    /// A fresh in-memory disk (the default backend).
    pub fn in_memory(mut self) -> Self {
        self.backend = Backend::Memory;
        self
    }

    /// A page file at `path` (created in [`OpenMode::Create`], opened
    /// otherwise).
    pub fn file(mut self, path: impl Into<PathBuf>) -> Self {
        self.backend = Backend::File(path.into());
        self
    }

    /// A caller-supplied disk backend (fault-injection wrappers, shared
    /// in-memory disks for crash drills, ...).
    pub fn disk(mut self, disk: Arc<dyn DiskBackend>) -> Self {
        self.backend = Backend::Disk(disk);
        self
    }

    // ---- open mode -------------------------------------------------------

    /// Set the open mode explicitly.
    pub fn mode(mut self, mode: OpenMode) -> Self {
        self.mode = mode;
        self
    }

    /// Build a fresh index ([`OpenMode::Create`], the default).
    pub fn create(self) -> Self {
        self.mode(OpenMode::Create)
    }

    /// Open a persisted index ([`OpenMode::Open`]).
    pub fn open(self) -> Self {
        self.mode(OpenMode::Open)
    }

    /// Recover a durable index after a crash ([`OpenMode::Recover`]).
    pub fn recover(self) -> Self {
        self.mode(OpenMode::Recover)
    }

    // ---- build -----------------------------------------------------------

    /// Build the clonable, DGL-locked [`Bur`] handle (the primary entry
    /// point; share it across threads by cloning).
    pub fn build(self) -> CoreResult<Bur> {
        let (index, report) = self.build_index_with_report()?;
        Ok(Bur::from_index_with_report(index, report))
    }

    /// Build a [`Bur`] handle and return the recovery report alongside
    /// (`None` unless the build actually replayed a log).
    pub fn build_with_report(self) -> CoreResult<(Bur, Option<RecoveryReport>)> {
        let (index, report) = self.build_index_with_report()?;
        Ok((Bur::from_index_with_report(index, report), report))
    }

    /// Build a raw single-threaded [`RTreeIndex`] (benches, CLI tools,
    /// anything that wants `&mut` access without a lock).
    pub fn build_index(self) -> CoreResult<RTreeIndex> {
        Ok(self.build_index_with_report()?.0)
    }

    /// Build a raw [`RTreeIndex`] and the recovery report, when the
    /// build replayed a log.
    pub fn build_index_with_report(self) -> CoreResult<(RTreeIndex, Option<RecoveryReport>)> {
        let Self {
            mut opts,
            mode,
            backend,
        } = self;
        if matches!(mode, OpenMode::Recover) && matches!(opts.durability, Durability::None) {
            // Recovery presupposes a log; upgrade quietly like `open`
            // does for files whose metadata records a WAL anchor.
            opts = opts.with_durability(Durability::Wal(WalOptions::default()));
        }
        let disk: Arc<dyn DiskBackend> = match backend {
            Backend::Memory => {
                if !matches!(mode, OpenMode::Create) {
                    return Err(CoreError::BadConfig(
                        "a fresh in-memory backend can only be created; \
                         pass the shared disk of an existing index with `disk(...)`"
                            .into(),
                    ));
                }
                Arc::new(bur_storage::MemDisk::new(opts.page_size))
            }
            Backend::File(path) => {
                let disk = if matches!(mode, OpenMode::Create) {
                    FileDisk::create(&path, opts.page_size)
                } else {
                    FileDisk::open(&path, opts.page_size)
                };
                Arc::new(disk.map_err(|e| {
                    CoreError::BadConfig(format!("cannot open {}: {e}", path.display()))
                })?)
            }
            Backend::Disk(disk) => disk,
        };
        match mode {
            OpenMode::Create => Ok((RTreeIndex::create_on_inner(disk, opts)?, None)),
            OpenMode::Open => Ok((RTreeIndex::open_on_inner(disk, opts)?, None)),
            OpenMode::Recover => {
                let (index, report) = RTreeIndex::recover_on_inner(disk, opts)?;
                Ok((index, Some(report)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bur_geom::Point;
    use bur_storage::MemDisk;

    #[test]
    fn create_open_recover_roundtrip_on_shared_disk() {
        let disk = Arc::new(MemDisk::new(1024));
        let mut index = IndexBuilder::generalized()
            .durable()
            .disk(disk.clone())
            .build_index()
            .unwrap();
        index.insert(1, Point::new(0.4, 0.4)).unwrap();
        drop(index); // crash: no clean shutdown

        let (recovered, report) = IndexBuilder::generalized()
            .disk(disk.clone())
            .recover()
            .build_index_with_report()
            .unwrap();
        assert_eq!(recovered.len(), 1);
        let report = report.expect("recover mode must produce a report");
        assert_eq!(report.committed_ops, 1);
        drop(recovered);

        // `open` on a durable disk replays the (clean) log too.
        let reopened = IndexBuilder::generalized()
            .disk(disk)
            .open()
            .build_index()
            .unwrap();
        assert_eq!(reopened.len(), 1);
        assert!(reopened.is_durable());
    }

    #[test]
    fn in_memory_backend_rejects_open_modes() {
        for mode in [OpenMode::Open, OpenMode::Recover] {
            let err = IndexBuilder::new().mode(mode).build_index().unwrap_err();
            assert!(
                err.to_string().contains("in-memory"),
                "unexpected error: {err}"
            );
        }
    }

    #[test]
    fn option_knobs_reach_the_index() {
        let index = IndexBuilder::top_down()
            .page_size(2048)
            .buffer_frames(64)
            .tune(|o| o.min_fill = 0.3)
            .build_index()
            .unwrap();
        assert_eq!(index.options().page_size, 2048);
        assert_eq!(index.options().buffer_frames, 64);
        assert!((index.options().min_fill - 0.3).abs() < f32::EPSILON);
        assert!(matches!(index.options().strategy, UpdateStrategy::TopDown));
        assert!(!index.is_durable());
    }

    #[test]
    fn sync_policy_and_commit_batch_imply_durability() {
        let b = IndexBuilder::new().sync_policy(SyncPolicy::Manual);
        let Durability::Wal(w) = b.options().durability else {
            panic!("sync_policy must enable the WAL");
        };
        assert_eq!(w.sync, SyncPolicy::Manual);
        let b = IndexBuilder::new().commit_batch(16);
        let Durability::Wal(w) = b.options().durability else {
            panic!("commit_batch must enable the WAL");
        };
        assert_eq!(w.batch_ops, 16);
    }
}
