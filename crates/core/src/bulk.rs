//! Bulk loading: STR (Sort-Tile-Recursive) and Hilbert packing.
//!
//! *Extensions beyond the paper* used by the experiment harness to build
//! the initial million-object trees quickly. Nodes are packed to 66 %
//! utilization — the figure the paper quotes for its R-trees — so a
//! bulk-loaded tree is statistically equivalent to an incrementally built
//! one for the update experiments (the equivalence is checked in the
//! integration tests).
//!
//! Two packings are provided: STR tiles the space into √n × √n slices;
//! Hilbert packing (Kamel & Faloutsos, cited by the paper's related work)
//! sorts objects along the Hilbert curve and packs runs sequentially —
//! simpler, and with locality good enough that the two produce trees of
//! comparable query quality.

use crate::config::IndexOptions;
use crate::error::CoreResult;
use crate::index::RTreeIndex;
use crate::node::{InternalEntry, LeafEntry, Node, ObjectId};
use crate::tree::RTree;
use bur_geom::Point;
use bur_storage::{DiskBackend, MemDisk, PageId};
use std::sync::Arc;

/// Node utilization targeted by the packer (the paper: "66 % node
/// utilization").
pub const BULK_FILL: f64 = 0.66;

/// Partition `len` items into contiguous chunks of roughly `target` size
/// such that every chunk holds at least `min` and at most `cap` items
/// (possible whenever `min <= cap / 2`, which the index config enforces).
/// The trailing chunk is rebalanced rather than left underfull.
fn balanced_chunks(
    len: usize,
    target: usize,
    min: usize,
    cap: usize,
) -> Vec<std::ops::Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let mut r = len.div_ceil(target).max(1);
    while r > 1 && len / r < min {
        r -= 1;
    }
    let base = len / r;
    let extra = len % r;
    debug_assert!(
        base + usize::from(extra > 0) <= cap || r == 1,
        "chunk exceeds capacity"
    );
    let mut out = Vec::with_capacity(r);
    let mut start = 0;
    for i in 0..r {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    out
}

impl RTreeIndex {
    /// Bulk load `items` into a fresh in-memory index.
    pub fn bulk_load_in_memory(
        opts: IndexOptions,
        items: &[(ObjectId, Point)],
    ) -> CoreResult<Self> {
        let disk = Arc::new(MemDisk::new(opts.page_size));
        Self::bulk_load_on(disk, opts, items)
    }

    /// Bulk load `items` into a fresh index on `disk` using STR packing.
    pub fn bulk_load_on(
        disk: Arc<dyn DiskBackend>,
        opts: IndexOptions,
        items: &[(ObjectId, Point)],
    ) -> CoreResult<Self> {
        let mut index = Self::create_on_inner(disk, opts)?;
        if items.is_empty() {
            return Ok(index);
        }
        // A durable build logs nothing page-by-page: the final checkpoint
        // flushes the finished tree as the base image anyway, and gating
        // every bulk write would pin the whole index in memory.
        let durable = index.tree.wal.is_some();
        if durable {
            index.tree.pool.set_wal_mode(false);
        }
        let tree = &mut index.tree;

        // ---- leaf level: sort by x, tile into vertical slices, sort each
        // slice by y, pack runs of `leaf_fill` objects per leaf ----
        let leaf_cap = tree.leaf_cap();
        let leaf_min = tree.min_fill_leaf();
        let leaf_fill = ((leaf_cap as f64 * BULK_FILL) as usize).max(1);
        let mut sorted: Vec<(ObjectId, Point)> = items.to_vec();
        sorted.sort_by(|a, b| a.1.x.total_cmp(&b.1.x));
        let n = sorted.len();
        let leaf_count = n.div_ceil(leaf_fill);
        let slice_count = (leaf_count as f64).sqrt().ceil() as usize;
        let slice_size = n.div_ceil(slice_count).max(1);

        let mut level_entries: Vec<InternalEntry> = Vec::with_capacity(leaf_count);
        for slice_range in balanced_chunks(n, slice_size, leaf_min.min(n), usize::MAX) {
            let slice = &mut sorted[slice_range];
            slice.sort_by(|a, b| a.1.y.total_cmp(&b.1.y));
            for run_range in balanced_chunks(slice.len(), leaf_fill, leaf_min, leaf_cap) {
                let run = &slice[run_range];
                let pid = tree.bulk_alloc()?;
                let mut node = Node::new_leaf();
                for &(oid, p) in run {
                    node.leaf_entries_mut().push(LeafEntry::point(oid, p));
                    tree.hash_place(oid, pid)?;
                }
                let mbr = node.mbr();
                tree.write_node(pid, &node)?;
                level_entries.push(InternalEntry {
                    child: pid,
                    rect: mbr,
                });
            }
        }

        // ---- internal levels: tile the child entries the same way ----
        let internal_cap = tree.internal_cap();
        let internal_min = tree.min_fill_internal();
        let internal_fill = ((internal_cap as f64 * BULK_FILL) as usize).max(2);
        let mut level: u16 = 1;
        while level_entries.len() > 1 {
            let count = level_entries.len();
            let mut next: Vec<InternalEntry> = Vec::new();
            level_entries.sort_by(|a, b| a.rect.center().x.total_cmp(&b.rect.center().x));
            let node_count = count.div_ceil(internal_fill);
            let slices = (node_count as f64).sqrt().ceil() as usize;
            let per_slice = count.div_ceil(slices).max(1);
            // The top levels may hold fewer entries than the minimum fill;
            // the (future) root is allowed to be underfull.
            let min_here = internal_min.min(count);
            for slice_range in balanced_chunks(count, per_slice, min_here, usize::MAX) {
                let slice = &mut level_entries[slice_range];
                slice.sort_by(|a, b| a.rect.center().y.total_cmp(&b.rect.center().y));
                for run_range in balanced_chunks(slice.len(), internal_fill, min_here, internal_cap)
                {
                    let run = slice[run_range].to_vec();
                    let pid = tree.bulk_alloc()?;
                    let mut node = Node::new_internal(level);
                    node.internal_entries_mut().extend(run.iter().copied());
                    if tree.opts.strategy.needs_parent_pointers() && level == 1 {
                        for e in &run {
                            tree.bulk_set_parent(e.child, pid)?;
                        }
                    }
                    let mbr = node.mbr();
                    tree.write_node(pid, &node)?;
                    next.push(InternalEntry {
                        child: pid,
                        rect: mbr,
                    });
                }
            }
            level_entries = next;
            level += 1;
        }

        // ---- install the built root ----
        let root_entry = level_entries[0];
        tree.bulk_set_root(root_entry.child)?;
        *tree.len.get_mut() = items.len() as u64;
        // A durable index checkpoints the freshly built tree as its base
        // image; one checkpoint is far cheaper than logging every page.
        if durable {
            tree.pool.set_wal_mode(true);
        }
        index.tree.wal_checkpoint()?;
        Ok(index)
    }

    /// Bulk load `items` into a fresh in-memory index using Hilbert
    /// packing.
    pub fn bulk_load_hilbert_in_memory(
        opts: IndexOptions,
        items: &[(ObjectId, Point)],
    ) -> CoreResult<Self> {
        let disk = Arc::new(MemDisk::new(opts.page_size));
        Self::bulk_load_hilbert_on(disk, opts, items)
    }

    /// Bulk load `items` into a fresh index on `disk` by sorting along
    /// the Hilbert curve and packing sequential runs (Kamel & Faloutsos
    /// packing, an extension the paper's related work points at).
    pub fn bulk_load_hilbert_on(
        disk: Arc<dyn DiskBackend>,
        opts: IndexOptions,
        items: &[(ObjectId, Point)],
    ) -> CoreResult<Self> {
        const ORDER: u32 = 16; // 2^16 cells per axis ≈ f32 mantissa scale
        let mut index = Self::create_on_inner(disk, opts)?;
        if items.is_empty() {
            return Ok(index);
        }
        // See bulk_load_on: a durable build relies on the final
        // checkpoint, not per-page logging.
        let durable = index.tree.wal.is_some();
        if durable {
            index.tree.pool.set_wal_mode(false);
        }
        let tree = &mut index.tree;

        // ---- leaf level: one global Hilbert sort, sequential runs ----
        let leaf_cap = tree.leaf_cap();
        let leaf_min = tree.min_fill_leaf();
        let leaf_fill = ((leaf_cap as f64 * BULK_FILL) as usize).max(1);
        let mut sorted: Vec<(ObjectId, Point)> = items.to_vec();
        sorted.sort_by_key(|&(_, p)| bur_geom::hilbert::hilbert_key(p, ORDER));

        let mut level_entries: Vec<InternalEntry> = Vec::new();
        for run_range in balanced_chunks(
            sorted.len(),
            leaf_fill,
            leaf_min.min(sorted.len()),
            leaf_cap,
        ) {
            let run = &sorted[run_range];
            let pid = tree.bulk_alloc()?;
            let mut node = Node::new_leaf();
            for &(oid, p) in run {
                node.leaf_entries_mut().push(LeafEntry::point(oid, p));
                tree.hash_place(oid, pid)?;
            }
            let mbr = node.mbr();
            tree.write_node(pid, &node)?;
            level_entries.push(InternalEntry {
                child: pid,
                rect: mbr,
            });
        }

        // ---- internal levels: children are already curve-ordered, so
        // sequential runs preserve locality ----
        let internal_cap = tree.internal_cap();
        let internal_min = tree.min_fill_internal();
        let internal_fill = ((internal_cap as f64 * BULK_FILL) as usize).max(2);
        let mut level: u16 = 1;
        while level_entries.len() > 1 {
            let count = level_entries.len();
            let min_here = internal_min.min(count);
            let mut next: Vec<InternalEntry> = Vec::new();
            for run_range in balanced_chunks(count, internal_fill, min_here, internal_cap) {
                let run = level_entries[run_range].to_vec();
                let pid = tree.bulk_alloc()?;
                let mut node = Node::new_internal(level);
                node.internal_entries_mut().extend(run.iter().copied());
                if tree.opts.strategy.needs_parent_pointers() && level == 1 {
                    for e in &run {
                        tree.bulk_set_parent(e.child, pid)?;
                    }
                }
                let mbr = node.mbr();
                tree.write_node(pid, &node)?;
                next.push(InternalEntry {
                    child: pid,
                    rect: mbr,
                });
            }
            level_entries = next;
            level += 1;
        }

        let root_entry = level_entries[0];
        tree.bulk_set_root(root_entry.child)?;
        *tree.len.get_mut() = items.len() as u64;
        if durable {
            tree.pool.set_wal_mode(true);
        }
        index.tree.wal_checkpoint()?;
        Ok(index)
    }
}

// Helpers on RTree used only by the bulk loader.
impl RTree {
    fn bulk_alloc(&mut self) -> CoreResult<PageId> {
        let (pid, guard) = self.pool.new_page()?;
        drop(guard);
        Ok(pid)
    }

    fn bulk_set_parent(&mut self, child: PageId, parent: PageId) -> CoreResult<()> {
        let mut node = self.read_node(child)?;
        node.parent = parent;
        self.write_node(child, &node)
    }

    /// Replace the placeholder root created by index creation with the
    /// bulk-built tree, recycling the placeholder page.
    fn bulk_set_root(&mut self, new_root: PageId) -> CoreResult<()> {
        let old_root = self.root;
        self.free_pages.push(old_root);
        if let Some(s) = &mut self.summary {
            s.remove_leaf(old_root);
        }
        self.root = new_root;
        let node = self.read_node(new_root)?;
        self.height = node.level + 1;
        if let Some(s) = &mut self.summary {
            s.set_root_mbr(node.mbr());
        }
        Ok(())
    }
}
