//! Thread-safe index wrapper with DGL granule locking (Section 3.2.2).
//!
//! The paper runs its throughput study (Figure 8) with Dynamic Granular
//! Locking: searchers lock the granules their window overlaps, updaters
//! lock the granules of the leaves they touch, and "since a top-down
//! operation needs to acquire locks for all overlapping granules in a
//! top-down manner, it will meet up with locks made by the bottom-up
//! updates, thus achieving consistency".
//!
//! This wrapper reproduces that *logical* locking discipline on top of a
//! physically serialized index:
//!
//! * bottom-up updates (LBU/GBU) take an **X lock on the granule of the
//!   object's current leaf** (located through the hash index) plus a
//!   shared tree lock,
//! * top-down updates, which may touch any part of the tree, take the
//!   **tree granule exclusively**,
//! * queries take the **tree granule shared**.
//!
//! Physical execution is serialized by an internal mutex — a deliberate
//! model of the paper's testbed, where 50 client threads share one disk
//! and throughput is governed by per-operation I/O cost rather than
//! in-memory parallelism. Lock conflicts are resolved by try-and-retry
//! (no blocking while holding the physical mutex), so the wrapper cannot
//! deadlock.

use crate::config::UpdateStrategy;
use crate::error::CoreResult;
use crate::node::ObjectId;
use crate::stats::{OpStats, UpdateOutcome};
use crate::RTreeIndex;
use bur_dgl::{CommitBatch, CommitBatcher, Granule, LockManager, LockMode};
use bur_geom::{Point, Rect};
use bur_storage::IoSnapshot;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, Ordering};

/// A thread-safe, DGL-locked wrapper around [`RTreeIndex`].
pub struct ConcurrentIndex {
    inner: Mutex<RTreeIndex>,
    locks: LockManager,
    /// Per-granule commit hooks accumulated between group commit records
    /// (durable indexes with commit batching enabled; see
    /// [`ConcurrentIndex::set_commit_batching`]).
    batcher: CommitBatcher,
    /// Batch size; 0 or 1 means per-operation commits.
    batch_target: AtomicU32,
}

impl std::fmt::Debug for ConcurrentIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentIndex")
            .field("inner", &*self.inner.lock())
            .finish_non_exhaustive()
    }
}

impl ConcurrentIndex {
    /// Wrap an index for shared use.
    #[must_use]
    pub fn new(index: RTreeIndex) -> Self {
        Self {
            inner: Mutex::new(index),
            locks: LockManager::new(),
            batcher: CommitBatcher::new(),
            batch_target: AtomicU32::new(1),
        }
    }

    /// Create a fresh index on an in-memory disk and wrap it (shorthand
    /// for `ConcurrentIndex::new(RTreeIndex::create_in_memory(opts)?)`).
    pub fn create_in_memory(opts: crate::config::IndexOptions) -> CoreResult<Self> {
        Ok(Self::new(RTreeIndex::create_in_memory(opts)?))
    }

    /// Unwrap, returning the inner index.
    #[must_use]
    pub fn into_inner(self) -> RTreeIndex {
        self.inner.into_inner()
    }

    /// The granule lock manager (exposed for tests).
    #[must_use]
    pub fn lock_manager(&self) -> &LockManager {
        &self.locks
    }

    /// Enable per-granule commit batching on a durable index: each write
    /// registers a commit hook under the granule it locked, and every
    /// `ops` operations the accumulated hooks are flushed as **one**
    /// group commit record (see [`RTreeIndex::set_commit_batch`]). This
    /// recovers write concurrency under WAL mode — the per-operation
    /// critical section no longer pays page logging or a sync — at group
    /// commit's durability window (the unflushed tail of a batch may be
    /// lost to a crash). `1` restores per-operation commits. No-op on a
    /// non-durable index.
    pub fn set_commit_batching(&self, ops: u32) -> CoreResult<()> {
        let ops = ops.max(1);
        let mut index = self.inner.lock();
        index.set_commit_batch(ops)?;
        self.batch_target.store(ops, Ordering::Relaxed);
        if index.pending_commits() == 0 {
            self.batcher.drain();
        }
        Ok(())
    }

    /// Flush any operations pending in the current commit batch as one
    /// group commit record; returns the per-granule hooks it covered.
    pub fn flush_commits(&self) -> CoreResult<CommitBatch> {
        let mut index = self.inner.lock();
        index.flush_commits()?;
        Ok(self.batcher.drain())
    }

    /// `(operations batched, group commit records written)` over the
    /// wrapper's lifetime — the batching compression ratio.
    #[must_use]
    pub fn commit_batch_totals(&self) -> (u64, u64) {
        self.batcher.totals()
    }

    /// Register a finished write on `granule` with the commit batcher and
    /// drain the hooks whenever the core has just flushed a batch (its
    /// pending count returns to zero — on the batch boundary or a
    /// piggybacked checkpoint).
    fn after_write(&self, index: &mut RTreeIndex, granule: Granule) {
        if self.batch_target.load(Ordering::Relaxed) <= 1 || !index.is_durable() {
            return;
        }
        self.batcher.note(granule);
        if index.pending_commits() == 0 {
            self.batcher.drain();
        }
    }

    /// Move an object, acquiring the DGL granules its strategy requires.
    pub fn update(&self, oid: ObjectId, old: Point, new: Point) -> CoreResult<UpdateOutcome> {
        loop {
            let mut index = self.inner.lock();
            let bottom_up = !matches!(index.options().strategy, UpdateStrategy::TopDown);
            if bottom_up {
                let leaf = index.locate_leaf(oid)?;
                let Some(leaf_pid) = leaf else {
                    // Unknown object: let the strategy surface the error.
                    return index.update(oid, old, new);
                };
                let tree_s = self.locks.try_lock(Granule::Tree, LockMode::Shared);
                let leaf_x = self
                    .locks
                    .try_lock(Granule::Leaf(leaf_pid), LockMode::Exclusive);
                match (tree_s, leaf_x) {
                    (Ok(_t), Ok(_l)) => {
                        let outcome = index.update(oid, old, new)?;
                        self.after_write(&mut index, Granule::Leaf(leaf_pid));
                        return Ok(outcome);
                    }
                    _ => {
                        drop(index);
                        std::thread::yield_now();
                    }
                }
            } else {
                match self.locks.try_lock(Granule::Tree, LockMode::Exclusive) {
                    Ok(_g) => {
                        let outcome = index.update(oid, old, new)?;
                        self.after_write(&mut index, Granule::Tree);
                        return Ok(outcome);
                    }
                    Err(_) => {
                        drop(index);
                        std::thread::yield_now();
                    }
                }
            }
        }
    }

    /// Window query under a shared tree granule.
    pub fn query(&self, window: &Rect) -> CoreResult<Vec<ObjectId>> {
        loop {
            let index = self.inner.lock();
            match self.locks.try_lock(Granule::Tree, LockMode::Shared) {
                Ok(_g) => return index.query(window),
                Err(_) => {
                    drop(index);
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Insert a fresh object (tree granule exclusive: inserts can split).
    pub fn insert(&self, oid: ObjectId, position: Point) -> CoreResult<()> {
        loop {
            let mut index = self.inner.lock();
            match self.locks.try_lock(Granule::Tree, LockMode::Exclusive) {
                Ok(_g) => {
                    index.insert(oid, position)?;
                    self.after_write(&mut index, Granule::Tree);
                    return Ok(());
                }
                Err(_) => {
                    drop(index);
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Delete an object (tree granule exclusive).
    pub fn delete(&self, oid: ObjectId, position: Point) -> CoreResult<bool> {
        loop {
            let mut index = self.inner.lock();
            match self.locks.try_lock(Granule::Tree, LockMode::Exclusive) {
                Ok(_g) => {
                    let found = index.delete(oid, position)?;
                    if found {
                        self.after_write(&mut index, Granule::Tree);
                    }
                    return Ok(found);
                }
                Err(_) => {
                    drop(index);
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Number of indexed objects.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.inner.lock().len()
    }

    /// `true` when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the physical I/O counters.
    #[must_use]
    pub fn io_snapshot(&self) -> IoSnapshot {
        self.inner.lock().io_stats().snapshot()
    }

    /// Snapshot of the operation counters.
    pub fn with_op_stats<R>(&self, f: impl FnOnce(&OpStats) -> R) -> R {
        f(self.inner.lock().op_stats())
    }

    /// Run the deep invariant check.
    pub fn validate(&self) -> CoreResult<()> {
        self.inner.lock().validate()
    }
}

impl RTreeIndex {
    /// The page currently holding `oid` according to the hash index
    /// (`None` for TD indexes, which keep no secondary index).
    pub fn locate_leaf(&self, oid: ObjectId) -> CoreResult<Option<bur_storage::PageId>> {
        match &self.tree.hash {
            Some(h) => Ok(h.get(oid)?),
            None => Ok(None),
        }
    }
}
