//! The leaf-local concurrent write path: plan-then-write batches that
//! never leave their leaf granules.
//!
//! [`crate::Bur::apply`] classifies a pure-update batch by the leaf each
//! object currently occupies (its DGL granule) and hands every group to
//! this module **under a shared tree granule and a shared physical
//! lock** — several batches on disjoint leaves run at the same time.
//! The path is two-phase:
//!
//! 1. **Plan** ([`plan_group`]): replay the group's updates against an
//!    in-memory shadow of the leaf and of its *official* MBR (the rect
//!    stored in the parent entry), reading pages but writing nothing.
//!    Every op must resolve to the strategy's leaf-local outcomes —
//!    `InPlace`, or `Extended` with the enlargement bounded by the
//!    parent node MBR. Anything else (sibling shift, underflow, ascent,
//!    a root leaf, a GBU fast mover whose τ policy prefers the shift)
//!    reports "escalate", and the **whole batch** falls back to the
//!    classic exclusive path with zero pages written.
//! 2. **Execute** ([`execute_group`]): write the final shadow states —
//!    parent entry first, then the leaf ("grow before move"), each under
//!    its page write latch.
//!
//! Because nothing is written until every op of every group has a
//! feasible plan, the one-group-commit-record-per-batch contract
//! survives escalation trivially, and a concurrently applied batch
//! produces *exactly* the state sequential application would: ops on
//! the same leaf replay in batch order against the shadow, and ops on
//! different leaves only interact through the parent node MBR — which
//! leaf-local outcomes never change (enlargements are clipped to it).
//! The full argument lives in `docs/ARCHITECTURE.md` ("Latching
//! protocol").

use crate::config::UpdateStrategy;
use crate::error::CoreResult;
use crate::gbu::iextend_mbr;
use crate::index::RTreeIndex;
use crate::node::{Node, ObjectId};
use crate::stats::UpdateOutcome;
use bur_geom::{Point, Rect};
use bur_storage::{PageId, INVALID_PAGE};

/// One update destined for a leaf group: `(position in the original
/// batch, object, old location, new location)`.
pub(crate) type GroupOp = (usize, ObjectId, Point, Point);

/// The fully planned effect of one leaf group (no page written yet).
pub(crate) struct GroupPlan {
    /// The leaf granule's page.
    pub(crate) leaf_pid: PageId,
    /// Final shadow state of the leaf node.
    leaf: Node,
    /// `(parent page, entry index, final official rect)` when the
    /// official MBR grew; `None` when every op stayed in place.
    parent: Option<(PageId, usize, Rect)>,
    /// Per-op outcomes in group order (stats recording).
    pub(crate) outcomes: Vec<UpdateOutcome>,
}

/// Plan `ops` (in batch order) against the leaf on `leaf_pid`.
///
/// Returns `Ok(None)` when any op needs more than the leaf-local
/// repairs; the caller then escalates the whole batch — nothing has
/// been written, so the classic path replays it from scratch and its
/// result is identical to sequential application.
pub(crate) fn plan_group(
    index: &RTreeIndex,
    leaf_pid: PageId,
    ops: &[GroupOp],
) -> CoreResult<Option<GroupPlan>> {
    let tree = &index.tree;
    // A root leaf may grow its own MBR (summary root-MBR + meta state):
    // always escalate it.
    if leaf_pid == tree.root || tree.height < 2 {
        return Ok(None);
    }
    let mut leaf = tree.read_node(leaf_pid)?;
    if !leaf.is_leaf() {
        // Stale hash entry; the classic path surfaces the real error.
        return Ok(None);
    }
    // Locate the parent exactly the way the strategy would: LBU through
    // the leaf's parent pointer, GBU through the summary (which also
    // supplies the bounding parent MBR without a page read).
    let (parent_pid, summary_mbr) = match tree.opts.strategy {
        UpdateStrategy::Localized(_) => {
            if leaf.parent == INVALID_PAGE {
                return Ok(None);
            }
            (leaf.parent, None)
        }
        UpdateStrategy::Generalized(_) => {
            let summary = tree.summary.as_ref().expect("GBU requires the summary");
            let Some(ppid) = summary.find_parent_at(leaf_pid, 1) else {
                return Ok(None);
            };
            let Some(mbr) = summary.entry(ppid).map(|e| e.mbr) else {
                return Ok(None);
            };
            (ppid, Some(mbr))
        }
        UpdateStrategy::TopDown => return Ok(None),
    };
    let parent = tree.read_node(parent_pid)?;
    let Some(pidx) = parent.child_index(leaf_pid) else {
        return Ok(None);
    };
    // The bound on any extension. Stable for the whole shared phase:
    // concurrent groups only enlarge sibling entries *within* it, so the
    // union of the parent's entry rects cannot change.
    let parent_mbr = summary_mbr.unwrap_or_else(|| parent.mbr());
    let official0 = parent.internal_entries()[pidx].rect;
    let mut official = official0;
    let mut outcomes = Vec::with_capacity(ops.len());
    for &(_, oid, old, new) in ops {
        if let UpdateStrategy::Generalized(_) = tree.opts.strategy {
            // The O(1) root-MBR check; a miss means a top-down update.
            let summary = tree.summary.as_ref().expect("GBU requires the summary");
            if !summary.root_mbr().contains_point(&new) {
                return Ok(None);
            }
        }
        let Some(idx) = leaf.oid_index(oid) else {
            // Not in the locked leaf (duplicate-update races cannot
            // happen under the granule, so this is corruption); the
            // classic path reports it.
            return Ok(None);
        };
        let new_rect = Rect::from_point(new);
        if leaf.mbr().contains_point(&new) || official.contains_point(&new) {
            leaf.leaf_entries_mut()[idx].rect = new_rect;
            outcomes.push(UpdateOutcome::InPlace);
            continue;
        }
        let enlarged = match tree.opts.strategy {
            UpdateStrategy::Localized(p) => {
                official.expanded_uniform(p.epsilon).clipped_to(&parent_mbr)
            }
            UpdateStrategy::Generalized(p) => {
                // Fast movers (moved > τ) try the sibling shift *before*
                // the extension — a non-leaf-local repair. Keep the τ
                // policy by escalating them.
                if old.distance(&new) > p.distance_threshold {
                    return Ok(None);
                }
                iextend_mbr(official, new, p.epsilon, parent_mbr)
            }
            UpdateStrategy::TopDown => unreachable!("rejected above"),
        };
        if !enlarged.contains_point(&new) {
            // Needs a shift, an ascent or a top-down update.
            return Ok(None);
        }
        official = enlarged;
        leaf.leaf_entries_mut()[idx].rect = new_rect;
        outcomes.push(UpdateOutcome::Extended);
    }
    let parent = (official != official0).then_some((parent_pid, pidx, official));
    Ok(Some(GroupPlan {
        leaf_pid,
        leaf,
        parent,
        outcomes,
    }))
}

/// Write one planned group and append the written pages to `written`
/// (the batch's commit set).
///
/// # Latch invariants
///
/// The caller holds the leaf's exclusive granule and the shared tree
/// granule, so the leaf page and the parent's entry *for this leaf* are
/// owned by this group. Sibling entries of the same parent page may be
/// patched by other groups at the same time, which is why the parent is
/// read-modify-written under one continuous page write latch. The
/// parent lands first ("grow before move"): a crash or a concurrent
/// query between the two writes observes only benign slack — a parent
/// entry rect covering strictly more than the leaf content — never an
/// object outside its official MBR.
pub(crate) fn execute_group(
    index: &RTreeIndex,
    plan: &GroupPlan,
    written: &mut Vec<PageId>,
) -> CoreResult<()> {
    let tree = &index.tree;
    if let Some((ppid, pidx, rect)) = plan.parent {
        let guard = tree.pool.fetch(ppid)?;
        {
            let mut data = guard.write();
            let mut parent = Node::decode(ppid, &data)?;
            debug_assert_eq!(parent.internal_entries()[pidx].child, plan.leaf_pid);
            parent.internal_entries_mut()[pidx].rect = rect;
            parent.encode(&mut data);
        }
        written.push(ppid);
    }
    // Blind full-page write: the shadow is the complete new leaf state.
    let guard = tree.pool.fetch_for_overwrite(plan.leaf_pid)?;
    plan.leaf.encode(&mut guard.write());
    drop(guard);
    written.push(plan.leaf_pid);
    Ok(())
}
