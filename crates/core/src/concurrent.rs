//! The leaf-local concurrent write path: plan-then-write batches that
//! never leave their leaf granules.
//!
//! [`crate::Bur::apply`] classifies a batch by the leaf each operation
//! lands on (its DGL granule) and hands every group to this module
//! **under a shared tree granule and a shared physical lock** — several
//! batches on disjoint leaves run at the same time. Since the coupled
//! structural path, groups carry *mixed* operations: bottom-up updates,
//! inserts whose target leaf was chosen by a read-only
//! containment-constrained descent, and deletes located through the
//! object-id hash. The path is two-phase:
//!
//! 1. **Plan** ([`plan_group`]): replay the group's ops against an
//!    in-memory shadow of the leaf and of its *official* MBR (the rect
//!    stored in the parent entry), reading pages but writing nothing.
//!    Every op must resolve leaf-locally — updates to `InPlace` or
//!    `Extended`, inserts to an append whose official-rect growth stays
//!    inside the parent node MBR, deletes to a removal that keeps the
//!    leaf at or above min-fill. An insert that finds the leaf full
//!    reports [`Planned::MakeRoom`]: the caller splits that one leaf
//!    under a short exclusive section (its own commit) and retries the
//!    batch on the shared path. Anything else (sibling shift, underflow,
//!    ascent, a GBU fast mover whose τ policy prefers the shift)
//!    reports [`Planned::Escalate`], and the **whole batch** falls back
//!    to the classic exclusive path with zero pages written.
//! 2. **Execute** ([`execute_group`]): write the final shadow states —
//!    parent entry first, then the leaf ("grow before move"), each under
//!    its page write latch — then refresh the leaf's hash entries, the
//!    summary fullness bit and, for a root-leaf group, the seqlock root
//!    MBR.
//!
//! Because nothing is written until every op of every group has a
//! feasible plan, the one-group-commit-record-per-batch contract
//! survives escalation trivially. A concurrently applied batch produces
//! the *logical* state sequential application would — the same object
//! set, each object at the position its own op sequence dictates. The
//! physical arrangement may differ in benign slack only: a delete does
//! not re-tighten the parent entry rect the way CondenseTree would, and
//! an insert lands in the leaf the pre-batch tree suggested. Containment
//! (parent entry rect ⊇ leaf content) and the stability of every parent
//! *node* MBR hold throughout, which is what keeps the GBU summary
//! exact. The full argument lives in `docs/ARCHITECTURE.md` ("Latching
//! protocol").

use crate::config::UpdateStrategy;
use crate::error::CoreResult;
use crate::gbu::iextend_mbr;
use crate::index::RTreeIndex;
use crate::node::{LeafEntry, Node, ObjectId};
use crate::stats::UpdateOutcome;
use bur_geom::{Point, Rect};
use bur_storage::{PageId, INVALID_PAGE};

/// One operation destined for a leaf group, tagged with its position in
/// the original batch (error attribution).
#[derive(Debug, Clone, Copy)]
pub(crate) enum GroupOp {
    /// Bottom-up update of `oid` from `old` to `new`.
    Update {
        pos: usize,
        oid: ObjectId,
        old: Point,
        new: Point,
    },
    /// Insert of `oid` into this leaf (chosen by
    /// `RTreeIndex::locate_insert_leaf`).
    Insert {
        pos: usize,
        oid: ObjectId,
        rect: Rect,
    },
    /// Delete of `oid`, located here by the object-id hash.
    Delete {
        pos: usize,
        oid: ObjectId,
        position: Point,
    },
}

impl GroupOp {
    /// Position in the original batch.
    pub(crate) fn pos(&self) -> usize {
        match *self {
            GroupOp::Update { pos, .. }
            | GroupOp::Insert { pos, .. }
            | GroupOp::Delete { pos, .. } => pos,
        }
    }
}

/// What one planned op will do (stats + report accounting).
#[derive(Debug, Clone, Copy)]
pub(crate) enum OpEffect {
    /// An update, with the outcome class it resolved to.
    Update(UpdateOutcome),
    /// An insert.
    Insert,
    /// A delete.
    Delete,
}

/// Outcome of planning one leaf group.
pub(crate) enum Planned {
    /// Feasible: the fully planned effect, ready to execute.
    Ready(GroupPlan),
    /// An insert found the leaf full: split it under a short exclusive
    /// section (a content-neutral preparatory split) and retry.
    MakeRoom(PageId),
    /// Not leaf-local: replay the whole batch on the exclusive path
    /// (nothing has been written).
    Escalate,
}

/// The fully planned effect of one leaf group (no page written yet).
pub(crate) struct GroupPlan {
    /// The leaf granule's page.
    pub(crate) leaf_pid: PageId,
    /// Final shadow state of the leaf node.
    leaf: Node,
    /// `(parent page, entry index, final official rect)` when the
    /// official MBR grew; `None` when every op stayed in place (and for
    /// root-leaf groups, which have no parent).
    parent: Option<(PageId, usize, Rect)>,
    /// Per-op effects in group order (stats + report recording).
    pub(crate) outcomes: Vec<OpEffect>,
    /// Objects to point at this leaf in the hash index (inserts).
    hash_add: Vec<ObjectId>,
    /// Objects to drop from the hash index (deletes).
    hash_del: Vec<ObjectId>,
    /// Net object-count change (inserts − deletes), applied at commit.
    pub(crate) len_delta: i64,
    /// New root MBR to publish through the summary seqlock — root-leaf
    /// groups only (the `Granule::Leaf(root)` X guarantees the single
    /// writer the seqlock requires).
    root_mbr: Option<Rect>,
}

/// Plan `ops` (in batch order) against the leaf on `leaf_pid`.
pub(crate) fn plan_group(index: &RTreeIndex, leaf_pid: PageId, ops: &[GroupOp]) -> Planned {
    match plan_group_inner(index, leaf_pid, ops) {
        Ok(planned) => planned,
        // Read errors surface identically on the exclusive replay.
        Err(_) => Planned::Escalate,
    }
}

fn plan_group_inner(index: &RTreeIndex, leaf_pid: PageId, ops: &[GroupOp]) -> CoreResult<Planned> {
    let tree = &index.tree;
    if leaf_pid == tree.root || tree.height < 2 {
        return plan_root_leaf_group(index, ops);
    }
    let mut leaf = tree.read_node(leaf_pid)?;
    if !leaf.is_leaf() {
        // Stale hash entry; the classic path surfaces the real error.
        return Ok(Planned::Escalate);
    }
    let leaf_cap = tree.leaf_cap();
    // Locate the parent exactly the way the strategy would: LBU through
    // the leaf's parent pointer, GBU through the summary (which also
    // supplies the bounding parent MBR without a page read — and reads
    // it without blocking on any writer, the lock-free planning path).
    let (parent_pid, summary_mbr) = match tree.opts.strategy {
        UpdateStrategy::Localized(_) => {
            if leaf.parent == INVALID_PAGE {
                return Ok(Planned::Escalate);
            }
            (leaf.parent, None)
        }
        UpdateStrategy::Generalized(_) => {
            let summary = tree.summary.as_ref().expect("GBU requires the summary");
            let Some(ppid) = summary.find_parent_at(leaf_pid, 1) else {
                return Ok(Planned::Escalate);
            };
            let Some(mbr) = summary.entry(ppid).map(|e| e.mbr) else {
                return Ok(Planned::Escalate);
            };
            (ppid, Some(mbr))
        }
        UpdateStrategy::TopDown => return Ok(Planned::Escalate),
    };
    let parent = tree.read_node(parent_pid)?;
    let Some(pidx) = parent.child_index(leaf_pid) else {
        return Ok(Planned::Escalate);
    };
    // The bound on any extension. Stable for the whole shared phase:
    // concurrent groups only enlarge sibling entries *within* it, so the
    // union of the parent's entry rects cannot change.
    let parent_mbr = summary_mbr.unwrap_or_else(|| parent.mbr());
    let official0 = parent.internal_entries()[pidx].rect;
    let mut official = official0;
    let mut outcomes = Vec::with_capacity(ops.len());
    let mut hash_add = Vec::new();
    let mut hash_del = Vec::new();
    let mut len_delta = 0i64;
    for op in ops {
        match *op {
            GroupOp::Update { oid, old, new, .. } => {
                if let UpdateStrategy::Generalized(_) = tree.opts.strategy {
                    // The O(1) root-MBR check (a lock-free seqlock read);
                    // a miss means a top-down update.
                    let summary = tree.summary.as_ref().expect("GBU requires the summary");
                    if !summary.root_mbr().contains_point(&new) {
                        return Ok(Planned::Escalate);
                    }
                }
                let Some(idx) = leaf.oid_index(oid) else {
                    // Not in the locked leaf (duplicate-update races
                    // cannot happen under the granule, so this is an
                    // earlier same-batch delete or corruption); the
                    // classic path resolves it.
                    return Ok(Planned::Escalate);
                };
                let new_rect = Rect::from_point(new);
                if leaf.mbr().contains_point(&new) || official.contains_point(&new) {
                    leaf.leaf_entries_mut()[idx].rect = new_rect;
                    outcomes.push(OpEffect::Update(UpdateOutcome::InPlace));
                    continue;
                }
                let enlarged = match tree.opts.strategy {
                    UpdateStrategy::Localized(p) => {
                        official.expanded_uniform(p.epsilon).clipped_to(&parent_mbr)
                    }
                    UpdateStrategy::Generalized(p) => {
                        // Fast movers (moved > τ) try the sibling shift
                        // *before* the extension — a non-leaf-local
                        // repair. Keep the τ policy by escalating them.
                        if old.distance(&new) > p.distance_threshold {
                            return Ok(Planned::Escalate);
                        }
                        iextend_mbr(official, new, p.epsilon, parent_mbr)
                    }
                    UpdateStrategy::TopDown => unreachable!("rejected above"),
                };
                if !enlarged.contains_point(&new) {
                    // Needs a shift, an ascent or a top-down update.
                    return Ok(Planned::Escalate);
                }
                official = enlarged;
                leaf.leaf_entries_mut()[idx].rect = new_rect;
                outcomes.push(OpEffect::Update(UpdateOutcome::Extended));
            }
            GroupOp::Insert { oid, rect, .. } => {
                if leaf.count() >= leaf_cap {
                    return Ok(Planned::MakeRoom(leaf_pid));
                }
                if !official.contains_rect(&rect) {
                    let grown = official.union(&rect);
                    if !parent_mbr.contains_rect(&grown) {
                        // Would grow an ancestor MBR: off the shared path.
                        return Ok(Planned::Escalate);
                    }
                    official = grown;
                }
                leaf.leaf_entries_mut().push(LeafEntry { oid, rect });
                hash_add.push(oid);
                len_delta += 1;
                outcomes.push(OpEffect::Insert);
            }
            GroupOp::Delete { oid, position, .. } => {
                let Some(idx) = leaf.oid_index(oid) else {
                    return Ok(Planned::Escalate);
                };
                if !leaf.leaf_entries()[idx].rect.contains_point(&position) {
                    // The sequential FindLeaf descent might miss this
                    // entry (stated position outside its rect): escalate
                    // so the result stays exactly sequential.
                    return Ok(Planned::Escalate);
                }
                leaf.leaf_entries_mut().swap_remove(idx);
                hash_del.push(oid);
                len_delta -= 1;
                outcomes.push(OpEffect::Delete);
            }
        }
    }
    if leaf.count() < tree.min_fill_leaf() {
        // Underflow needs CondenseTree (non-leaf-local).
        return Ok(Planned::Escalate);
    }
    let parent = (official != official0).then_some((parent_pid, pidx, official));
    Ok(Planned::Ready(GroupPlan {
        leaf_pid,
        leaf,
        parent,
        outcomes,
        hash_add,
        hash_del,
        len_delta,
        root_mbr: None,
    }))
}

/// Plan a group whose granule is the root leaf (height-1 tree): there is
/// no parent entry, no min-fill floor and no official rect to respect —
/// the root MBR simply follows the content, published at execute time
/// through the summary seqlock. Only an overflow (insert into a full
/// root leaf) leaves the shared path, and it does so as a make-room
/// split (which grows the root) rather than a whole-batch escalation.
fn plan_root_leaf_group(index: &RTreeIndex, ops: &[GroupOp]) -> CoreResult<Planned> {
    let tree = &index.tree;
    let root = tree.root;
    let mut leaf = tree.read_node(root)?;
    if !leaf.is_leaf() {
        // Height raced upward since grouping (cannot happen under the
        // shared physical lock; defensive).
        return Ok(Planned::Escalate);
    }
    let leaf_cap = tree.leaf_cap();
    let mut outcomes = Vec::with_capacity(ops.len());
    let mut hash_add = Vec::new();
    let mut hash_del = Vec::new();
    let mut len_delta = 0i64;
    for op in ops {
        match *op {
            GroupOp::Update { oid, new, .. } => {
                let Some(idx) = leaf.oid_index(oid) else {
                    return Ok(Planned::Escalate);
                };
                leaf.leaf_entries_mut()[idx].rect = Rect::from_point(new);
                outcomes.push(OpEffect::Update(UpdateOutcome::InPlace));
            }
            GroupOp::Insert { oid, rect, .. } => {
                if leaf.count() >= leaf_cap {
                    return Ok(Planned::MakeRoom(root));
                }
                leaf.leaf_entries_mut().push(LeafEntry { oid, rect });
                hash_add.push(oid);
                len_delta += 1;
                outcomes.push(OpEffect::Insert);
            }
            GroupOp::Delete { oid, position, .. } => {
                let Some(idx) = leaf.oid_index(oid) else {
                    return Ok(Planned::Escalate);
                };
                if !leaf.leaf_entries()[idx].rect.contains_point(&position) {
                    return Ok(Planned::Escalate);
                }
                leaf.leaf_entries_mut().swap_remove(idx);
                hash_del.push(oid);
                len_delta -= 1;
                outcomes.push(OpEffect::Delete);
            }
        }
    }
    let root_mbr = Some(leaf.mbr());
    Ok(Planned::Ready(GroupPlan {
        leaf_pid: root,
        leaf,
        parent: None,
        outcomes,
        hash_add,
        hash_del,
        len_delta,
        root_mbr,
    }))
}

/// Write one planned group and append the written pages to `written`
/// (the batch's commit set).
///
/// # Latch invariants
///
/// The caller holds the leaf's exclusive granule and the shared tree
/// granule, so the leaf page and the parent's entry *for this leaf* are
/// owned by this group. Sibling entries of the same parent page may be
/// patched by other groups at the same time, which is why the parent is
/// read-modify-written under one continuous page write latch. The
/// parent lands first ("grow before move"): a crash or a concurrent
/// query between the two writes observes only benign slack — a parent
/// entry rect covering strictly more than the leaf content — never an
/// object outside its official MBR. The hash entries, summary fullness
/// bit and (root-leaf groups) seqlock root MBR are refreshed after the
/// leaf write: they are main-memory state rebuilt on recovery, so crash
/// ordering does not apply, and the leaf granule serializes them per
/// leaf.
pub(crate) fn execute_group(
    index: &RTreeIndex,
    plan: &GroupPlan,
    written: &mut Vec<PageId>,
) -> CoreResult<()> {
    let tree = &index.tree;
    if let Some((ppid, pidx, rect)) = plan.parent {
        let guard = tree.pool.fetch(ppid)?;
        {
            let mut data = guard.write();
            let mut parent = Node::decode(ppid, &data)?;
            debug_assert_eq!(parent.internal_entries()[pidx].child, plan.leaf_pid);
            parent.internal_entries_mut()[pidx].rect = rect;
            parent.encode(&mut data);
        }
        written.push(ppid);
    }
    // Blind full-page write: the shadow is the complete new leaf state.
    let guard = tree.pool.fetch_for_overwrite(plan.leaf_pid)?;
    plan.leaf.encode(&mut guard.write());
    drop(guard);
    written.push(plan.leaf_pid);
    if let Some(h) = &tree.hash {
        for &oid in &plan.hash_add {
            h.insert(oid, plan.leaf_pid)?;
        }
        for &oid in &plan.hash_del {
            h.remove(oid)?;
        }
    }
    if let Some(s) = &tree.summary {
        if plan.len_delta != 0 {
            let full = plan.leaf.count() >= tree.leaf_cap();
            let registered = s.set_leaf_full_shared(plan.leaf_pid, full);
            debug_assert!(registered, "concurrent leaf vanished from the summary");
        }
        if let Some(mbr) = plan.root_mbr {
            s.publish_root_mbr(mbr);
        }
    }
    Ok(())
}
