//! Thread-safe index wrapper with DGL granule locking (Section 3.2.2).
//!
//! The paper runs its throughput study (Figure 8) with Dynamic Granular
//! Locking: searchers lock the granules their window overlaps, updaters
//! lock the granules of the leaves they touch, and "since a top-down
//! operation needs to acquire locks for all overlapping granules in a
//! top-down manner, it will meet up with locks made by the bottom-up
//! updates, thus achieving consistency".
//!
//! This wrapper reproduces that *logical* locking discipline on top of a
//! physically serialized index:
//!
//! * bottom-up updates (LBU/GBU) take an **X lock on the granule of the
//!   object's current leaf** (located through the hash index) plus a
//!   shared tree lock,
//! * top-down updates, which may touch any part of the tree, take the
//!   **tree granule exclusively**,
//! * queries take the **tree granule shared**.
//!
//! Physical execution is serialized by an internal mutex — a deliberate
//! model of the paper's testbed, where 50 client threads share one disk
//! and throughput is governed by per-operation I/O cost rather than
//! in-memory parallelism. Lock conflicts are resolved by try-and-retry
//! (no blocking while holding the physical mutex), so the wrapper cannot
//! deadlock.

use crate::config::UpdateStrategy;
use crate::error::CoreResult;
use crate::node::ObjectId;
use crate::stats::{OpStats, UpdateOutcome};
use crate::RTreeIndex;
use bur_dgl::{Granule, LockManager, LockMode};
use bur_geom::{Point, Rect};
use bur_storage::IoSnapshot;
use parking_lot::Mutex;

/// A thread-safe, DGL-locked wrapper around [`RTreeIndex`].
pub struct ConcurrentIndex {
    inner: Mutex<RTreeIndex>,
    locks: LockManager,
}

impl std::fmt::Debug for ConcurrentIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentIndex")
            .field("inner", &*self.inner.lock())
            .finish_non_exhaustive()
    }
}

impl ConcurrentIndex {
    /// Wrap an index for shared use.
    #[must_use]
    pub fn new(index: RTreeIndex) -> Self {
        Self {
            inner: Mutex::new(index),
            locks: LockManager::new(),
        }
    }

    /// Create a fresh index on an in-memory disk and wrap it (shorthand
    /// for `ConcurrentIndex::new(RTreeIndex::create_in_memory(opts)?)`).
    pub fn create_in_memory(opts: crate::config::IndexOptions) -> CoreResult<Self> {
        Ok(Self::new(RTreeIndex::create_in_memory(opts)?))
    }

    /// Unwrap, returning the inner index.
    #[must_use]
    pub fn into_inner(self) -> RTreeIndex {
        self.inner.into_inner()
    }

    /// The granule lock manager (exposed for tests).
    #[must_use]
    pub fn lock_manager(&self) -> &LockManager {
        &self.locks
    }

    /// Move an object, acquiring the DGL granules its strategy requires.
    pub fn update(&self, oid: ObjectId, old: Point, new: Point) -> CoreResult<UpdateOutcome> {
        loop {
            let mut index = self.inner.lock();
            let bottom_up = !matches!(index.options().strategy, UpdateStrategy::TopDown);
            if bottom_up {
                let leaf = index.locate_leaf(oid)?;
                let Some(leaf_pid) = leaf else {
                    // Unknown object: let the strategy surface the error.
                    return index.update(oid, old, new);
                };
                let tree_s = self.locks.try_lock(Granule::Tree, LockMode::Shared);
                let leaf_x = self
                    .locks
                    .try_lock(Granule::Leaf(leaf_pid), LockMode::Exclusive);
                match (tree_s, leaf_x) {
                    (Ok(_t), Ok(_l)) => return index.update(oid, old, new),
                    _ => {
                        drop(index);
                        std::thread::yield_now();
                    }
                }
            } else {
                match self.locks.try_lock(Granule::Tree, LockMode::Exclusive) {
                    Ok(_g) => return index.update(oid, old, new),
                    Err(_) => {
                        drop(index);
                        std::thread::yield_now();
                    }
                }
            }
        }
    }

    /// Window query under a shared tree granule.
    pub fn query(&self, window: &Rect) -> CoreResult<Vec<ObjectId>> {
        loop {
            let index = self.inner.lock();
            match self.locks.try_lock(Granule::Tree, LockMode::Shared) {
                Ok(_g) => return index.query(window),
                Err(_) => {
                    drop(index);
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Insert a fresh object (tree granule exclusive: inserts can split).
    pub fn insert(&self, oid: ObjectId, position: Point) -> CoreResult<()> {
        loop {
            let mut index = self.inner.lock();
            match self.locks.try_lock(Granule::Tree, LockMode::Exclusive) {
                Ok(_g) => return index.insert(oid, position),
                Err(_) => {
                    drop(index);
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Delete an object (tree granule exclusive).
    pub fn delete(&self, oid: ObjectId, position: Point) -> CoreResult<bool> {
        loop {
            let mut index = self.inner.lock();
            match self.locks.try_lock(Granule::Tree, LockMode::Exclusive) {
                Ok(_g) => return index.delete(oid, position),
                Err(_) => {
                    drop(index);
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Number of indexed objects.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.inner.lock().len()
    }

    /// `true` when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the physical I/O counters.
    #[must_use]
    pub fn io_snapshot(&self) -> IoSnapshot {
        self.inner.lock().io_stats().snapshot()
    }

    /// Snapshot of the operation counters.
    pub fn with_op_stats<R>(&self, f: impl FnOnce(&OpStats) -> R) -> R {
        f(self.inner.lock().op_stats())
    }

    /// Run the deep invariant check.
    pub fn validate(&self) -> CoreResult<()> {
        self.inner.lock().validate()
    }
}

impl RTreeIndex {
    /// The page currently holding `oid` according to the hash index
    /// (`None` for TD indexes, which keep no secondary index).
    pub fn locate_leaf(&self, oid: ObjectId) -> CoreResult<Option<bur_storage::PageId>> {
        match &self.tree.hash {
            Some(h) => Ok(h.get(oid)?),
            None => Ok(None),
        }
    }
}
