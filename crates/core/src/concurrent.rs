//! Deprecated thread-safe wrapper, absorbed by [`crate::Bur`].
//!
//! [`ConcurrentIndex`] was the original DGL-locked wrapper around
//! [`RTreeIndex`] (Section 3.2.2 of the paper). Its locking discipline
//! and commit batching now live in the clonable [`Bur`] handle —
//! multi-threaded callers no longer choose between two types. This
//! wrapper delegates everything to an internal `Bur` and survives for
//! one release as a migration shim.

#![allow(deprecated)]

use crate::config::IndexOptions;
use crate::error::CoreResult;
use crate::handle::Bur;
use crate::node::ObjectId;
use crate::stats::{OpStats, UpdateOutcome};
use crate::RTreeIndex;
use bur_dgl::{CommitBatch, LockManager};
use bur_geom::{Point, Rect};
use bur_storage::IoSnapshot;

/// A thread-safe, DGL-locked wrapper around [`RTreeIndex`] — use the
/// clonable [`Bur`] handle instead.
#[deprecated(since = "0.2.0", note = "use the clonable `Bur` handle instead")]
pub struct ConcurrentIndex {
    handle: Bur,
}

impl std::fmt::Debug for ConcurrentIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentIndex")
            .field("handle", &self.handle)
            .finish_non_exhaustive()
    }
}

impl ConcurrentIndex {
    /// Wrap an index for shared use.
    #[must_use]
    pub fn new(index: RTreeIndex) -> Self {
        Self {
            handle: Bur::from_index(index),
        }
    }

    /// Create a fresh index on an in-memory disk and wrap it.
    pub fn create_in_memory(opts: IndexOptions) -> CoreResult<Self> {
        Ok(Self::new(RTreeIndex::create_in_memory_inner(opts)?))
    }

    /// Unwrap, returning the inner index.
    #[must_use]
    pub fn into_inner(self) -> RTreeIndex {
        self.handle
            .try_into_index()
            .unwrap_or_else(|_| unreachable!("the shim never clones its handle"))
    }

    /// The granule lock manager (exposed for tests).
    #[must_use]
    pub fn lock_manager(&self) -> &LockManager {
        self.handle.lock_manager()
    }

    /// Enable per-granule commit batching (see
    /// [`Bur::set_commit_batching`]).
    pub fn set_commit_batching(&self, ops: u32) -> CoreResult<()> {
        self.handle.set_commit_batching(ops)
    }

    /// Flush any operations pending in the current commit batch as one
    /// group commit record; returns the per-granule hooks it covered.
    pub fn flush_commits(&self) -> CoreResult<CommitBatch> {
        Ok(self.handle.commit()?.into_commit_batch())
    }

    /// `(operations batched, group commit records written)` over the
    /// wrapper's lifetime.
    #[must_use]
    pub fn commit_batch_totals(&self) -> (u64, u64) {
        self.handle.commit_batch_totals()
    }

    /// Move an object, acquiring the DGL granules its strategy requires.
    pub fn update(&self, oid: ObjectId, old: Point, new: Point) -> CoreResult<UpdateOutcome> {
        self.handle.update(oid, old, new)
    }

    /// Window query under a shared tree granule.
    pub fn query(&self, window: &Rect) -> CoreResult<Vec<ObjectId>> {
        Ok(self.handle.query(window)?.collect())
    }

    /// Insert a fresh object (tree granule exclusive: inserts can split).
    pub fn insert(&self, oid: ObjectId, position: Point) -> CoreResult<()> {
        self.handle.insert(oid, position)
    }

    /// Delete an object (tree granule exclusive).
    pub fn delete(&self, oid: ObjectId, position: Point) -> CoreResult<bool> {
        self.handle.delete(oid, position)
    }

    /// Number of indexed objects.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.handle.len()
    }

    /// `true` when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.handle.is_empty()
    }

    /// Snapshot of the physical I/O counters.
    #[must_use]
    pub fn io_snapshot(&self) -> IoSnapshot {
        self.handle.io_snapshot()
    }

    /// Snapshot of the operation counters.
    pub fn with_op_stats<R>(&self, f: impl FnOnce(&OpStats) -> R) -> R {
        self.handle.with_op_stats(f)
    }

    /// Run the deep invariant check.
    pub fn validate(&self) -> CoreResult<()> {
        self.handle.validate()
    }
}

impl RTreeIndex {
    /// The page currently holding `oid` according to the hash index
    /// (`None` for TD indexes, which keep no secondary index).
    pub fn locate_leaf(&self, oid: ObjectId) -> CoreResult<Option<bur_storage::PageId>> {
        match &self.tree.hash {
            Some(h) => Ok(h.get(oid)?),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The migration shim keeps the old surface working for one release:
    /// everything still routes through the `Bur` machinery.
    #[test]
    fn shim_round_trips_through_the_handle() {
        let index = ConcurrentIndex::create_in_memory(IndexOptions::generalized()).unwrap();
        index.insert(1, Point::new(0.2, 0.2)).unwrap();
        index.insert(2, Point::new(0.8, 0.8)).unwrap();
        index
            .update(1, Point::new(0.2, 0.2), Point::new(0.3, 0.3))
            .unwrap();
        assert!(index.delete(2, Point::new(0.8, 0.8)).unwrap());
        assert!(!index.is_empty());
        assert_eq!(index.len(), 1);
        assert_eq!(
            index.query(&Rect::new(0.0, 0.0, 1.0, 1.0)).unwrap(),
            vec![1]
        );
        assert_eq!(index.lock_manager().locked_granules(), 0);
        index.set_commit_batching(4).unwrap(); // no-op: not durable
        assert_eq!(index.flush_commits().unwrap().ops, 0);
        assert_eq!(index.commit_batch_totals().1, 0);
        assert!(index.io_snapshot().fetches > 0);
        index.with_op_stats(|s| assert_eq!(s.snapshot().updates, 1));
        index.validate().unwrap();
        let inner = index.into_inner();
        assert_eq!(inner.len(), 1);
    }
}
