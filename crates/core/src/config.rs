//! Index configuration: update strategy, tuning parameters, policies.

use crate::error::{CoreError, CoreResult};
use crate::node;

/// The paper's three update techniques (Section 5 evaluates exactly
/// these): top-down (TD), localized bottom-up (LBU, Algorithm 1) and
/// generalized bottom-up (GBU, Algorithm 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UpdateStrategy {
    /// Classic R-tree update: top-down delete followed by top-down
    /// insert. Maintains no auxiliary structures.
    TopDown,
    /// Algorithm 1: direct leaf access through the object-id hash index,
    /// uniform ε-enlargement bounded by the parent (reached through a
    /// parent pointer stored in the leaf), sibling shift, TD fallback.
    Localized(LbuParams),
    /// Algorithm 2: adds the main-memory summary structure, directional
    /// ε-enlargement (`iExtendMBR`), bit-vector sibling selection with
    /// piggybacking, and multi-level ascent via `FindParent`.
    Generalized(GbuParams),
}

impl UpdateStrategy {
    /// Short display name used by the experiment harness ("TD"/"LBU"/"GBU").
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            UpdateStrategy::TopDown => "TD",
            UpdateStrategy::Localized(_) => "LBU",
            UpdateStrategy::Generalized(_) => "GBU",
        }
    }

    /// Whether this strategy needs the secondary object-id hash index.
    #[must_use]
    pub fn needs_hash_index(&self) -> bool {
        !matches!(self, UpdateStrategy::TopDown)
    }

    /// Whether leaves must carry parent pointers (LBU only; the paper
    /// notes this maintenance burden as one of LBU's weaknesses).
    #[must_use]
    pub fn needs_parent_pointers(&self) -> bool {
        matches!(self, UpdateStrategy::Localized(_))
    }

    /// Whether the main-memory summary structure is maintained (GBU).
    #[must_use]
    pub fn needs_summary(&self) -> bool {
        matches!(self, UpdateStrategy::Generalized(_))
    }
}

/// Tuning parameters of the localized bottom-up algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LbuParams {
    /// Uniform enlargement ε: the leaf MBR grows by ε in *all four*
    /// directions (Kwon-style), bounded by the parent MBR.
    pub epsilon: f32,
    /// Attempt the sibling-shift step (Algorithm 1 step 5). Disabling it
    /// reduces LBU to the Kwon et al. lazy-update R-tree of Section 3.1
    /// — enlargement or bust — which the paper generalizes; exposed for
    /// the ablation bench.
    pub sibling_shift: bool,
}

impl Default for LbuParams {
    fn default() -> Self {
        // The paper's recommended small ε (Section 5.1.1).
        Self {
            epsilon: 0.003,
            sibling_shift: true,
        }
    }
}

impl LbuParams {
    /// The Kwon et al. lazy-update configuration (Section 3.1): uniform
    /// δ-enlargement only, no sibling shifts.
    #[must_use]
    pub fn kwon(epsilon: f32) -> Self {
        Self {
            epsilon,
            sibling_shift: false,
        }
    }
}

/// Tuning parameters of the generalized bottom-up algorithm
/// (Section 3.2.1 lists all four).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GbuParams {
    /// ε — maximum directional enlargement applied by `iExtendMBR`.
    pub epsilon: f32,
    /// τ — distance threshold: objects that moved further than τ since
    /// their last update try the sibling shift *before* `iExtendMBR`;
    /// slower objects try `iExtendMBR` first.
    pub distance_threshold: f32,
    /// L — maximum number of levels `FindParent` may ascend above the
    /// leaf. `None` means "height − 1" (the paper's recommended maximum).
    pub level_threshold: Option<u16>,
    /// Piggyback other matching entries when shifting to a sibling
    /// (Section 3.2.1 item 4). Exposed for the ablation bench.
    pub piggyback: bool,
    /// Answer window queries through the summary structure (prune
    /// internal levels in memory). Exposed for the ablation bench.
    pub summary_queries: bool,
}

impl Default for GbuParams {
    fn default() -> Self {
        // Paper defaults: ε = 0.003 (§5.1.1), τ = 0.03 (§5.1.2),
        // L = height − 1 (§3.2.1 item 3).
        Self {
            epsilon: 0.003,
            distance_threshold: 0.03,
            level_threshold: None,
            piggyback: true,
            summary_queries: true,
        }
    }
}

/// Durability mode of an index.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Durability {
    /// No write-ahead log (the paper's experimental setup and the
    /// default): updates are durable only after an explicit
    /// [`crate::RTreeIndex::persist`] and a clean shutdown.
    #[default]
    None,
    /// Write-ahead logging via `bur-wal`: page images of every operation
    /// are logged before dirty pages may reach the disk, commits follow
    /// the configured sync cadence, and the index recovers from a crash
    /// through [`crate::IndexBuilder`]'s [`crate::OpenMode::Recover`].
    Wal(WalOptions),
}

/// Tuning for [`Durability::Wal`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalOptions {
    /// When commit records are made durable (`fsync` cadence). With
    /// [`bur_storage::SyncPolicy::EveryCommit`] every acknowledged
    /// operation survives a crash; group commit trades the tail of
    /// unsynced operations for throughput;
    /// [`bur_storage::SyncPolicy::Async`] moves the syncs to a background
    /// thread entirely, so committers overlap log I/O.
    pub sync: bur_storage::SyncPolicy,
    /// Take a fuzzy checkpoint (flush the pool, rewind the log) every
    /// this many committed operations. Bounds both recovery replay time
    /// and the log's page footprint. Must be at least 1.
    pub checkpoint_every: u64,
    /// Delta-logging policy: when the log may record a byte-range diff of
    /// a touched page instead of its full image (see
    /// [`bur_wal::DeltaPolicy`]). On by default — in-place bottom-up
    /// updates touch a few dozen bytes of a 1 KiB page, so deltas cut log
    /// volume several-fold at no durability cost.
    pub delta: bur_wal::DeltaPolicy,
    /// Commit batching: write one commit record (and apply the sync
    /// cadence once) per this many operations instead of per operation.
    /// `1` (the default) keeps per-operation commit semantics; larger
    /// values trade the unflushed tail of a batch — same crash window as
    /// group commit — for a shorter durable critical section per update.
    /// Must be at least 1. See [`crate::RTreeIndex::set_commit_batch`].
    pub batch_ops: u32,
    /// Async sync-request debounce: under
    /// [`bur_storage::SyncPolicy::Async`], request a background sync
    /// only every this many commit records instead of per commit (the
    /// log's ~2 ms coalescing window bounds the added durability lag;
    /// `wait_durable` remains the hard ack either way). `1` restores a
    /// request per commit — the pre-debounce behavior, which makes
    /// single-threaded streams pay a condvar signal plus a tail-page
    /// write per round. Must be at least 1. Ignored by the synchronous
    /// sync policies.
    pub async_coalesce: u32,
}

impl Default for WalOptions {
    fn default() -> Self {
        Self {
            sync: bur_storage::SyncPolicy::EveryCommit,
            checkpoint_every: 256,
            delta: bur_wal::DeltaPolicy::default(),
            batch_ops: 1,
            async_coalesce: bur_wal::DEFAULT_ASYNC_COALESCE,
        }
    }
}

/// How an overflowing node is split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitPolicy {
    /// Guttman's quadratic split (the paper's R-tree; default).
    Quadratic,
    /// Guttman's linear split (cheaper CPU, worse grouping) — provided
    /// for the ablation bench.
    Linear,
    /// The R*-tree topological split (Beckmann et al.): split axis by
    /// minimum margin sum, distribution by minimum overlap. Part of the
    /// R*-variant extension (the paper's future work applies bottom-up
    /// updates to "members of the family of R-tree-based indexing
    /// techniques"; the R*-tree is the most common member).
    RStar,
}

/// How insertions descend and how overflow is treated — Guttman's
/// original R-tree versus the R*-tree refinements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InsertPolicy {
    /// Guttman ChooseLeaf (least area enlargement) and split-on-overflow.
    /// This is the paper's R-tree and the default.
    #[default]
    Guttman,
    /// R*-tree ChooseSubtree (minimum *overlap* enlargement when choosing
    /// among leaf-parent entries) plus **forced reinsertion**: the first
    /// overflow per level per insertion evicts the 30 % of entries whose
    /// centers lie farthest from the node center and re-inserts them from
    /// the root, instead of splitting.
    RStar,
}

/// Construction-time options of an [`crate::RTreeIndex`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexOptions {
    /// Page size in bytes (paper: 1024).
    pub page_size: usize,
    /// Buffer-pool capacity in frames (experiments size this as a
    /// percentage of the data pages; the paper's default is 1 %).
    pub buffer_frames: usize,
    /// Update technique and its tuning parameters.
    pub strategy: UpdateStrategy,
    /// Node split policy.
    pub split: SplitPolicy,
    /// Insertion descent / overflow policy (Guttman or R*).
    pub insert: InsertPolicy,
    /// Buffer-pool replacement policy (LRU as in the paper's experiments,
    /// or Clock for the ablation).
    pub eviction: bur_storage::EvictionPolicy,
    /// Minimum node fill as a fraction of capacity (Guttman's `m`);
    /// deletes below this trigger CondenseTree reinsertion.
    pub min_fill: f32,
    /// Durability mode: none (default, the paper's setup) or write-ahead
    /// logged with crash recovery.
    pub durability: Durability,
}

impl Default for IndexOptions {
    fn default() -> Self {
        Self {
            page_size: bur_storage::DEFAULT_PAGE_SIZE,
            buffer_frames: 256,
            strategy: UpdateStrategy::Generalized(GbuParams::default()),
            split: SplitPolicy::Quadratic,
            insert: InsertPolicy::Guttman,
            eviction: bur_storage::EvictionPolicy::Lru,
            min_fill: 0.4,
            durability: Durability::None,
        }
    }
}

impl IndexOptions {
    /// Validate option consistency; called by the index constructors.
    pub fn validate(&self) -> CoreResult<()> {
        if !(0.0..=0.5).contains(&self.min_fill) {
            return Err(CoreError::BadConfig(format!(
                "min_fill must be in [0, 0.5], got {}",
                self.min_fill
            )));
        }
        let leaf_cap = node::leaf_capacity(self.page_size);
        let internal_cap = node::internal_capacity(self.page_size);
        if leaf_cap < 4 || internal_cap < 4 {
            return Err(CoreError::BadConfig(format!(
                "page size {} holds only {leaf_cap} leaf / {internal_cap} internal entries; need >= 4",
                self.page_size
            )));
        }
        if let Durability::Wal(w) = self.durability {
            if w.checkpoint_every == 0 {
                return Err(CoreError::BadConfig(
                    "checkpoint_every must be at least 1".into(),
                ));
            }
            if w.batch_ops == 0 {
                return Err(CoreError::BadConfig("batch_ops must be at least 1".into()));
            }
            if w.async_coalesce == 0 {
                return Err(CoreError::BadConfig(
                    "async_coalesce must be at least 1".into(),
                ));
            }
        }
        match self.strategy {
            UpdateStrategy::Localized(p) if p.epsilon < 0.0 => Err(CoreError::BadConfig(
                "LBU epsilon must be non-negative".into(),
            )),
            UpdateStrategy::Generalized(p) if p.epsilon < 0.0 || p.distance_threshold < 0.0 => {
                Err(CoreError::BadConfig(
                    "GBU epsilon and distance threshold must be non-negative".into(),
                ))
            }
            _ => Ok(()),
        }
    }

    /// Convenience: TD with otherwise default options.
    #[must_use]
    pub fn top_down() -> Self {
        Self {
            strategy: UpdateStrategy::TopDown,
            ..Self::default()
        }
    }

    /// Convenience: LBU with default parameters.
    #[must_use]
    pub fn localized() -> Self {
        Self {
            strategy: UpdateStrategy::Localized(LbuParams::default()),
            ..Self::default()
        }
    }

    /// Convenience: GBU with default parameters.
    #[must_use]
    pub fn generalized() -> Self {
        Self {
            strategy: UpdateStrategy::Generalized(GbuParams::default()),
            ..Self::default()
        }
    }

    /// Convenience: a durable GBU index — write-ahead logged with the
    /// default sync cadence (every commit) and checkpoint interval.
    #[must_use]
    pub fn durable() -> Self {
        Self {
            durability: Durability::Wal(WalOptions::default()),
            ..Self::generalized()
        }
    }

    /// Switch these options to write-ahead-logged durability while
    /// keeping everything else.
    #[must_use]
    pub fn with_durability(mut self, durability: Durability) -> Self {
        self.durability = durability;
        self
    }

    /// Switch these options to the R*-tree variant (R* ChooseSubtree,
    /// forced reinsertion, R* split) while keeping the update strategy —
    /// the combination the paper's future work points at.
    #[must_use]
    pub fn rstar(mut self) -> Self {
        self.insert = InsertPolicy::RStar;
        self.split = SplitPolicy::RStar;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        IndexOptions::default().validate().unwrap();
        IndexOptions::top_down().validate().unwrap();
        IndexOptions::localized().validate().unwrap();
        IndexOptions::generalized().validate().unwrap();
        IndexOptions::generalized().rstar().validate().unwrap();
        IndexOptions::durable().validate().unwrap();
    }

    #[test]
    fn durability_knobs() {
        assert_eq!(IndexOptions::default().durability, Durability::None);
        let o = IndexOptions::durable();
        assert!(matches!(o.durability, Durability::Wal(_)));
        let o = IndexOptions::top_down().with_durability(Durability::Wal(WalOptions {
            checkpoint_every: 0,
            ..WalOptions::default()
        }));
        assert!(o.validate().is_err(), "checkpoint_every 0 is rejected");
    }

    #[test]
    fn rstar_conversion_keeps_strategy() {
        let o = IndexOptions::localized().rstar();
        assert_eq!(o.insert, InsertPolicy::RStar);
        assert_eq!(o.split, SplitPolicy::RStar);
        assert!(matches!(o.strategy, UpdateStrategy::Localized(_)));
        assert_eq!(IndexOptions::default().insert, InsertPolicy::Guttman);
    }

    #[test]
    fn strategy_requirements() {
        assert!(!UpdateStrategy::TopDown.needs_hash_index());
        assert!(UpdateStrategy::Localized(LbuParams::default()).needs_hash_index());
        assert!(UpdateStrategy::Localized(LbuParams::default()).needs_parent_pointers());
        assert!(!UpdateStrategy::Localized(LbuParams::default()).needs_summary());
        assert!(UpdateStrategy::Generalized(GbuParams::default()).needs_summary());
        assert!(!UpdateStrategy::Generalized(GbuParams::default()).needs_parent_pointers());
        assert_eq!(UpdateStrategy::TopDown.name(), "TD");
    }

    #[test]
    fn rejects_bad_config() {
        let o = IndexOptions {
            min_fill: 0.9,
            ..IndexOptions::default()
        };
        assert!(o.validate().is_err());
        let o = IndexOptions {
            page_size: 64,
            ..IndexOptions::default()
        };
        assert!(o.validate().is_err());
        let mut o = IndexOptions::generalized();
        if let UpdateStrategy::Generalized(ref mut p) = o.strategy {
            p.epsilon = -1.0;
        }
        assert!(o.validate().is_err());
    }
}
