//! Analytic cost model — Section 4 of the paper.
//!
//! The paper bounds the expected disk accesses of a top-down update (via
//! Theorem 1's query-cost formula) and of a bottom-up update (case
//! analysis over how far the object moved), concluding that the
//! *worst-case* bottom-up cost — 7 I/Os when the direct access table is
//! used — equals the *best-case* top-down cost for a tree of height 3
//! (`2h + 1 = 7`).
//!
//! The formulas here follow the paper's derivation with the data space
//! normalized to the unit square; a few steps that the PDF renders
//! unreadably are reconstructed and documented inline. The `repro
//! cost-model` experiment compares these predictions with measured I/O.

/// Lemma 1: the probability that a uniformly placed point falls in a
/// window of size `x × y` over the unit square.
#[must_use]
pub fn point_in_window_probability(x: f64, y: f64) -> f64 {
    (x * y).clamp(0.0, 1.0)
}

/// Lemma 2: the probability that two windows of sizes `a = (x1, y1)` and
/// `b = (x2, y2)`, each uniformly placed over the unit square, overlap:
/// `P = (x1 + x2) · (y1 + y2)`, clamped to 1.
#[must_use]
pub fn windows_overlap_probability(a: (f64, f64), b: (f64, f64)) -> f64 {
    ((a.0 + b.0) * (a.1 + b.1)).clamp(0.0, 1.0)
}

/// Theorem 1: expected node accesses for a query window of size `query`,
/// given the per-node MBR sizes of every level of the tree (the root is
/// always read, so include it or not according to taste — the paper sums
/// over all levels).
#[must_use]
pub fn expected_query_accesses<I>(node_sizes: I, query: (f64, f64)) -> f64
where
    I: IntoIterator<Item = (f64, f64)>,
{
    node_sizes
        .into_iter()
        .map(|node| windows_overlap_probability(node, query))
        .sum()
}

/// Expected cost of a **top-down update**: one exact-match (point) query
/// descent to find and delete the entry, one insert descent, plus the
/// leaf write — the paper's `T = 2E + 1` with `E` the expected accesses
/// of a point query.
#[must_use]
pub fn top_down_update_cost<I>(node_sizes: I) -> f64
where
    I: IntoIterator<Item = (f64, f64)>,
{
    2.0 * expected_query_accesses(node_sizes, (0.0, 0.0)) + 1.0
}

/// Best-case top-down update for a tree of height `h`: a single partial
/// path for the delete and one for the insert, `2h + 1` I/Os.
#[must_use]
pub fn top_down_best_case(height: u16) -> f64 {
    2.0 * f64::from(height) + 1.0
}

/// Case probabilities for a bottom-up update of an object that moved
/// distance `d`, whose leaf MBR has sides `s = (s1, s2)` and whose
/// enlargement budget is ε.
///
/// The paper assumes the worst case — the object sits at a corner of its
/// MBR and moves in a uniformly random direction — and integrates the
/// stay-inside probability. We use the standard rectangular
/// approximation of that integral: the chance of remaining inside a side
/// of length `s` after moving `d` along that axis is `max(0, 1 − d/s)`,
/// giving `P(stay) = (1 − d/s1)⁺ (1 − d/s2)⁺`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BottomUpCases {
    /// New location still inside the leaf MBR.
    pub p_stay: f64,
    /// Outside the MBR but within an ε-extension.
    pub p_extend: f64,
    /// Needs a sibling shift or an ascent.
    pub p_far: f64,
}

/// Split a bottom-up update into the paper's three cases.
#[must_use]
pub fn bottom_up_cases(d: f64, s: (f64, f64), epsilon: f64) -> BottomUpCases {
    let stay = |w: f64, h: f64| -> f64 { (1.0 - d / w).max(0.0) * (1.0 - d / h).max(0.0) };
    let p_stay = stay(s.0, s.1).clamp(0.0, 1.0);
    let p_within_ext = stay(s.0 + epsilon, s.1 + epsilon).clamp(0.0, 1.0);
    let p_extend = (p_within_ext - p_stay).max(0.0);
    let p_far = (1.0 - p_stay - p_extend).max(0.0);
    BottomUpCases {
        p_stay,
        p_extend,
        p_far,
    }
}

/// Per-case I/O charges from Section 4.2.
pub mod charges {
    /// Case 1 — in place: hash read + leaf read + leaf write.
    pub const STAY: f64 = 3.0;
    /// Case 2a — extend: + parent read.
    pub const EXTEND: f64 = 4.0;
    /// Case 2b(i) — sibling one level above the leaf: hash + R/W leaf +
    /// R/W sibling + R parent.
    pub const SIBLING: f64 = 6.0;
    /// Worst case with the direct access table: the ascent is resolved in
    /// memory, so the cost is bounded by a constant: hash + R/W leaf +
    /// R/W sibling + 2 parent reads.
    pub const WORST_WITH_TABLE: f64 = 7.0;
}

/// Expected cost of a **generalized bottom-up update** (with the direct
/// access table, so the far case is bounded by the constant 7).
///
/// ```
/// use bur_core::cost_model::bottom_up_update_cost;
/// // A stationary object costs the in-place 3 I/Os ...
/// assert_eq!(bottom_up_update_cost(0.0, (0.05, 0.05), 0.003), 3.0);
/// // ... and the cost saturates at the constant 7 for far movers.
/// assert_eq!(bottom_up_update_cost(1.0, (0.05, 0.05), 0.003), 7.0);
/// ```
#[must_use]
pub fn bottom_up_update_cost(d: f64, s: (f64, f64), epsilon: f64) -> f64 {
    let c = bottom_up_cases(d, s, epsilon);
    c.p_stay * charges::STAY + c.p_extend * charges::EXTEND + c.p_far * charges::WORST_WITH_TABLE
}

/// Expected cost of an ascent **without** the direct access table, where
/// climbing to level `k` costs `5 + 2(h − 1 − k)` reads of parent nodes
/// (the recursion the paper's case 3(ii) prices at `2 + (h − 1 − k)`
/// parent reads on top of the sibling case).
#[must_use]
pub fn ascend_cost_without_table(height: u16, stop_level: u16) -> f64 {
    let climb = f64::from(height.saturating_sub(1).saturating_sub(stop_level));
    5.0 + 2.0 + climb
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma1_basics() {
        assert_eq!(point_in_window_probability(0.5, 0.5), 0.25);
        assert_eq!(point_in_window_probability(2.0, 2.0), 1.0);
        assert_eq!(point_in_window_probability(0.0, 0.7), 0.0);
    }

    #[test]
    fn lemma2_overlap() {
        // Two 0.1-squares: P = 0.2 * 0.2 = 0.04.
        let p = windows_overlap_probability((0.1, 0.1), (0.1, 0.1));
        assert!((p - 0.04).abs() < 1e-12);
        // Degenerate point vs window = Lemma 1.
        let p = windows_overlap_probability((0.3, 0.4), (0.0, 0.0));
        assert!((p - 0.12).abs() < 1e-12);
        // Saturates at 1.
        assert_eq!(windows_overlap_probability((0.9, 0.9), (0.9, 0.9)), 1.0);
    }

    #[test]
    fn theorem1_sums_levels() {
        // 1 root of size 1x1 (P=1 for any query) + 2 nodes of 0.5x0.5.
        let nodes = vec![(1.0, 1.0), (0.5, 0.5), (0.5, 0.5)];
        let e = expected_query_accesses(nodes, (0.1, 0.1));
        let expect = 1.0 + 2.0 * (0.6 * 0.6);
        assert!((e - expect).abs() < 1e-12);
    }

    #[test]
    fn bottom_up_cases_partition() {
        for &d in &[0.0, 0.01, 0.05, 0.2, 1.5] {
            let c = bottom_up_cases(d, (0.05, 0.05), 0.003);
            let total = c.p_stay + c.p_extend + c.p_far;
            assert!((total - 1.0).abs() < 1e-9, "cases must partition, d={d}");
            assert!(c.p_stay >= 0.0 && c.p_extend >= 0.0 && c.p_far >= 0.0);
        }
    }

    #[test]
    fn stationary_object_stays() {
        let c = bottom_up_cases(0.0, (0.05, 0.05), 0.003);
        assert_eq!(c.p_stay, 1.0);
        assert_eq!(bottom_up_update_cost(0.0, (0.05, 0.05), 0.003), 3.0);
    }

    #[test]
    fn fast_object_worst_case() {
        // Moving the maximum distance (√2 across the unit square) always
        // leaves the leaf: cost = the constant 7.
        let c = bottom_up_cases(std::f64::consts::SQRT_2, (0.05, 0.05), 0.003);
        assert_eq!(c.p_far, 1.0);
        assert_eq!(
            bottom_up_update_cost(std::f64::consts::SQRT_2, (0.05, 0.05), 0.003),
            charges::WORST_WITH_TABLE
        );
    }

    #[test]
    fn theorem_worst_bu_equals_best_td_height3() {
        // "the theoretical upper bound for bottom-up update is equivalent
        // to the lower bound for top-down update" at height 3.
        assert_eq!(top_down_best_case(3), charges::WORST_WITH_TABLE);
        // And for taller trees TD's best case is strictly worse.
        assert!(top_down_best_case(4) > charges::WORST_WITH_TABLE);
    }

    #[test]
    fn monotonic_in_distance() {
        let s = (0.05, 0.05);
        let mut last = 0.0;
        for i in 0..20 {
            let d = i as f64 * 0.01;
            let cost = bottom_up_update_cost(d, s, 0.003);
            assert!(cost >= last - 1e-9, "cost must not decrease with distance");
            last = cost;
        }
    }

    #[test]
    fn ascend_cost_grows_with_climb() {
        assert!(ascend_cost_without_table(5, 1) > ascend_cost_without_table(5, 3));
        assert_eq!(ascend_cost_without_table(5, 4), 7.0);
    }
}
