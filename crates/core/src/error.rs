//! Error type for the R-tree core.

use bur_storage::{PageId, StorageError};
use std::fmt;

/// Result alias for core operations.
pub type CoreResult<T> = Result<T, CoreError>;

/// Errors raised by the R-tree and its update strategies.
#[derive(Debug)]
pub enum CoreError {
    /// Propagated storage failure.
    Storage(StorageError),
    /// A page did not contain a well-formed node (corruption or a page id
    /// pointing at a non-node page).
    CorruptNode {
        /// The offending page.
        pid: PageId,
        /// What was wrong.
        reason: &'static str,
    },
    /// The object id is already present (inserts require fresh ids).
    DuplicateObject(u64),
    /// The object id was not found where the caller said it would be.
    ObjectNotFound(u64),
    /// An invariant check failed; [`crate::RTreeIndex::validate`] reports
    /// the first violation it finds.
    InvariantViolation(String),
    /// The options are inconsistent (e.g. a page too small for one entry).
    BadConfig(String),
    /// An operation inside a [`crate::Batch`] failed. Operations before
    /// `op_index` were applied (and, on a durable index, flushed as the
    /// batch's group commit record); the failing operation and everything
    /// after it were not.
    Batch {
        /// Zero-based position of the failing operation in the batch.
        op_index: usize,
        /// Why that operation failed.
        source: Box<CoreError>,
    },
    /// A write was attempted through a read-only handle (a replication
    /// follower's view). Promote the replica to obtain a writable handle.
    ReadOnly,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Storage(e) => write!(f, "storage: {e}"),
            CoreError::CorruptNode { pid, reason } => {
                write!(f, "corrupt node on page {pid}: {reason}")
            }
            CoreError::DuplicateObject(oid) => write!(f, "object {oid} already indexed"),
            CoreError::ObjectNotFound(oid) => write!(f, "object {oid} not found"),
            CoreError::InvariantViolation(msg) => write!(f, "invariant violation: {msg}"),
            CoreError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
            CoreError::Batch { op_index, source } => {
                write!(f, "batch operation #{op_index} failed: {source}")
            }
            CoreError::ReadOnly => {
                write!(
                    f,
                    "index handle is read-only (a replica view; promote it to write)"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Storage(e) => Some(e),
            CoreError::Batch { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<StorageError> for CoreError {
    fn from(e: StorageError) -> Self {
        CoreError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        assert!(CoreError::DuplicateObject(5).to_string().contains('5'));
        assert!(CoreError::ObjectNotFound(9).to_string().contains('9'));
        assert!(CoreError::CorruptNode {
            pid: 3,
            reason: "bad magic"
        }
        .to_string()
        .contains("bad magic"));
        assert!(CoreError::InvariantViolation("x".into())
            .to_string()
            .contains('x'));
        assert!(CoreError::BadConfig("y".into()).to_string().contains('y'));
        let e: CoreError = StorageError::DiskFull.into();
        assert!(e.to_string().contains("full"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
