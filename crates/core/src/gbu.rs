//! Generalized Bottom-Up update — Algorithms 2, 3 and 4 of the paper.
//!
//! GBU removes LBU's parent pointers and instead drives everything off
//! the main-memory summary structure:
//!
//! * the O(1) **root-MBR check** rejects far jumps straight to a top-down
//!   update;
//! * `iExtendMBR` (Algorithm 4) enlarges the leaf MBR *only in the
//!   directions the object moved* and by at most ε, bounded by the parent
//!   MBR taken from the summary;
//! * the **distance threshold τ** orders the two local repairs: slow
//!   objects try the extension first, fast objects try the sibling shift
//!   first;
//! * sibling shifts consult the **leaf bit vector** (no disk reads just to
//!   discover a sibling is full) and **piggyback** other entries that fit
//!   the sibling, tightening the source leaf;
//! * when the leaf level cannot absorb the move, `FindParent`
//!   (Algorithm 3) walks the summary's ancestor chain — at most *L*
//!   levels — and the object is re-inserted from the lowest ancestor
//!   whose MBR contains the new location.

use crate::config::GbuParams;
use crate::error::{CoreError, CoreResult};
use crate::node::{LeafEntry, Node, ObjectId};
use crate::stats::UpdateOutcome;
use crate::topdown;
use crate::tree::{AnyEntry, RTree};
use bur_geom::{Point, Rect};
use bur_storage::PageId;
use std::sync::atomic::Ordering;

/// Algorithm 4, `iExtendMBR`: enlarge `leaf` towards `new_loc` only, by
/// at most `eps` per extended side, never beyond `parent`. The result
/// contains `new_loc` only when the extension sufficed; the caller
/// decides what to do otherwise.
///
/// ```
/// use bur_core::iextend_mbr;
/// use bur_geom::{Point, Rect};
///
/// let leaf = Rect::new(0.4, 0.4, 0.6, 0.6);
/// // Moving northeast: only the max sides may grow.
/// let r = iextend_mbr(leaf, Point::new(0.62, 0.61), 0.05, Rect::UNIT);
/// assert!(r.contains_point(&Point::new(0.62, 0.61)));
/// assert_eq!((r.min_x, r.min_y), (0.4, 0.4));
/// ```
#[must_use]
pub fn iextend_mbr(leaf: Rect, new_loc: Point, eps: f32, parent: Rect) -> Rect {
    let mut r = leaf;
    if new_loc.x > r.max_x {
        r.max_x = new_loc.x.min(r.max_x + eps).min(parent.max_x).max(r.max_x);
    } else if new_loc.x < r.min_x {
        r.min_x = new_loc.x.max(r.min_x - eps).max(parent.min_x).min(r.min_x);
    }
    if new_loc.y > r.max_y {
        r.max_y = new_loc.y.min(r.max_y + eps).min(parent.max_y).max(r.max_y);
    } else if new_loc.y < r.min_y {
        r.min_y = new_loc.y.max(r.min_y - eps).max(parent.min_y).min(r.min_y);
    }
    r
}

/// Run one generalized bottom-up update.
pub(crate) fn update(
    tree: &mut RTree,
    params: GbuParams,
    oid: ObjectId,
    old: Point,
    new: Point,
) -> CoreResult<UpdateOutcome> {
    // Step 1: O(1) root-MBR check against the summary. Objects leaving
    // the root MBR take the top-down path (the tree must grow towards
    // them, a global reorganization).
    {
        let summary = tree.summary.as_ref().expect("GBU requires the summary");
        if !summary.root_mbr().contains_point(&new) {
            return topdown::update(tree, oid, old, new);
        }
    }

    // Step 2: hash probe for direct leaf access.
    let hash = tree.hash.as_ref().expect("GBU requires the hash index");
    let Some(leaf_pid) = hash.get(oid)? else {
        return Err(CoreError::ObjectNotFound(oid));
    };
    let mut leaf = tree.read_node(leaf_pid)?;
    let Some(idx) = leaf.oid_index(oid) else {
        return Err(CoreError::CorruptNode {
            pid: leaf_pid,
            reason: "hash index points at a leaf without the object",
        });
    };
    let new_rect = Rect::from_point(new);

    // Step 3: in place when the tight leaf MBR covers the target (or the
    // leaf is the root, whose MBR the root check already validated...
    // except the root may legitimately grow, so handle it in place too).
    if leaf.mbr().contains_point(&new) || leaf_pid == tree.root {
        leaf.leaf_entries_mut()[idx].rect = new_rect;
        tree.write_node(leaf_pid, &leaf)?;
        return Ok(UpdateOutcome::InPlace);
    }

    // Locate the parent page through the summary (no disk access), plus
    // the parent's node MBR that bounds any extension.
    let summary = tree.summary.as_ref().expect("GBU requires the summary");
    let Some(parent_pid) = summary.find_parent_at(leaf_pid, 1) else {
        return Err(CoreError::InvariantViolation(format!(
            "summary has no parent for leaf {leaf_pid}"
        )));
    };
    let parent_mbr = summary.entry(parent_pid).map(|e| e.mbr).ok_or_else(|| {
        CoreError::InvariantViolation(format!("no summary entry for {parent_pid}"))
    })?;

    // The distance threshold τ (Section 3.2.1 item 2): fast movers
    // attempt the sibling shift before the extension.
    let moved = old.distance(&new);
    let extend_first = moved <= params.distance_threshold;

    // Both repairs need the parent node; read it once (1 I/O — the
    // paper's "R parent" charge).
    let mut parent = tree.read_node(parent_pid)?;
    let pidx = parent.child_index(leaf_pid).ok_or(CoreError::CorruptNode {
        pid: parent_pid,
        reason: "summary parent does not list the leaf",
    })?;
    let official = parent.internal_entries()[pidx].rect;
    if official.contains_point(&new) {
        // A previous extension already covers the target.
        leaf.leaf_entries_mut()[idx].rect = new_rect;
        tree.write_node(leaf_pid, &leaf)?;
        return Ok(UpdateOutcome::InPlace);
    }

    if extend_first {
        if let Some(outcome) = try_extend(
            tree,
            params,
            &mut leaf,
            leaf_pid,
            idx,
            &mut parent,
            parent_pid,
            pidx,
            parent_mbr,
            new,
        )? {
            return Ok(outcome);
        }
    }

    // Any further repair deletes the entry first; a bottom-up delete must
    // not underflow the leaf.
    if leaf.count() <= tree.min_fill_leaf() {
        return topdown::update(tree, oid, old, new);
    }
    leaf.leaf_entries_mut().swap_remove(idx);

    if let Some(outcome) = try_shift(
        tree,
        params,
        &mut leaf,
        leaf_pid,
        &mut parent,
        parent_pid,
        pidx,
        oid,
        new,
    )? {
        return Ok(outcome);
    }

    if !extend_first {
        // Fast mover whose shift failed: re-add the entry and attempt the
        // extension after all.
        leaf.leaf_entries_mut().push(LeafEntry::point(oid, new));
        let idx = leaf.count() - 1;
        // Re-point the entry at the *old* location for try_extend's
        // in-place write of the new one.
        if let Some(outcome) = try_extend(
            tree,
            params,
            &mut leaf,
            leaf_pid,
            idx,
            &mut parent,
            parent_pid,
            pidx,
            parent_mbr,
            new,
        )? {
            return Ok(outcome);
        }
        leaf.leaf_entries_mut().swap_remove(idx);
    }

    // Ascend: write the shrunken leaf and tighten its official MBR in the
    // parent (already in memory) — the same overlap-control measure the
    // paper applies after shifts; without it the source rectangles of
    // ascended objects would ratchet outward and query performance would
    // degrade with update volume, the opposite of the paper's Figure 6(f).
    tree.write_node(leaf_pid, &leaf)?;
    let tight = leaf.mbr();
    if parent.internal_entries()[pidx].rect != tight {
        parent.internal_entries_mut()[pidx].rect = tight;
        tree.write_node(parent_pid, &parent)?;
    }
    let max_ascent = params
        .level_threshold
        .unwrap_or(tree.height.saturating_sub(1))
        .min(tree.height.saturating_sub(1));
    let summary = tree.summary.as_ref().expect("GBU requires the summary");
    let target = if max_ascent == 0 {
        None
    } else {
        summary.find_parent(leaf_pid, new, max_ascent)
    };
    match target {
        Some((anc, levels, true)) => {
            // Build the ancestor chain above `anc` from the summary so a
            // split can propagate without any search I/O.
            let mut chain = Vec::new();
            let mut cur = anc;
            let mut lvl = levels;
            while cur != tree.root {
                lvl += 1;
                let Some(parent) = summary.find_parent_at(cur, lvl) else {
                    break;
                };
                chain.push(parent);
                cur = parent;
            }
            tree.insert_from(anc, &chain, AnyEntry::Leaf(LeafEntry::point(oid, new)))?;
            Ok(UpdateOutcome::Ascended { levels })
        }
        _ => {
            // No bounding ancestor within L levels (or L = 0): standard
            // insert from the root, as Algorithm 3's fallback prescribes.
            tree.insert_object(LeafEntry::point(oid, new))?;
            Ok(UpdateOutcome::Ascended {
                levels: tree.height - 1,
            })
        }
    }
}

/// Try the directional ε-extension. On success writes parent + leaf and
/// returns the outcome. The entry at `idx` is moved to `new`.
#[allow(clippy::too_many_arguments)]
fn try_extend(
    tree: &mut RTree,
    params: GbuParams,
    leaf: &mut Node,
    leaf_pid: PageId,
    idx: usize,
    parent: &mut Node,
    parent_pid: PageId,
    pidx: usize,
    parent_mbr: Rect,
    new: Point,
) -> CoreResult<Option<UpdateOutcome>> {
    let official = parent.internal_entries()[pidx].rect;
    let imbr = iextend_mbr(official, new, params.epsilon, parent_mbr);
    if !imbr.contains_point(&new) {
        return Ok(None);
    }
    parent.internal_entries_mut()[pidx].rect = imbr;
    tree.write_node(parent_pid, parent)?;
    leaf.leaf_entries_mut()[idx].rect = Rect::from_point(new);
    tree.write_node(leaf_pid, leaf)?;
    Ok(Some(UpdateOutcome::Extended))
}

/// Try the sibling shift. `leaf` has already had the entry removed. On
/// success writes sibling + leaf + parent (tightened) and returns the
/// outcome; on failure leaves all pages untouched.
#[allow(clippy::too_many_arguments)]
fn try_shift(
    tree: &mut RTree,
    params: GbuParams,
    leaf: &mut Node,
    leaf_pid: PageId,
    parent: &mut Node,
    parent_pid: PageId,
    pidx: usize,
    oid: ObjectId,
    new: Point,
) -> CoreResult<Option<UpdateOutcome>> {
    // Candidate siblings: MBR contains the target and the bit vector says
    // they are not full — zero additional disk accesses to select one.
    let (best, leaf_cap) = {
        let summary = tree.summary.as_ref().expect("GBU requires the summary");
        let leaf_cap = tree.leaf_cap();
        let mut best: Option<(PageId, f32)> = None;
        for (i, e) in parent.internal_entries().iter().enumerate() {
            if i == pidx || !e.rect.contains_point(&new) || summary.is_leaf_full(e.child) {
                continue;
            }
            // Prefer the smallest (most specific) containing sibling.
            let area = e.rect.area();
            if best.is_none_or(|(_, a)| area < a) {
                best = Some((e.child, area));
            }
        }
        (best, leaf_cap)
    };
    let Some((sib_pid, _)) = best else {
        return Ok(None);
    };
    let mut sib = tree.read_node(sib_pid)?;
    if sib.count() >= leaf_cap {
        // The bit vector is maintained synchronously so this should not
        // happen; stay safe regardless.
        return Ok(None);
    }
    sib.leaf_entries_mut().push(LeafEntry::point(oid, new));
    tree.hash_place(oid, sib_pid)?;

    // Piggybacking (Section 3.2.1 item 4): carry over a few other
    // entries of the source leaf that the sibling MBR already covers,
    // reducing overlap between the two leaves. The transfer is bounded:
    // each moved entry costs a hash-index upsert, so moving everything
    // that fits would trade update I/O for query I/O well past the
    // break-even the paper reports. Never drain the source near its
    // minimum fill (that would set up condense/reinsert storms), never
    // overfill the sibling.
    if params.piggyback {
        const MAX_PIGGYBACK: u64 = 3;
        let sib_rect =
            parent.internal_entries()[parent.child_index(sib_pid).expect("sibling entry")].rect;
        let min_keep = tree.min_fill_leaf() + 2;
        let mut moved = 0u64;
        let mut i = 0;
        while i < leaf.leaf_entries().len() {
            if moved >= MAX_PIGGYBACK || sib.count() >= leaf_cap || leaf.count() <= min_keep {
                break;
            }
            let e = leaf.leaf_entries()[i];
            if sib_rect.contains_rect(&e.rect) {
                leaf.leaf_entries_mut().swap_remove(i);
                sib.leaf_entries_mut().push(e);
                tree.hash_place(e.oid, sib_pid)?;
                moved += 1;
            } else {
                i += 1;
            }
        }
        if moved > 0 {
            tree.stats.piggybacked.fetch_add(moved, Ordering::Relaxed);
        }
    }

    tree.write_node(sib_pid, &sib)?;
    tree.write_node(leaf_pid, leaf)?;
    // Tighten the source leaf's official MBR ("After a shift, the leaf's
    // MBR is tightened to reduce overlap"). The sibling's rect already
    // contains everything that moved, so the parent's own MBR can only
    // shrink — no upward propagation is required for correctness, and the
    // summary entry is refreshed by the write hook.
    parent.internal_entries_mut()[pidx].rect = leaf.mbr();
    tree.write_node(parent_pid, parent)?;
    Ok(Some(UpdateOutcome::Shifted))
}

#[cfg(test)]
mod tests {
    use super::*;

    const PARENT: Rect = Rect::new(0.0, 0.0, 1.0, 1.0);

    #[test]
    fn extends_only_in_movement_direction() {
        let leaf = Rect::new(0.4, 0.4, 0.6, 0.6);
        // Moving northeast: only max_x / max_y may grow.
        let r = iextend_mbr(leaf, Point::new(0.65, 0.62), 0.1, PARENT);
        assert_eq!(r.min_x, 0.4);
        assert_eq!(r.min_y, 0.4);
        assert!((r.max_x - 0.65).abs() < 1e-6);
        assert!((r.max_y - 0.62).abs() < 1e-6);
        assert!(r.contains_point(&Point::new(0.65, 0.62)));
    }

    #[test]
    fn extension_capped_by_epsilon() {
        let leaf = Rect::new(0.4, 0.4, 0.6, 0.6);
        let r = iextend_mbr(leaf, Point::new(0.9, 0.5), 0.1, PARENT);
        // Wanted 0.9 but ε = 0.1 caps the side at 0.7.
        assert!((r.max_x - 0.7).abs() < 1e-6);
        assert!(!r.contains_point(&Point::new(0.9, 0.5)));
    }

    #[test]
    fn extension_capped_by_parent() {
        let leaf = Rect::new(0.4, 0.4, 0.6, 0.6);
        let parent = Rect::new(0.0, 0.0, 0.62, 1.0);
        let r = iextend_mbr(leaf, Point::new(0.65, 0.5), 0.2, parent);
        assert!((r.max_x - 0.62).abs() < 1e-6, "parent bound wins: {r}");
        assert!(!r.contains_point(&Point::new(0.65, 0.5)));
    }

    #[test]
    fn extension_westward_and_south() {
        let leaf = Rect::new(0.4, 0.4, 0.6, 0.6);
        let r = iextend_mbr(leaf, Point::new(0.35, 0.33), 0.1, PARENT);
        assert!((r.min_x - 0.35).abs() < 1e-6);
        assert!((r.min_y - 0.33).abs() < 1e-6);
        assert_eq!(r.max_x, 0.6);
        assert_eq!(r.max_y, 0.6);
    }

    #[test]
    fn point_inside_is_noop() {
        let leaf = Rect::new(0.4, 0.4, 0.6, 0.6);
        let r = iextend_mbr(leaf, Point::new(0.5, 0.5), 0.1, PARENT);
        assert_eq!(r, leaf);
    }

    #[test]
    fn zero_epsilon_never_extends() {
        let leaf = Rect::new(0.4, 0.4, 0.6, 0.6);
        let r = iextend_mbr(leaf, Point::new(0.7, 0.7), 0.0, PARENT);
        assert_eq!(r, leaf);
    }
}
