//! The shared index handle: one clonable type for every caller.
//!
//! [`Bur`] wraps the single-threaded [`RTreeIndex`] engine in `Arc`
//! internals with the DGL granule-locking discipline the paper's
//! throughput study uses (Section 3.2.2): bottom-up updates X-lock the
//! granule of the leaf they touch under a shared tree granule, while
//! structure-modifying operations (inserts, deletes, top-down updates)
//! and whole-batch applies take the granules they need exclusively.
//! Clone the handle freely — clones share the same index.
//!
//! The write path is **batch-first**: [`Bur::apply`] takes a [`Batch`]
//! of mixed operations, applies it under one lock acquisition, and — on
//! a durable index — flushes it as **one** write-ahead-log group commit
//! record (atomic under crashes). Every write entry point returns or
//! leads to a [`CommitTicket`] whose [`CommitTicket::wait`] rides the
//! log's durable-LSN watermark: the hard ack under
//! [`bur_storage::SyncPolicy::Async`], an instant no-op when the commit
//! already synced inline.
//!
//! Queries stream: [`Bur::query`] returns a [`QueryCursor`] backed by a
//! buffer recycled across calls (zero per-call allocation in steady
//! state) instead of a freshly allocated `Vec<ObjectId>`.
//!
//! ```
//! use bur_core::{Batch, IndexBuilder};
//! use bur_geom::{Point, Rect};
//!
//! let bur = IndexBuilder::generalized().durable().build().unwrap();
//! let mut batch = Batch::new();
//! for oid in 0..32u64 {
//!     batch.insert(oid, Point::new(oid as f32 / 32.0, 0.5));
//! }
//! let ticket = bur.apply(&batch).unwrap();
//! ticket.wait().unwrap(); // durable: one group commit record covers all 32
//! let hits: Vec<u64> = bur.query(&Rect::new(0.0, 0.0, 0.5, 1.0)).unwrap().collect();
//! assert_eq!(hits.len(), 17);
//! ```

use crate::batch::{Batch, BatchReport, Op};
use crate::config::{IndexOptions, UpdateStrategy};
use crate::error::{CoreError, CoreResult};
use crate::index::{RTreeIndex, RecoveryReport};
use crate::knn::Neighbor;
use crate::node::ObjectId;
use crate::stats::{OpStats, UpdateOutcome};
use bur_dgl::{CommitBatch, CommitBatcher, Granule, LockGuard, LockManager, LockMode};
use bur_geom::{Point, Rect};
use bur_storage::IoSnapshot;
use bur_wal::{Lsn, WalStatsSnapshot, WalWaiter};
use parking_lot::{Mutex, MutexGuard};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

/// At most this many spare query buffers are kept for recycling; extra
/// cursors dropped concurrently just free their buffer.
const SPARE_BUFFERS: usize = 16;

/// Shared state behind every clone of a [`Bur`] handle.
struct BurShared {
    inner: Mutex<RTreeIndex>,
    locks: LockManager,
    /// Per-granule commit hooks accumulated between group commit records
    /// (see [`Bur::set_commit_batching`] and [`Bur::apply`]).
    batcher: CommitBatcher,
    /// Single-op commit batch size; 0 or 1 means per-operation commits.
    batch_target: AtomicU32,
    /// Durable-watermark waiter, cached at construction (durable indexes
    /// only) and refreshed when a replica promotion attaches a log.
    waiter: Mutex<Option<WalWaiter>>,
    /// What recovery replayed, when the handle was built in recover mode.
    recovery: Option<RecoveryReport>,
    /// Recycled query-result buffers ([`QueryCursor`] hot path).
    spare_ids: Mutex<Vec<Vec<ObjectId>>>,
    /// Write paths refuse with [`CoreError::ReadOnly`] while set — the
    /// replication-follower mode, cleared by [`Bur::promote_replica`].
    read_only: AtomicBool,
}

impl BurShared {
    /// Return a query buffer to the recycling pool (cleared first; the
    /// pool is capped at [`SPARE_BUFFERS`], extras are simply freed).
    /// The single home of the recycling policy — `Bur::query`'s error
    /// path and `QueryCursor::drop` both land here.
    fn recycle(&self, mut buf: Vec<ObjectId>) {
        buf.clear();
        let mut spares = self.spare_ids.lock();
        if spares.len() < SPARE_BUFFERS {
            spares.push(buf);
        }
    }
}

/// The clonable, thread-safe index handle.
#[derive(Clone)]
pub struct Bur {
    shared: Arc<BurShared>,
}

impl std::fmt::Debug for Bur {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bur")
            .field("inner", &*self.shared.inner.lock())
            .finish_non_exhaustive()
    }
}

impl Bur {
    /// Wrap an existing single-threaded index in a shared handle.
    /// (Usually you build the handle directly with
    /// [`crate::IndexBuilder::build`].)
    #[must_use]
    pub fn from_index(index: RTreeIndex) -> Self {
        Self::from_index_with_report(index, None)
    }

    /// Wrap an index in a **read-only** handle: every write entry point
    /// (`apply`, `insert`, `update`, `delete`, `commit`, `checkpoint`,
    /// `persist`, `set_commit_batching`) fails with
    /// [`CoreError::ReadOnly`] until [`Bur::promote_replica`] flips the
    /// handle writable. This is how a replication follower shares its
    /// replica view with query threads while it alone redoes the shipped
    /// log through [`Bur::with_index_mut`] (the maintenance escape
    /// hatch, which stays open — it is the follower's apply path).
    #[must_use]
    pub fn from_index_read_only(index: RTreeIndex) -> Self {
        let bur = Self::from_index_with_report(index, None);
        bur.shared.read_only.store(true, Ordering::Release);
        bur
    }

    pub(crate) fn from_index_with_report(
        index: RTreeIndex,
        recovery: Option<RecoveryReport>,
    ) -> Self {
        let waiter = Mutex::new(index.wal_waiter());
        Self {
            shared: Arc::new(BurShared {
                inner: Mutex::new(index),
                locks: LockManager::new(),
                batcher: CommitBatcher::new(),
                batch_target: AtomicU32::new(1),
                waiter,
                recovery,
                spare_ids: Mutex::new(Vec::new()),
                read_only: AtomicBool::new(false),
            }),
        }
    }

    /// `true` while the handle is a read-only replica view (see
    /// [`Bur::from_index_read_only`]).
    #[must_use]
    pub fn is_read_only(&self) -> bool {
        self.shared.read_only.load(Ordering::Acquire)
    }

    /// Refuse writes through a read-only handle.
    fn check_writable(&self) -> CoreResult<()> {
        if self.is_read_only() {
            return Err(CoreError::ReadOnly);
        }
        Ok(())
    }

    /// Promote a read-only replica handle in place: run the tail of
    /// recovery ([`RTreeIndex::promote_replica`] — memory-state rebuild,
    /// log reattach + rewind, checkpoint) under the exclusive tree
    /// granule, then flip the handle writable. Every clone held by a
    /// query thread becomes a handle on the new primary at the same
    /// moment. Fails on a handle that is already writable.
    pub fn promote_replica(&self, opts: IndexOptions) -> CoreResult<()> {
        let (mut index, _tree) = self.lock_tree(LockMode::Exclusive);
        // Checked under the exclusive lock: of two racing promotes,
        // exactly one wins — the loser sees a writable handle.
        if !self.is_read_only() {
            return Err(CoreError::BadConfig(
                "promote_replica: handle is already writable".into(),
            ));
        }
        index.promote_replica(opts)?;
        *self.shared.waiter.lock() = index.wal_waiter();
        self.shared.read_only.store(false, Ordering::Release);
        Ok(())
    }

    /// Unwrap into the inner [`RTreeIndex`]; fails (returning the handle)
    /// when other clones are still alive.
    pub fn try_into_index(self) -> Result<RTreeIndex, Self> {
        match Arc::try_unwrap(self.shared) {
            Ok(shared) => Ok(shared.inner.into_inner()),
            Err(shared) => Err(Self { shared }),
        }
    }

    /// The granule lock manager (exposed for tests).
    #[must_use]
    pub fn lock_manager(&self) -> &LockManager {
        &self.shared.locks
    }

    /// What recovery replayed when this handle was built in
    /// [`crate::OpenMode::Recover`] (or `open` of a durable file that
    /// needed replay through the builder's recover path); `None` for
    /// fresh or cleanly opened non-durable indexes.
    #[must_use]
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.shared.recovery
    }

    // ---- locking helpers -------------------------------------------------

    /// Acquire the physical index lock plus the tree granule in `mode`,
    /// try-and-retry (no blocking while holding the physical mutex, so
    /// the handle cannot deadlock).
    fn lock_tree(&self, mode: LockMode) -> (MutexGuard<'_, RTreeIndex>, LockGuard<'_>) {
        loop {
            let index = self.shared.inner.lock();
            match self.shared.locks.try_lock(Granule::Tree, mode) {
                Ok(guard) => return (index, guard),
                Err(_) => {
                    drop(index);
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Register a finished write on `granule` with the commit batcher and
    /// drain the hooks whenever the core has just flushed a batch (its
    /// pending count returns to zero — on the batch boundary or a
    /// piggybacked checkpoint).
    fn after_write(&self, index: &mut RTreeIndex, granule: Granule) {
        if self.shared.batch_target.load(Ordering::Relaxed) <= 1 || !index.is_durable() {
            return;
        }
        self.shared.batcher.note(granule);
        if index.pending_commits() == 0 {
            self.shared.batcher.drain();
        }
    }

    /// Build a ticket covering everything flushed so far (call with the
    /// index lock still held, so the LSN covers exactly this commit).
    fn ticket(&self, index: &RTreeIndex, report: BatchReport, hooks: CommitBatch) -> CommitTicket {
        CommitTicket {
            report,
            hooks,
            lsn: index.last_lsn().unwrap_or(0),
            waiter: self.shared.waiter.lock().clone(),
        }
    }

    // ---- batch-first writes ----------------------------------------------

    /// Apply a [`Batch`] of mixed operations atomically with respect to
    /// the write-ahead log: the whole batch is flushed as **one** group
    /// commit record (plus any single operations already pending in the
    /// current commit batch), so a crash recovers all of it or none of
    /// it. Returns a [`CommitTicket`]; under
    /// [`bur_storage::SyncPolicy::Async`], [`CommitTicket::wait`] is the
    /// hard durability ack.
    ///
    /// Locking: a batch of pure bottom-up updates X-locks the granules
    /// of the leaves it touches under a shared tree granule (concurrent
    /// batches on disjoint leaves do not conflict logically); a batch
    /// containing inserts, deletes or top-down updates takes the tree
    /// granule exclusively.
    pub fn apply(&self, batch: &Batch) -> CoreResult<CommitTicket> {
        self.check_writable()?;
        if batch.is_empty() {
            let index = self.shared.inner.lock();
            return Ok(self.ticket(&index, BatchReport::default(), CommitBatch::default()));
        }
        loop {
            let mut index = self.shared.inner.lock();
            // Resolve the granule of every operation. Bottom-up updates
            // lock the leaf currently holding their object; anything
            // else (or an unknown object, which the strategy will turn
            // into an error) escalates to the whole tree.
            let bottom_up = !matches!(index.options().strategy, UpdateStrategy::TopDown);
            let mut per_op: Vec<Granule> = Vec::with_capacity(batch.len());
            let mut tree_x = false;
            for op in batch.ops() {
                match op {
                    Op::Update { oid, .. } if bottom_up => match index.locate_leaf(*oid)? {
                        Some(pid) => per_op.push(Granule::Leaf(pid)),
                        None => {
                            tree_x = true;
                            break;
                        }
                    },
                    _ => {
                        tree_x = true;
                        break;
                    }
                }
            }
            let mut guards: Vec<LockGuard<'_>> = Vec::new();
            let locked = if tree_x {
                per_op.clear();
                match self
                    .shared
                    .locks
                    .try_lock(Granule::Tree, LockMode::Exclusive)
                {
                    Ok(g) => {
                        guards.push(g);
                        true
                    }
                    Err(_) => false,
                }
            } else {
                // Shared tree + X on the distinct leaves, in sorted
                // order (the deadlock-avoidance protocol of `lock_set`).
                let mut distinct = per_op.clone();
                distinct.sort_unstable();
                distinct.dedup();
                match self.shared.locks.try_lock(Granule::Tree, LockMode::Shared) {
                    Ok(g) => {
                        guards.push(g);
                        distinct.into_iter().all(|g| {
                            match self.shared.locks.try_lock(g, LockMode::Exclusive) {
                                Ok(guard) => {
                                    guards.push(guard);
                                    true
                                }
                                Err(_) => false,
                            }
                        })
                    }
                    Err(_) => false,
                }
            };
            if !locked {
                drop(guards);
                drop(index);
                std::thread::yield_now();
                continue;
            }
            let result = index.apply_batch(batch);
            // A group commit record covered everything applied (the
            // whole batch, or — on error — the prefix before the failing
            // op, which `apply_batch` flushed before surfacing it): note
            // the covered granules and drain the hooks as one commit
            // batch, so nothing lingers to be misattributed to a later
            // ticket.
            let applied = match &result {
                Ok(report) => report.applied as usize,
                Err(CoreError::Batch { op_index, .. }) => *op_index,
                Err(_) => 0,
            };
            let hooks = if index.is_durable() {
                if tree_x {
                    self.shared.batcher.note_n(Granule::Tree, applied as u64);
                } else {
                    // Aggregate runs so a huge batch costs O(distinct
                    // granules) batcher round-trips, not O(ops), inside
                    // the serialized critical section.
                    let mut counted = per_op[..applied].to_vec();
                    counted.sort_unstable();
                    let mut i = 0;
                    while i < counted.len() {
                        let granule = counted[i];
                        let mut n = 1u64;
                        while i + (n as usize) < counted.len() && counted[i + n as usize] == granule
                        {
                            n += 1;
                        }
                        self.shared.batcher.note_n(granule, n);
                        i += n as usize;
                    }
                }
                self.shared.batcher.drain()
            } else {
                CommitBatch::default()
            };
            let report = result?;
            return Ok(self.ticket(&index, report, hooks));
        }
    }

    /// Flush any single operations pending in the current commit batch
    /// (see [`Bur::set_commit_batching`]) as one group commit record and
    /// return the covering [`CommitTicket`]. A no-op ticket when nothing
    /// was pending.
    pub fn commit(&self) -> CoreResult<CommitTicket> {
        self.check_writable()?;
        let mut index = self.shared.inner.lock();
        let pending = index.pending_commits();
        index.flush_commits()?;
        let hooks = self.shared.batcher.drain();
        let report = BatchReport {
            applied: pending,
            ..BatchReport::default()
        };
        Ok(self.ticket(&index, report, hooks))
    }

    /// Block until every acknowledged operation is durable in the log
    /// (operations pending in a commit batch are flushed first); returns
    /// the durable watermark. No-op (returning 0) on a non-durable
    /// index. Unlike the ticketed wait, this holds no index lock while
    /// waiting.
    pub fn wait_durable(&self) -> CoreResult<Lsn> {
        self.commit()?.wait()
    }

    // ---- single-operation writes -----------------------------------------

    /// Insert a fresh point object (tree granule exclusive: inserts can
    /// split).
    pub fn insert(&self, oid: ObjectId, position: Point) -> CoreResult<()> {
        self.check_writable()?;
        let (mut index, _tree) = self.lock_tree(LockMode::Exclusive);
        index.insert(oid, position)?;
        self.after_write(&mut index, Granule::Tree);
        Ok(())
    }

    /// Insert a fresh object with a rectangular extent.
    pub fn insert_rect(&self, oid: ObjectId, rect: Rect) -> CoreResult<()> {
        self.check_writable()?;
        let (mut index, _tree) = self.lock_tree(LockMode::Exclusive);
        index.insert_rect(oid, rect)?;
        self.after_write(&mut index, Granule::Tree);
        Ok(())
    }

    /// Delete an object (tree granule exclusive). Returns `false` when
    /// it is not indexed at `position`.
    pub fn delete(&self, oid: ObjectId, position: Point) -> CoreResult<bool> {
        self.check_writable()?;
        let (mut index, _tree) = self.lock_tree(LockMode::Exclusive);
        let found = index.delete(oid, position)?;
        if found {
            self.after_write(&mut index, Granule::Tree);
        }
        Ok(found)
    }

    /// Move an object, acquiring the DGL granules its strategy requires:
    /// bottom-up updates take the granule of the object's current leaf
    /// exclusively under a shared tree granule; top-down updates take
    /// the tree granule exclusively.
    pub fn update(&self, oid: ObjectId, old: Point, new: Point) -> CoreResult<UpdateOutcome> {
        self.check_writable()?;
        loop {
            let mut index = self.shared.inner.lock();
            let bottom_up = !matches!(index.options().strategy, UpdateStrategy::TopDown);
            if bottom_up {
                let Some(leaf_pid) = index.locate_leaf(oid)? else {
                    // Unknown object: let the strategy surface the error.
                    return index.update(oid, old, new);
                };
                let tree_s = self.shared.locks.try_lock(Granule::Tree, LockMode::Shared);
                let leaf_x = self
                    .shared
                    .locks
                    .try_lock(Granule::Leaf(leaf_pid), LockMode::Exclusive);
                match (tree_s, leaf_x) {
                    (Ok(_t), Ok(_l)) => {
                        let outcome = index.update(oid, old, new)?;
                        self.after_write(&mut index, Granule::Leaf(leaf_pid));
                        return Ok(outcome);
                    }
                    _ => {
                        drop(index);
                        std::thread::yield_now();
                    }
                }
            } else {
                match self
                    .shared
                    .locks
                    .try_lock(Granule::Tree, LockMode::Exclusive)
                {
                    Ok(_g) => {
                        let outcome = index.update(oid, old, new)?;
                        self.after_write(&mut index, Granule::Tree);
                        return Ok(outcome);
                    }
                    Err(_) => {
                        drop(index);
                        std::thread::yield_now();
                    }
                }
            }
        }
    }

    // ---- streaming queries -----------------------------------------------

    /// Window query under a shared tree granule, streamed through a
    /// [`QueryCursor`]. The result buffer is recycled from cursor to
    /// cursor, so the hot path performs no per-call `Vec` allocation.
    pub fn query(&self, window: &Rect) -> CoreResult<QueryCursor> {
        let (index, _tree) = self.lock_tree(LockMode::Shared);
        let mut hits = self.shared.spare_ids.lock().pop().unwrap_or_default();
        debug_assert!(hits.is_empty());
        if let Err(e) = index.query_into(window, &mut hits) {
            self.shared.recycle(hits);
            return Err(e);
        }
        Ok(QueryCursor {
            hits,
            pos: 0,
            home: self.shared.clone(),
        })
    }

    /// Number of objects intersecting `window` (a cursor-free count).
    pub fn count_in(&self, window: &Rect) -> CoreResult<usize> {
        Ok(self.query(window)?.len())
    }

    /// The `k` nearest neighbors of `point`, closest first, streamed
    /// through a [`NeighborCursor`] (shared tree granule).
    pub fn nearest(&self, point: Point, k: usize) -> CoreResult<NeighborCursor> {
        let (index, _tree) = self.lock_tree(LockMode::Shared);
        let hits = index.nearest_neighbors(point, k)?;
        Ok(NeighborCursor {
            hits: hits.into_iter(),
        })
    }

    // ---- durability controls ---------------------------------------------

    /// Enable per-granule commit batching on a durable index: each write
    /// registers a commit hook under the granule it locked, and every
    /// `ops` operations the accumulated hooks are flushed as **one**
    /// group commit record. This recovers write concurrency under WAL
    /// mode — the per-operation critical section no longer pays page
    /// logging or a sync — at group commit's durability window (the
    /// unflushed tail of a batch may be lost to a crash; [`Bur::apply`]
    /// batches are flushed whole regardless). `1` restores per-operation
    /// commits. No-op on a non-durable index.
    pub fn set_commit_batching(&self, ops: u32) -> CoreResult<()> {
        self.check_writable()?;
        let ops = ops.max(1);
        let mut index = self.shared.inner.lock();
        index.set_commit_batch(ops)?;
        self.shared.batch_target.store(ops, Ordering::Relaxed);
        if index.pending_commits() == 0 {
            self.shared.batcher.drain();
        }
        Ok(())
    }

    /// `(operations batched, group commit records written)` over the
    /// handle's lifetime — the batching compression ratio.
    #[must_use]
    pub fn commit_batch_totals(&self) -> (u64, u64) {
        self.shared.batcher.totals()
    }

    /// Take a checkpoint now (persist on a non-durable index): bounds
    /// recovery replay and the log's page footprint.
    pub fn checkpoint(&self) -> CoreResult<()> {
        self.check_writable()?;
        let (mut index, _tree) = self.lock_tree(LockMode::Exclusive);
        index.checkpoint()
    }

    /// Write metadata so the index can be reopened; flushes all dirty
    /// pages (a checkpoint on a durable index). Intended as a shutdown
    /// step.
    pub fn persist(&self) -> CoreResult<()> {
        self.check_writable()?;
        let (mut index, _tree) = self.lock_tree(LockMode::Exclusive);
        index.persist()
    }

    /// Log activity counters, when the index is durable.
    #[must_use]
    pub fn wal_stats(&self) -> Option<WalStatsSnapshot> {
        self.shared.inner.lock().wal_stats()
    }

    // ---- introspection ---------------------------------------------------

    /// Number of indexed objects.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.shared.inner.lock().len()
    }

    /// `true` when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of levels (1 = the root is a leaf).
    #[must_use]
    pub fn height(&self) -> u16 {
        self.shared.inner.lock().height()
    }

    /// The construction options.
    #[must_use]
    pub fn options(&self) -> IndexOptions {
        *self.shared.inner.lock().options()
    }

    /// `true` when the index write-ahead-logs its updates.
    #[must_use]
    pub fn is_durable(&self) -> bool {
        self.shared.inner.lock().is_durable()
    }

    /// Snapshot of the physical I/O counters.
    #[must_use]
    pub fn io_snapshot(&self) -> IoSnapshot {
        self.shared.inner.lock().io_stats().snapshot()
    }

    /// Run `f` over the operation counters.
    pub fn with_op_stats<R>(&self, f: impl FnOnce(&OpStats) -> R) -> R {
        f(self.shared.inner.lock().op_stats())
    }

    /// Run `f` over the underlying index (read-only diagnostics: page
    /// counts, summary inspection, ...). Holds the physical lock but no
    /// granule lock — pair with quiesced writers for exact numbers.
    pub fn with_index<R>(&self, f: impl FnOnce(&RTreeIndex) -> R) -> R {
        f(&self.shared.inner.lock())
    }

    /// Run `f` over the underlying index mutably, under an exclusive
    /// tree granule (maintenance escape hatch: buffer resizing, bulk
    /// fix-ups, ...).
    pub fn with_index_mut<R>(&self, f: impl FnOnce(&mut RTreeIndex) -> R) -> R {
        let (mut index, _tree) = self.lock_tree(LockMode::Exclusive);
        f(&mut index)
    }

    /// Run the deep invariant check.
    pub fn validate(&self) -> CoreResult<()> {
        self.shared.inner.lock().validate()
    }
}

/// Receipt for a flushed write ([`Bur::apply`] / [`Bur::commit`]).
///
/// Holding a ticket costs nothing; [`CommitTicket::wait`] blocks until
/// the log's durable-LSN watermark covers the ticket's commit record —
/// the hard ack under [`bur_storage::SyncPolicy::Async`], where commits
/// return before their batch is synced. Under the synchronous policies
/// (and on non-durable indexes) `wait` returns immediately. The wait
/// never holds the index lock, so acknowledging durability does not
/// stall concurrent writers.
#[derive(Debug)]
pub struct CommitTicket {
    report: BatchReport,
    hooks: CommitBatch,
    lsn: Lsn,
    waiter: Option<WalWaiter>,
}

impl CommitTicket {
    /// Block until the covered operations are durable; returns the
    /// durable watermark (0 on a non-durable index).
    pub fn wait(&self) -> CoreResult<Lsn> {
        match &self.waiter {
            Some(w) => Ok(w.wait(self.lsn)?),
            None => Ok(0),
        }
    }

    /// `true` once the covered operations are durable (never blocks;
    /// trivially `true` on a non-durable index).
    #[must_use]
    pub fn is_durable(&self) -> bool {
        self.waiter
            .as_ref()
            .is_none_or(|w| w.durable_lsn() >= self.lsn)
    }

    /// LSN of the covering commit record (0 on a non-durable index).
    #[must_use]
    pub fn lsn(&self) -> Lsn {
        self.lsn
    }

    /// What the write did, per operation class.
    #[must_use]
    pub fn report(&self) -> &BatchReport {
        &self.report
    }

    /// The per-granule commit hooks drained by this flush (empty when
    /// commit batching was off or the index is not durable).
    #[must_use]
    pub fn commit_batch(&self) -> &CommitBatch {
        &self.hooks
    }

    /// Consume the ticket, returning the drained commit hooks.
    #[must_use]
    pub fn into_commit_batch(self) -> CommitBatch {
        self.hooks
    }
}

/// Streaming window-query results (see [`Bur::query`]).
///
/// Iterate it like any iterator; the backing buffer returns to the
/// handle's recycling pool on drop, so steady-state queries allocate
/// nothing.
pub struct QueryCursor {
    hits: Vec<ObjectId>,
    pos: usize,
    home: Arc<BurShared>,
}

impl std::fmt::Debug for QueryCursor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryCursor")
            .field("remaining", &self.len())
            .finish()
    }
}

impl QueryCursor {
    /// The ids not yet consumed, as a slice.
    #[must_use]
    pub fn remaining(&self) -> &[ObjectId] {
        &self.hits[self.pos..]
    }

    /// Append the remaining ids to `out` (bridge for callers that still
    /// want buffer semantics), consuming the cursor.
    pub fn collect_into(mut self, out: &mut Vec<ObjectId>) {
        out.extend_from_slice(self.remaining());
        self.pos = self.hits.len();
    }
}

impl Iterator for QueryCursor {
    type Item = ObjectId;

    fn next(&mut self) -> Option<ObjectId> {
        let id = self.hits.get(self.pos).copied()?;
        self.pos += 1;
        Some(id)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.hits.len() - self.pos;
        (n, Some(n))
    }
}

impl ExactSizeIterator for QueryCursor {}

impl Drop for QueryCursor {
    fn drop(&mut self) {
        self.home.recycle(std::mem::take(&mut self.hits));
    }
}

/// Streaming k-nearest-neighbor results, closest first (see
/// [`Bur::nearest`]).
#[derive(Debug)]
pub struct NeighborCursor {
    hits: std::vec::IntoIter<Neighbor>,
}

impl Iterator for NeighborCursor {
    type Item = Neighbor;

    fn next(&mut self) -> Option<Neighbor> {
        self.hits.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.hits.size_hint()
    }
}

impl ExactSizeIterator for NeighborCursor {}
