//! The shared index handle: one clonable type for every caller.
//!
//! [`Bur`] wraps the [`RTreeIndex`] engine in `Arc` internals with the
//! DGL granule-locking discipline the paper's throughput study uses
//! (Section 3.2.2): bottom-up updates X-lock the granule of the leaf
//! they touch under a shared tree granule, while structure-modifying
//! operations (inserts, deletes, top-down updates) take the tree
//! granule exclusively. Clone the handle freely — clones share the same
//! index.
//!
//! Since the latch-per-page rework the granule discipline is physical,
//! not just logical: the engine sits behind a reader-writer lock, and a
//! [`Bur::apply`] batch of bottom-up updates, inserts and deletes runs
//! under the *shared* side — several such batches on disjoint leaf
//! granules plan and write **at the same time**, each page access
//! serialized only by its per-frame latch
//! ([`bur_storage::PageWriteLatch`]). An insert that finds its leaf
//! full splits it as a short exclusive *make-room* commit and retries
//! shared; a batch that still needs non-leaf-local surgery (top-down
//! updates, sibling shifts, underflows, MBR ascents) escalates to the
//! exclusive side before writing anything, counted in
//! [`crate::stats::OpSnapshot::escalations`]. The full protocol — latch
//! ordering, pin-vs-latch rules, the safe-node (make-room) rule, the
//! deadlock-avoidance argument — is normative in
//! `docs/ARCHITECTURE.md` ("Latching protocol").
//!
//! The write path is **batch-first**: [`Bur::apply`] takes a [`Batch`]
//! of mixed operations, applies it under one granule acquisition, and —
//! on a durable index — flushes it as **one** write-ahead-log group
//! commit record (atomic under crashes). Every write entry point
//! returns or leads to a [`CommitTicket`] whose [`CommitTicket::wait`]
//! rides the log's durable-LSN watermark: the hard ack under
//! [`bur_storage::SyncPolicy::Async`], an instant no-op when the commit
//! already synced inline.
//!
//! Queries stream: [`Bur::query`] returns a [`QueryCursor`] backed by a
//! buffer recycled across calls (zero per-call allocation in steady
//! state) instead of a freshly allocated `Vec<ObjectId>`.
//!
//! ```
//! use bur_core::{Batch, IndexBuilder};
//! use bur_geom::{Point, Rect};
//!
//! let bur = IndexBuilder::generalized().durable().build().unwrap();
//! let mut batch = Batch::new();
//! for oid in 0..32u64 {
//!     batch.insert(oid, Point::new(oid as f32 / 32.0, 0.5));
//! }
//! let ticket = bur.apply(&batch).unwrap();
//! ticket.wait().unwrap(); // durable: one group commit record covers all 32
//! let hits: Vec<u64> = bur.query(&Rect::new(0.0, 0.0, 0.5, 1.0)).unwrap().collect();
//! assert_eq!(hits.len(), 17);
//! ```

use crate::batch::{Batch, BatchReport, Op};
use crate::concurrent::{self, GroupOp, GroupPlan, OpEffect, Planned};
use crate::config::{IndexOptions, UpdateStrategy};
use crate::error::{CoreError, CoreResult};
use crate::index::{RTreeIndex, RecoveryReport};
use crate::knn::Neighbor;
use crate::node::ObjectId;
use crate::stats::{OpStats, UpdateOutcome};
use bur_dgl::{CommitBatch, CommitBatcher, Granule, LockGuard, LockManager, LockMode};
use bur_geom::{Point, Rect};
use bur_storage::{IoSnapshot, PageId};
use bur_wal::{Lsn, WalStatsSnapshot, WalWaiter};
use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;

/// How many make-room splits one `apply` call may perform before giving
/// up and escalating: each split frees ~half a leaf, so repeated
/// `MakeRoom` verdicts mean the batch concentrates inserts faster than
/// preparatory splits can make room — the exclusive path handles that
/// better than a split storm would.
const MAKE_ROOM_ATTEMPTS: u32 = 4;

/// At most this many spare query buffers are kept for recycling; extra
/// cursors dropped concurrently just free their buffer.
const SPARE_BUFFERS: usize = 16;

/// Shared state behind every clone of a [`Bur`] handle.
struct BurShared {
    /// The engine. Writers that stay leaf-local (concurrent `apply`)
    /// hold the **read** side — the granule locks in `locks` carve up
    /// what they may touch — while structural writers hold the write
    /// side. See `docs/ARCHITECTURE.md`, "Latching protocol".
    inner: RwLock<RTreeIndex>,
    locks: LockManager,
    /// Per-granule commit hooks accumulated between group commit records
    /// (see [`Bur::set_commit_batching`] and [`Bur::apply`]).
    batcher: CommitBatcher,
    /// Single-op commit batch size; 0 or 1 means per-operation commits.
    batch_target: AtomicU32,
    /// Durable-watermark waiter, cached at construction (durable indexes
    /// only) and refreshed when a replica promotion attaches a log.
    waiter: Mutex<Option<WalWaiter>>,
    /// What recovery replayed, when the handle was built in recover mode.
    recovery: Option<RecoveryReport>,
    /// Recycled query-result buffers ([`QueryCursor`] hot path).
    spare_ids: Mutex<Vec<Vec<ObjectId>>>,
    /// Write paths refuse with [`CoreError::ReadOnly`] while set — the
    /// replication-follower mode, cleared by [`Bur::promote_replica`].
    read_only: AtomicBool,
    /// Threads one concurrent `apply` may fan its leaf groups across
    /// (1 = plan and write inline on the calling thread).
    executor_threads: AtomicUsize,
    /// Batches currently inside the concurrent write path, and the high
    /// watermark — the overlap instrumentation behind
    /// [`Bur::peak_concurrent_batches`].
    inflight: AtomicUsize,
    inflight_peak: AtomicUsize,
}

impl BurShared {
    /// Return a query buffer to the recycling pool (cleared first; the
    /// pool is capped at [`SPARE_BUFFERS`], extras are simply freed).
    /// The single home of the recycling policy — `Bur::query`'s error
    /// path and `QueryCursor::drop` both land here.
    fn recycle(&self, mut buf: Vec<ObjectId>) {
        buf.clear();
        let mut spares = self.spare_ids.lock();
        if spares.len() < SPARE_BUFFERS {
            spares.push(buf);
        }
    }
}

/// The clonable, thread-safe index handle.
#[derive(Clone)]
pub struct Bur {
    shared: Arc<BurShared>,
}

impl std::fmt::Debug for Bur {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bur")
            .field("inner", &*self.shared.inner.read())
            .finish_non_exhaustive()
    }
}

/// Outcome of one shared-phase attempt inside [`Bur::apply`]. Every
/// variant but `Done` is returned with all locks released.
enum SharedAttempt {
    /// Planned, written and committed concurrently.
    Done(CommitTicket),
    /// Not leaf-local: replay the whole batch on the exclusive path
    /// (nothing has been written).
    Escalate,
    /// An insert found this leaf full: split it as its own short
    /// exclusive commit (a content-neutral preparatory split), then
    /// retry the batch on the shared path. Nothing has been written.
    MakeRoom(PageId),
    /// Pending single-op commits must be flushed under the exclusive
    /// lock before a concurrent commit may log its pages.
    FlushPending,
    /// A granule was refused; back off and try again.
    Retry,
}

impl Bur {
    /// Wrap an existing single-threaded index in a shared handle.
    /// (Usually you build the handle directly with
    /// [`crate::IndexBuilder::build`].)
    #[must_use]
    pub fn from_index(index: RTreeIndex) -> Self {
        Self::from_index_with_report(index, None)
    }

    /// Wrap an index in a **read-only** handle: every write entry point
    /// (`apply`, `insert`, `update`, `delete`, `commit`, `checkpoint`,
    /// `persist`, `set_commit_batching`) fails with
    /// [`CoreError::ReadOnly`] until [`Bur::promote_replica`] flips the
    /// handle writable. This is how a replication follower shares its
    /// replica view with query threads while it alone redoes the shipped
    /// log through [`Bur::with_index_mut`] (the maintenance escape
    /// hatch, which stays open — it is the follower's apply path).
    #[must_use]
    pub fn from_index_read_only(index: RTreeIndex) -> Self {
        let bur = Self::from_index_with_report(index, None);
        bur.shared.read_only.store(true, Ordering::Release);
        bur
    }

    pub(crate) fn from_index_with_report(
        index: RTreeIndex,
        recovery: Option<RecoveryReport>,
    ) -> Self {
        let waiter = Mutex::new(index.wal_waiter());
        Self {
            shared: Arc::new(BurShared {
                inner: RwLock::new(index),
                locks: LockManager::new(),
                batcher: CommitBatcher::new(),
                batch_target: AtomicU32::new(1),
                waiter,
                recovery,
                spare_ids: Mutex::new(Vec::new()),
                read_only: AtomicBool::new(false),
                executor_threads: AtomicUsize::new(1),
                inflight: AtomicUsize::new(0),
                inflight_peak: AtomicUsize::new(0),
            }),
        }
    }

    /// `true` while the handle is a read-only replica view (see
    /// [`Bur::from_index_read_only`]).
    #[must_use]
    pub fn is_read_only(&self) -> bool {
        self.shared.read_only.load(Ordering::Acquire)
    }

    /// Refuse writes through a read-only handle.
    fn check_writable(&self) -> CoreResult<()> {
        if self.is_read_only() {
            return Err(CoreError::ReadOnly);
        }
        Ok(())
    }

    /// Promote a read-only replica handle in place: run the tail of
    /// recovery ([`RTreeIndex::promote_replica`] — memory-state rebuild,
    /// log reattach + rewind, checkpoint) under the exclusive tree
    /// granule, then flip the handle writable. Every clone held by a
    /// query thread becomes a handle on the new primary at the same
    /// moment. Fails on a handle that is already writable.
    pub fn promote_replica(&self, opts: IndexOptions) -> CoreResult<()> {
        let (mut index, _tree) = self.lock_excl();
        // Checked under the exclusive lock: of two racing promotes,
        // exactly one wins — the loser sees a writable handle.
        if !self.is_read_only() {
            return Err(CoreError::BadConfig(
                "promote_replica: handle is already writable".into(),
            ));
        }
        index.promote_replica(opts)?;
        *self.shared.waiter.lock() = index.wal_waiter();
        self.shared.read_only.store(false, Ordering::Release);
        Ok(())
    }

    /// Unwrap into the inner [`RTreeIndex`]; fails (returning the handle)
    /// when other clones are still alive.
    pub fn try_into_index(self) -> Result<RTreeIndex, Self> {
        match Arc::try_unwrap(self.shared) {
            Ok(shared) => Ok(shared.inner.into_inner()),
            Err(shared) => Err(Self { shared }),
        }
    }

    /// The granule lock manager (exposed for tests).
    #[must_use]
    pub fn lock_manager(&self) -> &LockManager {
        &self.shared.locks
    }

    /// What recovery replayed when this handle was built in
    /// [`crate::OpenMode::Recover`] (or `open` of a durable file that
    /// needed replay through the builder's recover path); `None` for
    /// fresh or cleanly opened non-durable indexes.
    #[must_use]
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.shared.recovery
    }

    // ---- locking helpers -------------------------------------------------

    /// Acquire the physical write lock plus the exclusive tree granule,
    /// try-and-retry on the granule (never blocking on a granule while
    /// holding the physical lock, so the handle cannot deadlock — the
    /// latch-order invariant of `docs/ARCHITECTURE.md`).
    fn lock_excl(&self) -> (RwLockWriteGuard<'_, RTreeIndex>, LockGuard<'_>) {
        loop {
            let index = self.shared.inner.write();
            match self
                .shared
                .locks
                .try_lock(Granule::Tree, LockMode::Exclusive)
            {
                Ok(guard) => return (index, guard),
                Err(_) => {
                    drop(index);
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Acquire the physical read lock plus the shared tree granule
    /// (query-side counterpart of [`Bur::lock_excl`]).
    fn lock_shared(&self) -> (RwLockReadGuard<'_, RTreeIndex>, LockGuard<'_>) {
        loop {
            let index = self.shared.inner.read();
            match self.shared.locks.try_lock(Granule::Tree, LockMode::Shared) {
                Ok(guard) => return (index, guard),
                Err(_) => {
                    drop(index);
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Register a finished write on `granule` with the commit batcher and
    /// drain the hooks whenever the core has just flushed a batch (its
    /// pending count returns to zero — on the batch boundary or a
    /// piggybacked checkpoint).
    fn after_write(&self, index: &mut RTreeIndex, granule: Granule) {
        if self.shared.batch_target.load(Ordering::Relaxed) <= 1 || !index.is_durable() {
            return;
        }
        self.shared.batcher.note(granule);
        if index.pending_commits() == 0 {
            self.shared.batcher.drain();
        }
    }

    /// Build a ticket covering everything flushed so far (call with the
    /// index lock still held, so the LSN covers exactly this commit).
    fn ticket(&self, index: &RTreeIndex, report: BatchReport, hooks: CommitBatch) -> CommitTicket {
        CommitTicket {
            report,
            hooks,
            lsn: index.last_lsn().unwrap_or(0),
            waiter: self.shared.waiter.lock().clone(),
        }
    }

    // ---- batch-first writes ----------------------------------------------

    /// Apply a [`Batch`] of mixed operations atomically with respect to
    /// the write-ahead log: the whole batch is flushed as **one** group
    /// commit record (plus any single operations already pending in the
    /// current commit batch), so a crash recovers all of it or none of
    /// it. Returns a [`CommitTicket`]; under
    /// [`bur_storage::SyncPolicy::Async`], [`CommitTicket::wait`] is the
    /// hard durability ack.
    ///
    /// Locking: batches of bottom-up updates, inserts and deletes
    /// X-lock the granules of the leaves they touch under a **shared**
    /// tree granule and the **shared** physical lock — batches on
    /// disjoint leaves (including structural ones) plan and write
    /// concurrently (see the module docs and `docs/ARCHITECTURE.md`).
    /// An insert that finds its leaf full triggers a *make-room* split:
    /// that one leaf is split under a short exclusive section as its
    /// own commit record and the batch retries shared. A batch that
    /// still cannot stay leaf-local — top-down updates, sibling shifts,
    /// underflows, MBR ascents, same-batch operations on one object —
    /// escalates to the exclusive tree granule before a single page is
    /// written, so the result is always logically identical to
    /// sequential application (the physical tree may differ by benign
    /// slack only; see `crate::concurrent`). Escalations are counted in
    /// [`crate::stats::OpSnapshot::escalations`].
    pub fn apply(&self, batch: &Batch) -> CoreResult<CommitTicket> {
        self.check_writable()?;
        if batch.is_empty() {
            let index = self.shared.inner.read();
            return Ok(self.ticket(&index, BatchReport::default(), CommitBatch::default()));
        }
        let mut room_attempts = 0u32;
        loop {
            match self.apply_shared_phase(batch)? {
                SharedAttempt::Done(ticket) => {
                    self.checkpoint_if_due()?;
                    return Ok(ticket);
                }
                SharedAttempt::MakeRoom(pid) if room_attempts < MAKE_ROOM_ATTEMPTS => {
                    room_attempts += 1;
                    let (mut index, _tree) = self.lock_excl();
                    // `false` means the leaf moved on (split by a racing
                    // batch, emptied, dissolved): just retry shared.
                    index.make_room(pid)?;
                    continue;
                }
                SharedAttempt::FlushPending => {
                    // Single-op commits pending from before the shared
                    // phase must land under their own record first: the
                    // concurrent commit logs only this batch's pages.
                    let (mut index, _tree) = self.lock_excl();
                    index.flush_commits()?;
                    continue;
                }
                SharedAttempt::Retry => {
                    std::thread::yield_now();
                    continue;
                }
                SharedAttempt::Escalate | SharedAttempt::MakeRoom(_) => {}
            }
            // Classic exclusive path: the whole batch under the write
            // lock and the exclusive tree granule, applied by the engine
            // and flushed as one group commit record by `apply_batch`.
            let mut index = self.shared.inner.write();
            match self
                .shared
                .locks
                .try_lock(Granule::Tree, LockMode::Exclusive)
            {
                Ok(_tree) => {
                    index.op_stats().escalations.fetch_add(1, Ordering::Relaxed);
                    let result = index.apply_batch(batch);
                    // A group commit record covered everything applied
                    // (the whole batch, or — on error — the prefix
                    // before the failing op, which `apply_batch` flushed
                    // before surfacing it): note the covered granule and
                    // drain the hooks as one commit batch, so nothing
                    // lingers to be misattributed to a later ticket.
                    let applied = match &result {
                        Ok(report) => report.applied as usize,
                        Err(CoreError::Batch { op_index, .. }) => *op_index,
                        Err(_) => 0,
                    };
                    let hooks = if index.is_durable() {
                        self.shared.batcher.note_n(Granule::Tree, applied as u64);
                        self.shared.batcher.drain()
                    } else {
                        CommitBatch::default()
                    };
                    let report = result?;
                    return Ok(self.ticket(&index, report, hooks));
                }
                Err(_) => {
                    drop(index);
                    std::thread::yield_now();
                }
            }
        }
    }

    /// One attempt at the concurrent write path: classify the batch,
    /// take the shared physical lock + shared tree granule + exclusive
    /// leaf granules, and hand the groups to
    /// [`Bur::apply_concurrent`]. Every outcome that is not `Done`
    /// releases everything before returning, so the caller never holds
    /// a lock across its next move.
    fn apply_shared_phase(&self, batch: &Batch) -> CoreResult<SharedAttempt> {
        let index = self.shared.inner.read();
        if matches!(index.options().strategy, UpdateStrategy::TopDown) {
            return Ok(SharedAttempt::Escalate);
        }
        // Group the ops by their DGL granule: updates and deletes by
        // the leaf currently holding their object (the hash index),
        // inserts by a read-only containment-constrained descent
        // (`locate_insert_leaf`), preserving batch order within each
        // group. Escalations here are the cases the shared path cannot
        // resolve faithfully:
        //   * an update of an unknown object (the strategy turns it
        //     into an error on the exclusive path);
        //   * an insert of an existing object, or one with an invalid
        //     rect (sequential `insert_rect` rejects both);
        //   * an insert with no containment-feasible leaf (it must
        //     enlarge some internal entry);
        //   * a later op touching an object inserted earlier in this
        //     same batch — the pre-batch hash cannot place it, so the
        //     whole batch replays sequentially.
        // A delete of an unknown object is not escalated: sequential
        // application counts it in `missing_deletes` and writes
        // nothing, which the shared path reproduces exactly.
        let mut groups: Vec<(PageId, Vec<GroupOp>)> = Vec::new();
        let mut group_of: HashMap<PageId, usize> = HashMap::new();
        let mut inserted_here: HashSet<ObjectId> = HashSet::new();
        let mut missing_deletes = 0u64;
        for (i, op) in batch.ops().iter().enumerate() {
            let (pid, gop) = match *op {
                Op::Update { oid, old, new } => {
                    if inserted_here.contains(&oid) {
                        return Ok(SharedAttempt::Escalate);
                    }
                    let Some(pid) = index.locate_leaf(oid)? else {
                        return Ok(SharedAttempt::Escalate);
                    };
                    (
                        pid,
                        GroupOp::Update {
                            pos: i,
                            oid,
                            old,
                            new,
                        },
                    )
                }
                Op::Insert { oid, rect } => {
                    if !rect.is_valid()
                        || inserted_here.contains(&oid)
                        || index.locate_leaf(oid)?.is_some()
                    {
                        return Ok(SharedAttempt::Escalate);
                    }
                    let Some(pid) = index.locate_insert_leaf(&rect)? else {
                        return Ok(SharedAttempt::Escalate);
                    };
                    inserted_here.insert(oid);
                    (pid, GroupOp::Insert { pos: i, oid, rect })
                }
                Op::Delete { oid, position } => {
                    if inserted_here.contains(&oid) {
                        return Ok(SharedAttempt::Escalate);
                    }
                    match index.locate_leaf(oid)? {
                        Some(pid) => (
                            pid,
                            GroupOp::Delete {
                                pos: i,
                                oid,
                                position,
                            },
                        ),
                        None => {
                            missing_deletes += 1;
                            continue;
                        }
                    }
                }
            };
            let slot = *group_of.entry(pid).or_insert_with(|| {
                groups.push((pid, Vec::new()));
                groups.len() - 1
            });
            groups[slot].1.push(gop);
        }
        if index.pending_commits() > 0 {
            return Ok(SharedAttempt::FlushPending);
        }
        // Shared tree granule + X on the distinct leaves, acquired in
        // sorted order (the deadlock-avoidance protocol): any refusal
        // backs all the way out and retries from scratch.
        let mut guards: Vec<LockGuard<'_>> = Vec::new();
        match self.shared.locks.try_lock(Granule::Tree, LockMode::Shared) {
            Ok(g) => guards.push(g),
            Err(_) => return Ok(SharedAttempt::Retry),
        }
        let mut distinct: Vec<PageId> = groups.iter().map(|(pid, _)| *pid).collect();
        distinct.sort_unstable();
        for pid in distinct {
            match self
                .shared
                .locks
                .try_lock(Granule::Leaf(pid), LockMode::Exclusive)
            {
                Ok(g) => guards.push(g),
                Err(_) => return Ok(SharedAttempt::Retry),
            }
        }
        let entered = self.shared.inflight.fetch_add(1, Ordering::Relaxed) + 1;
        self.shared
            .inflight_peak
            .fetch_max(entered, Ordering::Relaxed);
        let result = self.apply_concurrent(&index, batch, &groups, missing_deletes);
        self.shared.inflight.fetch_sub(1, Ordering::Relaxed);
        result
    }

    /// Plan-then-write `batch` (grouped by leaf) inside the shared
    /// phase. Returns `Escalate` when any op needs more than leaf-local
    /// repair and `MakeRoom` when an insert found its leaf full —
    /// nothing has been written at either point, so the caller's next
    /// move (escalated replay, or a preparatory split and a shared
    /// retry) starts from an untouched tree.
    fn apply_concurrent(
        &self,
        index: &RTreeIndex,
        batch: &Batch,
        groups: &[(PageId, Vec<GroupOp>)],
        missing_deletes: u64,
    ) -> CoreResult<SharedAttempt> {
        let threads = self
            .shared
            .executor_threads
            .load(Ordering::Relaxed)
            .clamp(1, groups.len().max(1));
        // Phase 1 — plan every group read-only. One infeasible op
        // escalates the whole batch with zero pages written.
        let mut plans: Vec<GroupPlan> = Vec::with_capacity(groups.len());
        if threads <= 1 {
            for (pid, ops) in groups {
                match concurrent::plan_group(index, *pid, ops) {
                    Planned::Ready(plan) => plans.push(plan),
                    Planned::MakeRoom(pid) => return Ok(SharedAttempt::MakeRoom(pid)),
                    Planned::Escalate => return Ok(SharedAttempt::Escalate),
                }
            }
        } else {
            let per = groups.len().div_ceil(threads);
            let planned = std::thread::scope(|scope| {
                let workers: Vec<_> = groups
                    .chunks(per)
                    .map(|part| {
                        scope.spawn(move || {
                            part.iter()
                                .map(|(pid, ops)| concurrent::plan_group(index, *pid, ops))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                workers
                    .into_iter()
                    .flat_map(|w| w.join().expect("group planner panicked"))
                    .collect::<Vec<_>>()
            });
            for plan in planned {
                match plan {
                    Planned::Ready(plan) => plans.push(plan),
                    Planned::MakeRoom(pid) => return Ok(SharedAttempt::MakeRoom(pid)),
                    Planned::Escalate => return Ok(SharedAttempt::Escalate),
                }
            }
        }
        // Phase 2 — write the shadows. Group order no longer matters
        // (leaves are disjoint; parent-entry patches commute inside the
        // stable parent MBR), so executors fan out freely.
        let mut written: Vec<PageId> = Vec::new();
        let mut failed: Option<(usize, CoreError)> = None;
        if threads <= 1 {
            for (slot, plan) in plans.iter().enumerate() {
                if let Err(e) = concurrent::execute_group(index, plan, &mut written) {
                    failed = Some((slot, e));
                    break;
                }
            }
        } else {
            let per = plans.len().div_ceil(threads);
            let parts = std::thread::scope(|scope| {
                let workers: Vec<_> = plans
                    .chunks(per)
                    .map(|part| {
                        scope.spawn(move || {
                            let mut wrote = Vec::new();
                            for (off, plan) in part.iter().enumerate() {
                                if let Err(e) = concurrent::execute_group(index, plan, &mut wrote) {
                                    return (wrote, Some((off, e)));
                                }
                            }
                            (wrote, None)
                        })
                    })
                    .collect();
                workers
                    .into_iter()
                    .map(|w| w.join().expect("group executor panicked"))
                    .collect::<Vec<_>>()
            });
            for (part_index, (wrote, err)) in parts.into_iter().enumerate() {
                written.extend(wrote);
                if let Some((off, e)) = err {
                    if failed.is_none() {
                        failed = Some((part_index * per + off, e));
                    }
                }
            }
        }
        written.sort_unstable();
        written.dedup();
        if let Some((slot, source)) = failed {
            // A storage failure mid-execute (unreachable on a healthy
            // pool). Commit the pages already written — every complete
            // group, plus possibly a parent grown for a leaf that never
            // moved, which is benign slack — so the log never replays a
            // torn page set, then surface the error. The applied set is
            // group-granular here, the one documented divergence from
            // the sequential path's strict-prefix contract.
            let done_plans: Vec<&GroupPlan> = plans
                .iter()
                .filter(|p| written.binary_search(&p.leaf_pid).is_ok())
                .collect();
            let done: u64 = done_plans.iter().map(|p| p.outcomes.len() as u64).sum();
            let delta: i64 = done_plans.iter().map(|p| p.len_delta).sum();
            index.commit_batch_pages(done, &written, delta)?;
            if index.is_durable() {
                for plan in &done_plans {
                    self.shared
                        .batcher
                        .note_n(Granule::Leaf(plan.leaf_pid), plan.outcomes.len() as u64);
                }
                self.shared.batcher.drain();
            }
            return Err(CoreError::Batch {
                op_index: groups[slot].1[0].pos(),
                source: Box::new(source),
            });
        }
        let mut report = BatchReport {
            applied: batch.len() as u64,
            missing_deletes,
            ..BatchReport::default()
        };
        let stats = index.op_stats();
        for plan in &plans {
            for effect in &plan.outcomes {
                match effect {
                    OpEffect::Update(outcome) => {
                        report.updated += 1;
                        stats.record_update(*outcome);
                    }
                    OpEffect::Insert => {
                        report.inserted += 1;
                        stats.inserts.fetch_add(1, Ordering::Relaxed);
                    }
                    OpEffect::Delete => {
                        report.deleted += 1;
                        stats.deletes.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        let delta: i64 = plans.iter().map(|p| p.len_delta).sum();
        let lsn = index
            .commit_batch_pages(batch.len() as u64, &written, delta)?
            .unwrap_or(0);
        let hooks = if index.is_durable() {
            for (pid, ops) in groups {
                self.shared
                    .batcher
                    .note_n(Granule::Leaf(*pid), ops.len() as u64);
            }
            self.shared.batcher.drain()
        } else {
            CommitBatch::default()
        };
        Ok(SharedAttempt::Done(CommitTicket {
            report,
            hooks,
            lsn,
            waiter: self.shared.waiter.lock().clone(),
        }))
    }

    /// Deferred checkpoint for the concurrent path: a shared-phase
    /// commit cannot checkpoint (that rewrites the log under every
    /// in-flight batch), so it only bumps the cadence counter, and the
    /// checkpoint runs here — after the granules are released, under
    /// the exclusive lock, re-checked because a racing batch may have
    /// taken it already.
    fn checkpoint_if_due(&self) -> CoreResult<()> {
        if !self.shared.inner.read().checkpoint_due() {
            return Ok(());
        }
        let (mut index, _tree) = self.lock_excl();
        if index.checkpoint_due() {
            index.checkpoint()?;
        }
        Ok(())
    }

    /// Flush any single operations pending in the current commit batch
    /// (see [`Bur::set_commit_batching`]) as one group commit record and
    /// return the covering [`CommitTicket`]. A no-op ticket when nothing
    /// was pending.
    pub fn commit(&self) -> CoreResult<CommitTicket> {
        self.check_writable()?;
        let mut index = self.shared.inner.write();
        let pending = index.pending_commits();
        index.flush_commits()?;
        let hooks = self.shared.batcher.drain();
        let report = BatchReport {
            applied: pending,
            ..BatchReport::default()
        };
        Ok(self.ticket(&index, report, hooks))
    }

    /// Block until every acknowledged operation is durable in the log
    /// (operations pending in a commit batch are flushed first); returns
    /// the durable watermark. No-op (returning 0) on a non-durable
    /// index. Unlike the ticketed wait, this holds no index lock while
    /// waiting.
    pub fn wait_durable(&self) -> CoreResult<Lsn> {
        self.commit()?.wait()
    }

    // ---- single-operation writes -----------------------------------------

    /// Insert a fresh point object (tree granule exclusive: inserts can
    /// split).
    pub fn insert(&self, oid: ObjectId, position: Point) -> CoreResult<()> {
        self.check_writable()?;
        let (mut index, _tree) = self.lock_excl();
        index.insert(oid, position)?;
        self.after_write(&mut index, Granule::Tree);
        Ok(())
    }

    /// Insert a fresh object with a rectangular extent.
    pub fn insert_rect(&self, oid: ObjectId, rect: Rect) -> CoreResult<()> {
        self.check_writable()?;
        let (mut index, _tree) = self.lock_excl();
        index.insert_rect(oid, rect)?;
        self.after_write(&mut index, Granule::Tree);
        Ok(())
    }

    /// Delete an object (tree granule exclusive). Returns `false` when
    /// it is not indexed at `position`.
    pub fn delete(&self, oid: ObjectId, position: Point) -> CoreResult<bool> {
        self.check_writable()?;
        let (mut index, _tree) = self.lock_excl();
        let found = index.delete(oid, position)?;
        if found {
            self.after_write(&mut index, Granule::Tree);
        }
        Ok(found)
    }

    /// Move an object, acquiring the DGL granules its strategy requires:
    /// bottom-up updates take the granule of the object's current leaf
    /// exclusively under a shared tree granule; top-down updates take
    /// the tree granule exclusively. A bottom-up update that plans
    /// leaf-local (in place or an extension within the parent MBR) runs
    /// through the same shared planner as [`Bur::apply`] — under the
    /// **shared** physical lock, overlapping other single-op updates and
    /// concurrent batches — and only falls back to the physical write
    /// lock when it needs structural surgery (or when commit batching is
    /// amortizing single-op records, which the shared path cannot join).
    pub fn update(&self, oid: ObjectId, old: Point, new: Point) -> CoreResult<UpdateOutcome> {
        self.check_writable()?;
        if let Some(outcome) = self.try_update_shared(oid, old, new)? {
            self.checkpoint_if_due()?;
            return Ok(outcome);
        }
        loop {
            let mut index = self.shared.inner.write();
            let bottom_up = !matches!(index.options().strategy, UpdateStrategy::TopDown);
            if bottom_up {
                let Some(leaf_pid) = index.locate_leaf(oid)? else {
                    // Unknown object: let the strategy surface the error.
                    return index.update(oid, old, new);
                };
                let tree_s = self.shared.locks.try_lock(Granule::Tree, LockMode::Shared);
                let leaf_x = self
                    .shared
                    .locks
                    .try_lock(Granule::Leaf(leaf_pid), LockMode::Exclusive);
                match (tree_s, leaf_x) {
                    (Ok(_t), Ok(_l)) => {
                        let outcome = index.update(oid, old, new)?;
                        self.after_write(&mut index, Granule::Leaf(leaf_pid));
                        return Ok(outcome);
                    }
                    _ => {
                        drop(index);
                        std::thread::yield_now();
                    }
                }
            } else {
                match self
                    .shared
                    .locks
                    .try_lock(Granule::Tree, LockMode::Exclusive)
                {
                    Ok(_g) => {
                        let outcome = index.update(oid, old, new)?;
                        self.after_write(&mut index, Granule::Tree);
                        return Ok(outcome);
                    }
                    Err(_) => {
                        drop(index);
                        std::thread::yield_now();
                    }
                }
            }
        }
    }

    /// One non-blocking attempt at running a single bottom-up update on
    /// the shared (concurrent) write path: a batch of one, planned and
    /// written under the shared physical lock and the object's leaf
    /// granule. `Ok(None)` means "take the exclusive path" — because the
    /// strategy is top-down, commit batching is amortizing single-op
    /// records, other commits are pending, a granule was refused, or the
    /// plan needs structural surgery (only that last case counts as an
    /// escalation).
    fn try_update_shared(
        &self,
        oid: ObjectId,
        old: Point,
        new: Point,
    ) -> CoreResult<Option<UpdateOutcome>> {
        let index = self.shared.inner.read();
        if matches!(index.options().strategy, UpdateStrategy::TopDown) {
            return Ok(None);
        }
        if index.is_durable() && self.shared.batch_target.load(Ordering::Relaxed) > 1 {
            // Joining the shared path would force a commit record per
            // op, defeating the batching the caller asked for.
            return Ok(None);
        }
        if index.pending_commits() > 0 {
            return Ok(None);
        }
        let Some(pid) = index.locate_leaf(oid)? else {
            // Unknown object: the exclusive path surfaces the error.
            return Ok(None);
        };
        let Ok(_tree) = self.shared.locks.try_lock(Granule::Tree, LockMode::Shared) else {
            return Ok(None);
        };
        let Ok(_leaf) = self
            .shared
            .locks
            .try_lock(Granule::Leaf(pid), LockMode::Exclusive)
        else {
            return Ok(None);
        };
        let entered = self.shared.inflight.fetch_add(1, Ordering::Relaxed) + 1;
        self.shared
            .inflight_peak
            .fetch_max(entered, Ordering::Relaxed);
        let result = (|| {
            let ops = [GroupOp::Update {
                pos: 0,
                oid,
                old,
                new,
            }];
            let plan = match concurrent::plan_group(&index, pid, &ops) {
                Planned::Ready(plan) => plan,
                // MakeRoom cannot come out of an update plan; treat it
                // like any non-leaf-local verdict.
                Planned::Escalate | Planned::MakeRoom(_) => {
                    index.op_stats().escalations.fetch_add(1, Ordering::Relaxed);
                    return Ok(None);
                }
            };
            let mut written = Vec::new();
            concurrent::execute_group(&index, &plan, &mut written)?;
            written.sort_unstable();
            written.dedup();
            let OpEffect::Update(outcome) = plan.outcomes[0] else {
                unreachable!("an update op planned to a non-update effect");
            };
            index.op_stats().record_update(outcome);
            index.commit_batch_pages(1, &written, 0)?;
            Ok(Some(outcome))
        })();
        self.shared.inflight.fetch_sub(1, Ordering::Relaxed);
        result
    }

    // ---- streaming queries -----------------------------------------------

    /// Window query under a shared tree granule, streamed through a
    /// [`QueryCursor`]. The result buffer is recycled from cursor to
    /// cursor, so the hot path performs no per-call `Vec` allocation.
    pub fn query(&self, window: &Rect) -> CoreResult<QueryCursor> {
        let (index, _tree) = self.lock_shared();
        let mut hits = self.shared.spare_ids.lock().pop().unwrap_or_default();
        debug_assert!(hits.is_empty());
        if let Err(e) = index.query_into(window, &mut hits) {
            self.shared.recycle(hits);
            return Err(e);
        }
        Ok(QueryCursor {
            hits,
            pos: 0,
            home: self.shared.clone(),
        })
    }

    /// Number of objects intersecting `window` (a cursor-free count).
    pub fn count_in(&self, window: &Rect) -> CoreResult<usize> {
        Ok(self.query(window)?.len())
    }

    /// The `k` nearest neighbors of `point`, closest first, streamed
    /// through a [`NeighborCursor`] (shared tree granule).
    pub fn nearest(&self, point: Point, k: usize) -> CoreResult<NeighborCursor> {
        let (index, _tree) = self.lock_shared();
        let hits = index.nearest_neighbors(point, k)?;
        Ok(NeighborCursor {
            hits: hits.into_iter(),
        })
    }

    // ---- durability controls ---------------------------------------------

    /// Enable per-granule commit batching on a durable index: each write
    /// registers a commit hook under the granule it locked, and every
    /// `ops` operations the accumulated hooks are flushed as **one**
    /// group commit record. This recovers write concurrency under WAL
    /// mode — the per-operation critical section no longer pays page
    /// logging or a sync — at group commit's durability window (the
    /// unflushed tail of a batch may be lost to a crash; [`Bur::apply`]
    /// batches are flushed whole regardless). `1` restores per-operation
    /// commits. No-op on a non-durable index.
    pub fn set_commit_batching(&self, ops: u32) -> CoreResult<()> {
        self.check_writable()?;
        let ops = ops.max(1);
        let mut index = self.shared.inner.write();
        index.set_commit_batch(ops)?;
        self.shared.batch_target.store(ops, Ordering::Relaxed);
        if index.pending_commits() == 0 {
            self.shared.batcher.drain();
        }
        Ok(())
    }

    /// `(operations batched, group commit records written)` over the
    /// handle's lifetime — the batching compression ratio.
    #[must_use]
    pub fn commit_batch_totals(&self) -> (u64, u64) {
        self.shared.batcher.totals()
    }

    /// Take a checkpoint now (persist on a non-durable index): bounds
    /// recovery replay and the log's page footprint.
    pub fn checkpoint(&self) -> CoreResult<()> {
        self.check_writable()?;
        let (mut index, _tree) = self.lock_excl();
        index.checkpoint()
    }

    /// Write metadata so the index can be reopened; flushes all dirty
    /// pages (a checkpoint on a durable index). Intended as a shutdown
    /// step.
    pub fn persist(&self) -> CoreResult<()> {
        self.check_writable()?;
        let (mut index, _tree) = self.lock_excl();
        index.persist()
    }

    /// Log activity counters, when the index is durable.
    #[must_use]
    pub fn wal_stats(&self) -> Option<WalStatsSnapshot> {
        self.shared.inner.read().wal_stats()
    }

    /// The durable-watermark waiter, when the index is durable. Lets a
    /// coalescing layer (e.g. the `burd` write coalescer) acknowledge
    /// individual submissions against the shared watermark without
    /// holding a [`CommitTicket`] per submission.
    #[must_use]
    pub fn wal_waiter(&self) -> Option<WalWaiter> {
        self.shared.waiter.lock().clone()
    }

    // ---- concurrency controls --------------------------------------------

    /// Set how many executor threads one concurrent [`Bur::apply`] may
    /// fan its leaf groups across while planning and writing (default
    /// 1: the calling thread does everything inline). This is
    /// intra-batch parallelism; inter-batch parallelism needs no knob —
    /// it comes from calling `apply` on clones of the handle from
    /// several threads at once. Values are clamped to at least 1 and,
    /// per batch, to its number of leaf groups.
    pub fn set_executor_threads(&self, threads: usize) {
        self.shared
            .executor_threads
            .store(threads.max(1), Ordering::Relaxed);
    }

    /// Current executor-thread setting (see
    /// [`Bur::set_executor_threads`]).
    #[must_use]
    pub fn executor_threads(&self) -> usize {
        self.shared.executor_threads.load(Ordering::Relaxed)
    }

    /// High watermark of batches observed inside the concurrent write
    /// path at the same moment, over the handle's lifetime. A value
    /// `>= 2` proves two [`Bur::apply`] calls physically overlapped —
    /// the assertion the soak tests and scaling benchmarks rest on.
    #[must_use]
    pub fn peak_concurrent_batches(&self) -> usize {
        self.shared.inflight_peak.load(Ordering::Relaxed)
    }

    /// Reset the [`Bur::peak_concurrent_batches`] high watermark to the
    /// number of batches inside the concurrent path right now (0 when
    /// quiesced), so per-phase measurements — a benchmark's 1-writer
    /// and 8-writer runs, say — don't inherit an earlier phase's peak.
    pub fn reset_peak_concurrent_batches(&self) {
        let now = self.shared.inflight.load(Ordering::Relaxed);
        self.shared.inflight_peak.store(now, Ordering::Relaxed);
    }

    // ---- introspection ---------------------------------------------------

    /// Number of indexed objects.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.shared.inner.read().len()
    }

    /// `true` when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of levels (1 = the root is a leaf).
    #[must_use]
    pub fn height(&self) -> u16 {
        self.shared.inner.read().height()
    }

    /// Minimum bounding rectangle of everything indexed, or
    /// [`Rect::EMPTY`] when the index holds nothing.
    pub fn bounds(&self) -> CoreResult<Rect> {
        self.shared.inner.read().bounds()
    }

    /// The construction options.
    #[must_use]
    pub fn options(&self) -> IndexOptions {
        *self.shared.inner.read().options()
    }

    /// `true` when the index write-ahead-logs its updates.
    #[must_use]
    pub fn is_durable(&self) -> bool {
        self.shared.inner.read().is_durable()
    }

    /// Snapshot of the physical I/O counters.
    #[must_use]
    pub fn io_snapshot(&self) -> IoSnapshot {
        self.shared.inner.read().io_stats().snapshot()
    }

    /// Run `f` over the operation counters.
    pub fn with_op_stats<R>(&self, f: impl FnOnce(&OpStats) -> R) -> R {
        f(self.shared.inner.read().op_stats())
    }

    /// Run `f` over the underlying index (read-only diagnostics: page
    /// counts, summary inspection, ...). Holds the physical read lock
    /// but no granule lock — pair with quiesced writers for exact
    /// numbers.
    pub fn with_index<R>(&self, f: impl FnOnce(&RTreeIndex) -> R) -> R {
        f(&self.shared.inner.read())
    }

    /// Run `f` over the underlying index mutably, under an exclusive
    /// tree granule (maintenance escape hatch: buffer resizing, bulk
    /// fix-ups, ...).
    pub fn with_index_mut<R>(&self, f: impl FnOnce(&mut RTreeIndex) -> R) -> R {
        let (mut index, _tree) = self.lock_excl();
        f(&mut index)
    }

    /// Run the deep invariant check.
    pub fn validate(&self) -> CoreResult<()> {
        self.shared.inner.read().validate()
    }
}

/// Receipt for a flushed write ([`Bur::apply`] / [`Bur::commit`]).
///
/// Holding a ticket costs nothing; [`CommitTicket::wait`] blocks until
/// the log's durable-LSN watermark covers the ticket's commit record —
/// the hard ack under [`bur_storage::SyncPolicy::Async`], where commits
/// return before their batch is synced. Under the synchronous policies
/// (and on non-durable indexes) `wait` returns immediately. The wait
/// never holds the index lock, so acknowledging durability does not
/// stall concurrent writers.
#[derive(Debug)]
pub struct CommitTicket {
    report: BatchReport,
    hooks: CommitBatch,
    lsn: Lsn,
    waiter: Option<WalWaiter>,
}

impl CommitTicket {
    /// Block until the covered operations are durable; returns the
    /// durable watermark (0 on a non-durable index).
    pub fn wait(&self) -> CoreResult<Lsn> {
        match &self.waiter {
            Some(w) => Ok(w.wait(self.lsn)?),
            None => Ok(0),
        }
    }

    /// `true` once the covered operations are durable (never blocks;
    /// trivially `true` on a non-durable index).
    #[must_use]
    pub fn is_durable(&self) -> bool {
        self.waiter
            .as_ref()
            .is_none_or(|w| w.durable_lsn() >= self.lsn)
    }

    /// LSN of the covering commit record (0 on a non-durable index).
    #[must_use]
    pub fn lsn(&self) -> Lsn {
        self.lsn
    }

    /// What the write did, per operation class.
    #[must_use]
    pub fn report(&self) -> &BatchReport {
        &self.report
    }

    /// The per-granule commit hooks drained by this flush (empty when
    /// commit batching was off or the index is not durable).
    #[must_use]
    pub fn commit_batch(&self) -> &CommitBatch {
        &self.hooks
    }

    /// Consume the ticket, returning the drained commit hooks.
    #[must_use]
    pub fn into_commit_batch(self) -> CommitBatch {
        self.hooks
    }
}

/// Streaming window-query results (see [`Bur::query`]).
///
/// Iterate it like any iterator; the backing buffer returns to the
/// handle's recycling pool on drop, so steady-state queries allocate
/// nothing.
pub struct QueryCursor {
    hits: Vec<ObjectId>,
    pos: usize,
    home: Arc<BurShared>,
}

impl std::fmt::Debug for QueryCursor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryCursor")
            .field("remaining", &self.len())
            .finish()
    }
}

impl QueryCursor {
    /// The ids not yet consumed, as a slice.
    #[must_use]
    pub fn remaining(&self) -> &[ObjectId] {
        &self.hits[self.pos..]
    }

    /// Append the remaining ids to `out` (bridge for callers that still
    /// want buffer semantics), consuming the cursor.
    pub fn collect_into(mut self, out: &mut Vec<ObjectId>) {
        out.extend_from_slice(self.remaining());
        self.pos = self.hits.len();
    }
}

impl Iterator for QueryCursor {
    type Item = ObjectId;

    fn next(&mut self) -> Option<ObjectId> {
        let id = self.hits.get(self.pos).copied()?;
        self.pos += 1;
        Some(id)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.hits.len() - self.pos;
        (n, Some(n))
    }
}

impl ExactSizeIterator for QueryCursor {}

impl Drop for QueryCursor {
    fn drop(&mut self) {
        self.home.recycle(std::mem::take(&mut self.hits));
    }
}

/// Streaming k-nearest-neighbor results, closest first (see
/// [`Bur::nearest`]).
#[derive(Debug)]
pub struct NeighborCursor {
    hits: std::vec::IntoIter<Neighbor>,
}

impl Iterator for NeighborCursor {
    type Item = Neighbor;

    fn next(&mut self) -> Option<Neighbor> {
        self.hits.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.hits.size_hint()
    }
}

impl ExactSizeIterator for NeighborCursor {}
