//! Public index facade: construction, the object API (insert / delete /
//! update / query), persistence, and validation.

use crate::batch::{Batch, BatchReport, Op};
use crate::config::{Durability, IndexOptions, UpdateStrategy};
use crate::error::{CoreError, CoreResult};
use crate::knn::{self, Neighbor};
use crate::meta::{read_meta_chain, write_meta_chain, MetaSnapshot, META_PAGE, WAL_ANCHOR};
use crate::node::{LeafEntry, NodeEntries, ObjectId};
use crate::stats::{OpStats, UpdateOutcome};
use crate::summary::SummaryStructure;
use crate::tree::{RTree, WalHandle};
use crate::{gbu, lbu, topdown};
use bur_geom::{Point, Rect};
use bur_hashindex::{HashIndexConfig, LinearHashIndex};
use bur_storage::{BufferPool, DiskBackend, IoStats, PageId, PoolConfig, INVALID_PAGE};
use bur_wal::{Wal, WalRecord, WalStatsSnapshot};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What recovery ([`crate::IndexBuilder`]'s [`crate::OpenMode::Recover`]
/// mode) did to bring an index back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Records that survived in the log (all kinds).
    pub scanned_records: u64,
    /// Full page images replayed onto the base image.
    pub replayed_images: u64,
    /// Page deltas replayed on top of those images.
    pub replayed_deltas: u64,
    /// Committed operations covered by the replay.
    pub committed_ops: u64,
    /// LSN of the recovery point (last durable commit or checkpoint).
    pub recovered_lsn: u64,
    /// Objects in the recovered index.
    pub recovered_len: u64,
    /// Log generation that was scanned.
    pub log_generation: u32,
    /// `true` when the log ended in a torn record (expected after a
    /// power cut mid-write; the torn tail was not acknowledged and is
    /// discarded).
    pub torn_tail: bool,
}

/// A disk-resident R-tree index over 2-D objects with configurable update
/// strategy (TD / LBU / GBU).
///
/// This is the single-threaded engine: `&mut self` writes, no internal
/// locking. Construct one through [`crate::IndexBuilder::build_index`]
/// when embedding the index in a single-threaded driver (benches, CLI
/// tools); shared multi-threaded use goes through the clonable
/// [`crate::Bur`] handle instead ([`crate::IndexBuilder::build`]).
///
/// ```
/// use bur_core::IndexBuilder;
/// use bur_geom::{Point, Rect};
///
/// let mut index = IndexBuilder::generalized().build_index().unwrap();
/// index.insert(1, Point::new(0.25, 0.5)).unwrap();
/// index.insert(2, Point::new(0.75, 0.5)).unwrap();
/// index.update(1, Point::new(0.25, 0.5), Point::new(0.26, 0.5)).unwrap();
/// let hits = index.query(&Rect::new(0.0, 0.0, 0.5, 1.0)).unwrap();
/// assert_eq!(hits, vec![1]);
/// ```
pub struct RTreeIndex {
    pub(crate) tree: RTree,
}

impl std::fmt::Debug for RTreeIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RTreeIndex")
            .field("strategy", &self.tree.opts.strategy.name())
            .field("len", &self.tree.len())
            .field("height", &self.tree.height)
            .field("root", &self.tree.root)
            .finish_non_exhaustive()
    }
}

impl RTreeIndex {
    // ---- construction ----------------------------------------------------
    //
    // [`crate::IndexBuilder`] is the only public way to construct an
    // index (it covers the full backend × open-mode × durability ×
    // strategy matrix in one place); it drives the `_inner` functions
    // below. The historical direct constructors were deprecated for one
    // release and have been removed.

    pub(crate) fn create_on_inner(
        disk: Arc<dyn DiskBackend>,
        opts: IndexOptions,
    ) -> CoreResult<Self> {
        opts.validate()?;
        if disk.page_size() != opts.page_size {
            return Err(CoreError::BadConfig(format!(
                "disk page size {} != configured {}",
                disk.page_size(),
                opts.page_size
            )));
        }
        if disk.num_pages() != 0 {
            return Err(CoreError::BadConfig(
                "create mode requires an empty disk; use open mode for existing files".into(),
            ));
        }
        let pool = Arc::new(BufferPool::new(
            disk,
            PoolConfig {
                capacity: opts.buffer_frames,
                policy: opts.eviction,
            },
        ));
        // Reserve the metadata page before any other allocation.
        let (meta_pid, guard) = pool.new_page()?;
        debug_assert_eq!(meta_pid, META_PAGE);
        guard.write().fill(0);
        drop(guard);
        // A durable index reserves the WAL anchor as page 1, before any
        // tree page, so recovery always knows where the log starts.
        let wal = match opts.durability {
            Durability::Wal(wopts) => {
                pool.set_wal_mode(true);
                let wal = Wal::create_with(pool.disk().clone(), wopts.sync, wopts.delta)?;
                if wal.anchor() != WAL_ANCHOR {
                    return Err(CoreError::BadConfig(format!(
                        "WAL anchor landed on page {} instead of {WAL_ANCHOR}",
                        wal.anchor()
                    )));
                }
                wal.set_async_coalesce(wopts.async_coalesce);
                attach_durable_watcher(&wal, &pool);
                Some(WalHandle::new(wal, wopts))
            }
            Durability::None => None,
        };
        let mut tree = RTree::create(pool, opts)?;
        tree.wal = wal;
        let mut index = Self { tree };
        // Seed the log with a checkpoint of the empty tree: the base
        // image recovery starts from.
        index.tree.wal_checkpoint()?;
        Ok(index)
    }

    /// Reopen a persisted index (see [`RTreeIndex::persist`]). The
    /// summary structure is rebuilt from a tree scan (it is main-memory
    /// state, exactly as in the paper); the hash index is reloaded when
    /// present on disk or rebuilt when the requested strategy needs one
    /// the stored index lacked.
    ///
    /// Durability is a property of the *file*, not of the caller's
    /// options: with [`Durability::Wal`] options — or whenever the stored
    /// metadata records a WAL anchor — this delegates to the recovery
    /// path (upgrading `opts` with default [`crate::WalOptions`] when the
    /// caller asked for none). Replaying the log is always safe (a
    /// cleanly shut down log replays to exactly the stored image), and
    /// opening a durable file *without* its log would let unlogged page
    /// writes race a stale log generation.
    pub(crate) fn open_on_inner(
        disk: Arc<dyn DiskBackend>,
        opts: IndexOptions,
    ) -> CoreResult<Self> {
        if matches!(opts.durability, Durability::Wal(_)) {
            return Ok(Self::recover_on_inner(disk, opts)?.0);
        }
        opts.validate()?;
        if disk.page_size() != opts.page_size {
            return Err(CoreError::BadConfig(format!(
                "disk page size {} != configured {}",
                disk.page_size(),
                opts.page_size
            )));
        }
        let pool = Arc::new(BufferPool::new(
            disk.clone(),
            PoolConfig {
                capacity: opts.buffer_frames,
                policy: opts.eviction,
            },
        ));
        let (payload, meta_cont) = read_meta_chain(&pool)?;
        let snap = MetaSnapshot::decode(&payload)?;
        if snap.page_size != opts.page_size {
            return Err(CoreError::BadConfig(format!(
                "stored page size {} != configured {}",
                snap.page_size, opts.page_size
            )));
        }
        if snap.wal_anchor != INVALID_PAGE {
            // The file is WAL-durable: reattach its log instead of
            // mutating pages behind a stale generation.
            drop(pool);
            let opts = opts.with_durability(Durability::Wal(crate::config::WalOptions::default()));
            return Ok(Self::recover_on_inner(disk, opts)?.0);
        }
        let mut tree = Self::tree_from_snapshot(pool, opts, &snap)?;
        tree.meta_chain_pages = meta_cont;
        Ok(Self { tree })
    }

    /// Build the tree (and rebuild whatever main-memory or secondary
    /// state the strategy needs) from a metadata snapshot whose pages are
    /// already readable through `pool`.
    fn tree_from_snapshot(
        pool: Arc<BufferPool>,
        opts: IndexOptions,
        snap: &MetaSnapshot,
    ) -> CoreResult<RTree> {
        let hash = if snap.stored_hash() {
            Some(LinearHashIndex::load(
                pool.clone(),
                HashIndexConfig::default(),
                snap.hash_head,
            )?)
        } else if opts.strategy.needs_hash_index() {
            Some(LinearHashIndex::create(
                pool.clone(),
                HashIndexConfig::default(),
            )?)
        } else {
            None
        };
        let summary = opts.strategy.needs_summary().then(SummaryStructure::new);
        let mut tree = RTree {
            pool,
            opts,
            root: snap.root,
            height: snap.height,
            len: AtomicU64::new(snap.len),
            free_pages: snap.free_pages.clone(),
            summary,
            hash,
            stats: OpStats::default(),
            pending_reinserts: Vec::new(),
            reinsert_armed: 0,
            insert_active: false,
            wal: None,
            meta_chain_pages: Vec::new(),
        };
        rebuild_memory_state(
            &mut tree,
            !snap.stored_hash() && opts.strategy.needs_hash_index(),
        )?;
        Ok(tree)
    }

    /// Write metadata (and the hash directory) so the index can be
    /// reopened through [`crate::IndexBuilder`]'s open mode; flushes all
    /// dirty pages.
    /// Intended as a shutdown step: each call allocates a fresh metadata
    /// continuation chain. On a durable index this is a
    /// [`RTreeIndex::checkpoint`].
    pub fn persist(&mut self) -> CoreResult<()> {
        if self.tree.wal.is_some() {
            return self.tree.wal_checkpoint();
        }
        let hash_head = match &self.tree.hash {
            Some(h) => h.persist()?,
            None => INVALID_PAGE,
        };
        let payload = self.tree.meta_snapshot(hash_head).encode();
        write_meta_chain(&self.tree.pool, &payload, &mut self.tree.meta_chain_pages)?;
        self.tree.pool.flush_all()?;
        Ok(())
    }

    /// Take a fuzzy checkpoint now: sync the log, flush every page as the
    /// new base image, and rewind the log. Bounds recovery replay to the
    /// operations committed after this call. Equivalent to
    /// [`RTreeIndex::persist`] on a non-durable index.
    pub fn checkpoint(&mut self) -> CoreResult<()> {
        if self.tree.wal.is_some() {
            self.tree.wal_checkpoint()
        } else {
            self.persist()
        }
    }

    /// `true` when the index write-ahead-logs its updates.
    #[must_use]
    pub fn is_durable(&self) -> bool {
        self.tree.wal.is_some()
    }

    /// Log activity counters, when the index is durable.
    #[must_use]
    pub fn wal_stats(&self) -> Option<WalStatsSnapshot> {
        self.tree.wal.as_ref().map(|h| h.wal.stats())
    }

    /// A clonable waiter on the log's durable-LSN watermark, when the
    /// index is durable. This is what [`crate::CommitTicket`] rides: it
    /// can block on durability *without* holding the index (or, through
    /// [`crate::Bur`], its lock).
    #[must_use]
    pub fn wal_waiter(&self) -> Option<bur_wal::WalWaiter> {
        self.tree.wal.as_ref().map(|h| h.wal.waiter())
    }

    /// Highest log sequence number assigned so far (`None` without a
    /// WAL). Immediately after a flush this covers every acknowledged
    /// operation — the LSN a [`crate::CommitTicket`] waits on.
    #[must_use]
    pub fn last_lsn(&self) -> Option<u64> {
        self.tree.wal.as_ref().map(|h| h.wal.last_lsn())
    }

    /// Change the commit batch size at runtime (see
    /// [`crate::WalOptions::batch_ops`]): operations accumulate until
    /// `ops` of them are flushed as one group commit record. `1` restores
    /// per-operation commits. Values of 0 are treated as 1. No-op on a
    /// non-durable index.
    pub fn set_commit_batch(&mut self, ops: u32) -> CoreResult<()> {
        if let Some(h) = self.tree.wal.as_mut() {
            h.opts.batch_ops = ops.max(1);
            if h.pending_ops >= u64::from(h.opts.batch_ops) {
                self.tree.wal_flush_commit()?;
            }
        }
        Ok(())
    }

    /// Flush any operations pending in the current commit batch as one
    /// group commit record (see [`RTreeIndex::set_commit_batch`]). No-op
    /// when nothing is pending or the index is not durable.
    pub fn flush_commits(&mut self) -> CoreResult<()> {
        self.tree.wal_flush_commit()
    }

    /// Operations finished but not yet covered by a commit record (always
    /// 0 without commit batching).
    #[must_use]
    pub fn pending_commits(&self) -> u64 {
        self.tree.wal.as_ref().map_or(0, |h| h.pending_ops)
    }

    /// Group-commit one concurrently applied batch: its own page set plus
    /// a single commit record (see `RTree::wal_commit_pages` for the
    /// invariants). `len_delta` is the batch's net insert/delete count,
    /// applied under the commit lock so the record's snapshot is exact.
    /// Returns the record's LSN, `None` without a WAL.
    pub(crate) fn commit_batch_pages(
        &self,
        ops: u64,
        pages: &[PageId],
        len_delta: i64,
    ) -> CoreResult<Option<u64>> {
        self.tree.wal_commit_pages(ops, pages, len_delta)
    }

    /// Content-neutral preparatory split of the full leaf on `pid`,
    /// committed as its own record (see [`RTree::preparatory_split`]).
    /// Returns `false` (writing nothing) when the leaf no longer needs
    /// the room.
    pub(crate) fn make_room(&mut self, pid: PageId) -> CoreResult<bool> {
        if !self.tree.preparatory_split(pid)? {
            return Ok(false);
        }
        self.tree.wal_commit()?;
        self.tree.wal_flush_commit()?;
        Ok(true)
    }

    /// `true` when the WAL checkpoint cadence has been reached. The
    /// shared write path reads this after releasing its locks and
    /// re-checks under an exclusive lock before checkpointing.
    pub(crate) fn checkpoint_due(&self) -> bool {
        self.tree.checkpoint_due()
    }

    /// Block until every acknowledged operation is durable in the log.
    /// Under [`bur_storage::SyncPolicy::Async`] this waits for the
    /// background sync thread to pass the current tail; under the
    /// synchronous policies it syncs inline. Operations still pending in
    /// a commit batch are flushed first. No-op on a non-durable index.
    pub fn wait_durable(&mut self) -> CoreResult<()> {
        if self.tree.wal.is_none() {
            return Ok(());
        }
        self.tree.wal_flush_commit()?;
        let handle = self.tree.wal.as_ref().expect("checked above");
        let watermark = handle.wal.wait_durable(handle.wal.last_lsn())?;
        self.tree.pool.set_durable_lsn(watermark);
        Ok(())
    }

    /// Recover a durable index from `disk` after a crash (ARIES-style
    /// redo): scan the write-ahead log, replay every page image up to the
    /// last durable commit onto the surviving base image, rebuild the
    /// main-memory summary structure / hash index / parent pointers the
    /// strategy needs, and checkpoint so the log is clean again. Safe to
    /// call on a cleanly shut down index (the replay is then a no-op).
    ///
    /// `opts.durability` must be [`Durability::Wal`]; a disk that was
    /// never durable (no log at its anchor page) is rejected.
    pub(crate) fn recover_on_inner(
        disk: Arc<dyn DiskBackend>,
        opts: IndexOptions,
    ) -> CoreResult<(Self, RecoveryReport)> {
        opts.validate()?;
        let Durability::Wal(wopts) = opts.durability else {
            return Err(CoreError::BadConfig(
                "recovery requires IndexOptions with Durability::Wal (e.g. IndexOptions::durable())"
                    .into(),
            ));
        };
        if disk.page_size() != opts.page_size {
            return Err(CoreError::BadConfig(format!(
                "disk page size {} != configured {}",
                disk.page_size(),
                opts.page_size
            )));
        }
        let pool = Arc::new(BufferPool::new(
            disk.clone(),
            PoolConfig {
                capacity: opts.buffer_frames,
                policy: opts.eviction,
            },
        ));
        let (wal, scanned) = Wal::reopen_with(disk, WAL_ANCHOR, wopts.sync, wopts.delta)?;
        if !scanned.valid {
            return Err(CoreError::BadConfig(
                "no write-ahead log on this disk (index not created with Durability::Wal?)".into(),
            ));
        }
        // The recovery point is the last commit or checkpoint; images
        // after it belong to an operation that was never acknowledged.
        let mut recovery_point: Option<usize> = None;
        let mut meta_bytes: Option<&Vec<u8>> = None;
        for (i, (_lsn, rec)) in scanned.records.iter().enumerate() {
            if let WalRecord::Commit { meta } | WalRecord::Checkpoint { meta } = rec {
                recovery_point = Some(i);
                meta_bytes = Some(meta);
            }
        }
        let mut report = RecoveryReport {
            scanned_records: scanned.records.len() as u64,
            log_generation: scanned.generation,
            torn_tail: scanned.torn_tail,
            ..RecoveryReport::default()
        };
        let snap = if let (Some(cut), Some(meta_bytes)) = (recovery_point, meta_bytes) {
            let snap = MetaSnapshot::decode(meta_bytes)?;
            report.recovered_lsn = scanned.records[cut].0;
            // Redo: replay page records in log order. The first record of
            // every page in a generation is a full image (the delta
            // encoder anchors there), so replay never depends on the
            // pre-crash content of a page — each delta applies onto the
            // state produced by the records before it, which `page_lsns`
            // verifies against the delta's recorded base.
            let mut page_lsns: std::collections::HashMap<PageId, u64> =
                std::collections::HashMap::new();
            for (lsn, rec) in &scanned.records[..=cut] {
                match rec {
                    WalRecord::PageImage { pid, data } => {
                        if data.len() != opts.page_size {
                            return Err(CoreError::BadConfig(format!(
                                "logged image of page {pid} has {} bytes, expected {}",
                                data.len(),
                                opts.page_size
                            )));
                        }
                        // The crash may have lost trailing allocations the
                        // image depends on; re-extend the disk first.
                        while *pid >= pool.disk().num_pages() {
                            pool.disk().allocate()?;
                        }
                        let guard = pool.fetch_for_overwrite(*pid)?;
                        guard.write().copy_from_slice(data);
                        drop(guard);
                        page_lsns.insert(*pid, *lsn);
                        report.replayed_images += 1;
                    }
                    WalRecord::PageDelta {
                        pid,
                        base_lsn,
                        ranges,
                    } => {
                        match page_lsns.get(pid) {
                            Some(&last) if last == *base_lsn => {}
                            _ => {
                                return Err(CoreError::BadConfig(format!(
                                    "delta for page {pid} at lsn {lsn} does not chain to a \
                                     replayed image (corrupt log)"
                                )))
                            }
                        }
                        let guard = pool.fetch(*pid)?;
                        if !bur_wal::apply_delta(&mut guard.write(), ranges) {
                            return Err(CoreError::BadConfig(format!(
                                "delta for page {pid} at lsn {lsn} exceeds the page bounds \
                                 (corrupt log)"
                            )));
                        }
                        drop(guard);
                        page_lsns.insert(*pid, *lsn);
                        report.replayed_deltas += 1;
                    }
                    WalRecord::Commit { .. } => report.committed_ops += 1,
                    WalRecord::Checkpoint { .. } => {}
                }
            }
            snap
        } else {
            // No commit or checkpoint survived in the log. The one benign
            // way here: the crash cut the checkpoint *rewind* itself, after
            // the base image (including the metadata chain) was fully
            // flushed but before the fresh generation's checkpoint record
            // landed. The metadata chain is then the recovery point and
            // there is nothing to replay.
            let (payload, _pages) = read_meta_chain(&pool).map_err(|e| {
                CoreError::BadConfig(format!(
                    "write-ahead log holds no recovery point and the metadata chain is \
                     unreadable ({e})"
                ))
            })?;
            MetaSnapshot::decode(&payload)?
        };
        if snap.page_size != opts.page_size {
            return Err(CoreError::BadConfig(format!(
                "logged page size {} != configured {}",
                snap.page_size, opts.page_size
            )));
        }
        report.recovered_len = snap.len;
        // The on-disk metadata chain (from the last completed checkpoint)
        // is superseded the moment we re-checkpoint below; hand its
        // continuation pages to the chain recycler. Walked defensively —
        // a crash inside the chain rewrite can leave torn links, and a
        // torn `next` pointer could name a *live* tree page, so the pages
        // are only trusted (and later overwritten by the recycler) when
        // the walked payload round-trips as a genuine metadata snapshot.
        let meta_cont = read_meta_chain(&pool)
            .ok()
            .filter(|(payload, _)| MetaSnapshot::decode(payload).is_ok())
            .map(|(_, pages)| pages)
            .unwrap_or_default();
        // Rebuild the index over the replayed image (summary structure,
        // hash index and parent pointers included), then checkpoint: the
        // disk becomes a clean base image and the log restarts.
        let mut tree = Self::tree_from_snapshot(pool, opts, &snap)?;
        tree.meta_chain_pages = meta_cont;
        wal.set_async_coalesce(wopts.async_coalesce);
        attach_durable_watcher(&wal, &tree.pool);
        tree.wal = Some(WalHandle::new(wal, wopts));
        tree.pool.set_wal_mode(true);
        let mut index = Self { tree };
        index.tree.wal_checkpoint()?;
        Ok((index, report))
    }

    // ---- object API --------------------------------------------------------

    /// Apply a [`Batch`] of mixed operations in order.
    ///
    /// On a durable index the whole batch is covered by **one** group
    /// commit record appended after the last operation, regardless of
    /// the configured [`crate::WalOptions::batch_ops`]: with respect to
    /// the write-ahead log the batch is atomic — a crash recovers either
    /// all of it or none of it. (Any single operations already pending
    /// in the current commit batch ride along under the same record.)
    ///
    /// Failed deletes (object not indexed at the stated position) are
    /// counted in [`BatchReport::missing_deletes`], not errors. Any
    /// other failing operation aborts the rest of the batch: operations
    /// before it stay applied (and are flushed under a commit record so
    /// the log never diverges from the tree), and the error reports the
    /// failing position as [`CoreError::Batch`].
    pub fn apply_batch(&mut self, batch: &Batch) -> CoreResult<BatchReport> {
        let mut report = BatchReport::default();
        self.tree.wal_begin_batch();
        for (i, op) in batch.ops().iter().enumerate() {
            let step = match *op {
                Op::Insert { oid, rect } => self.insert_rect(oid, rect).map(|()| {
                    report.inserted += 1;
                }),
                Op::Update { oid, old, new } => self.update(oid, old, new).map(|_| {
                    report.updated += 1;
                }),
                Op::Delete { oid, position } => self.delete(oid, position).map(|found| {
                    if found {
                        report.deleted += 1;
                    } else {
                        report.missing_deletes += 1;
                    }
                }),
            };
            match step {
                Ok(()) => report.applied += 1,
                Err(source) => {
                    // Close the batch around what *was* applied before
                    // surfacing the failure; a flush error outranks it.
                    self.tree.wal_end_batch()?;
                    return Err(CoreError::Batch {
                        op_index: i,
                        source: Box::new(source),
                    });
                }
            }
        }
        self.tree.wal_end_batch()?;
        Ok(report)
    }

    /// Insert a point object under a fresh id. With a hash index present
    /// (LBU/GBU) duplicate ids are rejected; TD trusts the caller.
    pub fn insert(&mut self, oid: ObjectId, position: Point) -> CoreResult<()> {
        self.insert_rect(oid, Rect::from_point(position))
    }

    /// Insert an object with a rectangular extent.
    pub fn insert_rect(&mut self, oid: ObjectId, rect: Rect) -> CoreResult<()> {
        if !rect.is_valid() {
            return Err(CoreError::BadConfig(format!("invalid rect {rect}")));
        }
        if let Some(h) = &self.tree.hash {
            if h.get(oid)?.is_some() {
                return Err(CoreError::DuplicateObject(oid));
            }
        }
        self.tree.insert_object(LeafEntry { oid, rect })?;
        self.tree.len.fetch_add(1, Ordering::Relaxed);
        self.tree.stats.inserts.fetch_add(1, Ordering::Relaxed);
        self.tree.wal_commit()?;
        Ok(())
    }

    /// Delete the object `oid` located at `position`. Returns `false`
    /// when it is not indexed there.
    pub fn delete(&mut self, oid: ObjectId, position: Point) -> CoreResult<bool> {
        let found = self.tree.delete_object(oid, position)?;
        if found {
            self.tree.len.fetch_sub(1, Ordering::Relaxed);
            self.tree.stats.deletes.fetch_add(1, Ordering::Relaxed);
            self.tree.wal_commit()?;
        }
        Ok(found)
    }

    /// Move object `oid` from `old` to `new` using the configured update
    /// strategy; returns which path the update took.
    pub fn update(&mut self, oid: ObjectId, old: Point, new: Point) -> CoreResult<UpdateOutcome> {
        let outcome = match self.tree.opts.strategy {
            UpdateStrategy::TopDown => topdown::update(&mut self.tree, oid, old, new)?,
            UpdateStrategy::Localized(p) => lbu::update(&mut self.tree, p, oid, old, new)?,
            UpdateStrategy::Generalized(p) => gbu::update(&mut self.tree, p, oid, old, new)?,
        };
        self.tree.stats.record_update(outcome);
        self.tree.wal_commit()?;
        Ok(outcome)
    }

    /// Window query: ids of all objects whose rect intersects `window`.
    /// GBU indexes answer through the summary structure unless configured
    /// otherwise.
    pub fn query(&self, window: &Rect) -> CoreResult<Vec<ObjectId>> {
        let mut out = Vec::new();
        self.query_into(window, &mut out)?;
        Ok(out)
    }

    /// Window query into a reusable buffer.
    pub fn query_into(&self, window: &Rect, out: &mut Vec<ObjectId>) -> CoreResult<()> {
        self.tree.stats.queries.fetch_add(1, Ordering::Relaxed);
        match self.tree.opts.strategy {
            UpdateStrategy::Generalized(p) if p.summary_queries => {
                self.tree.query_with_summary(window, out)
            }
            _ => self.tree.query_into(window, out),
        }
    }

    /// Window query forced through the plain top-down descent (ablation).
    pub fn query_top_down(&self, window: &Rect, out: &mut Vec<ObjectId>) -> CoreResult<()> {
        self.tree.stats.queries.fetch_add(1, Ordering::Relaxed);
        self.tree.query_into(window, out)
    }

    /// Exact-position query: ids of all objects whose rect contains
    /// `position` (a degenerate window query).
    pub fn point_query(&self, position: Point) -> CoreResult<Vec<ObjectId>> {
        self.query(&Rect::from_point(position))
    }

    /// The `k` nearest neighbors of `query`, closest first (best-first
    /// MINDIST search; see [`crate::Neighbor`]). GBU indexes with summary
    /// queries enabled seed the search from the in-memory direct access
    /// table, skipping reads of internal nodes above level 1. Ties are
    /// broken arbitrarily. Library extension — the paper evaluates window
    /// queries only.
    pub fn nearest_neighbors(&self, query: Point, k: usize) -> CoreResult<Vec<Neighbor>> {
        if !query.is_finite() {
            return Err(CoreError::BadConfig(format!(
                "non-finite kNN query point {query}"
            )));
        }
        self.tree.stats.queries.fetch_add(1, Ordering::Relaxed);
        match self.tree.opts.strategy {
            UpdateStrategy::Generalized(p) if p.summary_queries => {
                knn::nearest_with_summary(&self.tree, query, k)
            }
            _ => knn::nearest(&self.tree, query, k),
        }
    }

    /// The single nearest neighbor of `query` (`None` on an empty index).
    pub fn nearest_neighbor(&self, query: Point) -> CoreResult<Option<Neighbor>> {
        Ok(self.nearest_neighbors(query, 1)?.into_iter().next())
    }

    /// All objects whose rect lies within Euclidean `radius` of `center`,
    /// closest first. Implemented as a window query over the bounding
    /// square followed by an exact distance filter.
    pub fn within_distance(&self, center: Point, radius: f32) -> CoreResult<Vec<Neighbor>> {
        if !center.is_finite() || !radius.is_finite() || radius < 0.0 {
            return Err(CoreError::BadConfig(format!(
                "invalid within_distance arguments: center {center}, radius {radius}"
            )));
        }
        let window = Rect::new(
            center.x - radius,
            center.y - radius,
            center.x + radius,
            center.y + radius,
        );
        self.tree.stats.queries.fetch_add(1, Ordering::Relaxed);
        let mut hits = Vec::new();
        self.tree.query_entries_into(&window, &mut hits)?;
        let mut out: Vec<Neighbor> = hits
            .into_iter()
            .filter_map(|e| {
                let d2 = e.rect.distance_sq_to_point(&center);
                (d2 <= radius * radius).then(|| Neighbor {
                    oid: e.oid,
                    distance: d2.sqrt(),
                })
            })
            .collect();
        out.sort_by(|a, b| a.distance.total_cmp(&b.distance));
        Ok(out)
    }

    /// Window query that returns object extents along with ids (the
    /// entries as stored in the leaves).
    pub fn query_entries(&self, window: &Rect) -> CoreResult<Vec<LeafEntry>> {
        self.tree.stats.queries.fetch_add(1, Ordering::Relaxed);
        let mut out = Vec::new();
        self.tree.query_entries_into(window, &mut out)?;
        Ok(out)
    }

    /// Number of objects intersecting `window` without keeping the ids.
    pub fn count_in(&self, window: &Rect) -> CoreResult<usize> {
        let mut out = Vec::new();
        self.query_into(window, &mut out)?;
        Ok(out.len())
    }

    // ---- introspection -------------------------------------------------------

    /// Number of indexed objects.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.tree.len()
    }

    /// `true` when no objects are indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tree.len() == 0
    }

    /// Number of levels (1 = the root is a leaf).
    #[must_use]
    pub fn height(&self) -> u16 {
        self.tree.height
    }

    /// Minimum bounding rectangle of everything indexed — the root
    /// node's MBR — or [`Rect::EMPTY`] when the index holds nothing.
    /// Costs one (usually cached) page read; used by the shard router to
    /// prune shards whose contents cannot beat a kNN candidate.
    pub fn bounds(&self) -> CoreResult<Rect> {
        if self.tree.len() == 0 {
            return Ok(Rect::EMPTY);
        }
        Ok(self.tree.read_node(self.tree.root)?.mbr())
    }

    /// The construction options.
    #[must_use]
    pub fn options(&self) -> &IndexOptions {
        &self.tree.opts
    }

    /// Physical I/O counters of the underlying buffer pool.
    #[must_use]
    pub fn io_stats(&self) -> &IoStats {
        self.tree.pool.stats()
    }

    /// Operation counters (update outcome classes, splits, ...).
    #[must_use]
    pub fn op_stats(&self) -> &OpStats {
        &self.tree.stats
    }

    /// The buffer pool (shared with the hash index).
    #[must_use]
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.tree.pool
    }

    /// The summary structure, when the strategy maintains one.
    #[must_use]
    pub fn summary(&self) -> Option<&SummaryStructure> {
        self.tree.summary.as_ref()
    }

    /// Resize the buffer (frames of *unpinned* retention).
    pub fn set_buffer_capacity(&self, frames: usize) -> CoreResult<()> {
        self.tree.pool.set_capacity(frames)?;
        Ok(())
    }

    /// Flush all dirty pages (counts physical writes).
    pub fn flush(&self) -> CoreResult<()> {
        self.tree.pool.flush_all()?;
        Ok(())
    }

    /// Number of R-tree node pages currently reachable.
    pub fn tree_pages(&self) -> CoreResult<u64> {
        self.tree.node_count()
    }

    /// Number of pages used by the secondary hash index (0 without one).
    #[must_use]
    pub fn hash_pages(&self) -> usize {
        self.tree
            .hash
            .as_ref()
            .map_or(0, LinearHashIndex::page_count)
    }

    /// Total data pages (tree + hash) — what experiments size buffers
    /// against ("buffer ... is 1 % of the database size").
    pub fn data_pages(&self) -> CoreResult<u64> {
        Ok(self.tree_pages()? + self.hash_pages() as u64)
    }

    /// Deep invariant check (structure, fill, containment, hash and
    /// summary agreement). Expensive; intended for tests.
    pub fn validate(&self) -> CoreResult<()> {
        self.tree.validate()
    }

    /// The page currently holding `oid` according to the hash index
    /// (`None` for TD indexes, which keep no secondary index). The
    /// [`crate::Bur`] handle uses this to pick the DGL granule of a
    /// bottom-up update.
    pub fn locate_leaf(&self, oid: ObjectId) -> CoreResult<Option<PageId>> {
        match &self.tree.hash {
            Some(h) => Ok(h.get(oid)?),
            None => Ok(None),
        }
    }

    /// Read-only containment-constrained ChooseLeaf for the concurrent
    /// insert path: descend from the root picking, above level 1, only
    /// subtrees whose entry rect already *contains* `rect` (growing an
    /// ancestor MBR is off the shared path), and at level 1 the leaf
    /// entry by Guttman least enlargement among candidates whose grown
    /// rect stays inside the parent node's MBR (the benign-slack bound).
    /// Returns `None` when no such leaf exists — the caller escalates.
    pub(crate) fn locate_insert_leaf(&self, rect: &Rect) -> CoreResult<Option<PageId>> {
        let tree = &self.tree;
        if tree.height < 2 {
            return Ok(Some(tree.root));
        }
        let mut pid = tree.root;
        loop {
            let node = tree.read_node(pid)?;
            let entries = node.internal_entries();
            if node.level > 1 {
                let mut best: Option<(PageId, f32)> = None;
                for e in entries {
                    if e.rect.contains_rect(rect) {
                        let area = e.rect.area();
                        if best.is_none_or(|(_, a)| area < a) {
                            best = Some((e.child, area));
                        }
                    }
                }
                let Some((child, _)) = best else {
                    return Ok(None);
                };
                pid = child;
                continue;
            }
            // Level 1: the node MBR bounds any official-rect growth.
            let bound = node.mbr();
            let mut best: Option<(PageId, f32, f32)> = None;
            for e in entries {
                if !bound.contains_rect(&e.rect.union(rect)) {
                    continue;
                }
                let enlarge = e.rect.enlargement(rect);
                let area = e.rect.area();
                if best.is_none_or(|(_, be, ba)| (enlarge, area) < (be, ba)) {
                    best = Some((e.child, enlarge, area));
                }
            }
            return Ok(best.map(|(child, _, _)| child));
        }
    }
}

/// Register the buffer pool as the log's durable-LSN watcher: background
/// syncs (the [`bur_storage::SyncPolicy::Async`] group committer) unblock
/// gated page flushes the moment their batch lands, without the pool
/// polling the log.
pub(crate) fn attach_durable_watcher(wal: &Wal, pool: &Arc<BufferPool>) {
    let pool = pool.clone();
    wal.set_durable_watcher(Box::new(move |lsn| pool.set_durable_lsn(lsn)));
}

// ---- open-time memory-state rebuild ------------------------------------------

/// Scan the stored tree to rebuild the main-memory summary structure and
/// (when requested) a hash index the stored image lacked.
pub(crate) fn rebuild_memory_state(tree: &mut RTree, build_hash: bool) -> CoreResult<()> {
    fn walk(
        tree: &RTree,
        pid: PageId,
        summary: &mut Option<SummaryStructure>,
        hash_entries: &mut Vec<(ObjectId, PageId)>,
        build_hash: bool,
        leaf_cap: usize,
    ) -> CoreResult<()> {
        let node = tree.read_node(pid)?;
        match &node.entries {
            NodeEntries::Leaf(v) => {
                if let Some(s) = summary {
                    s.set_leaf(pid, v.len() >= leaf_cap);
                }
                if build_hash {
                    hash_entries.extend(v.iter().map(|e| (e.oid, pid)));
                }
            }
            NodeEntries::Internal(v) => {
                if let Some(s) = summary {
                    s.upsert_internal(
                        pid,
                        node.level,
                        node.mbr(),
                        v.iter().map(|e| e.child).collect(),
                    );
                }
                for e in v {
                    walk(tree, e.child, summary, hash_entries, build_hash, leaf_cap)?;
                }
            }
        }
        Ok(())
    }

    // The walk only matters when there is memory state to rebuild; a
    // bare TD index (e.g. a replica view being promoted to TD) skips it.
    if tree.summary.is_some() || build_hash {
        let mut summary = tree.summary.take();
        if let Some(s) = &mut summary {
            s.clear();
        }
        let mut hash_entries = Vec::new();
        let leaf_cap = tree.leaf_cap();
        walk(
            tree,
            tree.root,
            &mut summary,
            &mut hash_entries,
            build_hash,
            leaf_cap,
        )?;
        if let Some(s) = &mut summary {
            let root = tree.read_node(tree.root)?;
            s.set_root_mbr(root.mbr());
        }
        tree.summary = summary;
        if build_hash {
            let hash = tree.hash.as_ref().expect("caller created the hash");
            for (oid, pid) in hash_entries {
                hash.insert(oid, pid)?;
            }
        }
    }
    // LBU needs leaf parent pointers; repair any that are missing or
    // stale (e.g. the stored image was built by a TD index).
    if tree.opts.strategy.needs_parent_pointers() && tree.height >= 2 {
        let mut level1 = Vec::new();
        collect_level(tree, tree.root, 1, &mut level1)?;
        for parent_pid in level1 {
            let parent = tree.read_node(parent_pid)?;
            let children: Vec<PageId> = parent.internal_entries().iter().map(|e| e.child).collect();
            for child in children {
                let mut node = tree.read_node(child)?;
                if node.parent != parent_pid {
                    node.parent = parent_pid;
                    tree.write_node(child, &node)?;
                }
            }
        }
    }
    Ok(())
}

/// Collect the page ids of all nodes at `level`.
fn collect_level(tree: &RTree, pid: PageId, level: u16, out: &mut Vec<PageId>) -> CoreResult<()> {
    let node = tree.read_node(pid)?;
    if node.level == level {
        out.push(pid);
        return Ok(());
    }
    if node.level > level {
        if let NodeEntries::Internal(v) = &node.entries {
            for e in v {
                collect_level(tree, e.child, level, out)?;
            }
        }
    }
    Ok(())
}

impl RTreeIndex {
    /// Diagnostic: `(leaf count, Σ leaf entry-rect area, Σ leaf margins,
    /// object count, internal count)` measured from the parent entries
    /// (the official rects). Used by tooling to quantify overlap.
    pub fn leaf_geometry(&self) -> CoreResult<(u64, f64, f64, u64, u64)> {
        fn walk(
            t: &crate::tree::RTree,
            pid: PageId,
            acc: &mut (u64, f64, f64, u64, u64),
        ) -> CoreResult<()> {
            let node = t.read_node(pid)?;
            match &node.entries {
                NodeEntries::Leaf(v) => {
                    acc.3 += v.len() as u64;
                }
                NodeEntries::Internal(v) => {
                    acc.4 += 1;
                    for e in v {
                        if node.level == 1 {
                            acc.0 += 1;
                            acc.1 += f64::from(e.rect.area());
                            acc.2 += f64::from(e.rect.margin());
                        }
                        walk(t, e.child, acc)?;
                    }
                }
            }
            Ok(())
        }
        let mut acc = (0, 0.0, 0.0, 0, 0);
        walk(&self.tree, self.tree.root, &mut acc)?;
        if self.tree.height == 1 {
            acc.0 = 1;
            let root = self.tree.read_node(self.tree.root)?;
            acc.1 = f64::from(root.mbr().area());
            acc.2 = f64::from(root.mbr().margin());
        }
        Ok(acc)
    }
}
