//! Nearest-neighbor queries over the R-tree (library extension).
//!
//! The paper evaluates window queries only; k-nearest-neighbor search is
//! provided because a spatial index without it is rarely adoptable, and
//! because it exercises the same node layout and buffer-pool accounting
//! as the paper's experiments. The algorithm is the classic **best-first
//! search** (Hjaltason & Samet): a priority queue ordered by `MINDIST`
//! (squared distance from the query point to a bounding rectangle)
//! interleaves index nodes and data entries, so nodes are expanded in
//! non-decreasing distance order and search stops as soon as the k-th
//! result is closer than every unexpanded subtree.
//!
//! Two traversal variants mirror the window-query pair:
//!
//! * a plain descent starting from the root page, and
//! * a **summary-assisted** variant that seeds the queue with the level-1
//!   entries of GBU's in-memory direct access table, skipping disk reads
//!   of all internal nodes above level 1 — the same pruning Section 3.2
//!   applies to window queries.

use crate::error::CoreResult;
use crate::node::{NodeEntries, ObjectId};
use crate::tree::RTree;
use bur_geom::Point;
use bur_storage::PageId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One result of a nearest-neighbor query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Object id of the neighbor.
    pub oid: ObjectId,
    /// Euclidean distance from the query point to the object's rect
    /// (0 when the query point lies inside the rect).
    pub distance: f32,
}

/// Queue element: either an unexpanded subtree or a data entry, keyed by
/// its `MINDIST` (squared) so the two sort together.
#[derive(Debug)]
enum Item {
    Node(PageId),
    Object(ObjectId),
}

/// Min-heap adapter: `BinaryHeap` is a max-heap, so order is reversed;
/// `total_cmp` gives the total order `f32` itself lacks (distances are
/// never NaN — inputs are validated — but the invariant lives here).
struct Candidate {
    dist_sq: f32,
    item: Item,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.dist_sq.total_cmp(&other.dist_sq) == Ordering::Equal
    }
}

impl Eq for Candidate {}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        other.dist_sq.total_cmp(&self.dist_sq) // reversed: min-heap
    }
}

/// Best-first k-nearest-neighbor search from the root.
pub(crate) fn nearest(tree: &RTree, query: Point, k: usize) -> CoreResult<Vec<Neighbor>> {
    let mut heap = BinaryHeap::new();
    heap.push(Candidate {
        dist_sq: 0.0,
        item: Item::Node(tree.root),
    });
    drain(tree, query, k, heap)
}

/// Best-first search seeded from the summary structure's level-1 entries,
/// pruning all internal levels above 1 in memory. Falls back to the plain
/// descent when the summary holds no internal levels (single-leaf tree).
pub(crate) fn nearest_with_summary(
    tree: &RTree,
    query: Point,
    k: usize,
) -> CoreResult<Vec<Neighbor>> {
    let Some(s) = &tree.summary else {
        return nearest(tree, query, k);
    };
    if s.top_level() == 0 {
        return nearest(tree, query, k);
    }
    let mut heap = BinaryHeap::new();
    for e in s.level_entries(1) {
        heap.push(Candidate {
            dist_sq: e.mbr.distance_sq_to_point(&query),
            item: Item::Node(e.pid),
        });
    }
    drain(tree, query, k, heap)
}

/// Pop candidates in MINDIST order until `k` objects have surfaced.
fn drain(
    tree: &RTree,
    query: Point,
    k: usize,
    mut heap: BinaryHeap<Candidate>,
) -> CoreResult<Vec<Neighbor>> {
    let mut out = Vec::with_capacity(k.min(64));
    if k == 0 {
        return Ok(out);
    }
    while let Some(c) = heap.pop() {
        match c.item {
            Item::Object(oid) => {
                // An object at the top of the heap is closer than every
                // unexpanded subtree: it is the next nearest neighbor.
                out.push(Neighbor {
                    oid,
                    distance: c.dist_sq.sqrt(),
                });
                if out.len() == k {
                    break;
                }
            }
            Item::Node(pid) => {
                let node = tree.read_node(pid)?;
                match &node.entries {
                    NodeEntries::Leaf(v) => {
                        for e in v {
                            heap.push(Candidate {
                                dist_sq: e.rect.distance_sq_to_point(&query),
                                item: Item::Object(e.oid),
                            });
                        }
                    }
                    NodeEntries::Internal(v) => {
                        for e in v {
                            heap.push(Candidate {
                                dist_sq: e.rect.distance_sq_to_point(&query),
                                item: Item::Node(e.child),
                            });
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexOptions;
    use crate::index::RTreeIndex;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn brute_force(objects: &[(ObjectId, Point)], query: Point, k: usize) -> Vec<f32> {
        let mut d: Vec<f32> = objects.iter().map(|(_, p)| p.distance(&query)).collect();
        d.sort_by(f32::total_cmp);
        d.truncate(k);
        d
    }

    fn populated(opts: IndexOptions, n: usize, seed: u64) -> (RTreeIndex, Vec<(ObjectId, Point)>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut index = crate::IndexBuilder::with_options(opts)
            .build_index()
            .unwrap();
        let mut objects = Vec::with_capacity(n);
        for oid in 0..n as u64 {
            let p = Point::new(rng.random::<f32>(), rng.random::<f32>());
            index.insert(oid, p).unwrap();
            objects.push((oid, p));
        }
        (index, objects)
    }

    #[test]
    fn matches_brute_force_on_all_strategies() {
        for opts in [
            IndexOptions::top_down(),
            IndexOptions::localized(),
            IndexOptions::generalized(),
        ] {
            let (index, objects) = populated(opts, 500, 7);
            let query = Point::new(0.31, 0.64);
            for k in [1, 5, 17, 100] {
                let got = index.nearest_neighbors(query, k).unwrap();
                assert_eq!(got.len(), k.min(objects.len()));
                let want = brute_force(&objects, query, k);
                for (g, w) in got.iter().zip(&want) {
                    assert!(
                        (g.distance - w).abs() < 1e-5,
                        "strategy {}: got {} want {w}",
                        index.options().strategy.name(),
                        g.distance
                    );
                }
                // Distances are non-decreasing.
                for pair in got.windows(2) {
                    assert!(pair[0].distance <= pair[1].distance);
                }
            }
        }
    }

    #[test]
    fn summary_and_plain_agree() {
        let (index, _) = populated(IndexOptions::generalized(), 800, 11);
        let query = Point::new(0.9, 0.1);
        let plain = nearest(&index.tree, query, 25).unwrap();
        let assisted = nearest_with_summary(&index.tree, query, 25).unwrap();
        assert_eq!(plain.len(), assisted.len());
        for (a, b) in plain.iter().zip(&assisted) {
            assert!((a.distance - b.distance).abs() < 1e-6);
        }
    }

    #[test]
    fn summary_assisted_reads_fewer_pages() {
        // A tree tall enough to have internal levels above 1.
        let (index, _) = populated(IndexOptions::generalized(), 4000, 13);
        assert!(index.height() >= 3, "height {}", index.height());
        let query = Point::new(0.5, 0.5);
        let before = index.pool().stats().snapshot();
        nearest(&index.tree, query, 1).unwrap();
        let plain_reads = index.pool().stats().snapshot().since(&before).fetches;
        let before = index.pool().stats().snapshot();
        nearest_with_summary(&index.tree, query, 1).unwrap();
        let assisted_reads = index.pool().stats().snapshot().since(&before).fetches;
        assert!(
            assisted_reads < plain_reads,
            "assisted {assisted_reads} !< plain {plain_reads}"
        );
    }

    #[test]
    fn k_zero_and_empty_tree() {
        let index = crate::IndexBuilder::generalized().build_index().unwrap();
        assert!(index
            .nearest_neighbors(Point::new(0.5, 0.5), 5)
            .unwrap()
            .is_empty());
        let (index, _) = populated(IndexOptions::generalized(), 10, 3);
        assert!(index
            .nearest_neighbors(Point::new(0.5, 0.5), 0)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn k_larger_than_population_returns_everything() {
        let (index, objects) = populated(IndexOptions::top_down(), 37, 5);
        let got = index.nearest_neighbors(Point::new(0.2, 0.2), 1000).unwrap();
        assert_eq!(got.len(), objects.len());
        let mut oids: Vec<ObjectId> = got.iter().map(|n| n.oid).collect();
        oids.sort_unstable();
        oids.dedup();
        assert_eq!(oids.len(), objects.len(), "every object exactly once");
    }

    #[test]
    fn query_point_far_outside_data_space() {
        let (index, objects) = populated(IndexOptions::generalized(), 200, 17);
        let query = Point::new(25.0, -40.0);
        let got = index.nearest_neighbors(query, 3).unwrap();
        let want = brute_force(&objects, query, 3);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.distance - w).abs() < 1e-3);
        }
    }

    #[test]
    fn rejects_non_finite_query() {
        let (index, _) = populated(IndexOptions::generalized(), 10, 19);
        assert!(index
            .nearest_neighbors(Point::new(f32::NAN, 0.5), 1)
            .is_err());
        assert!(index
            .nearest_neighbors(Point::new(0.5, f32::INFINITY), 1)
            .is_err());
    }

    #[test]
    fn nearest_one_is_the_closest_point() {
        let mut rng = StdRng::seed_from_u64(23);
        let (index, objects) = populated(IndexOptions::generalized(), 300, 23);
        for _ in 0..20 {
            let query = Point::new(rng.random::<f32>(), rng.random::<f32>());
            let got = index.nearest_neighbor(query).unwrap().unwrap();
            let want = objects
                .iter()
                .map(|(oid, p)| (*oid, p.distance(&query)))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap();
            assert!((got.distance - want.1).abs() < 1e-6);
        }
    }

    #[test]
    fn knn_correct_after_updates() {
        let mut rng = StdRng::seed_from_u64(29);
        let (mut index, mut objects) = populated(IndexOptions::generalized(), 400, 29);
        // Move everything a few times through the GBU update path.
        for _ in 0..3 {
            for (oid, p) in &mut objects {
                let np = Point::new(
                    p.x + rng.random_range(-0.02..0.02f32),
                    p.y + rng.random_range(-0.02..0.02f32),
                );
                index.update(*oid, *p, np).unwrap();
                *p = np;
            }
        }
        let query = Point::new(0.42, 0.58);
        let got = index.nearest_neighbors(query, 10).unwrap();
        let want = brute_force(&objects, query, 10);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.distance - w).abs() < 1e-5);
        }
    }
}
