//! Localized Bottom-Up update — Algorithm 1 of the paper.
//!
//! The sequence, kept deliberately faithful:
//!
//! 1. locate the leaf through the object-id hash index;
//! 2. if the new location lies within the leaf MBR → update in place;
//! 3. retrieve the **parent through the leaf's parent pointer**, enlarge
//!    the leaf MBR by ε *equally in all directions* (Kwon-style), bounded
//!    by the parent MBR; if the new location now fits → enlarge + update;
//! 4. if deleting the entry would underflow the leaf → full top-down
//!    update;
//! 5. delete the entry; if a non-full sibling's MBR contains the new
//!    location → insert there;
//! 6. otherwise issue a standard R-tree insert from the root.
//!
//! LBU's structural costs — the parent pointers rewritten on every
//! level-1 split and the sibling pages read just to check fullness — are
//! incurred for real by this implementation; they are the reason the
//! paper finds LBU can lose to TD once a buffer is present (Figure 6(g)).

use crate::config::LbuParams;
use crate::error::{CoreError, CoreResult};
use crate::node::{LeafEntry, ObjectId};
use crate::stats::UpdateOutcome;
use crate::topdown;
use crate::tree::RTree;
use bur_geom::{Point, Rect};
use bur_storage::INVALID_PAGE;

/// Run one localized bottom-up update.
pub(crate) fn update(
    tree: &mut RTree,
    params: LbuParams,
    oid: ObjectId,
    old: Point,
    new: Point,
) -> CoreResult<UpdateOutcome> {
    // Step 1: hash probe for direct leaf access.
    let hash = tree.hash.as_ref().expect("LBU requires the hash index");
    let Some(leaf_pid) = hash.get(oid)? else {
        return Err(CoreError::ObjectNotFound(oid));
    };
    let mut leaf = tree.read_node(leaf_pid)?;
    let Some(idx) = leaf.oid_index(oid) else {
        return Err(CoreError::CorruptNode {
            pid: leaf_pid,
            reason: "hash index points at a leaf without the object",
        });
    };
    let new_rect = Rect::from_point(new);

    // Step 2: in place when the tight leaf MBR already covers the target.
    if leaf.mbr().contains_point(&new) || leaf_pid == tree.root {
        leaf.leaf_entries_mut()[idx].rect = new_rect;
        tree.write_node(leaf_pid, &leaf)?;
        return Ok(UpdateOutcome::InPlace);
    }

    // Step 3: read the parent through the leaf's parent pointer.
    let parent_pid = leaf.parent;
    if parent_pid == INVALID_PAGE {
        return Err(CoreError::CorruptNode {
            pid: leaf_pid,
            reason: "LBU leaf without parent pointer",
        });
    }
    let mut parent = tree.read_node(parent_pid)?;
    let pidx = parent.child_index(leaf_pid).ok_or(CoreError::CorruptNode {
        pid: parent_pid,
        reason: "parent pointer target does not list the leaf",
    })?;
    let official = parent.internal_entries()[pidx].rect;
    if official.contains_point(&new) {
        // A previous enlargement already covers the target: pure in-place.
        leaf.leaf_entries_mut()[idx].rect = new_rect;
        tree.write_node(leaf_pid, &leaf)?;
        return Ok(UpdateOutcome::InPlace);
    }
    // Uniform ε-enlargement, clipped to the parent MBR ("In order to
    // preserve the R-tree structure, the expansion of a leaf MBR is
    // bounded by its parent MBR").
    let parent_mbr = parent.mbr();
    let enlarged = official
        .expanded_uniform(params.epsilon)
        .clipped_to(&parent_mbr);
    if enlarged.contains_point(&new) {
        parent.internal_entries_mut()[pidx].rect = enlarged;
        tree.write_node(parent_pid, &parent)?;
        leaf.leaf_entries_mut()[idx].rect = new_rect;
        tree.write_node(leaf_pid, &leaf)?;
        return Ok(UpdateOutcome::Extended);
    }

    // Step 4: a bottom-up delete must not underflow the leaf.
    if leaf.count() <= tree.min_fill_leaf() {
        return topdown::update(tree, oid, old, new);
    }

    // With sibling shifts disabled (the pure Kwon lazy-update mode of
    // Section 3.1), a failed enlargement goes straight to a top-down
    // update — "Otherwise, a top-down update is issued".
    if !params.sibling_shift {
        return topdown::update(tree, oid, old, new);
    }

    // Step 5: delete from the leaf, then look for a sibling whose MBR
    // contains the new location and that is not full. LBU has no bit
    // vector, so each candidate sibling is *read* to check fullness —
    // the extra disk accesses the paper attributes to this strategy.
    leaf.leaf_entries_mut().swap_remove(idx);
    tree.write_node(leaf_pid, &leaf)?;
    // Tighten the leaf's official MBR in the parent (in memory already);
    // leaving the stale rectangle behind on every departure would make
    // overlap ratchet outward with update volume.
    let tight = leaf.mbr();
    if parent.internal_entries()[pidx].rect != tight {
        parent.internal_entries_mut()[pidx].rect = tight;
        tree.write_node(parent_pid, &parent)?;
    }
    let leaf_cap = tree.leaf_cap();
    let sibling_entries: Vec<(usize, bur_storage::PageId)> = parent
        .internal_entries()
        .iter()
        .enumerate()
        .filter(|(i, e)| *i != pidx && e.rect.contains_point(&new))
        .map(|(i, e)| (i, e.child))
        .collect();
    for (_i, sib_pid) in sibling_entries {
        let mut sib = tree.read_node(sib_pid)?;
        if sib.count() < leaf_cap {
            sib.leaf_entries_mut().push(LeafEntry::point(oid, new));
            tree.write_node(sib_pid, &sib)?;
            tree.hash_place(oid, sib_pid)?;
            return Ok(UpdateOutcome::Shifted);
        }
    }

    // Step 6: standard insert from the root (the hash entry is refreshed
    // by the insert path).
    tree.insert_object(LeafEntry::point(oid, new))?;
    Ok(UpdateOutcome::Ascended {
        levels: tree.height - 1,
    })
}
