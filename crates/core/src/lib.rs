//! # bur-core — bottom-up update R-trees
//!
//! A from-scratch, disk-resident R-tree implementing the three update
//! techniques evaluated in *"Supporting Frequent Updates in R-Trees: A
//! Bottom-Up Approach"* (Lee, Hsu, Jensen, Cui, Teo — VLDB 2003):
//!
//! * **TD** — the classic top-down delete + insert baseline,
//! * **LBU** — localized bottom-up (Algorithm 1): hash-indexed leaf
//!   access, uniform ε-enlargement through a parent pointer, sibling
//!   shift,
//! * **GBU** — generalized bottom-up (Algorithm 2): the paper's
//!   contribution, built on a compact main-memory [`SummaryStructure`]
//!   (direct access table over internal nodes + leaf-fullness bit
//!   vector), directional `iExtendMBR`, τ-ordered repairs, piggybacked
//!   sibling shifts and `FindParent` ascent.
//!
//! The tree lives on 1 KiB pages behind an LRU buffer pool
//! ([`bur_storage`]) and keeps an on-disk linear-hash secondary index
//! ([`bur_hashindex`]) from object ids to leaf pages, so every figure of
//! the paper can be reproduced by counting physical page transfers.
//!
//! Entry point: [`IndexBuilder`], which builds either the clonable,
//! DGL-locked [`Bur`] handle (shared use, batch-first writes via
//! [`Batch`], streaming [`QueryCursor`] results, durability acks via
//! [`CommitTicket`]) or a raw single-threaded [`RTreeIndex`].
//!
//! # Concurrency
//!
//! [`Bur::apply`] executes pure-update batches on disjoint leaves in
//! parallel: a shared structure lock, an exclusive DGL granule per
//! touched leaf, and per-page buffer-pool latches, with plan-then-write
//! semantics — any op that is not leaf-local escalates the whole batch
//! to the exclusive path having written nothing, so results are always
//! identical to sequential application. The normative contract (lock
//! layering, latch-order invariant, pin-vs-latch rules, the
//! deadlock-avoidance and "benign slack" arguments) lives in
//! `docs/ARCHITECTURE.md` at the repository root.

#![warn(missing_docs)]

mod batch;
mod builder;
mod bulk;
mod concurrent;
mod config;
pub mod cost_model;
mod error;
mod gbu;
mod handle;
mod index;
mod knn;
mod lbu;
mod meta;
mod node;
mod replica;
mod split;
mod stats;
mod summary;
mod topdown;
mod tree;

pub use batch::{Batch, BatchReport, Op};
pub use builder::{IndexBuilder, OpenMode};
pub use config::{
    Durability, GbuParams, IndexOptions, InsertPolicy, LbuParams, SplitPolicy, UpdateStrategy,
    WalOptions,
};
pub use error::{CoreError, CoreResult};
pub use gbu::iextend_mbr;
pub use handle::{Bur, CommitTicket, NeighborCursor, QueryCursor};
pub use index::{RTreeIndex, RecoveryReport};
pub use meta::WAL_ANCHOR;
// Re-exported so durability consumers need no direct `bur-wal` dependency.
pub use bur_wal::{DeltaPolicy, WalStatsSnapshot, WalWaiter};
pub use knn::Neighbor;
pub use node::{
    internal_capacity, leaf_capacity, InternalEntry, LeafEntry, Node, NodeEntries, ObjectId,
    INTERNAL_ENTRY_SIZE, LEAF_ENTRY_SIZE,
};
pub use stats::{OpSnapshot, OpStats, UpdateOutcome};
pub use summary::{SummaryEntry, SummaryStructure};
