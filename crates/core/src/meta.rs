//! Index metadata snapshots and their on-disk page chains.
//!
//! A [`MetaSnapshot`] is the serialized "superblock" of an index: root
//! page, height, object count, hash-index directory head, free list and
//! WAL anchor. It is written in two places:
//!
//! * the **metadata page chain** headed at page 0 — what a clean open
//!   through [`crate::IndexBuilder`]'s [`crate::OpenMode::Open`] reads;
//! * inside every WAL **commit/checkpoint record** — what recovery uses,
//!   so a crash can never leave the superblock behind the log.

use crate::error::{CoreError, CoreResult};
use bur_storage::{BufferPool, PageId, INVALID_PAGE};

/// Magic opening every metadata payload ("BURTREE1").
pub(crate) const META_MAGIC: u64 = 0x4255_5254_5245_4531;

/// The metadata chain head: always page 0.
pub(crate) const META_PAGE: PageId = 0;

/// The write-ahead-log anchor page of a durable index: always page 1
/// (allocated right after the metadata page, before any tree page).
/// Public because log shippers (`bur-repl`) tail the chain headed here.
pub const WAL_ANCHOR: PageId = 1;

/// All index state that lives outside the tree pages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct MetaSnapshot {
    /// Page size the index was built with.
    pub page_size: usize,
    /// Root node page.
    pub root: PageId,
    /// Tree height (1 = the root is a leaf).
    pub height: u16,
    /// Number of indexed objects.
    pub len: u64,
    /// Head of the persisted hash directory chain, or [`INVALID_PAGE`]
    /// when the snapshot carries no hash image (recovery rebuilds it from
    /// the tree instead).
    pub hash_head: PageId,
    /// Pages freed by CondenseTree, available for reuse.
    pub free_pages: Vec<PageId>,
    /// WAL anchor page, or [`INVALID_PAGE`] for a non-durable index.
    pub wal_anchor: PageId,
}

impl MetaSnapshot {
    /// `true` when the snapshot includes a persisted hash directory.
    pub fn stored_hash(&self) -> bool {
        self.hash_head != INVALID_PAGE
    }

    /// Serialize to the little-endian wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(44 + 4 * self.free_pages.len());
        payload.extend_from_slice(&META_MAGIC.to_le_bytes());
        payload.extend_from_slice(&(self.page_size as u32).to_le_bytes());
        let flags: u32 =
            u32::from(self.stored_hash()) | (u32::from(self.wal_anchor != INVALID_PAGE) << 1);
        payload.extend_from_slice(&flags.to_le_bytes());
        payload.extend_from_slice(&self.root.to_le_bytes());
        payload.extend_from_slice(&u32::from(self.height).to_le_bytes());
        payload.extend_from_slice(&self.len.to_le_bytes());
        payload.extend_from_slice(&self.hash_head.to_le_bytes());
        payload.extend_from_slice(&self.wal_anchor.to_le_bytes());
        payload.extend_from_slice(&(self.free_pages.len() as u32).to_le_bytes());
        for &p in &self.free_pages {
            payload.extend_from_slice(&p.to_le_bytes());
        }
        payload
    }

    /// Parse the wire format; rejects bad magic and truncated payloads.
    pub fn decode(payload: &[u8]) -> CoreResult<Self> {
        let mut cur = MetaCursor::new(payload);
        if cur.u64()? != META_MAGIC {
            return Err(CoreError::BadConfig("not a bur index (bad magic)".into()));
        }
        let page_size = cur.u32()? as usize;
        let flags = cur.u32()?;
        let root = cur.u32()?;
        let height = cur.u32()? as u16;
        let len = cur.u64()?;
        let hash_head = cur.u32()?;
        let wal_anchor = cur.u32()?;
        let free_count = cur.u32()? as usize;
        let mut free_pages = Vec::with_capacity(free_count.min(1 << 16));
        for _ in 0..free_count {
            free_pages.push(cur.u32()?);
        }
        let snap = Self {
            page_size,
            root,
            height,
            len,
            hash_head,
            free_pages,
            wal_anchor,
        };
        if snap.stored_hash() != (flags & 1 != 0)
            || (snap.wal_anchor != INVALID_PAGE) != (flags & 2 != 0)
        {
            return Err(CoreError::BadConfig(
                "corrupt index metadata (flag mismatch)".into(),
            ));
        }
        // Every writer emits exactly this layout; trailing bytes mean a
        // torn or mis-linked chain and must not pass as a valid snapshot
        // (recovery trusts a decodable chain's pages for recycling).
        if cur.off != payload.len() {
            return Err(CoreError::BadConfig(
                "corrupt index metadata (trailing bytes)".into(),
            ));
        }
        Ok(snap)
    }
}

/// Bounds-checked little-endian payload reader.
struct MetaCursor<'a> {
    data: &'a [u8],
    off: usize,
}

impl<'a> MetaCursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self { data, off: 0 }
    }

    fn take(&mut self, n: usize) -> CoreResult<&'a [u8]> {
        if self.off + n > self.data.len() {
            return Err(CoreError::BadConfig(
                "truncated index metadata payload".into(),
            ));
        }
        let s = &self.data[self.off..self.off + n];
        self.off += n;
        Ok(s)
    }

    fn u32(&mut self) -> CoreResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> CoreResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

// ---- metadata page chain -------------------------------------------------

/// Page-chain layout: `[next u32][len u16][data ...]`, head at page 0.
///
/// Continuation pages (when the payload does not fit on the head page)
/// are drawn from `chain_pool` — the pages the *previous* chain occupied,
/// as returned by [`read_meta_chain`] or by the last write — before any
/// fresh allocation. On return, `chain_pool` holds the new chain's
/// continuation pages plus any leftover spares, so superseded chains are
/// recycled in place instead of leaking one continuation run per
/// checkpoint.
pub(crate) fn write_meta_chain(
    pool: &BufferPool,
    payload: &[u8],
    chain_pool: &mut Vec<PageId>,
) -> CoreResult<()> {
    let chunk = pool.page_size() - 6;
    let chunks: Vec<&[u8]> = if payload.is_empty() {
        vec![&[]]
    } else {
        payload.chunks(chunk).collect()
    };
    let mut avail = std::mem::take(chain_pool);
    let mut used = Vec::new();
    let mut prev: Option<PageId> = None;
    for (i, part) in chunks.iter().enumerate() {
        let pid = if i == 0 {
            META_PAGE
        } else {
            let pid = match avail.pop() {
                Some(p) => p,
                None => {
                    let (pid, guard) = pool.new_page()?;
                    drop(guard);
                    pid
                }
            };
            used.push(pid);
            pid
        };
        let guard = pool.fetch_for_overwrite(pid)?;
        {
            let mut w = guard.write();
            w.fill(0);
            w[0..4].copy_from_slice(&INVALID_PAGE.to_le_bytes());
            w[4..6].copy_from_slice(&(part.len() as u16).to_le_bytes());
            w[6..6 + part.len()].copy_from_slice(part);
        }
        drop(guard);
        if let Some(p) = prev {
            let g = pool.fetch(p)?;
            g.write()[0..4].copy_from_slice(&pid.to_le_bytes());
        }
        prev = Some(pid);
    }
    avail.extend(used);
    *chain_pool = avail;
    Ok(())
}

/// Read the metadata chain headed at page 0 back into one payload, also
/// returning the continuation pages it occupies (page 0 excluded) so the
/// next [`write_meta_chain`] can recycle them.
pub(crate) fn read_meta_chain(pool: &BufferPool) -> CoreResult<(Vec<u8>, Vec<PageId>)> {
    let mut payload = Vec::new();
    let mut pages = Vec::new();
    let mut pid = META_PAGE;
    let mut visited = std::collections::HashSet::new();
    loop {
        // A zeroed/garbage page can point anywhere, including back at page 0
        // (`next == 0`); without the guard open() would spin forever.
        if !visited.insert(pid) {
            return Err(CoreError::BadConfig(
                "not a bur index (bad magic in meta chain)".into(),
            ));
        }
        let guard = pool.fetch(pid)?;
        let data = guard.read();
        let next = u32::from_le_bytes(data[0..4].try_into().unwrap());
        let len = u16::from_le_bytes(data[4..6].try_into().unwrap()) as usize;
        if len > data.len() - 6 {
            return Err(CoreError::BadConfig(
                "not a bur index (bad magic in meta chunk)".into(),
            ));
        }
        payload.extend_from_slice(&data[6..6 + len]);
        if pid != META_PAGE {
            pages.push(pid);
        }
        if next == INVALID_PAGE {
            break;
        }
        pid = next;
    }
    Ok((payload, pages))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_roundtrip() {
        let snap = MetaSnapshot {
            page_size: 1024,
            root: 7,
            height: 3,
            len: 123_456,
            hash_head: 42,
            free_pages: vec![9, 11, 13],
            wal_anchor: 1,
        };
        let decoded = MetaSnapshot::decode(&snap.encode()).unwrap();
        assert_eq!(decoded, snap);
        assert!(decoded.stored_hash());

        let bare = MetaSnapshot {
            hash_head: INVALID_PAGE,
            wal_anchor: INVALID_PAGE,
            free_pages: vec![],
            ..snap
        };
        let decoded = MetaSnapshot::decode(&bare.encode()).unwrap();
        assert!(!decoded.stored_hash());
        assert_eq!(decoded.wal_anchor, INVALID_PAGE);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(MetaSnapshot::decode(&[]).is_err());
        assert!(MetaSnapshot::decode(&[0u8; 12]).is_err());
        let snap = MetaSnapshot {
            page_size: 1024,
            root: 2,
            height: 1,
            len: 0,
            hash_head: INVALID_PAGE,
            free_pages: vec![],
            wal_anchor: INVALID_PAGE,
        };
        let mut bytes = snap.encode();
        bytes.truncate(bytes.len() - 2);
        assert!(MetaSnapshot::decode(&bytes).is_err(), "truncated payload");
    }
}
