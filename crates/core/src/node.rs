//! In-memory node representation and its on-page codec.
//!
//! Page layout (little-endian):
//!
//! ```text
//! byte 0       magic: 0xD1 leaf, 0xD2 internal
//! byte 1       level (0 = leaf)
//! byte 2..4    entry count (u16)
//! byte 4..8    parent page id (u32; INVALID_PAGE unless the strategy
//!              maintains parent pointers — LBU does, TD/GBU do not)
//! byte 8..16   reserved
//! byte 16..    entries
//! ```
//!
//! A leaf entry is 24 bytes (`oid u64` + 4×`f32` MBR); an internal entry
//! is 20 bytes (`child u32` + 4×`f32` MBR). With the paper's 1024-byte
//! pages this gives a leaf fanout of 42 and an internal fanout of 50, so
//! a 1 M-object tree has 5 levels — the height the paper reports.

use crate::error::{CoreError, CoreResult};
use bur_geom::{Point, Rect};
use bur_storage::{PageId, INVALID_PAGE};

/// Object identifier stored in leaf entries ("a pointer to the object in
/// the database" in Guttman's formulation).
pub type ObjectId = u64;

const MAGIC_LEAF: u8 = 0xD1;
const MAGIC_INTERNAL: u8 = 0xD2;
const HEADER_SIZE: usize = 16;
/// Bytes per leaf entry.
pub const LEAF_ENTRY_SIZE: usize = 24;
/// Bytes per internal entry.
pub const INTERNAL_ENTRY_SIZE: usize = 20;

/// Maximum leaf entries for a page size.
#[inline]
#[must_use]
pub fn leaf_capacity(page_size: usize) -> usize {
    (page_size - HEADER_SIZE) / LEAF_ENTRY_SIZE
}

/// Maximum internal entries for a page size.
#[inline]
#[must_use]
pub fn internal_capacity(page_size: usize) -> usize {
    (page_size - HEADER_SIZE) / INTERNAL_ENTRY_SIZE
}

/// A leaf entry: one indexed object.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeafEntry {
    /// The object's identifier.
    pub oid: ObjectId,
    /// The object's MBR (a degenerate rectangle for points).
    pub rect: Rect,
}

impl LeafEntry {
    /// Entry for a point object.
    #[must_use]
    pub fn point(oid: ObjectId, p: Point) -> Self {
        Self {
            oid,
            rect: Rect::from_point(p),
        }
    }
}

/// An internal entry: one child subtree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InternalEntry {
    /// Page id of the child node.
    pub child: PageId,
    /// MBR bounding everything in the child subtree.
    pub rect: Rect,
}

/// Entry storage of a node.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeEntries {
    /// Leaf node: object entries.
    Leaf(Vec<LeafEntry>),
    /// Internal node: child entries.
    Internal(Vec<InternalEntry>),
}

/// A decoded R-tree node.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Level in the tree: 0 for leaves, `height − 1` for the root.
    pub level: u16,
    /// Parent page id; [`INVALID_PAGE`] when parent pointers are not
    /// maintained (TD and GBU modes).
    pub parent: PageId,
    /// The node's entries.
    pub entries: NodeEntries,
}

impl Node {
    /// Fresh empty leaf.
    #[must_use]
    pub fn new_leaf() -> Self {
        Self {
            level: 0,
            parent: INVALID_PAGE,
            entries: NodeEntries::Leaf(Vec::new()),
        }
    }

    /// Fresh empty internal node at `level >= 1`.
    #[must_use]
    pub fn new_internal(level: u16) -> Self {
        debug_assert!(level >= 1);
        Self {
            level,
            parent: INVALID_PAGE,
            entries: NodeEntries::Internal(Vec::new()),
        }
    }

    /// `true` for leaves.
    #[must_use]
    pub fn is_leaf(&self) -> bool {
        matches!(self.entries, NodeEntries::Leaf(_))
    }

    /// Number of entries.
    #[must_use]
    pub fn count(&self) -> usize {
        match &self.entries {
            NodeEntries::Leaf(v) => v.len(),
            NodeEntries::Internal(v) => v.len(),
        }
    }

    /// Tight MBR over all entries ([`Rect::EMPTY`] when empty).
    #[must_use]
    pub fn mbr(&self) -> Rect {
        match &self.entries {
            NodeEntries::Leaf(v) => v.iter().fold(Rect::EMPTY, |acc, e| acc.union(&e.rect)),
            NodeEntries::Internal(v) => v.iter().fold(Rect::EMPTY, |acc, e| acc.union(&e.rect)),
        }
    }

    /// Leaf entries (panics on internal nodes — a logic error upstream).
    #[must_use]
    pub fn leaf_entries(&self) -> &Vec<LeafEntry> {
        match &self.entries {
            NodeEntries::Leaf(v) => v,
            NodeEntries::Internal(_) => panic!("leaf_entries() on internal node"),
        }
    }

    /// Mutable leaf entries.
    pub fn leaf_entries_mut(&mut self) -> &mut Vec<LeafEntry> {
        match &mut self.entries {
            NodeEntries::Leaf(v) => v,
            NodeEntries::Internal(_) => panic!("leaf_entries_mut() on internal node"),
        }
    }

    /// Internal entries (panics on leaves).
    #[must_use]
    pub fn internal_entries(&self) -> &Vec<InternalEntry> {
        match &self.entries {
            NodeEntries::Internal(v) => v,
            NodeEntries::Leaf(_) => panic!("internal_entries() on leaf node"),
        }
    }

    /// Mutable internal entries.
    pub fn internal_entries_mut(&mut self) -> &mut Vec<InternalEntry> {
        match &mut self.entries {
            NodeEntries::Internal(v) => v,
            NodeEntries::Leaf(_) => panic!("internal_entries_mut() on leaf node"),
        }
    }

    /// Index of the entry pointing at `child`, if present.
    #[must_use]
    pub fn child_index(&self, child: PageId) -> Option<usize> {
        self.internal_entries()
            .iter()
            .position(|e| e.child == child)
    }

    /// Index of the leaf entry for `oid`, if present.
    #[must_use]
    pub fn oid_index(&self, oid: ObjectId) -> Option<usize> {
        self.leaf_entries().iter().position(|e| e.oid == oid)
    }

    /// Capacity of this node kind under `page_size`.
    #[must_use]
    pub fn capacity(&self, page_size: usize) -> usize {
        if self.is_leaf() {
            leaf_capacity(page_size)
        } else {
            internal_capacity(page_size)
        }
    }

    // ---- codec ----------------------------------------------------------

    /// Serialize into a page buffer (`buf.len()` = page size). Panics if
    /// the node exceeds the page capacity — the tree must split first.
    pub fn encode(&self, buf: &mut [u8]) {
        let count = self.count();
        debug_assert!(
            count <= self.capacity(buf.len()),
            "node with {count} entries exceeds page capacity"
        );
        buf[0] = if self.is_leaf() {
            MAGIC_LEAF
        } else {
            MAGIC_INTERNAL
        };
        buf[1] = self.level as u8;
        buf[2..4].copy_from_slice(&(count as u16).to_le_bytes());
        buf[4..8].copy_from_slice(&self.parent.to_le_bytes());
        buf[8..16].fill(0);
        let mut off = HEADER_SIZE;
        match &self.entries {
            NodeEntries::Leaf(v) => {
                for e in v {
                    buf[off..off + 8].copy_from_slice(&e.oid.to_le_bytes());
                    encode_rect(&e.rect, &mut buf[off + 8..off + 24]);
                    off += LEAF_ENTRY_SIZE;
                }
            }
            NodeEntries::Internal(v) => {
                for e in v {
                    buf[off..off + 4].copy_from_slice(&e.child.to_le_bytes());
                    encode_rect(&e.rect, &mut buf[off + 4..off + 20]);
                    off += INTERNAL_ENTRY_SIZE;
                }
            }
        }
    }

    /// Deserialize from a page buffer.
    pub fn decode(pid: PageId, buf: &[u8]) -> CoreResult<Node> {
        let magic = buf[0];
        let level = buf[1] as u16;
        let count = u16::from_le_bytes([buf[2], buf[3]]) as usize;
        let parent = u32::from_le_bytes(buf[4..8].try_into().unwrap());
        let mut off = HEADER_SIZE;
        match magic {
            MAGIC_LEAF => {
                if level != 0 {
                    return Err(CoreError::CorruptNode {
                        pid,
                        reason: "leaf magic with non-zero level",
                    });
                }
                if count > leaf_capacity(buf.len()) {
                    return Err(CoreError::CorruptNode {
                        pid,
                        reason: "leaf count exceeds capacity",
                    });
                }
                let mut v = Vec::with_capacity(count);
                for _ in 0..count {
                    let oid = u64::from_le_bytes(buf[off..off + 8].try_into().unwrap());
                    let rect = decode_rect(&buf[off + 8..off + 24]);
                    v.push(LeafEntry { oid, rect });
                    off += LEAF_ENTRY_SIZE;
                }
                Ok(Node {
                    level,
                    parent,
                    entries: NodeEntries::Leaf(v),
                })
            }
            MAGIC_INTERNAL => {
                if level == 0 {
                    return Err(CoreError::CorruptNode {
                        pid,
                        reason: "internal magic with level 0",
                    });
                }
                if count > internal_capacity(buf.len()) {
                    return Err(CoreError::CorruptNode {
                        pid,
                        reason: "internal count exceeds capacity",
                    });
                }
                let mut v = Vec::with_capacity(count);
                for _ in 0..count {
                    let child = u32::from_le_bytes(buf[off..off + 4].try_into().unwrap());
                    let rect = decode_rect(&buf[off + 4..off + 20]);
                    v.push(InternalEntry { child, rect });
                    off += INTERNAL_ENTRY_SIZE;
                }
                Ok(Node {
                    level,
                    parent,
                    entries: NodeEntries::Internal(v),
                })
            }
            _ => Err(CoreError::CorruptNode {
                pid,
                reason: "bad magic byte",
            }),
        }
    }
}

fn encode_rect(r: &Rect, buf: &mut [u8]) {
    buf[0..4].copy_from_slice(&r.min_x.to_le_bytes());
    buf[4..8].copy_from_slice(&r.min_y.to_le_bytes());
    buf[8..12].copy_from_slice(&r.max_x.to_le_bytes());
    buf[12..16].copy_from_slice(&r.max_y.to_le_bytes());
}

fn decode_rect(buf: &[u8]) -> Rect {
    Rect::new(
        f32::from_le_bytes(buf[0..4].try_into().unwrap()),
        f32::from_le_bytes(buf[4..8].try_into().unwrap()),
        f32::from_le_bytes(buf[8..12].try_into().unwrap()),
        f32::from_le_bytes(buf[12..16].try_into().unwrap()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fanouts() {
        // 1024-byte pages: leaf fanout 42, internal fanout 50 (paper
        // geometry: 5 levels at 1M objects).
        assert_eq!(leaf_capacity(1024), 42);
        assert_eq!(internal_capacity(1024), 50);
    }

    #[test]
    fn leaf_roundtrip() {
        let mut n = Node::new_leaf();
        n.parent = 77;
        for i in 0..10u64 {
            n.leaf_entries_mut().push(LeafEntry::point(
                i,
                Point::new(i as f32 * 0.1, 1.0 - i as f32 * 0.05),
            ));
        }
        let mut buf = vec![0u8; 1024];
        n.encode(&mut buf);
        let back = Node::decode(0, &buf).unwrap();
        assert_eq!(back, n);
        assert_eq!(back.count(), 10);
        assert!(back.is_leaf());
        assert_eq!(back.parent, 77);
        assert_eq!(back.oid_index(7), Some(7));
        assert_eq!(back.oid_index(99), None);
    }

    #[test]
    fn internal_roundtrip() {
        let mut n = Node::new_internal(3);
        for i in 0..20u32 {
            n.internal_entries_mut().push(InternalEntry {
                child: i * 2,
                rect: Rect::new(0.0, 0.0, i as f32, 1.0),
            });
        }
        let mut buf = vec![0u8; 1024];
        n.encode(&mut buf);
        let back = Node::decode(0, &buf).unwrap();
        assert_eq!(back, n);
        assert!(!back.is_leaf());
        assert_eq!(back.level, 3);
        assert_eq!(back.child_index(10), Some(5));
        assert_eq!(back.child_index(11), None);
    }

    #[test]
    fn mbr_is_union() {
        let mut n = Node::new_leaf();
        assert!(n.mbr().is_empty());
        n.leaf_entries_mut()
            .push(LeafEntry::point(1, Point::new(0.2, 0.3)));
        n.leaf_entries_mut()
            .push(LeafEntry::point(2, Point::new(0.8, 0.1)));
        assert_eq!(n.mbr(), Rect::new(0.2, 0.1, 0.8, 0.3));
    }

    #[test]
    fn decode_rejects_garbage() {
        let buf = vec![0u8; 1024];
        assert!(matches!(
            Node::decode(5, &buf),
            Err(CoreError::CorruptNode { pid: 5, .. })
        ));
        let mut buf = vec![0u8; 1024];
        buf[0] = 0xD1;
        buf[1] = 3; // leaf magic with level 3
        assert!(Node::decode(0, &buf).is_err());
        let mut buf = vec![0u8; 1024];
        buf[0] = 0xD2; // internal with level 0
        assert!(Node::decode(0, &buf).is_err());
        let mut buf = vec![0u8; 1024];
        buf[0] = 0xD1;
        buf[2..4].copy_from_slice(&999u16.to_le_bytes()); // count too large
        assert!(Node::decode(0, &buf).is_err());
    }

    #[test]
    #[should_panic(expected = "leaf_entries")]
    fn wrong_kind_access_panics() {
        let n = Node::new_internal(1);
        let _ = n.leaf_entries();
    }
}
