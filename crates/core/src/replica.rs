//! Replica-side index support: read-only views over a replicated page
//! image and the *promote tail* that turns one into a writable primary.
//!
//! A replication follower (`bur-repl`) redoes the primary's write-ahead
//! log onto its own page disk. Between commits it needs a way to answer
//! queries over a *consistent prefix* of that redo stream; at failover
//! it needs the tail of recovery — the memory-state rebuild and log
//! attach that [`crate::IndexBuilder`]'s recover mode runs after replay.
//! Both live here, on [`RTreeIndex`], so the follower never has to reach
//! into tree internals:
//!
//! * [`RTreeIndex::replica_view`] — a queryable, strategy-less (TD)
//!   index over a disk whose superblock comes from a replicated WAL
//!   commit/checkpoint record instead of the on-disk metadata chain;
//! * [`RTreeIndex::install_replica_snapshot`] — advance the view to a
//!   newer replicated snapshot (the follower's apply watermark);
//! * [`RTreeIndex::promote_replica`] — rebuild the summary structure /
//!   hash index / parent pointers the target strategy needs, reattach
//!   and rewind the write-ahead log at the [`WAL_ANCHOR`], and
//!   checkpoint: the replica becomes an ordinary writable index.

use crate::config::{Durability, IndexOptions, UpdateStrategy};
use crate::error::{CoreError, CoreResult};
use crate::index::{attach_durable_watcher, rebuild_memory_state, RTreeIndex};
use crate::meta::{read_meta_chain, MetaSnapshot, WAL_ANCHOR};
use crate::stats::OpStats;
use crate::summary::SummaryStructure;
use crate::tree::{RTree, WalHandle};
use bur_hashindex::{HashIndexConfig, LinearHashIndex};
use bur_storage::{BufferPool, DiskBackend, PoolConfig};
use bur_wal::Wal;
use std::sync::Arc;

impl RTreeIndex {
    /// Build a read-only replica view over `disk` from a serialized
    /// metadata snapshot (the payload of a replicated WAL commit or
    /// checkpoint record).
    ///
    /// The view carries no write-ahead log and none of the bottom-up
    /// strategies' memory state — queries run as plain top-down descents
    /// — so constructing one costs a metadata decode, not a tree scan.
    /// Writes through it would desynchronize the follower from the
    /// shipped log; wrap it in a read-only handle
    /// ([`crate::Bur::from_index_read_only`]) before sharing it.
    pub fn replica_view(
        disk: Arc<dyn DiskBackend>,
        buffer_frames: usize,
        meta: &[u8],
    ) -> CoreResult<Self> {
        let snap = MetaSnapshot::decode(meta)?;
        if disk.page_size() != snap.page_size {
            return Err(CoreError::BadConfig(format!(
                "disk page size {} != replicated snapshot's {}",
                disk.page_size(),
                snap.page_size
            )));
        }
        let opts = IndexOptions {
            page_size: snap.page_size,
            buffer_frames,
            strategy: UpdateStrategy::TopDown,
            durability: Durability::None,
            ..IndexOptions::default()
        };
        opts.validate()?;
        let pool = Arc::new(BufferPool::new(
            disk,
            PoolConfig {
                capacity: buffer_frames,
                policy: opts.eviction,
            },
        ));
        let tree = RTree {
            pool,
            opts,
            root: snap.root,
            height: snap.height,
            len: std::sync::atomic::AtomicU64::new(snap.len),
            free_pages: snap.free_pages,
            summary: None,
            hash: None,
            stats: OpStats::default(),
            pending_reinserts: Vec::new(),
            reinsert_armed: 0,
            insert_active: false,
            wal: None,
            meta_chain_pages: Vec::new(),
        };
        Ok(Self { tree })
    }

    /// Advance a replica view to a newer replicated snapshot: swap in the
    /// root, height, object count and free list recorded at the new
    /// apply watermark. The caller must already have redone every page
    /// record covered by that snapshot onto this index's pool.
    pub fn install_replica_snapshot(&mut self, meta: &[u8]) -> CoreResult<()> {
        let snap = MetaSnapshot::decode(meta)?;
        if snap.page_size != self.tree.opts.page_size {
            return Err(CoreError::BadConfig(format!(
                "replicated snapshot page size {} != view's {}",
                snap.page_size, self.tree.opts.page_size
            )));
        }
        self.tree.root = snap.root;
        self.tree.height = snap.height;
        *self.tree.len.get_mut() = snap.len;
        self.tree.free_pages = snap.free_pages;
        Ok(())
    }

    /// Promote a replica view into a writable index with the given
    /// options — the tail of crash recovery, minus the replay the
    /// follower already performed:
    ///
    /// 1. rebuild the memory state the target strategy needs (GBU
    ///    summary structure, object-id hash index, LBU parent pointers)
    ///    from a tree scan — the replicated hash directory is rebuilt
    ///    rather than trusted, exactly as recovery does;
    /// 2. with [`Durability::Wal`] options, reattach the log at the
    ///    [`WAL_ANCHOR`] and checkpoint-rewind it: the (stale, copied)
    ///    log chain is recycled under a fresh generation whose base
    ///    image is the replica's current pages;
    /// 3. otherwise persist, so the metadata chain matches the adopted
    ///    state.
    ///
    /// `opts.page_size` must match the view's. Fails on an index that
    /// already has a log attached (it is not a replica view).
    pub fn promote_replica(&mut self, opts: IndexOptions) -> CoreResult<()> {
        opts.validate()?;
        if opts.page_size != self.tree.opts.page_size {
            return Err(CoreError::BadConfig(format!(
                "promote page size {} != replica's {}",
                opts.page_size, self.tree.opts.page_size
            )));
        }
        if self.tree.wal.is_some() {
            return Err(CoreError::BadConfig(
                "promote_replica: index already has a write-ahead log attached".into(),
            ));
        }
        self.tree.pool.set_capacity(opts.buffer_frames)?;
        self.tree.opts = opts;
        self.tree.hash = if opts.strategy.needs_hash_index() {
            Some(LinearHashIndex::create(
                self.tree.pool.clone(),
                HashIndexConfig::default(),
            )?)
        } else {
            None
        };
        self.tree.summary = opts.strategy.needs_summary().then(SummaryStructure::new);
        rebuild_memory_state(&mut self.tree, opts.strategy.needs_hash_index())?;
        // The copied disk carries the primary's old metadata chain; walk
        // it defensively (it may be mid-checkpoint garbage) and recycle
        // its continuation pages instead of leaking them — the same
        // pattern recovery uses.
        self.tree.meta_chain_pages = read_meta_chain(&self.tree.pool)
            .ok()
            .filter(|(payload, _)| MetaSnapshot::decode(payload).is_ok())
            .map(|(_, pages)| pages)
            .unwrap_or_default();
        match opts.durability {
            Durability::Wal(wopts) => {
                let disk = self.tree.pool.disk().clone();
                if disk.num_pages() <= WAL_ANCHOR {
                    return Err(CoreError::BadConfig(
                        "promote_replica: replica disk has no WAL anchor page".into(),
                    ));
                }
                let (wal, _scanned) = Wal::reopen_with(disk, WAL_ANCHOR, wopts.sync, wopts.delta)?;
                wal.set_async_coalesce(wopts.async_coalesce);
                attach_durable_watcher(&wal, &self.tree.pool);
                self.tree.pool.set_wal_mode(true);
                self.tree.wal = Some(WalHandle::new(wal, wopts));
                self.tree.wal_checkpoint()?;
            }
            Durability::None => self.persist()?,
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IndexBuilder;
    use bur_geom::{Point, Rect};
    use bur_storage::MemDisk;

    /// Copy every page of `src` onto a fresh in-memory disk.
    fn clone_disk(src: &dyn DiskBackend) -> Arc<MemDisk> {
        let dst = Arc::new(MemDisk::new(src.page_size()));
        let mut buf = vec![0u8; src.page_size()];
        for pid in 0..src.num_pages() {
            src.read(pid, &mut buf).unwrap();
            dst.allocate().unwrap();
            dst.write(pid, &buf).unwrap();
        }
        dst
    }

    fn durable_primary() -> (crate::RTreeIndex, Arc<MemDisk>, Vec<u8>) {
        let disk = Arc::new(MemDisk::new(1024));
        let mut index = IndexBuilder::generalized()
            .durable()
            .disk(disk.clone())
            .build_index()
            .unwrap();
        for oid in 0..200u64 {
            let x = (oid % 20) as f32 / 20.0;
            let y = (oid / 20) as f32 / 10.0;
            index.insert(oid, Point::new(x, y)).unwrap();
        }
        index.checkpoint().unwrap();
        let meta = index.tree.meta_snapshot(bur_storage::INVALID_PAGE).encode();
        (index, disk, meta)
    }

    #[test]
    fn replica_view_answers_queries_without_memory_state() {
        let (primary, disk, meta) = durable_primary();
        let copy = clone_disk(disk.as_ref());
        let view = crate::RTreeIndex::replica_view(copy, 64, &meta).unwrap();
        assert_eq!(view.len(), primary.len());
        assert!(!view.is_durable());
        assert!(view.summary().is_none());
        let w = Rect::new(0.0, 0.0, 0.5, 0.5);
        let mut got = view.query(&w).unwrap();
        let mut want = primary.query(&w).unwrap();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
        view.validate().unwrap();
    }

    #[test]
    fn replica_view_rejects_mismatched_page_size() {
        let (_p, _disk, meta) = durable_primary();
        let wrong = Arc::new(MemDisk::new(512));
        assert!(crate::RTreeIndex::replica_view(wrong, 16, &meta).is_err());
        assert!(
            crate::RTreeIndex::replica_view(Arc::new(MemDisk::new(1024)), 16, b"junk").is_err()
        );
    }

    #[test]
    fn promote_rebuilds_state_and_takes_writes() {
        let (primary, disk, meta) = durable_primary();
        let copy = clone_disk(disk.as_ref());
        let mut view = crate::RTreeIndex::replica_view(copy.clone(), 64, &meta).unwrap();
        view.promote_replica(IndexOptions::durable()).unwrap();
        assert!(view.is_durable());
        assert!(view.summary().is_some(), "GBU summary rebuilt");
        view.validate().unwrap();
        assert_eq!(view.len(), primary.len());
        // The promoted index is live and durable: write, crash, recover.
        view.insert(9000, Point::new(0.91, 0.91)).unwrap();
        drop(view);
        let (rec, _) = IndexBuilder::generalized()
            .disk(copy)
            .recover()
            .build_index_with_report()
            .unwrap();
        assert!(rec
            .point_query(Point::new(0.91, 0.91))
            .unwrap()
            .contains(&9000));
        rec.validate().unwrap();
    }

    #[test]
    fn promote_to_each_strategy_validates() {
        for opts in [
            IndexOptions::top_down(),
            IndexOptions::localized(),
            IndexOptions::generalized(),
        ] {
            let (_primary, disk, meta) = durable_primary();
            let copy = clone_disk(disk.as_ref());
            let mut view = crate::RTreeIndex::replica_view(copy, 64, &meta).unwrap();
            view.promote_replica(opts).unwrap();
            view.validate().unwrap();
            // Non-durable promote persists: a clean open works.
            assert!(!view.is_durable());
        }
    }

    #[test]
    fn promote_rejects_an_already_writable_index() {
        let (mut primary, _disk, _meta) = durable_primary();
        let err = primary
            .promote_replica(IndexOptions::durable())
            .unwrap_err();
        assert!(err.to_string().contains("already has"), "{err}");
    }
}
