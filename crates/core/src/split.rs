//! Node split policies: Guttman's quadratic (the paper's R-tree), linear
//! (ablation) and the R*-tree topological split (R*-variant extension).
//!
//! Splits operate on the entry MBRs only and return a partition of entry
//! *indices*, so one implementation serves leaf and internal nodes alike.

use crate::config::SplitPolicy;
use bur_geom::Rect;

/// Partition `rects` into two groups, each with at least `min_fill`
/// members. Returns the index sets of the two groups.
#[must_use]
pub fn split(rects: &[Rect], min_fill: usize, policy: SplitPolicy) -> (Vec<usize>, Vec<usize>) {
    debug_assert!(rects.len() >= 2, "cannot split fewer than two entries");
    debug_assert!(
        2 * min_fill <= rects.len(),
        "min_fill {} too large for {} entries",
        min_fill,
        rects.len()
    );
    let (seed_a, seed_b) = match policy {
        SplitPolicy::Quadratic => pick_seeds_quadratic(rects),
        SplitPolicy::Linear => pick_seeds_linear(rects),
        SplitPolicy::RStar => return split_rstar(rects, min_fill),
    };
    distribute(rects, min_fill, seed_a, seed_b, policy)
}

/// R*-tree split (Beckmann et al., Section 4.2): choose the split *axis*
/// whose candidate distributions have the smallest margin sum, then the
/// *distribution* along that axis with the least overlap between the two
/// groups (ties by smaller total area).
///
/// A "distribution" takes the entries sorted along one axis (by lower or
/// by upper bound) and puts the first `min_fill + k` into group A for
/// `k = 0 .. n − 2·min_fill`.
fn split_rstar(rects: &[Rect], min_fill: usize) -> (Vec<usize>, Vec<usize>) {
    let n = rects.len();
    let min_fill = min_fill.max(1);

    // Four sort orders: (axis, by lower / by upper bound).
    let keys: [fn(&Rect) -> f32; 4] = [|r| r.min_x, |r| r.max_x, |r| r.min_y, |r| r.max_y];

    // Per axis: margin sum over all distributions of both its sorts.
    let mut axis_margin = [0.0f64; 2];
    let mut sorted: Vec<Vec<usize>> = Vec::with_capacity(4);
    for (s, key) in keys.iter().enumerate() {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| key(&rects[a]).total_cmp(&key(&rects[b])));
        for k in 0..=(n - 2 * min_fill) {
            let at = min_fill + k;
            let (ca, cb) = covers(rects, &order, at);
            axis_margin[s / 2] += f64::from(ca.margin()) + f64::from(cb.margin());
        }
        sorted.push(order);
    }
    let axis = usize::from(axis_margin[1] < axis_margin[0]); // 0 = x, 1 = y

    // Along the chosen axis: pick the distribution (over both sorts) with
    // minimum overlap, ties by minimum combined area.
    let mut best: Option<(f32, f32, &[usize], usize)> = None;
    for order in &sorted[axis * 2..axis * 2 + 2] {
        for k in 0..=(n - 2 * min_fill) {
            let at = min_fill + k;
            let (ca, cb) = covers(rects, order, at);
            let overlap = ca.intersection_area(&cb);
            let area = ca.area() + cb.area();
            let better = match best {
                None => true,
                Some((bo, ba, _, _)) => overlap < bo || (overlap == bo && area < ba),
            };
            if better {
                best = Some((overlap, area, order, at));
            }
        }
    }
    let (_, _, order, at) = best.expect("at least one distribution exists");
    (order[..at].to_vec(), order[at..].to_vec())
}

/// Bounding rectangles of `order[..at]` and `order[at..]`.
fn covers(rects: &[Rect], order: &[usize], at: usize) -> (Rect, Rect) {
    let mut ca = Rect::EMPTY;
    for &i in &order[..at] {
        ca = ca.union(&rects[i]);
    }
    let mut cb = Rect::EMPTY;
    for &i in &order[at..] {
        cb = cb.union(&rects[i]);
    }
    (ca, cb)
}

/// Guttman PickSeeds: the pair wasting the most area if grouped together.
fn pick_seeds_quadratic(rects: &[Rect]) -> (usize, usize) {
    let mut best = (0, 1);
    let mut best_waste = f32::NEG_INFINITY;
    for i in 0..rects.len() {
        for j in (i + 1)..rects.len() {
            let waste = rects[i].union(&rects[j]).area() - rects[i].area() - rects[j].area();
            if waste > best_waste {
                best_waste = waste;
                best = (i, j);
            }
        }
    }
    best
}

/// Guttman LinearPickSeeds: greatest normalized separation along any axis.
fn pick_seeds_linear(rects: &[Rect]) -> (usize, usize) {
    // Along each dimension: entry with the highest low side and entry
    // with the lowest high side.
    let mut hi_min_x = 0; // argmax of min_x
    let mut lo_max_x = 0; // argmin of max_x
    let mut hi_min_y = 0;
    let mut lo_max_y = 0;
    let (mut span_min_x, mut span_max_x) = (f32::INFINITY, f32::NEG_INFINITY);
    let (mut span_min_y, mut span_max_y) = (f32::INFINITY, f32::NEG_INFINITY);
    for (i, r) in rects.iter().enumerate() {
        if r.min_x > rects[hi_min_x].min_x {
            hi_min_x = i;
        }
        if r.max_x < rects[lo_max_x].max_x {
            lo_max_x = i;
        }
        if r.min_y > rects[hi_min_y].min_y {
            hi_min_y = i;
        }
        if r.max_y < rects[lo_max_y].max_y {
            lo_max_y = i;
        }
        span_min_x = span_min_x.min(r.min_x);
        span_max_x = span_max_x.max(r.max_x);
        span_min_y = span_min_y.min(r.min_y);
        span_max_y = span_max_y.max(r.max_y);
    }
    let width_x = (span_max_x - span_min_x).max(f32::EPSILON);
    let width_y = (span_max_y - span_min_y).max(f32::EPSILON);
    let sep_x = (rects[hi_min_x].min_x - rects[lo_max_x].max_x) / width_x;
    let sep_y = (rects[hi_min_y].min_y - rects[lo_max_y].max_y) / width_y;
    let (mut a, mut b) = if sep_x >= sep_y {
        (hi_min_x, lo_max_x)
    } else {
        (hi_min_y, lo_max_y)
    };
    if a == b {
        // All rectangles coincide along both axes; any distinct pair works.
        a = 0;
        b = 1;
    }
    (a.min(b), a.max(b))
}

/// Distribute the remaining entries to the two seeded groups.
fn distribute(
    rects: &[Rect],
    min_fill: usize,
    seed_a: usize,
    seed_b: usize,
    policy: SplitPolicy,
) -> (Vec<usize>, Vec<usize>) {
    let n = rects.len();
    let mut group_a = vec![seed_a];
    let mut group_b = vec![seed_b];
    let mut cover_a = rects[seed_a];
    let mut cover_b = rects[seed_b];
    let mut remaining: Vec<usize> = (0..n).filter(|&i| i != seed_a && i != seed_b).collect();

    while !remaining.is_empty() {
        // Min-fill forcing: if one group needs every remaining entry to
        // reach min_fill, give it all of them.
        if group_a.len() + remaining.len() == min_fill {
            group_a.append(&mut remaining);
            break;
        }
        if group_b.len() + remaining.len() == min_fill {
            group_b.append(&mut remaining);
            break;
        }
        // Choose the next entry to place.
        let pick_pos = match policy {
            SplitPolicy::Quadratic => {
                // PickNext: strongest preference for one group.
                let mut best_pos = 0;
                let mut best_pref = f32::NEG_INFINITY;
                for (pos, &i) in remaining.iter().enumerate() {
                    let d_a = cover_a.enlargement(&rects[i]);
                    let d_b = cover_b.enlargement(&rects[i]);
                    let pref = (d_a - d_b).abs();
                    if pref > best_pref {
                        best_pref = pref;
                        best_pos = pos;
                    }
                }
                best_pos
            }
            // Any order; R* never reaches here (its own distribution
            // logic returns early from `split`).
            SplitPolicy::Linear | SplitPolicy::RStar => 0,
        };
        let i = remaining.swap_remove(pick_pos);
        // Assign to the group needing less enlargement; break ties by
        // smaller area, then fewer entries (Guttman's tie chain).
        let d_a = cover_a.enlargement(&rects[i]);
        let d_b = cover_b.enlargement(&rects[i]);
        let to_a = match d_a.partial_cmp(&d_b).expect("finite enlargements") {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => match cover_a.area().partial_cmp(&cover_b.area()) {
                Some(std::cmp::Ordering::Less) => true,
                Some(std::cmp::Ordering::Greater) => false,
                _ => group_a.len() <= group_b.len(),
            },
        };
        if to_a {
            group_a.push(i);
            cover_a = cover_a.union(&rects[i]);
        } else {
            group_b.push(i);
            cover_b = cover_b.union(&rects[i]);
        }
    }
    (group_a, group_b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rects_cluster() -> Vec<Rect> {
        // Two obvious clusters around (0.1,0.1) and (0.9,0.9).
        let mut v = Vec::new();
        for i in 0..5 {
            let d = i as f32 * 0.01;
            v.push(Rect::new(0.1 + d, 0.1, 0.12 + d, 0.12));
            v.push(Rect::new(0.9 - d, 0.9, 0.92 - d, 0.92));
        }
        v
    }

    fn check_partition(rects: &[Rect], min_fill: usize, policy: SplitPolicy) {
        let (a, b) = split(rects, min_fill, policy);
        assert!(a.len() >= min_fill, "{policy:?}: group A below min fill");
        assert!(b.len() >= min_fill, "{policy:?}: group B below min fill");
        assert_eq!(a.len() + b.len(), rects.len());
        let mut all: Vec<usize> = a.iter().chain(b.iter()).copied().collect();
        all.sort_unstable();
        let expect: Vec<usize> = (0..rects.len()).collect();
        assert_eq!(
            all, expect,
            "{policy:?}: partition must cover all exactly once"
        );
    }

    #[test]
    fn quadratic_separates_clusters() {
        let rects = rects_cluster();
        let (a, b) = split(&rects, 2, SplitPolicy::Quadratic);
        check_partition(&rects, 2, SplitPolicy::Quadratic);
        // Even indices are cluster 1, odd are cluster 2; the split must
        // not mix them.
        let a_even = a.iter().filter(|&&i| i % 2 == 0).count();
        assert!(
            a_even == 0 || a_even == a.len(),
            "quadratic split mixed the clusters: {a:?} / {b:?}"
        );
    }

    #[test]
    fn linear_valid_partition() {
        let rects = rects_cluster();
        check_partition(&rects, 2, SplitPolicy::Linear);
    }

    const ALL_POLICIES: [SplitPolicy; 3] = [
        SplitPolicy::Quadratic,
        SplitPolicy::Linear,
        SplitPolicy::RStar,
    ];

    #[test]
    fn min_fill_forcing() {
        // One far-away outlier: without forcing, the outlier group would
        // end up with a single entry even at min_fill 3.
        let mut rects = vec![Rect::new(100.0, 100.0, 101.0, 101.0)];
        for i in 0..7 {
            let d = i as f32 * 0.01;
            rects.push(Rect::new(d, d, d + 0.01, d + 0.01));
        }
        for policy in ALL_POLICIES {
            check_partition(&rects, 3, policy);
        }
    }

    #[test]
    fn identical_rects_still_split() {
        let rects = vec![Rect::new(0.5, 0.5, 0.6, 0.6); 8];
        for policy in ALL_POLICIES {
            check_partition(&rects, 3, policy);
        }
    }

    #[test]
    fn two_entries() {
        let rects = vec![Rect::new(0.0, 0.0, 0.1, 0.1), Rect::new(0.9, 0.9, 1.0, 1.0)];
        for policy in ALL_POLICIES {
            let (a, b) = split(&rects, 1, policy);
            assert_eq!(a.len(), 1);
            assert_eq!(b.len(), 1);
        }
    }

    #[test]
    fn degenerate_points() {
        let rects: Vec<Rect> = (0..10)
            .map(|i| Rect::from_point(bur_geom::Point::new(i as f32 * 0.1, 0.5)))
            .collect();
        for policy in ALL_POLICIES {
            check_partition(&rects, 4, policy);
        }
    }

    #[test]
    fn rstar_separates_clusters() {
        let rects = rects_cluster();
        check_partition(&rects, 2, SplitPolicy::RStar);
        let (a, b) = split(&rects, 2, SplitPolicy::RStar);
        let a_even = a.iter().filter(|&&i| i % 2 == 0).count();
        assert!(
            a_even == 0 || a_even == a.len(),
            "R* split mixed the clusters: {a:?} / {b:?}"
        );
        let cover = |g: &[usize]| g.iter().fold(Rect::EMPTY, |acc, &i| acc.union(&rects[i]));
        assert_eq!(cover(&a).intersection_area(&cover(&b)), 0.0);
    }

    #[test]
    fn rstar_prefers_disjoint_distribution() {
        // A column of stacked rectangles: splitting along y gives zero
        // overlap, splitting along x cannot.
        let rects: Vec<Rect> = (0..8)
            .map(|i| {
                let y = i as f32 * 0.1;
                Rect::new(0.0, y, 1.0, y + 0.05)
            })
            .collect();
        let (a, b) = split(&rects, 2, SplitPolicy::RStar);
        let cover = |g: &[usize]| g.iter().fold(Rect::EMPTY, |acc, &i| acc.union(&rects[i]));
        assert_eq!(
            cover(&a).intersection_area(&cover(&b)),
            0.0,
            "stacked rows must split with zero overlap: {a:?} / {b:?}"
        );
    }

    #[test]
    fn rstar_groups_are_axis_contiguous() {
        // The chosen distribution is a prefix/suffix of a sorted order, so
        // groups never interleave along the split axis.
        let rects: Vec<Rect> = (0..9)
            .map(|i| {
                let x = (i * 37 % 9) as f32 * 0.1; // scrambled input order
                Rect::new(x, 0.0, x + 0.05, 1.0)
            })
            .collect();
        let (a, b) = split(&rects, 3, SplitPolicy::RStar);
        let max_a = a
            .iter()
            .map(|&i| rects[i].min_x)
            .fold(f32::NEG_INFINITY, f32::max);
        let min_b = b
            .iter()
            .map(|&i| rects[i].min_x)
            .fold(f32::INFINITY, f32::min);
        let max_b = b
            .iter()
            .map(|&i| rects[i].min_x)
            .fold(f32::NEG_INFINITY, f32::max);
        let min_a = a
            .iter()
            .map(|&i| rects[i].min_x)
            .fold(f32::INFINITY, f32::min);
        assert!(
            max_a <= min_b || max_b <= min_a,
            "groups interleave: {a:?} / {b:?}"
        );
    }
}
