//! Operation counters: which path each update took, how often structure
//! maintenance fired. These feed the experiment harness and the tests
//! that pin down strategy behaviour (e.g. "with ε = 0 no update may take
//! the extension path").

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// How an update was carried out — the outcome classes of Algorithms 1–2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateOutcome {
    /// New location inside the leaf MBR: leaf rewritten in place.
    InPlace,
    /// Leaf MBR enlarged (uniformly for LBU, directionally for GBU).
    Extended,
    /// Entry moved to a sibling leaf under the same parent.
    Shifted,
    /// Entry re-inserted from an ancestor found by `FindParent`,
    /// `levels` above the leaf.
    Ascended {
        /// Levels climbed above the leaf (1 = re-insert from the parent).
        levels: u16,
    },
    /// Full top-down delete + insert (the fallback, and all TD updates).
    TopDown,
}

impl UpdateOutcome {
    /// Stable label for reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            UpdateOutcome::InPlace => "in_place",
            UpdateOutcome::Extended => "extended",
            UpdateOutcome::Shifted => "shifted",
            UpdateOutcome::Ascended { .. } => "ascended",
            UpdateOutcome::TopDown => "top_down",
        }
    }
}

macro_rules! op_stats {
    ($($(#[$doc:meta])* $field:ident),+ $(,)?) => {
        /// Atomic operation counters kept by the index.
        #[derive(Debug, Default)]
        pub struct OpStats {
            $($(#[$doc])* pub(crate) $field: AtomicU64,)+
        }

        /// Point-in-time copy of [`OpStats`].
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        pub struct OpSnapshot {
            $($(#[$doc])* pub $field: u64,)+
        }

        impl OpStats {
            /// Capture current values.
            #[must_use]
            pub fn snapshot(&self) -> OpSnapshot {
                OpSnapshot {
                    $($field: self.$field.load(Ordering::Relaxed),)+
                }
            }

            /// Zero all counters.
            pub fn reset(&self) {
                $(self.$field.store(0, Ordering::Relaxed);)+
            }
        }

        impl OpSnapshot {
            /// Counter-wise `self − earlier`.
            #[must_use]
            pub fn since(&self, earlier: &OpSnapshot) -> OpSnapshot {
                OpSnapshot {
                    $($field: self.$field.saturating_sub(earlier.$field),)+
                }
            }
        }
    };
}

op_stats! {
    /// Objects inserted.
    inserts,
    /// Objects deleted.
    deletes,
    /// Updates processed (any outcome).
    updates,
    /// Updates resolved in place.
    upd_in_place,
    /// Updates resolved by MBR extension.
    upd_extended,
    /// Updates resolved by sibling shift.
    upd_shifted,
    /// Updates resolved by ascending and re-inserting.
    upd_ascended,
    /// Updates that fell back to a full top-down delete + insert.
    upd_top_down,
    /// Window queries answered.
    queries,
    /// Node splits performed.
    splits,
    /// Nodes dissolved by CondenseTree (underflow).
    condenses,
    /// Entries re-inserted by CondenseTree.
    reinserted_entries,
    /// Entries piggybacked during sibling shifts.
    piggybacked,
    /// R* forced-reinsertion events (overflow treated without a split).
    forced_reinserts,
    /// Entries evicted and re-inserted by R* forced reinsertion.
    forced_reinserted_entries,
    /// Batches that fell off the concurrent (shared-lock) write path
    /// onto the exclusive path. The headline observable of the coupled
    /// structural path: disjoint structural batches should keep this
    /// near zero where the pre-coupling path escalated every one.
    escalations,
    /// Preparatory ("make-room") splits: a full leaf split as its own
    /// commit under a short exclusive section so the batch that needed
    /// the room could retry on the shared path.
    make_room_splits,
}

impl OpStats {
    /// Record one update outcome.
    pub fn record_update(&self, outcome: UpdateOutcome) {
        self.updates.fetch_add(1, Ordering::Relaxed);
        let counter = match outcome {
            UpdateOutcome::InPlace => &self.upd_in_place,
            UpdateOutcome::Extended => &self.upd_extended,
            UpdateOutcome::Shifted => &self.upd_shifted,
            UpdateOutcome::Ascended { .. } => &self.upd_ascended,
            UpdateOutcome::TopDown => &self.upd_top_down,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

impl fmt::Display for OpSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "updates={} (in_place={} extended={} shifted={} ascended={} top_down={}) \
             inserts={} deletes={} queries={} splits={} condenses={} reinserted={} piggybacked={} \
             forced_reinserts={} forced_reinserted={} escalations={} make_room_splits={}",
            self.updates,
            self.upd_in_place,
            self.upd_extended,
            self.upd_shifted,
            self.upd_ascended,
            self.upd_top_down,
            self.inserts,
            self.deletes,
            self.queries,
            self.splits,
            self.condenses,
            self.reinserted_entries,
            self.piggybacked,
            self.forced_reinserts,
            self.forced_reinserted_entries,
            self.escalations,
            self.make_room_splits,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_recording() {
        let s = OpStats::default();
        s.record_update(UpdateOutcome::InPlace);
        s.record_update(UpdateOutcome::InPlace);
        s.record_update(UpdateOutcome::Ascended { levels: 2 });
        s.record_update(UpdateOutcome::TopDown);
        let snap = s.snapshot();
        assert_eq!(snap.updates, 4);
        assert_eq!(snap.upd_in_place, 2);
        assert_eq!(snap.upd_ascended, 1);
        assert_eq!(snap.upd_top_down, 1);
        assert_eq!(snap.upd_extended, 0);
    }

    #[test]
    fn snapshot_delta_and_reset() {
        let s = OpStats::default();
        s.record_update(UpdateOutcome::Shifted);
        let a = s.snapshot();
        s.record_update(UpdateOutcome::Shifted);
        let d = s.snapshot().since(&a);
        assert_eq!(d.upd_shifted, 1);
        s.reset();
        assert_eq!(s.snapshot(), OpSnapshot::default());
    }

    #[test]
    fn labels() {
        assert_eq!(UpdateOutcome::InPlace.label(), "in_place");
        assert_eq!(UpdateOutcome::Ascended { levels: 1 }.label(), "ascended");
        let snap = OpStats::default().snapshot();
        assert!(snap.to_string().contains("updates=0"));
    }
}
