//! The paper's main-memory summary structure (Section 3.2).
//!
//! Two components:
//!
//! 1. a **direct access table** over the *internal* nodes — per entry the
//!    node's MBR, its level and its child page ids, organized by level
//!    ("All the entries are contiguous, and are organized according to the
//!    levels of the internal nodes they correspond to"), and
//! 2. a **bit vector** over the leaves marking which are full, so the
//!    sibling-shift step of GBU never reads a sibling just to discover it
//!    has no room.
//!
//! The table is maintained on every internal-node write (MBR change or
//! split) and costs no disk I/O to consult. It serves three purposes in
//! GBU: the O(1) root-MBR check, `FindParent` (Algorithm 3) without parent
//! pointers, and in-memory pruning of internal levels during window
//! queries.

use bur_geom::{Point, Rect};
use bur_storage::PageId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Seqlock over the cached root MBR: the one summary datum the
/// concurrent write path reads on *every* plan (Algorithm 2's O(1)
/// root-MBR check) and the admission gate for shared-path inserts.
///
/// The four `f32` coordinates pack into two `u64` payload words guarded
/// by a sequence counter (odd while a writer is mid-publish). Readers
/// retry until they observe an even, unchanged sequence — so reads are
/// wait-free for readers in practice and never block on (or are blocked
/// by) a writer. Writers must be externally serialized: every
/// `store` happens either under the structure lock's write side or
/// under the root leaf's exclusive granule, which never coexist.
#[derive(Debug)]
pub struct RootMbrCell {
    seq: AtomicU64,
    lo: AtomicU64,
    hi: AtomicU64,
}

fn pack(a: f32, b: f32) -> u64 {
    (u64::from(a.to_bits()) << 32) | u64::from(b.to_bits())
}

fn unpack(w: u64) -> (f32, f32) {
    (f32::from_bits((w >> 32) as u32), f32::from_bits(w as u32))
}

impl Default for RootMbrCell {
    fn default() -> Self {
        Self::new(Rect::EMPTY)
    }
}

impl RootMbrCell {
    /// A cell initialized to `mbr`.
    #[must_use]
    pub fn new(mbr: Rect) -> Self {
        let cell = RootMbrCell {
            seq: AtomicU64::new(0),
            lo: AtomicU64::new(0),
            hi: AtomicU64::new(0),
        };
        cell.store(mbr);
        cell
    }

    /// Publish a new root MBR. Callers must hold either the structure
    /// lock's write side or the root leaf's exclusive granule (single
    /// writer); the seqlock only protects readers from torn reads.
    pub fn store(&self, mbr: Rect) {
        let s = self.seq.load(Ordering::Relaxed);
        self.seq.store(s.wrapping_add(1), Ordering::Release);
        self.lo.store(pack(mbr.min_x, mbr.min_y), Ordering::Release);
        self.hi.store(pack(mbr.max_x, mbr.max_y), Ordering::Release);
        self.seq.store(s.wrapping_add(2), Ordering::Release);
    }

    /// Lock-free snapshot of the root MBR.
    #[must_use]
    pub fn load(&self) -> Rect {
        loop {
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let lo = self.lo.load(Ordering::Acquire);
            let hi = self.hi.load(Ordering::Acquire);
            if self.seq.load(Ordering::Acquire) == s1 {
                let (min_x, min_y) = unpack(lo);
                let (max_x, max_y) = unpack(hi);
                return Rect {
                    min_x,
                    min_y,
                    max_x,
                    max_y,
                };
            }
        }
    }
}

/// One direct-access-table entry: a summary of one internal node.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryEntry {
    /// Page id of the internal node.
    pub pid: PageId,
    /// MBR bounding all entries of the node ("The single MBR captured in
    /// an entry ... bounds all MBRs stored in the entries of the
    /// corresponding R-tree index node").
    pub mbr: Rect,
    /// Page ids of the node's children.
    pub children: Vec<PageId>,
}

/// Growable bit vector keyed by page id. The words are atomic so the
/// concurrent write path can flip an *existing* bit through `&self`
/// ([`BitVec::set_shared`]); growth still requires `&mut self` and so
/// stays on the exclusive path, where every leaf page is first
/// registered.
#[derive(Debug, Default)]
struct BitVec {
    words: Vec<AtomicU64>,
}

impl BitVec {
    fn set(&mut self, i: u32, v: bool) {
        let (w, b) = ((i / 64) as usize, i % 64);
        if w >= self.words.len() {
            self.words.resize_with(w + 1, AtomicU64::default);
        }
        let word = self.words[w].get_mut();
        if v {
            *word |= 1 << b;
        } else {
            *word &= !(1 << b);
        }
    }

    /// Flip an already-allocated bit without `&mut`. Returns `false`
    /// (no-op) when the bit's word was never allocated — the caller must
    /// escalate rather than lose the update.
    fn set_shared(&self, i: u32, v: bool) -> bool {
        let (w, b) = ((i / 64) as usize, i % 64);
        let Some(word) = self.words.get(w) else {
            return false;
        };
        if v {
            word.fetch_or(1 << b, Ordering::Release);
        } else {
            word.fetch_and(!(1 << b), Ordering::Release);
        }
        true
    }

    fn get(&self, i: u32) -> bool {
        let (w, b) = ((i / 64) as usize, i % 64);
        self.words
            .get(w)
            .is_some_and(|word| word.load(Ordering::Acquire) & (1 << b) != 0)
    }

    fn size_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

/// The main-memory summary structure.
#[derive(Debug, Default)]
pub struct SummaryStructure {
    /// `levels[l - 1]` holds the entries of internal nodes at level `l`.
    levels: Vec<Vec<SummaryEntry>>,
    /// Direct access: page id → (level, index within the level's vec).
    pos: HashMap<PageId, (u16, usize)>,
    /// Bit vector: leaf is full.
    leaf_full: BitVec,
    /// Bit vector: page id is a live leaf (for maintenance checks).
    leaf_present: BitVec,
    /// Cached MBR of the root node, behind a seqlock so it can be read
    /// without any lock and republished through `&self` under the root
    /// leaf's exclusive granule. The paper's table covers internal nodes
    /// only; caching the root MBR additionally makes the O(1) root check
    /// of Algorithm 2 work even while the tree is a single leaf. The
    /// `Arc` lets `Bur` hand out the cell for lock-free snapshots that
    /// outlive the structure lock.
    root_mbr: Arc<RootMbrCell>,
}

impl SummaryStructure {
    /// Empty summary.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop all state (used when rebuilding from a tree scan). The root
    /// MBR cell is reset in place, not replaced, so lock-free snapshots
    /// handed out earlier keep observing the live value.
    pub fn clear(&mut self) {
        self.levels.clear();
        self.pos.clear();
        self.leaf_full = BitVec::default();
        self.leaf_present = BitVec::default();
        self.root_mbr.store(Rect::EMPTY);
    }

    // ---- direct access table maintenance --------------------------------

    /// Install or refresh the entry of internal node `pid`. Called by the
    /// tree whenever it writes an internal node, which covers both cases
    /// the paper names: "The MBR of an entry ... is updated when we
    /// propagate an MBR enlargement" and "When an internal node is split,
    /// a new entry will be inserted".
    pub fn upsert_internal(&mut self, pid: PageId, level: u16, mbr: Rect, children: Vec<PageId>) {
        debug_assert!(level >= 1);
        while self.levels.len() < level as usize {
            self.levels.push(Vec::new());
        }
        match self.pos.get(&pid) {
            Some(&(l, idx)) if l == level => {
                let e = &mut self.levels[l as usize - 1][idx];
                e.mbr = mbr;
                e.children = children;
            }
            Some(&(l, _)) => {
                // Level changed (root promotion patterns); reinstall.
                debug_assert_ne!(l, level);
                self.remove_internal(pid);
                self.upsert_internal(pid, level, mbr, children);
            }
            None => {
                let vec = &mut self.levels[level as usize - 1];
                vec.push(SummaryEntry { pid, mbr, children });
                self.pos.insert(pid, (level, vec.len() - 1));
            }
        }
    }

    /// Remove the entry of a deleted internal node.
    pub fn remove_internal(&mut self, pid: PageId) {
        if let Some((level, idx)) = self.pos.remove(&pid) {
            let vec = &mut self.levels[level as usize - 1];
            vec.swap_remove(idx);
            if idx < vec.len() {
                let moved = vec[idx].pid;
                self.pos.insert(moved, (level, idx));
            }
            while self.levels.last().is_some_and(Vec::is_empty) {
                self.levels.pop();
            }
        }
    }

    /// Look up the entry of an internal node.
    #[must_use]
    pub fn entry(&self, pid: PageId) -> Option<&SummaryEntry> {
        let &(level, idx) = self.pos.get(&pid)?;
        Some(&self.levels[level as usize - 1][idx])
    }

    /// Entries of one internal level (1 = parents of leaves).
    #[must_use]
    pub fn level_entries(&self, level: u16) -> &[SummaryEntry] {
        self.levels
            .get(level as usize - 1)
            .map_or(&[], Vec::as_slice)
    }

    /// Number of internal-node entries in the table.
    #[must_use]
    pub fn internal_count(&self) -> usize {
        self.pos.len()
    }

    /// Highest internal level present (0 when the tree is a single leaf).
    #[must_use]
    pub fn top_level(&self) -> u16 {
        self.levels.len() as u16
    }

    // ---- root MBR --------------------------------------------------------

    /// Record the root MBR (tree calls this when the root node changes).
    pub fn set_root_mbr(&mut self, mbr: Rect) {
        self.root_mbr.store(mbr);
    }

    /// Republish the root MBR through `&self` — the concurrent path's
    /// variant of [`SummaryStructure::set_root_mbr`], legal only under
    /// the root leaf's exclusive granule (which serializes writers).
    pub fn publish_root_mbr(&self, mbr: Rect) {
        self.root_mbr.store(mbr);
    }

    /// O(1) root-MBR check used by Algorithm 2's first step.
    #[must_use]
    pub fn root_mbr(&self) -> Rect {
        self.root_mbr.load()
    }

    /// Shared handle on the root-MBR seqlock, for snapshots that must
    /// not take the structure lock (single-op admission, metrics).
    #[must_use]
    pub fn root_mbr_cell(&self) -> Arc<RootMbrCell> {
        Arc::clone(&self.root_mbr)
    }

    // ---- leaf bit vector ---------------------------------------------------

    /// Register a leaf and its fullness bit.
    pub fn set_leaf(&mut self, pid: PageId, full: bool) {
        self.leaf_present.set(pid, true);
        self.leaf_full.set(pid, full);
    }

    /// Unregister a deleted leaf.
    pub fn remove_leaf(&mut self, pid: PageId) {
        self.leaf_present.set(pid, false);
        self.leaf_full.set(pid, false);
    }

    /// Flip the fullness bit of an *already registered* leaf through
    /// `&self` — the concurrent path's variant of
    /// [`SummaryStructure::set_leaf`], legal only under that leaf's
    /// exclusive granule. Returns `false` (and changes nothing) when the
    /// leaf was never registered; the caller must escalate.
    pub fn set_leaf_full_shared(&self, pid: PageId, full: bool) -> bool {
        if !self.leaf_present.get(pid) {
            return false;
        }
        self.leaf_full.set_shared(pid, full)
    }

    /// `true` when the leaf is known and marked full — consulted before a
    /// sibling shift "eliminating the need for additional disk accesses
    /// to find a suitable sibling".
    #[must_use]
    pub fn is_leaf_full(&self, pid: PageId) -> bool {
        self.leaf_full.get(pid)
    }

    /// `true` when `pid` is registered as a live leaf.
    #[must_use]
    pub fn has_leaf(&self, pid: PageId) -> bool {
        self.leaf_present.get(pid)
    }

    // ---- FindParent (Algorithm 3) ----------------------------------------

    /// Find the page id of the node's immediate parent by scanning the
    /// direct access table at `level` (the node's level + 1), exactly as
    /// Algorithm 3 matches "some child offset" against the node offset.
    #[must_use]
    pub fn find_parent_at(&self, node: PageId, level: u16) -> Option<PageId> {
        self.level_entries(level)
            .iter()
            .find(|e| e.children.contains(&node))
            .map(|e| e.pid)
    }

    /// Algorithm 3, FindParent: walk the ancestor chain of `leaf` upward
    /// and return the first ancestor whose MBR contains `new_location`,
    /// looking at most `max_ascent` levels above the leaf. When no
    /// ancestor within range contains the location, the highest ancestor
    /// inspected (the root when unrestricted) is returned — Algorithm 3's
    /// "return(root offset)" fallback.
    ///
    /// Returns `(page id, level, contained)`.
    #[must_use]
    pub fn find_parent(
        &self,
        leaf: PageId,
        new_location: Point,
        max_ascent: u16,
    ) -> Option<(PageId, u16, bool)> {
        let mut node = leaf;
        let mut best: Option<(PageId, u16, bool)> = None;
        let top = self.top_level();
        for level in 1..=top.min(max_ascent) {
            let parent = self.find_parent_at(node, level)?;
            let entry = self.entry(parent)?;
            best = Some((parent, level, entry.mbr.contains_point(&new_location)));
            if entry.mbr.contains_point(&new_location) {
                return best;
            }
            node = parent;
        }
        best
    }

    // ---- summary-assisted queries ------------------------------------------

    /// In-memory pruning for window queries: starting from the root entry
    /// and walking the table level by level ("looking for overlaps until
    /// the level above the leaf is reached"), return the page ids of the
    /// level-1 internal nodes whose MBR overlaps `window`. Only those —
    /// and then their overlapping leaves — need disk reads.
    ///
    /// Returns `None` when the table has no internal levels (single-leaf
    /// tree) so the caller can fall back to a plain descent.
    #[must_use]
    pub fn query_level1_candidates(&self, root: PageId, window: &Rect) -> Option<Vec<PageId>> {
        let top = self.top_level();
        if top == 0 {
            return None;
        }
        let root_entry = self.entry(root)?;
        if !root_entry.mbr.intersects(window) {
            return Some(Vec::new());
        }
        let mut frontier = vec![root];
        let (mut level, _) = *self.pos.get(&root)?;
        while level > 1 {
            let mut next = Vec::new();
            for pid in &frontier {
                let entry = self.entry(*pid)?;
                for child in &entry.children {
                    if let Some(ce) = self.entry(*child) {
                        if ce.mbr.intersects(window) {
                            next.push(*child);
                        }
                    }
                }
            }
            frontier = next;
            level -= 1;
        }
        Some(frontier)
    }

    // ---- space accounting (Section 3.2 size claims) --------------------------

    /// Approximate resident bytes of the direct access table.
    #[must_use]
    pub fn table_size_bytes(&self) -> usize {
        let mut bytes = 0;
        for level in &self.levels {
            for e in level {
                // pid + mbr + child vector payload.
                bytes += 4 + 16 + 4 * e.children.len();
            }
        }
        bytes
    }

    /// Approximate resident bytes of the leaf bit vectors.
    #[must_use]
    pub fn bitvec_size_bytes(&self) -> usize {
        self.leaf_full.size_bytes() + self.leaf_present.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(a: f32, b: f32, c: f32, d: f32) -> Rect {
        Rect::new(a, b, c, d)
    }

    /// Build the summary of a small 3-level tree:
    /// root (pid 100, level 2) -> {10, 11} (level 1) -> leaves {1,2} and {3,4}.
    fn sample() -> SummaryStructure {
        let mut s = SummaryStructure::new();
        s.upsert_internal(10, 1, r(0.0, 0.0, 0.5, 1.0), vec![1, 2]);
        s.upsert_internal(11, 1, r(0.5, 0.0, 1.0, 1.0), vec![3, 4]);
        s.upsert_internal(100, 2, r(0.0, 0.0, 1.0, 1.0), vec![10, 11]);
        s.set_root_mbr(r(0.0, 0.0, 1.0, 1.0));
        for leaf in [1, 2, 3, 4] {
            s.set_leaf(leaf, false);
        }
        s.set_leaf(2, true);
        s
    }

    #[test]
    fn table_maintenance() {
        let mut s = sample();
        assert_eq!(s.internal_count(), 3);
        assert_eq!(s.top_level(), 2);
        assert_eq!(s.entry(10).unwrap().children, vec![1, 2]);
        assert_eq!(s.level_entries(1).len(), 2);
        assert_eq!(s.level_entries(2).len(), 1);
        // MBR refresh.
        s.upsert_internal(10, 1, r(0.0, 0.0, 0.6, 1.0), vec![1, 2, 5]);
        assert_eq!(s.entry(10).unwrap().mbr, r(0.0, 0.0, 0.6, 1.0));
        assert_eq!(s.entry(10).unwrap().children.len(), 3);
        // Removal with swap fixup.
        s.remove_internal(10);
        assert!(s.entry(10).is_none());
        assert_eq!(s.entry(11).unwrap().pid, 11);
        assert_eq!(s.internal_count(), 2);
    }

    #[test]
    fn leaf_bits() {
        let mut s = sample();
        assert!(s.is_leaf_full(2));
        assert!(!s.is_leaf_full(1));
        assert!(s.has_leaf(3));
        s.set_leaf(1, true);
        assert!(s.is_leaf_full(1));
        s.remove_leaf(2);
        assert!(!s.has_leaf(2));
        assert!(!s.is_leaf_full(2));
        // Bit vector grows on demand.
        s.set_leaf(10_000, true);
        assert!(s.is_leaf_full(10_000));
        assert!(!s.is_leaf_full(9_999));
    }

    #[test]
    fn find_parent_chain() {
        let s = sample();
        assert_eq!(s.find_parent_at(1, 1), Some(10));
        assert_eq!(s.find_parent_at(3, 1), Some(11));
        assert_eq!(s.find_parent_at(10, 2), Some(100));
        assert_eq!(s.find_parent_at(99, 1), None);
        // Point in parent 10's MBR: found at one level of ascent.
        let got = s.find_parent(1, Point::new(0.4, 0.5), 3);
        assert_eq!(got, Some((10, 1, true)));
        // Point only in the root's MBR: two levels.
        let got = s.find_parent(1, Point::new(0.9, 0.5), 3);
        assert_eq!(got, Some((100, 2, true)));
        // Restricted ascent: stops at level 1, not contained.
        let got = s.find_parent(1, Point::new(0.9, 0.5), 1);
        assert_eq!(got, Some((10, 1, false)));
        // Point outside everything: root returned, contained = false.
        let got = s.find_parent(1, Point::new(5.0, 5.0), 3);
        assert_eq!(got, Some((100, 2, false)));
    }

    #[test]
    fn query_candidates() {
        let s = sample();
        // Window overlapping only the left half.
        let got = s
            .query_level1_candidates(100, &r(0.1, 0.1, 0.3, 0.3))
            .unwrap();
        assert_eq!(got, vec![10]);
        // Window overlapping both halves.
        let got = s
            .query_level1_candidates(100, &r(0.4, 0.4, 0.6, 0.6))
            .unwrap();
        assert_eq!(got, vec![10, 11]);
        // Window outside the root.
        let got = s
            .query_level1_candidates(100, &r(2.0, 2.0, 3.0, 3.0))
            .unwrap();
        assert!(got.is_empty());
        // Empty summary: no pruning possible.
        let empty = SummaryStructure::new();
        assert!(empty.query_level1_candidates(0, &Rect::UNIT).is_none());
    }

    #[test]
    fn size_accounting() {
        let s = sample();
        // 3 entries: 2 with 2 children each and 1 with 2 children.
        assert_eq!(s.table_size_bytes(), 3 * 20 + 6 * 4);
        assert!(s.bitvec_size_bytes() >= 16);
    }

    #[test]
    fn root_mbr_cache() {
        let mut s = SummaryStructure::new();
        assert!(s.root_mbr().is_empty());
        s.set_root_mbr(r(0.0, 0.0, 0.5, 0.5));
        assert_eq!(s.root_mbr(), r(0.0, 0.0, 0.5, 0.5));
    }

    #[test]
    fn shared_leaf_bit_flips() {
        let mut s = sample();
        assert!(s.set_leaf_full_shared(1, true));
        assert!(s.is_leaf_full(1));
        assert!(s.set_leaf_full_shared(2, false));
        assert!(!s.is_leaf_full(2));
        // Unregistered leaves refuse the shared flip.
        assert!(!s.set_leaf_full_shared(77, true));
        assert!(!s.is_leaf_full(77));
        // Clearing keeps refusing gracefully.
        s.clear();
        assert!(!s.set_leaf_full_shared(1, true));
    }

    #[test]
    fn root_mbr_seqlock_outlives_clear() {
        let mut s = SummaryStructure::new();
        let cell = s.root_mbr_cell();
        s.publish_root_mbr(r(0.1, 0.2, 0.3, 0.4));
        assert_eq!(cell.load(), r(0.1, 0.2, 0.3, 0.4));
        s.set_root_mbr(r(0.0, 0.0, 1.0, 1.0));
        assert_eq!(cell.load(), r(0.0, 0.0, 1.0, 1.0));
        // The cell is reset in place, not replaced, on rebuilds.
        s.clear();
        assert!(cell.load().is_empty());
    }

    #[test]
    fn root_mbr_seqlock_concurrent_readers() {
        let s = std::sync::Arc::new(SummaryStructure::new());
        s.publish_root_mbr(r(0.0, 0.0, 1.0, 1.0));
        let writer = {
            let s = std::sync::Arc::clone(&s);
            std::thread::spawn(move || {
                for i in 1..2_000u32 {
                    let v = i as f32;
                    s.publish_root_mbr(r(v, v, v + 1.0, v + 1.0));
                }
            })
        };
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let s = std::sync::Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..2_000 {
                        let got = s.root_mbr();
                        // Never a torn mix of two publishes: width and
                        // height are exactly 1 for every published rect.
                        assert_eq!(got.max_x - got.min_x, 1.0);
                        assert_eq!(got.max_y - got.min_y, 1.0);
                        assert_eq!(got.min_x, got.min_y);
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for rd in readers {
            rd.join().unwrap();
        }
    }
}
