//! The paper's main-memory summary structure (Section 3.2).
//!
//! Two components:
//!
//! 1. a **direct access table** over the *internal* nodes — per entry the
//!    node's MBR, its level and its child page ids, organized by level
//!    ("All the entries are contiguous, and are organized according to the
//!    levels of the internal nodes they correspond to"), and
//! 2. a **bit vector** over the leaves marking which are full, so the
//!    sibling-shift step of GBU never reads a sibling just to discover it
//!    has no room.
//!
//! The table is maintained on every internal-node write (MBR change or
//! split) and costs no disk I/O to consult. It serves three purposes in
//! GBU: the O(1) root-MBR check, `FindParent` (Algorithm 3) without parent
//! pointers, and in-memory pruning of internal levels during window
//! queries.

use bur_geom::{Point, Rect};
use bur_storage::PageId;
use std::collections::HashMap;

/// One direct-access-table entry: a summary of one internal node.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryEntry {
    /// Page id of the internal node.
    pub pid: PageId,
    /// MBR bounding all entries of the node ("The single MBR captured in
    /// an entry ... bounds all MBRs stored in the entries of the
    /// corresponding R-tree index node").
    pub mbr: Rect,
    /// Page ids of the node's children.
    pub children: Vec<PageId>,
}

/// Growable bit vector keyed by page id.
#[derive(Debug, Default, Clone)]
struct BitVec {
    words: Vec<u64>,
}

impl BitVec {
    fn set(&mut self, i: u32, v: bool) {
        let (w, b) = ((i / 64) as usize, i % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        if v {
            self.words[w] |= 1 << b;
        } else {
            self.words[w] &= !(1 << b);
        }
    }

    fn get(&self, i: u32) -> bool {
        let (w, b) = ((i / 64) as usize, i % 64);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    fn size_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

/// The main-memory summary structure.
#[derive(Debug, Default)]
pub struct SummaryStructure {
    /// `levels[l - 1]` holds the entries of internal nodes at level `l`.
    levels: Vec<Vec<SummaryEntry>>,
    /// Direct access: page id → (level, index within the level's vec).
    pos: HashMap<PageId, (u16, usize)>,
    /// Bit vector: leaf is full.
    leaf_full: BitVec,
    /// Bit vector: page id is a live leaf (for maintenance checks).
    leaf_present: BitVec,
    /// Cached MBR of the root node. The paper's table covers internal
    /// nodes only; caching the root MBR additionally makes the O(1) root
    /// check of Algorithm 2 work even while the tree is a single leaf.
    root_mbr: Rect,
}

impl SummaryStructure {
    /// Empty summary.
    #[must_use]
    pub fn new() -> Self {
        Self {
            root_mbr: Rect::EMPTY,
            ..Self::default()
        }
    }

    /// Drop all state (used when rebuilding from a tree scan).
    pub fn clear(&mut self) {
        *self = Self::new();
    }

    // ---- direct access table maintenance --------------------------------

    /// Install or refresh the entry of internal node `pid`. Called by the
    /// tree whenever it writes an internal node, which covers both cases
    /// the paper names: "The MBR of an entry ... is updated when we
    /// propagate an MBR enlargement" and "When an internal node is split,
    /// a new entry will be inserted".
    pub fn upsert_internal(&mut self, pid: PageId, level: u16, mbr: Rect, children: Vec<PageId>) {
        debug_assert!(level >= 1);
        while self.levels.len() < level as usize {
            self.levels.push(Vec::new());
        }
        match self.pos.get(&pid) {
            Some(&(l, idx)) if l == level => {
                let e = &mut self.levels[l as usize - 1][idx];
                e.mbr = mbr;
                e.children = children;
            }
            Some(&(l, _)) => {
                // Level changed (root promotion patterns); reinstall.
                debug_assert_ne!(l, level);
                self.remove_internal(pid);
                self.upsert_internal(pid, level, mbr, children);
            }
            None => {
                let vec = &mut self.levels[level as usize - 1];
                vec.push(SummaryEntry { pid, mbr, children });
                self.pos.insert(pid, (level, vec.len() - 1));
            }
        }
    }

    /// Remove the entry of a deleted internal node.
    pub fn remove_internal(&mut self, pid: PageId) {
        if let Some((level, idx)) = self.pos.remove(&pid) {
            let vec = &mut self.levels[level as usize - 1];
            vec.swap_remove(idx);
            if idx < vec.len() {
                let moved = vec[idx].pid;
                self.pos.insert(moved, (level, idx));
            }
            while self.levels.last().is_some_and(Vec::is_empty) {
                self.levels.pop();
            }
        }
    }

    /// Look up the entry of an internal node.
    #[must_use]
    pub fn entry(&self, pid: PageId) -> Option<&SummaryEntry> {
        let &(level, idx) = self.pos.get(&pid)?;
        Some(&self.levels[level as usize - 1][idx])
    }

    /// Entries of one internal level (1 = parents of leaves).
    #[must_use]
    pub fn level_entries(&self, level: u16) -> &[SummaryEntry] {
        self.levels
            .get(level as usize - 1)
            .map_or(&[], Vec::as_slice)
    }

    /// Number of internal-node entries in the table.
    #[must_use]
    pub fn internal_count(&self) -> usize {
        self.pos.len()
    }

    /// Highest internal level present (0 when the tree is a single leaf).
    #[must_use]
    pub fn top_level(&self) -> u16 {
        self.levels.len() as u16
    }

    // ---- root MBR --------------------------------------------------------

    /// Record the root MBR (tree calls this when the root node changes).
    pub fn set_root_mbr(&mut self, mbr: Rect) {
        self.root_mbr = mbr;
    }

    /// O(1) root-MBR check used by Algorithm 2's first step.
    #[must_use]
    pub fn root_mbr(&self) -> Rect {
        self.root_mbr
    }

    // ---- leaf bit vector ---------------------------------------------------

    /// Register a leaf and its fullness bit.
    pub fn set_leaf(&mut self, pid: PageId, full: bool) {
        self.leaf_present.set(pid, true);
        self.leaf_full.set(pid, full);
    }

    /// Unregister a deleted leaf.
    pub fn remove_leaf(&mut self, pid: PageId) {
        self.leaf_present.set(pid, false);
        self.leaf_full.set(pid, false);
    }

    /// `true` when the leaf is known and marked full — consulted before a
    /// sibling shift "eliminating the need for additional disk accesses
    /// to find a suitable sibling".
    #[must_use]
    pub fn is_leaf_full(&self, pid: PageId) -> bool {
        self.leaf_full.get(pid)
    }

    /// `true` when `pid` is registered as a live leaf.
    #[must_use]
    pub fn has_leaf(&self, pid: PageId) -> bool {
        self.leaf_present.get(pid)
    }

    // ---- FindParent (Algorithm 3) ----------------------------------------

    /// Find the page id of the node's immediate parent by scanning the
    /// direct access table at `level` (the node's level + 1), exactly as
    /// Algorithm 3 matches "some child offset" against the node offset.
    #[must_use]
    pub fn find_parent_at(&self, node: PageId, level: u16) -> Option<PageId> {
        self.level_entries(level)
            .iter()
            .find(|e| e.children.contains(&node))
            .map(|e| e.pid)
    }

    /// Algorithm 3, FindParent: walk the ancestor chain of `leaf` upward
    /// and return the first ancestor whose MBR contains `new_location`,
    /// looking at most `max_ascent` levels above the leaf. When no
    /// ancestor within range contains the location, the highest ancestor
    /// inspected (the root when unrestricted) is returned — Algorithm 3's
    /// "return(root offset)" fallback.
    ///
    /// Returns `(page id, level, contained)`.
    #[must_use]
    pub fn find_parent(
        &self,
        leaf: PageId,
        new_location: Point,
        max_ascent: u16,
    ) -> Option<(PageId, u16, bool)> {
        let mut node = leaf;
        let mut best: Option<(PageId, u16, bool)> = None;
        let top = self.top_level();
        for level in 1..=top.min(max_ascent) {
            let parent = self.find_parent_at(node, level)?;
            let entry = self.entry(parent)?;
            best = Some((parent, level, entry.mbr.contains_point(&new_location)));
            if entry.mbr.contains_point(&new_location) {
                return best;
            }
            node = parent;
        }
        best
    }

    // ---- summary-assisted queries ------------------------------------------

    /// In-memory pruning for window queries: starting from the root entry
    /// and walking the table level by level ("looking for overlaps until
    /// the level above the leaf is reached"), return the page ids of the
    /// level-1 internal nodes whose MBR overlaps `window`. Only those —
    /// and then their overlapping leaves — need disk reads.
    ///
    /// Returns `None` when the table has no internal levels (single-leaf
    /// tree) so the caller can fall back to a plain descent.
    #[must_use]
    pub fn query_level1_candidates(&self, root: PageId, window: &Rect) -> Option<Vec<PageId>> {
        let top = self.top_level();
        if top == 0 {
            return None;
        }
        let root_entry = self.entry(root)?;
        if !root_entry.mbr.intersects(window) {
            return Some(Vec::new());
        }
        let mut frontier = vec![root];
        let (mut level, _) = *self.pos.get(&root)?;
        while level > 1 {
            let mut next = Vec::new();
            for pid in &frontier {
                let entry = self.entry(*pid)?;
                for child in &entry.children {
                    if let Some(ce) = self.entry(*child) {
                        if ce.mbr.intersects(window) {
                            next.push(*child);
                        }
                    }
                }
            }
            frontier = next;
            level -= 1;
        }
        Some(frontier)
    }

    // ---- space accounting (Section 3.2 size claims) --------------------------

    /// Approximate resident bytes of the direct access table.
    #[must_use]
    pub fn table_size_bytes(&self) -> usize {
        let mut bytes = 0;
        for level in &self.levels {
            for e in level {
                // pid + mbr + child vector payload.
                bytes += 4 + 16 + 4 * e.children.len();
            }
        }
        bytes
    }

    /// Approximate resident bytes of the leaf bit vectors.
    #[must_use]
    pub fn bitvec_size_bytes(&self) -> usize {
        self.leaf_full.size_bytes() + self.leaf_present.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(a: f32, b: f32, c: f32, d: f32) -> Rect {
        Rect::new(a, b, c, d)
    }

    /// Build the summary of a small 3-level tree:
    /// root (pid 100, level 2) -> {10, 11} (level 1) -> leaves {1,2} and {3,4}.
    fn sample() -> SummaryStructure {
        let mut s = SummaryStructure::new();
        s.upsert_internal(10, 1, r(0.0, 0.0, 0.5, 1.0), vec![1, 2]);
        s.upsert_internal(11, 1, r(0.5, 0.0, 1.0, 1.0), vec![3, 4]);
        s.upsert_internal(100, 2, r(0.0, 0.0, 1.0, 1.0), vec![10, 11]);
        s.set_root_mbr(r(0.0, 0.0, 1.0, 1.0));
        for leaf in [1, 2, 3, 4] {
            s.set_leaf(leaf, false);
        }
        s.set_leaf(2, true);
        s
    }

    #[test]
    fn table_maintenance() {
        let mut s = sample();
        assert_eq!(s.internal_count(), 3);
        assert_eq!(s.top_level(), 2);
        assert_eq!(s.entry(10).unwrap().children, vec![1, 2]);
        assert_eq!(s.level_entries(1).len(), 2);
        assert_eq!(s.level_entries(2).len(), 1);
        // MBR refresh.
        s.upsert_internal(10, 1, r(0.0, 0.0, 0.6, 1.0), vec![1, 2, 5]);
        assert_eq!(s.entry(10).unwrap().mbr, r(0.0, 0.0, 0.6, 1.0));
        assert_eq!(s.entry(10).unwrap().children.len(), 3);
        // Removal with swap fixup.
        s.remove_internal(10);
        assert!(s.entry(10).is_none());
        assert_eq!(s.entry(11).unwrap().pid, 11);
        assert_eq!(s.internal_count(), 2);
    }

    #[test]
    fn leaf_bits() {
        let mut s = sample();
        assert!(s.is_leaf_full(2));
        assert!(!s.is_leaf_full(1));
        assert!(s.has_leaf(3));
        s.set_leaf(1, true);
        assert!(s.is_leaf_full(1));
        s.remove_leaf(2);
        assert!(!s.has_leaf(2));
        assert!(!s.is_leaf_full(2));
        // Bit vector grows on demand.
        s.set_leaf(10_000, true);
        assert!(s.is_leaf_full(10_000));
        assert!(!s.is_leaf_full(9_999));
    }

    #[test]
    fn find_parent_chain() {
        let s = sample();
        assert_eq!(s.find_parent_at(1, 1), Some(10));
        assert_eq!(s.find_parent_at(3, 1), Some(11));
        assert_eq!(s.find_parent_at(10, 2), Some(100));
        assert_eq!(s.find_parent_at(99, 1), None);
        // Point in parent 10's MBR: found at one level of ascent.
        let got = s.find_parent(1, Point::new(0.4, 0.5), 3);
        assert_eq!(got, Some((10, 1, true)));
        // Point only in the root's MBR: two levels.
        let got = s.find_parent(1, Point::new(0.9, 0.5), 3);
        assert_eq!(got, Some((100, 2, true)));
        // Restricted ascent: stops at level 1, not contained.
        let got = s.find_parent(1, Point::new(0.9, 0.5), 1);
        assert_eq!(got, Some((10, 1, false)));
        // Point outside everything: root returned, contained = false.
        let got = s.find_parent(1, Point::new(5.0, 5.0), 3);
        assert_eq!(got, Some((100, 2, false)));
    }

    #[test]
    fn query_candidates() {
        let s = sample();
        // Window overlapping only the left half.
        let got = s
            .query_level1_candidates(100, &r(0.1, 0.1, 0.3, 0.3))
            .unwrap();
        assert_eq!(got, vec![10]);
        // Window overlapping both halves.
        let got = s
            .query_level1_candidates(100, &r(0.4, 0.4, 0.6, 0.6))
            .unwrap();
        assert_eq!(got, vec![10, 11]);
        // Window outside the root.
        let got = s
            .query_level1_candidates(100, &r(2.0, 2.0, 3.0, 3.0))
            .unwrap();
        assert!(got.is_empty());
        // Empty summary: no pruning possible.
        let empty = SummaryStructure::new();
        assert!(empty.query_level1_candidates(0, &Rect::UNIT).is_none());
    }

    #[test]
    fn size_accounting() {
        let s = sample();
        // 3 entries: 2 with 2 children each and 1 with 2 children.
        assert_eq!(s.table_size_bytes(), 3 * 20 + 6 * 4);
        assert!(s.bitvec_size_bytes() >= 16);
    }

    #[test]
    fn root_mbr_cache() {
        let mut s = SummaryStructure::new();
        assert!(s.root_mbr().is_empty());
        s.set_root_mbr(r(0.0, 0.0, 0.5, 0.5));
        assert_eq!(s.root_mbr(), r(0.0, 0.0, 0.5, 0.5));
    }
}
