//! The traditional top-down update (the paper's TD baseline).
//!
//! "A traditional R-tree update first carries out a top-down search for
//! the leaf node with the index entry of the object, deletes the entry,
//! and then executes another and separate top-down search for the optimal
//! location in which to insert the entry for the new object." Deletion may
//! trigger CondenseTree reinsertion; insertion may trigger node splits —
//! both are what make TD deteriorate under fast movement (Figure 5(g)).

use crate::error::{CoreError, CoreResult};
use crate::node::{LeafEntry, ObjectId};
use crate::stats::UpdateOutcome;
use crate::tree::RTree;
use bur_geom::Point;

/// Delete `oid` at `old` top-down, then insert it at `new` top-down.
pub(crate) fn update(
    tree: &mut RTree,
    oid: ObjectId,
    old: Point,
    new: Point,
) -> CoreResult<UpdateOutcome> {
    if !tree.delete_object(oid, old)? {
        return Err(CoreError::ObjectNotFound(oid));
    }
    tree.insert_object(LeafEntry::point(oid, new))?;
    Ok(UpdateOutcome::TopDown)
}
