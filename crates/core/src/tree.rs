//! The disk-resident R-tree engine.
//!
//! This module implements Guttman's R-tree (insert with ChooseLeaf /
//! AdjustTree and quadratic split, delete with FindLeaf / CondenseTree and
//! forced reinsertion of orphaned entries, window queries) on top of the
//! buffer pool, together with the maintenance hooks the bottom-up
//! strategies rely on:
//!
//! * the **summary structure** is refreshed on every internal-node write
//!   and every leaf write (fullness bit),
//! * the **object-id hash index** is kept pointing at the current leaf of
//!   every object whenever entries move between leaves,
//! * **leaf parent pointers** (LBU mode) are rewritten when leaves are
//!   re-homed by splits or reinsertion — the maintenance cost the paper
//!   attributes to LBU.
//!
//! One representation decision matters for the bottom-up algorithms: a
//! leaf's *official* MBR is the rectangle stored in its parent's entry.
//! The leaf page itself only stores object rectangles, so the official
//! MBR may be larger than their tight union after an ε-extension. All
//! structural invariants therefore require *containment* (parent entry
//! rect ⊇ child content), not equality; deletes re-tighten rectangles as
//! they adjust the path.

use crate::config::{IndexOptions, InsertPolicy, WalOptions};
use crate::error::{CoreError, CoreResult};
use crate::meta::{self, MetaSnapshot};
use crate::node::{
    internal_capacity, leaf_capacity, InternalEntry, LeafEntry, Node, NodeEntries, ObjectId,
};
use crate::split;
use crate::stats::OpStats;
use crate::summary::SummaryStructure;
use bur_geom::{Point, Rect};
use bur_hashindex::{HashIndexConfig, LinearHashIndex};
use bur_storage::{BufferPool, Lsn, PageId, INVALID_PAGE};
use bur_wal::Wal;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A live write-ahead log attached to the tree ([`crate::Durability::Wal`]).
pub(crate) struct WalHandle {
    /// The log itself.
    pub(crate) wal: Wal,
    /// Sync cadence, checkpoint interval, delta policy, batch size.
    pub(crate) opts: WalOptions,
    /// Committed operations since the last checkpoint (drives the
    /// cadence). Atomic because concurrent leaf-local batches bump it
    /// through a shared reference ([`RTree::wal_commit_pages`]).
    pub(crate) commits_since_checkpoint: AtomicU64,
    /// Operations finished but not yet covered by a commit record
    /// (commit batching; flushed once `opts.batch_ops` accumulate).
    pub(crate) pending_ops: u64,
    /// `true` while a [`crate::Batch`] is being applied: per-operation
    /// commits only accumulate, and the batch end flushes them as one
    /// group commit record regardless of `opts.batch_ops`.
    pub(crate) in_batch: bool,
    /// Serializes concurrent group commits: a batch's page images and
    /// its commit record must land contiguously in the log, so another
    /// batch's record cannot slip between a page image and the record
    /// that covers it (see [`RTree::wal_commit_pages`]).
    pub(crate) commit_lock: Mutex<()>,
}

impl WalHandle {
    /// Wrap a log with fresh bookkeeping (no pending ops, cadence at 0).
    pub(crate) fn new(wal: Wal, opts: WalOptions) -> Self {
        Self {
            wal,
            opts,
            commits_since_checkpoint: AtomicU64::new(0),
            pending_ops: 0,
            in_batch: false,
            commit_lock: Mutex::new(()),
        }
    }
}

/// An entry being inserted: either an object (into a leaf) or a whole
/// subtree (an internal entry re-inserted by CondenseTree or carried by a
/// GBU ascent insert).
#[derive(Debug, Clone, Copy)]
pub(crate) enum AnyEntry {
    /// Object entry; target node level 0.
    Leaf(LeafEntry),
    /// Subtree entry whose child node sits at `child_level`; target node
    /// level `child_level + 1`.
    Node(InternalEntry, u16),
}

impl AnyEntry {
    fn rect(&self) -> Rect {
        match self {
            AnyEntry::Leaf(e) => e.rect,
            AnyEntry::Node(e, _) => e.rect,
        }
    }

    fn target_level(&self) -> u16 {
        match self {
            AnyEntry::Leaf(_) => 0,
            AnyEntry::Node(_, child_level) => child_level + 1,
        }
    }
}

/// The R-tree plus its auxiliary structures.
pub(crate) struct RTree {
    pub(crate) pool: Arc<BufferPool>,
    pub(crate) opts: IndexOptions,
    pub(crate) root: PageId,
    /// Number of levels (1 = the root is a leaf).
    pub(crate) height: u16,
    /// Number of indexed objects. Atomic because concurrent batches
    /// carrying inserts/deletes apply their delta through a shared
    /// reference at commit time ([`RTree::wal_commit_pages`]); every
    /// other mutation happens under `&mut self`.
    pub(crate) len: AtomicU64,
    /// Pages freed by CondenseTree, reused before fresh allocation.
    pub(crate) free_pages: Vec<PageId>,
    /// GBU's main-memory summary structure.
    pub(crate) summary: Option<SummaryStructure>,
    /// Secondary object-id index (LBU + GBU).
    pub(crate) hash: Option<LinearHashIndex>,
    /// Operation counters.
    pub(crate) stats: OpStats,
    /// Entries evicted by R* forced reinsertion, re-inserted from the
    /// root when the outermost insert finishes. Closest-to-center entries
    /// sit at the top of the stack ("close reinsert").
    pub(crate) pending_reinserts: Vec<AnyEntry>,
    /// Bitmask of levels already treated by forced reinsertion during the
    /// current outermost insert (R* OverflowTreatment fires once per
    /// level per insertion; later overflows at that level split).
    pub(crate) reinsert_armed: u32,
    /// Reentrancy guard: `true` while an insert operation is running, so
    /// nested inserts (reinsert drains) do not reset the armed mask.
    pub(crate) insert_active: bool,
    /// Write-ahead log, when the index is durable.
    pub(crate) wal: Option<WalHandle>,
    /// Pages owned by the on-disk metadata continuation chain (plus
    /// spares); recycled by every persist/checkpoint instead of leaking.
    pub(crate) meta_chain_pages: Vec<PageId>,
}

impl RTree {
    /// Create an empty tree (root = empty leaf) over `pool`.
    pub(crate) fn create(pool: Arc<BufferPool>, opts: IndexOptions) -> CoreResult<Self> {
        opts.validate()?;
        let hash = if opts.strategy.needs_hash_index() {
            Some(LinearHashIndex::create(
                pool.clone(),
                HashIndexConfig::default(),
            )?)
        } else {
            None
        };
        let summary = opts.strategy.needs_summary().then(SummaryStructure::new);
        let (root, guard) = pool.new_page()?;
        Node::new_leaf().encode(&mut guard.write());
        drop(guard);
        let mut tree = Self {
            pool,
            opts,
            root,
            height: 1,
            len: AtomicU64::new(0),
            free_pages: Vec::new(),
            summary,
            hash,
            stats: OpStats::default(),
            pending_reinserts: Vec::new(),
            reinsert_armed: 0,
            insert_active: false,
            wal: None,
            meta_chain_pages: Vec::new(),
        };
        if let Some(s) = &mut tree.summary {
            s.set_leaf(root, false);
            s.set_root_mbr(Rect::EMPTY);
        }
        Ok(tree)
    }

    // ---- capacities -------------------------------------------------------

    pub(crate) fn leaf_cap(&self) -> usize {
        leaf_capacity(self.opts.page_size)
    }

    pub(crate) fn internal_cap(&self) -> usize {
        internal_capacity(self.opts.page_size)
    }

    pub(crate) fn min_fill_leaf(&self) -> usize {
        ((self.leaf_cap() as f32 * self.opts.min_fill) as usize).max(1)
    }

    pub(crate) fn min_fill_internal(&self) -> usize {
        ((self.internal_cap() as f32 * self.opts.min_fill) as usize).max(1)
    }

    fn parent_pointers(&self) -> bool {
        self.opts.strategy.needs_parent_pointers()
    }

    /// Root node level.
    pub(crate) fn root_level(&self) -> u16 {
        self.height - 1
    }

    // ---- node I/O ----------------------------------------------------------

    /// Read and decode the node on `pid`.
    pub(crate) fn read_node(&self, pid: PageId) -> CoreResult<Node> {
        let guard = self.pool.fetch(pid)?;
        let data = guard.read();
        Node::decode(pid, &data)
    }

    /// Encode and write `node` to `pid`, refreshing the summary hooks.
    pub(crate) fn write_node(&mut self, pid: PageId, node: &Node) -> CoreResult<()> {
        let guard = self.pool.fetch_for_overwrite(pid)?;
        node.encode(&mut guard.write());
        drop(guard);
        if let Some(s) = &mut self.summary {
            if node.is_leaf() {
                let full = node.count() >= leaf_capacity(self.opts.page_size);
                s.set_leaf(pid, full);
            } else {
                let children = node.internal_entries().iter().map(|e| e.child).collect();
                s.upsert_internal(pid, node.level, node.mbr(), children);
            }
            if pid == self.root {
                s.set_root_mbr(node.mbr());
            }
        }
        Ok(())
    }

    fn alloc_page(&mut self) -> CoreResult<PageId> {
        if let Some(pid) = self.free_pages.pop() {
            return Ok(pid);
        }
        let (pid, guard) = self.pool.new_page()?;
        drop(guard);
        Ok(pid)
    }

    fn free_page(&mut self, pid: PageId, was_leaf: bool) {
        self.free_pages.push(pid);
        if let Some(s) = &mut self.summary {
            if was_leaf {
                s.remove_leaf(pid);
            } else {
                s.remove_internal(pid);
            }
        }
    }

    /// Rewrite only the parent pointer of a node (LBU maintenance; one
    /// read + one write per re-homed child).
    fn set_parent_pointer(&mut self, pid: PageId, parent: PageId) -> CoreResult<()> {
        let mut node = self.read_node(pid)?;
        if node.parent != parent {
            node.parent = parent;
            self.write_node(pid, &node)?;
        }
        Ok(())
    }

    /// Update the hash index after `oid` moved to `leaf`.
    pub(crate) fn hash_place(&mut self, oid: ObjectId, leaf: PageId) -> CoreResult<()> {
        if let Some(h) = &self.hash {
            h.insert(oid, leaf)?;
        }
        Ok(())
    }

    fn hash_remove(&mut self, oid: ObjectId) -> CoreResult<()> {
        if let Some(h) = &self.hash {
            h.remove(oid)?;
        }
        Ok(())
    }

    // ---- write-ahead logging -------------------------------------------------

    /// Current metadata snapshot; `hash_head` is [`INVALID_PAGE`] unless
    /// the hash directory was just persisted.
    pub(crate) fn meta_snapshot(&self, hash_head: PageId) -> MetaSnapshot {
        MetaSnapshot {
            page_size: self.opts.page_size,
            root: self.root,
            height: self.height,
            len: self.len.load(Ordering::Relaxed),
            hash_head,
            free_pages: self.free_pages.clone(),
            wal_anchor: self.wal.as_ref().map_or(INVALID_PAGE, |h| h.wal.anchor()),
        }
    }

    /// Note the operation that just finished for the write-ahead log and
    /// commit it — or, with commit batching ([`WalOptions::batch_ops`] >
    /// 1), defer until a batch has accumulated. No-op without a WAL.
    pub(crate) fn wal_commit(&mut self) -> CoreResult<()> {
        let Some(handle) = self.wal.as_mut() else {
            return Ok(());
        };
        handle.pending_ops += 1;
        if handle.in_batch || handle.pending_ops < u64::from(handle.opts.batch_ops.max(1)) {
            return Ok(());
        }
        self.wal_flush_commit()
    }

    /// Enter batch mode: subsequent operations accumulate in the pending
    /// commit instead of flushing on the `batch_ops` cadence. Must be
    /// paired with [`RTree::wal_end_batch`]. No-op without a WAL.
    pub(crate) fn wal_begin_batch(&mut self) {
        if let Some(handle) = self.wal.as_mut() {
            handle.in_batch = true;
        }
    }

    /// Leave batch mode and flush everything that accumulated — the
    /// batch's operations plus any per-op commits that were already
    /// pending — as **one** group commit record. Called on the error
    /// path too, so a half-applied batch is still covered by a commit
    /// record (the in-memory tree and the log never diverge).
    pub(crate) fn wal_end_batch(&mut self) -> CoreResult<()> {
        if let Some(handle) = self.wal.as_mut() {
            handle.in_batch = false;
        }
        self.wal_flush_commit()
    }

    /// Flush every pending operation as one group commit: append an
    /// image or delta of every page touched since the last commit plus a
    /// single commit record carrying the metadata snapshot, apply the
    /// sync policy, and checkpoint when the cadence says so. No-op when
    /// nothing is pending.
    pub(crate) fn wal_flush_commit(&mut self) -> CoreResult<()> {
        let Some(handle) = self.wal.as_ref() else {
            return Ok(());
        };
        if handle.pending_ops == 0 {
            return Ok(());
        }
        let touched = self.pool.touched_pages();
        for pid in touched {
            // The log's delta encoder picks a byte-range diff against the
            // page's previous image in this generation, or a full image
            // at anchors and first touches. The page bytes are borrowed
            // straight from the frame (read-latched for the append) —
            // no per-page copy on the commit path.
            let guard = self.pool.fetch(pid)?;
            let lsn = handle.wal.append_page(pid, &guard.read())?;
            drop(guard);
            self.pool.note_page_logged(pid, lsn);
        }
        let meta = self.meta_snapshot(INVALID_PAGE).encode();
        let handle = self.wal.as_mut().expect("checked above");
        let (_lsn, durable) = handle.wal.commit(meta)?;
        if durable {
            self.pool.set_durable_lsn(handle.wal.durable_lsn());
        }
        handle
            .commits_since_checkpoint
            .fetch_add(handle.pending_ops, Ordering::Relaxed);
        handle.pending_ops = 0;
        if self.checkpoint_due() {
            self.wal_checkpoint()?;
        }
        Ok(())
    }

    /// Group-commit one concurrently applied batch: append the batch's
    /// own page set (nothing else) plus a single commit record carrying
    /// the metadata snapshot. Returns the record's LSN (`None` without a
    /// WAL). Never checkpoints — the caller defers that to an exclusive
    /// section via [`RTree::checkpoint_due`].
    ///
    /// Unlike [`RTree::wal_flush_commit`] this takes `&self`, so batches
    /// on disjoint leaf granules commit while others are still applying.
    /// `commit_lock` keeps each batch's images and its record contiguous
    /// in the log. Correctness leans on two invariants the shared write
    /// phase upholds while any concurrent batch is in flight:
    ///
    /// * no operation changes `root`, `height` or the free list, and the
    ///   object count only moves by each batch's `len_delta`, applied
    ///   here under `commit_lock` *before* the snapshot — so record K's
    ///   `len` covers exactly the batches whose records precede it; and
    /// * no single-op commits are pending (`pending_ops == 0`), so every
    ///   WAL-touched page outside `pages` belongs to another in-flight
    ///   batch, which logs it under its own record (until then the
    ///   pool's no-steal gate keeps it off the disk).
    ///
    /// A shared parent page may carry another in-flight batch's official
    /// -rect enlargement when it is imaged here. That is benign slack:
    /// enlargements are monotone and bounded by the parent node MBR, and
    /// the other batch's leaf write (the actual object move) is gated
    /// until its own commit record lands ("grow before move").
    pub(crate) fn wal_commit_pages(
        &self,
        ops: u64,
        pages: &[PageId],
        len_delta: i64,
    ) -> CoreResult<Option<Lsn>> {
        let Some(handle) = self.wal.as_ref() else {
            self.apply_len_delta(len_delta);
            return Ok(None);
        };
        let _serial = handle.commit_lock.lock();
        self.apply_len_delta(len_delta);
        for &pid in pages {
            let guard = self.pool.fetch(pid)?;
            let lsn = handle.wal.append_page(pid, &guard.read())?;
            drop(guard);
            self.pool.note_page_logged(pid, lsn);
        }
        let meta = self.meta_snapshot(INVALID_PAGE).encode();
        let (lsn, durable) = handle.wal.commit(meta)?;
        if durable {
            self.pool.set_durable_lsn(handle.wal.durable_lsn());
        }
        handle
            .commits_since_checkpoint
            .fetch_add(ops, Ordering::Relaxed);
        Ok(Some(lsn))
    }

    /// Current object count.
    pub(crate) fn len(&self) -> u64 {
        self.len.load(Ordering::Relaxed)
    }

    /// Shift the object count by a concurrent batch's net insert/delete
    /// delta (called under `commit_lock` on durable indexes, so records
    /// observe a consistent count).
    pub(crate) fn apply_len_delta(&self, delta: i64) {
        match delta {
            0 => {}
            d if d > 0 => {
                self.len.fetch_add(d as u64, Ordering::Relaxed);
            }
            d => {
                self.len.fetch_sub(d.unsigned_abs(), Ordering::Relaxed);
            }
        }
    }

    /// `true` when the checkpoint cadence has been reached. Readable
    /// without exclusivity; callers on the shared path re-check under an
    /// exclusive lock before actually checkpointing.
    pub(crate) fn checkpoint_due(&self) -> bool {
        self.wal.as_ref().is_some_and(|h| {
            h.commits_since_checkpoint.load(Ordering::Relaxed) >= h.opts.checkpoint_every
        })
    }

    /// Fuzzy checkpoint: make the log durable, persist the hash
    /// directory and metadata chain (recycling the superseded chains'
    /// pages), flush every frame (the disk becomes a complete base
    /// image), then rewind the log onto its own pages. Any operations
    /// still pending in a commit batch are absorbed: the checkpoint
    /// itself is their recovery point. No-op without a WAL.
    pub(crate) fn wal_checkpoint(&mut self) -> CoreResult<()> {
        if self.wal.is_none() {
            return Ok(());
        }
        {
            let handle = self.wal.as_mut().expect("checked above");
            // Pending batched ops need no commit record: the full flush
            // below lands their pages in the base image.
            handle.pending_ops = 0;
            handle.wal.sync()?;
            self.pool.set_durable_lsn(handle.wal.durable_lsn());
        }
        let hash_head = match &self.hash {
            Some(h) => h.persist()?,
            None => INVALID_PAGE,
        };
        let payload = self.meta_snapshot(hash_head).encode();
        meta::write_meta_chain(&self.pool, &payload, &mut self.meta_chain_pages)?;
        // The metadata/hash-directory writes above are part of the new
        // base image, not of any commit: drop their gate state and flush.
        self.pool.wal_checkpoint_reset();
        self.pool.flush_all()?;
        let handle = self.wal.as_mut().expect("checked above");
        handle.wal.checkpoint_rewind(payload)?;
        handle.commits_since_checkpoint.store(0, Ordering::Relaxed);
        self.pool.set_durable_lsn(handle.wal.durable_lsn());
        Ok(())
    }

    // ---- insertion ----------------------------------------------------------

    /// Insert an object from the root (Guttman Insert).
    pub(crate) fn insert_object(&mut self, entry: LeafEntry) -> CoreResult<()> {
        self.insert_from(self.root, &[], AnyEntry::Leaf(entry))
    }

    /// Insert `entry` into the subtree rooted at `start`.
    ///
    /// `chain_above` lists `start`'s ancestors bottom-up (immediate parent
    /// first, root last); it is empty when `start` is the root. The chain
    /// is only touched when a split or an MBR change must propagate above
    /// `start` — the case GBU's ascent avoids by picking an ancestor that
    /// already contains the new location.
    ///
    /// When the insert policy is R*, an overflow on the way down may queue
    /// evicted entries instead of splitting (forced reinsertion); the
    /// outermost call drains that queue by re-inserting from the root.
    pub(crate) fn insert_from(
        &mut self,
        start: PageId,
        chain_above: &[PageId],
        entry: AnyEntry,
    ) -> CoreResult<()> {
        let outermost = !self.insert_active;
        if outermost {
            self.insert_active = true;
            self.reinsert_armed = 0;
        }
        let mut result = self.insert_from_inner(start, chain_above, entry);
        if outermost {
            // Close reinsert: the queue is stacked closest-to-center on
            // top. Entries queued while draining are drained too; the
            // per-level armed mask bounds the recursion (later overflows
            // at a treated level split instead of re-queueing).
            while result.is_ok() {
                let Some(e) = self.pending_reinserts.pop() else {
                    break;
                };
                result = self.insert_from_inner(self.root, &[], e);
            }
            if result.is_err() {
                self.pending_reinserts.clear();
            }
            self.insert_active = false;
        }
        result
    }

    fn insert_from_inner(
        &mut self,
        start: PageId,
        chain_above: &[PageId],
        entry: AnyEntry,
    ) -> CoreResult<()> {
        let (old_mbr, new_mbr, split) = self.insert_rec(start, entry)?;
        let mut child_pid = start;
        let mut child_mbr = new_mbr;
        let mut pending = split;
        let mut changed = old_mbr != new_mbr;
        for &anc in chain_above {
            if pending.is_none() && !changed {
                return Ok(());
            }
            let mut node = self.read_node(anc)?;
            let idx = node.child_index(child_pid).ok_or(CoreError::CorruptNode {
                pid: anc,
                reason: "ancestor chain does not link to child",
            })?;
            let old_anc_mbr = node.mbr();
            // AdjustTree sets the entry to the child's exact MBR. This may
            // *shrink* a previously ε-extended official rect — deliberate:
            // the tight MBR covers every entry by construction, and
            // re-tightening on arrival is what keeps overlap from
            // ratcheting outward over millions of bottom-up updates.
            node.internal_entries_mut()[idx].rect = child_mbr;
            if let Some(e) = pending.take() {
                if self.parent_pointers() && node.level == 1 {
                    self.set_parent_pointer(e.child, anc)?;
                }
                node.internal_entries_mut().push(e);
                if node.count() > self.internal_cap() {
                    let (_, mbr_a, sp) = self.handle_overflow(anc, node)?;
                    child_pid = anc;
                    child_mbr = mbr_a;
                    pending = sp;
                    changed = true;
                    continue;
                }
            }
            let new_anc_mbr = node.mbr();
            self.write_node(anc, &node)?;
            child_pid = anc;
            child_mbr = new_anc_mbr;
            changed = old_anc_mbr != new_anc_mbr;
        }
        if let Some(e) = pending {
            self.grow_root(child_pid, child_mbr, e)?;
        }
        Ok(())
    }

    /// Recursive descent: returns `(old mbr, new mbr, split entry)` of the
    /// node on `pid`.
    fn insert_rec(
        &mut self,
        pid: PageId,
        entry: AnyEntry,
    ) -> CoreResult<(Rect, Rect, Option<InternalEntry>)> {
        let mut node = self.read_node(pid)?;
        let old_mbr = node.mbr();
        let target = entry.target_level();
        debug_assert!(
            node.level >= target,
            "insert target level {target} above node level {}",
            node.level
        );
        if node.level == target {
            match entry {
                AnyEntry::Leaf(e) => {
                    node.leaf_entries_mut().push(e);
                    self.hash_place(e.oid, pid)?;
                }
                AnyEntry::Node(e, child_level) => {
                    if self.parent_pointers() && child_level == 0 {
                        self.set_parent_pointer(e.child, pid)?;
                    }
                    node.internal_entries_mut().push(e);
                }
            }
            if node.count() <= node.capacity(self.opts.page_size) {
                let new_mbr = node.mbr();
                self.write_node(pid, &node)?;
                Ok((old_mbr, new_mbr, None))
            } else {
                let (_, mbr_a, sp) = self.handle_overflow(pid, node)?;
                Ok((old_mbr, mbr_a, sp))
            }
        } else {
            let idx = self.choose_subtree(&node, &entry.rect());
            let child_pid = node.internal_entries()[idx].child;
            let (child_old, child_new, sp) = self.insert_rec(child_pid, entry)?;
            let rect_changed = child_old != child_new;
            if sp.is_none() && !rect_changed {
                // Nothing to adjust: the child absorbed the entry without
                // growing — the TD best case of a single write at the leaf.
                return Ok((old_mbr, old_mbr, None));
            }
            // Exact child MBR (see the ancestor-chain comment above).
            node.internal_entries_mut()[idx].rect = child_new;
            if let Some(e) = sp {
                if self.parent_pointers() && node.level == 1 {
                    self.set_parent_pointer(e.child, pid)?;
                }
                node.internal_entries_mut().push(e);
                if node.count() > self.internal_cap() {
                    let (_, mbr_a, sp2) = self.handle_overflow(pid, node)?;
                    return Ok((old_mbr, mbr_a, sp2));
                }
            }
            let new_mbr = node.mbr();
            self.write_node(pid, &node)?;
            Ok((old_mbr, new_mbr, None))
        }
    }

    /// Pick the child subtree for an insertion. Guttman's R-tree uses the
    /// least-enlargement criterion everywhere; the R* variant switches to
    /// minimum *overlap* enlargement when choosing among the parents of
    /// leaves (Beckmann's ChooseSubtree).
    fn choose_subtree(&self, node: &Node, rect: &Rect) -> usize {
        match self.opts.insert {
            InsertPolicy::RStar if node.level == 1 => Self::choose_subtree_min_overlap(node, rect),
            _ => Self::choose_subtree_guttman(node, rect),
        }
    }

    /// Guttman ChooseLeaf criterion: least enlargement, ties by smaller
    /// area.
    fn choose_subtree_guttman(node: &Node, rect: &Rect) -> usize {
        let entries = node.internal_entries();
        debug_assert!(!entries.is_empty());
        let mut best = 0;
        let mut best_enlarge = f32::INFINITY;
        let mut best_area = f32::INFINITY;
        for (i, e) in entries.iter().enumerate() {
            let enlarge = e.rect.enlargement(rect);
            let area = e.rect.area();
            if enlarge < best_enlarge || (enlarge == best_enlarge && area < best_area) {
                best = i;
                best_enlarge = enlarge;
                best_area = area;
            }
        }
        best
    }

    /// R* ChooseSubtree at the level above the leaves: the entry whose
    /// absorption of `rect` increases the summed overlap with its sibling
    /// entries the least; ties by area enlargement, then by area. O(n²)
    /// in the fanout — acceptable at our fanout of ~50, and only paid on
    /// one node per insertion.
    fn choose_subtree_min_overlap(node: &Node, rect: &Rect) -> usize {
        let entries = node.internal_entries();
        debug_assert!(!entries.is_empty());
        let mut best = 0;
        let mut best_key = (f32::INFINITY, f32::INFINITY, f32::INFINITY);
        for (i, e) in entries.iter().enumerate() {
            let expanded = e.rect.union(rect);
            let mut overlap_delta = 0.0;
            for (j, s) in entries.iter().enumerate() {
                if i != j {
                    overlap_delta +=
                        expanded.intersection_area(&s.rect) - e.rect.intersection_area(&s.rect);
                }
            }
            let key = (overlap_delta, e.rect.enlargement(rect), e.rect.area());
            if key < best_key {
                best = i;
                best_key = key;
            }
        }
        best
    }

    /// Fraction of an overflowing node's entries evicted by R* forced
    /// reinsertion (Beckmann's recommended p = 30 %).
    const RSTAR_REINSERT_FRACTION: f32 = 0.3;

    /// Resolve an overflow: R* forced reinsertion when eligible (non-root,
    /// first overflow at this level in the current insertion), a node
    /// split otherwise. Same return shape as [`RTree::split_node`]; the
    /// reinsertion arm reports no new sibling.
    fn handle_overflow(
        &mut self,
        pid: PageId,
        node: Node,
    ) -> CoreResult<(PageId, Rect, Option<InternalEntry>)> {
        let eligible = self.opts.insert == InsertPolicy::RStar
            && pid != self.root
            && node.level < 32
            && self.reinsert_armed & (1 << node.level) == 0;
        if !eligible {
            return self.split_node(pid, node);
        }
        self.reinsert_armed |= 1 << node.level;
        self.stats.forced_reinserts.fetch_add(1, Ordering::Relaxed);
        let mut node = node;
        let center = node.mbr().center();
        let p = ((node.count() as f32) * Self::RSTAR_REINSERT_FRACTION).ceil() as usize;
        let p = p.clamp(1, node.count() - 1);
        // Sort by center distance ascending, evict the farthest p, and
        // stack them farthest-first so the drain pops closest-first
        // (Beckmann's "close reinsert").
        match &mut node.entries {
            NodeEntries::Leaf(v) => {
                v.sort_by(|a, b| {
                    a.rect
                        .center()
                        .distance_sq(&center)
                        .total_cmp(&b.rect.center().distance_sq(&center))
                });
                let evicted = v.split_off(v.len() - p);
                self.stats
                    .forced_reinserted_entries
                    .fetch_add(evicted.len() as u64, Ordering::Relaxed);
                self.pending_reinserts
                    .extend(evicted.into_iter().rev().map(AnyEntry::Leaf));
            }
            NodeEntries::Internal(v) => {
                v.sort_by(|a, b| {
                    a.rect
                        .center()
                        .distance_sq(&center)
                        .total_cmp(&b.rect.center().distance_sq(&center))
                });
                let evicted = v.split_off(v.len() - p);
                self.stats
                    .forced_reinserted_entries
                    .fetch_add(evicted.len() as u64, Ordering::Relaxed);
                let child_level = node.level - 1;
                self.pending_reinserts.extend(
                    evicted
                        .into_iter()
                        .rev()
                        .map(|e| AnyEntry::Node(e, child_level)),
                );
            }
        }
        let new_mbr = node.mbr();
        self.write_node(pid, &node)?;
        Ok((pid, new_mbr, None))
    }

    /// Split the overflowing `node` (already holding capacity + 1
    /// entries). Writes both halves; returns `(new page id, mbr of the
    /// surviving half, entry for the new half)`.
    fn split_node(
        &mut self,
        pid: PageId,
        node: Node,
    ) -> CoreResult<(PageId, Rect, Option<InternalEntry>)> {
        self.stats.splits.fetch_add(1, Ordering::Relaxed);
        let min_fill = if node.is_leaf() {
            self.min_fill_leaf()
        } else {
            self.min_fill_internal()
        };
        let new_pid = self.alloc_page()?;
        let (node_a, node_b) = match node.entries {
            NodeEntries::Leaf(entries) => {
                let rects: Vec<Rect> = entries.iter().map(|e| e.rect).collect();
                let (ga, gb) = split::split(&rects, min_fill, self.opts.split);
                let a: Vec<LeafEntry> = ga.iter().map(|&i| entries[i]).collect();
                let b: Vec<LeafEntry> = gb.iter().map(|&i| entries[i]).collect();
                // Re-homed objects: point the hash index at the new leaf.
                for e in &b {
                    self.hash_place(e.oid, new_pid)?;
                }
                (
                    Node {
                        level: 0,
                        parent: node.parent,
                        entries: NodeEntries::Leaf(a),
                    },
                    Node {
                        level: 0,
                        parent: node.parent,
                        entries: NodeEntries::Leaf(b),
                    },
                )
            }
            NodeEntries::Internal(entries) => {
                let rects: Vec<Rect> = entries.iter().map(|e| e.rect).collect();
                let (ga, gb) = split::split(&rects, min_fill, self.opts.split);
                let a: Vec<InternalEntry> = ga.iter().map(|&i| entries[i]).collect();
                let b: Vec<InternalEntry> = gb.iter().map(|&i| entries[i]).collect();
                // Children moved under the new node: rewrite their parent
                // pointers when the strategy maintains them (LBU, and only
                // for leaves — the only pointers LBU uses).
                if self.parent_pointers() && node.level == 1 {
                    for e in &b {
                        self.set_parent_pointer(e.child, new_pid)?;
                    }
                }
                (
                    Node {
                        level: node.level,
                        parent: node.parent,
                        entries: NodeEntries::Internal(a),
                    },
                    Node {
                        level: node.level,
                        parent: node.parent,
                        entries: NodeEntries::Internal(b),
                    },
                )
            }
        };
        let mbr_a = node_a.mbr();
        let mbr_b = node_b.mbr();
        self.write_node(pid, &node_a)?;
        self.write_node(new_pid, &node_b)?;
        Ok((
            new_pid,
            mbr_a,
            Some(InternalEntry {
                child: new_pid,
                rect: mbr_b,
            }),
        ))
    }

    /// Install a new root above the current one after a root split.
    fn grow_root(
        &mut self,
        old_root: PageId,
        old_root_mbr: Rect,
        new_entry: InternalEntry,
    ) -> CoreResult<()> {
        let new_root_pid = self.alloc_page()?;
        let level = self.height; // old root level + 1
        let mut root_node = Node::new_internal(level);
        root_node.internal_entries_mut().push(InternalEntry {
            child: old_root,
            rect: old_root_mbr,
        });
        root_node.internal_entries_mut().push(new_entry);
        self.root = new_root_pid;
        self.height += 1;
        if self.parent_pointers() && level == 1 {
            self.set_parent_pointer(old_root, new_root_pid)?;
            self.set_parent_pointer(new_entry.child, new_root_pid)?;
        }
        self.write_node(new_root_pid, &root_node)?;
        Ok(())
    }

    // ---- make-room (preparatory) splits -------------------------------------

    /// Record the root-first chain of internal ancestors of `target`
    /// into `path` (excluding `target` itself). Returns `false` when the
    /// page is not reachable — e.g. it was condensed away since the
    /// caller looked it up.
    pub(crate) fn path_to(
        &self,
        from: PageId,
        target: PageId,
        path: &mut Vec<PageId>,
    ) -> CoreResult<bool> {
        if from == target {
            return Ok(true);
        }
        let node = self.read_node(from)?;
        let NodeEntries::Internal(v) = &node.entries else {
            return Ok(false);
        };
        path.push(from);
        for e in v {
            if self.path_to(e.child, target, path)? {
                return Ok(true);
            }
        }
        path.pop();
        Ok(false)
    }

    /// Content-neutral preparatory split ("make room"): split the full
    /// leaf on `leaf_pid` and propagate the new entries upward —
    /// splitting overfull ancestors and growing the root if needed — so
    /// a concurrent batch that found the leaf full can retry on the
    /// shared path. No logical content changes; R* forced reinsertion is
    /// bypassed (there is no in-flight insert to re-drive evictions).
    /// Returns `false` (and writes nothing) when the leaf no longer
    /// needs the room — a racing batch may have made it first.
    ///
    /// Must run under the exclusive structure lock: it changes
    /// parent/child links, possibly `root` and `height`, and allocates
    /// pages.
    pub(crate) fn preparatory_split(&mut self, leaf_pid: PageId) -> CoreResult<bool> {
        let node = match self.read_node(leaf_pid) {
            Ok(n) => n,
            // The page may have been condensed away and recycled.
            Err(_) => return Ok(false),
        };
        if !node.is_leaf() || node.count() < self.leaf_cap() {
            return Ok(false);
        }
        let mut path = Vec::new();
        if !self.path_to(self.root, leaf_pid, &mut path)? {
            return Ok(false);
        }
        let (_, mut child_mbr, mut pending) = self.split_node(leaf_pid, node)?;
        let mut child_pid = leaf_pid;
        while let Some(anc) = path.pop() {
            let mut parent = self.read_node(anc)?;
            let idx = parent
                .child_index(child_pid)
                .ok_or(CoreError::CorruptNode {
                    pid: anc,
                    reason: "make-room path does not link to child",
                })?;
            let old_mbr = parent.mbr();
            // Exact child MBR — a make-room split re-tightens any
            // ε-extended official slack, like AdjustTree on arrival.
            parent.internal_entries_mut()[idx].rect = child_mbr;
            if let Some(e) = pending.take() {
                if self.parent_pointers() && parent.level == 1 {
                    self.set_parent_pointer(e.child, anc)?;
                }
                parent.internal_entries_mut().push(e);
                if parent.count() > self.internal_cap() {
                    let (_, mbr_a, sp) = self.split_node(anc, parent)?;
                    child_pid = anc;
                    child_mbr = mbr_a;
                    pending = sp;
                    continue;
                }
            }
            let new_mbr = parent.mbr();
            self.write_node(anc, &parent)?;
            if new_mbr == old_mbr {
                // Nothing propagates further; the remaining ancestors'
                // entry rects still cover this subtree.
                pending = None;
                break;
            }
            child_pid = anc;
            child_mbr = new_mbr;
        }
        if let Some(e) = pending {
            self.grow_root(child_pid, child_mbr, e)?;
        }
        self.stats.make_room_splits.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }

    // ---- deletion -----------------------------------------------------------

    /// Delete the entry of `oid` whose position is `pos`. Returns `false`
    /// when no such entry exists. Does not touch [`RTree::len`] — the
    /// public index layer owns the object count, because internal moves
    /// (top-down updates) pair this with a re-insert.
    pub(crate) fn delete_object(&mut self, oid: ObjectId, pos: Point) -> CoreResult<bool> {
        let mut path: Vec<(PageId, usize)> = Vec::new();
        let Some(leaf_pid) = self.find_leaf(self.root, oid, pos, &mut path)? else {
            return Ok(false);
        };
        let mut leaf = self.read_node(leaf_pid)?;
        let idx = leaf.oid_index(oid).expect("find_leaf returned this leaf");
        leaf.leaf_entries_mut().swap_remove(idx);
        self.hash_remove(oid)?;
        self.condense_up(leaf_pid, leaf, path)?;
        Ok(true)
    }

    /// Locate the leaf containing `oid` at `pos`, descending every subtree
    /// whose rect contains the position (R-trees may need several partial
    /// paths). Appends `(page, child index)` pairs for the successful
    /// path.
    fn find_leaf(
        &self,
        pid: PageId,
        oid: ObjectId,
        pos: Point,
        path: &mut Vec<(PageId, usize)>,
    ) -> CoreResult<Option<PageId>> {
        let node = self.read_node(pid)?;
        if node.is_leaf() {
            return Ok(node.oid_index(oid).map(|_| pid));
        }
        for (i, e) in node.internal_entries().iter().enumerate() {
            if e.rect.contains_point(&pos) {
                path.push((pid, i));
                if let Some(found) = self.find_leaf(e.child, oid, pos, path)? {
                    return Ok(Some(found));
                }
                path.pop();
            }
        }
        Ok(None)
    }

    /// CondenseTree: walk the recorded path upward, dissolving underfull
    /// nodes and re-inserting their entries, then shrink the root.
    fn condense_up(
        &mut self,
        leaf_pid: PageId,
        leaf: Node,
        mut path: Vec<(PageId, usize)>,
    ) -> CoreResult<()> {
        let mut orphan_objects: Vec<LeafEntry> = Vec::new();
        let mut orphan_subtrees: Vec<(InternalEntry, u16)> = Vec::new();
        let mut cur_pid = leaf_pid;
        let mut cur = leaf;
        loop {
            let Some((parent_pid, idx)) = path.pop() else {
                // cur is the root.
                self.write_node(cur_pid, &cur)?;
                break;
            };
            let min = if cur.is_leaf() {
                self.min_fill_leaf()
            } else {
                self.min_fill_internal()
            };
            if cur.count() < min {
                // Dissolve: orphan the entries, drop the node, remove its
                // entry from the parent and keep condensing upward.
                self.stats.condenses.fetch_add(1, Ordering::Relaxed);
                match &cur.entries {
                    NodeEntries::Leaf(v) => orphan_objects.extend(v.iter().copied()),
                    NodeEntries::Internal(v) => {
                        let child_level = cur.level - 1;
                        orphan_subtrees.extend(v.iter().map(|e| (*e, child_level)));
                    }
                }
                let was_leaf = cur.is_leaf();
                self.free_page(cur_pid, was_leaf);
                let mut parent = self.read_node(parent_pid)?;
                debug_assert_eq!(parent.internal_entries()[idx].child, cur_pid);
                parent.internal_entries_mut().swap_remove(idx);
                cur_pid = parent_pid;
                cur = parent;
            } else {
                // Keep: write it back and tighten rectangles up the path.
                self.write_node(cur_pid, &cur)?;
                let mut child_mbr = cur.mbr();
                let mut child_pid = cur_pid;
                // The immediate parent still has the recorded index; the
                // levels above are adjusted by looking the child up.
                let mut parent_link = Some((parent_pid, idx));
                while let Some((p_pid, p_idx)) = parent_link {
                    let mut parent = self.read_node(p_pid)?;
                    debug_assert_eq!(parent.internal_entries()[p_idx].child, child_pid);
                    if parent.internal_entries()[p_idx].rect == child_mbr {
                        break; // no change propagates further
                    }
                    parent.internal_entries_mut()[p_idx].rect = child_mbr;
                    self.write_node(p_pid, &parent)?;
                    child_mbr = parent.mbr();
                    child_pid = p_pid;
                    parent_link = path.pop();
                }
                break;
            }
        }
        // Re-insert orphans before shrinking the root so target levels
        // still exist. Subtrees first (deepest levels first), then
        // objects.
        orphan_subtrees.sort_by_key(|&(_, level)| std::cmp::Reverse(level));
        let reinserted = orphan_objects.len() + orphan_subtrees.len();
        if reinserted > 0 {
            self.stats
                .reinserted_entries
                .fetch_add(reinserted as u64, Ordering::Relaxed);
        }
        for (e, child_level) in orphan_subtrees {
            self.insert_from(self.root, &[], AnyEntry::Node(e, child_level))?;
        }
        for e in orphan_objects {
            self.insert_from(self.root, &[], AnyEntry::Leaf(e))?;
        }
        self.shrink_root()?;
        Ok(())
    }

    /// While the root is internal with a single child, make that child the
    /// root.
    fn shrink_root(&mut self) -> CoreResult<()> {
        loop {
            let root = self.read_node(self.root)?;
            if root.is_leaf() || root.count() != 1 {
                // Refresh the cached root MBR (it may have been tightened).
                if let Some(s) = &mut self.summary {
                    s.set_root_mbr(root.mbr());
                }
                return Ok(());
            }
            let child = root.internal_entries()[0].child;
            self.free_page(self.root, false);
            self.root = child;
            self.height -= 1;
            if self.parent_pointers() {
                let mut node = self.read_node(child)?;
                if node.is_leaf() && node.parent != INVALID_PAGE {
                    node.parent = INVALID_PAGE;
                    self.write_node(child, &node)?;
                }
            }
            // Re-register the new root's MBR.
            let node = self.read_node(child)?;
            if let Some(s) = &mut self.summary {
                s.set_root_mbr(node.mbr());
            }
        }
    }

    // ---- queries ---------------------------------------------------------------

    /// Plain top-down window query; appends matching object ids.
    pub(crate) fn query_into(&self, window: &Rect, out: &mut Vec<ObjectId>) -> CoreResult<()> {
        self.query_node(self.root, window, out)
    }

    fn query_node(&self, pid: PageId, window: &Rect, out: &mut Vec<ObjectId>) -> CoreResult<()> {
        let node = self.read_node(pid)?;
        match &node.entries {
            NodeEntries::Leaf(v) => {
                for e in v {
                    if e.rect.intersects(window) {
                        out.push(e.oid);
                    }
                }
            }
            NodeEntries::Internal(v) => {
                for e in v {
                    if e.rect.intersects(window) {
                        self.query_node(e.child, window, out)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Summary-assisted window query (Section 3.2): internal levels are
    /// pruned in memory; only overlapping level-1 nodes and their
    /// overlapping leaves are read. Falls back to the plain descent when
    /// the summary holds no internal levels.
    pub(crate) fn query_with_summary(
        &self,
        window: &Rect,
        out: &mut Vec<ObjectId>,
    ) -> CoreResult<()> {
        let Some(s) = &self.summary else {
            return self.query_into(window, out);
        };
        let Some(level1) = s.query_level1_candidates(self.root, window) else {
            return self.query_into(window, out);
        };
        for pid in level1 {
            let node = self.read_node(pid)?;
            for e in node.internal_entries() {
                if e.rect.intersects(window) {
                    let leaf = self.read_node(e.child)?;
                    for le in leaf.leaf_entries() {
                        if le.rect.intersects(window) {
                            out.push(le.oid);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Window query that collects full leaf entries (id + rect). Same
    /// traversal as [`RTree::query_into`]; used by distance queries and
    /// tooling that needs object extents, not just ids.
    pub(crate) fn query_entries_into(
        &self,
        window: &Rect,
        out: &mut Vec<LeafEntry>,
    ) -> CoreResult<()> {
        self.query_entries_node(self.root, window, out)
    }

    fn query_entries_node(
        &self,
        pid: PageId,
        window: &Rect,
        out: &mut Vec<LeafEntry>,
    ) -> CoreResult<()> {
        let node = self.read_node(pid)?;
        match &node.entries {
            NodeEntries::Leaf(v) => {
                for e in v {
                    if e.rect.intersects(window) {
                        out.push(*e);
                    }
                }
            }
            NodeEntries::Internal(v) => {
                for e in v {
                    if e.rect.intersects(window) {
                        self.query_entries_node(e.child, window, out)?;
                    }
                }
            }
        }
        Ok(())
    }

    // ---- validation ----------------------------------------------------------

    /// Deep invariant check. Verifies structural soundness, containment,
    /// fill factors, hash-index agreement and summary agreement. Used
    /// pervasively by tests; costs a full tree scan.
    pub(crate) fn validate(&self) -> CoreResult<()> {
        let mut object_count = 0u64;
        let mut leaf_count = 0u64;
        self.validate_node(
            self.root,
            self.root_level(),
            None,
            &mut object_count,
            &mut leaf_count,
        )?;
        if object_count != self.len() {
            return Err(CoreError::InvariantViolation(format!(
                "len says {} objects, tree holds {object_count}",
                self.len()
            )));
        }
        if let Some(h) = &self.hash {
            if h.len() as u64 != self.len() {
                return Err(CoreError::InvariantViolation(format!(
                    "hash index has {} entries, tree holds {}",
                    h.len(),
                    self.len()
                )));
            }
        }
        if let Some(s) = &self.summary {
            let root = self.read_node(self.root)?;
            if s.root_mbr() != root.mbr() {
                return Err(CoreError::InvariantViolation(
                    "summary root MBR differs from root node MBR".into(),
                ));
            }
        }
        Ok(())
    }

    fn validate_node(
        &self,
        pid: PageId,
        expected_level: u16,
        bound: Option<Rect>,
        object_count: &mut u64,
        leaf_count: &mut u64,
    ) -> CoreResult<()> {
        let node = self.read_node(pid)?;
        let fail = |msg: String| Err(CoreError::InvariantViolation(format!("page {pid}: {msg}")));
        if node.level != expected_level {
            return fail(format!(
                "level {} where {expected_level} expected",
                node.level
            ));
        }
        if node.count() > node.capacity(self.opts.page_size) {
            return fail(format!("overfull node ({} entries)", node.count()));
        }
        let is_root = pid == self.root;
        let min = if node.is_leaf() {
            self.min_fill_leaf()
        } else {
            self.min_fill_internal()
        };
        if !is_root && node.count() < min {
            return fail(format!("underfull node ({} < {min})", node.count()));
        }
        if is_root && !node.is_leaf() && node.count() < 2 {
            return fail("internal root with fewer than 2 children".into());
        }
        if let Some(b) = bound {
            if !b.contains_rect(&node.mbr()) {
                return fail(format!(
                    "content {} escapes parent entry rect {b}",
                    node.mbr()
                ));
            }
        }
        match &node.entries {
            NodeEntries::Leaf(v) => {
                *leaf_count += 1;
                *object_count += v.len() as u64;
                if let Some(h) = &self.hash {
                    for e in v {
                        if h.get(e.oid)? != Some(pid) {
                            return fail(format!("hash index does not map {} here", e.oid));
                        }
                    }
                }
                if let Some(s) = &self.summary {
                    if !s.has_leaf(pid) {
                        return fail("leaf missing from summary bit vector".into());
                    }
                    let full = v.len() >= self.leaf_cap();
                    if s.is_leaf_full(pid) != full {
                        return fail("summary fullness bit is stale".into());
                    }
                }
            }
            NodeEntries::Internal(v) => {
                if let Some(s) = &self.summary {
                    let Some(entry) = s.entry(pid) else {
                        return fail("internal node missing from summary table".into());
                    };
                    if entry.mbr != node.mbr() {
                        return fail("summary MBR is stale".into());
                    }
                    let children: Vec<PageId> = v.iter().map(|e| e.child).collect();
                    if entry.children != children {
                        return fail("summary child list is stale".into());
                    }
                }
                for e in v {
                    if self.parent_pointers() && node.level == 1 {
                        let child = self.read_node(e.child)?;
                        if child.parent != pid {
                            return fail(format!(
                                "leaf {} has parent pointer {} instead of {pid}",
                                e.child, child.parent
                            ));
                        }
                    }
                    self.validate_node(
                        e.child,
                        expected_level - 1,
                        Some(e.rect),
                        object_count,
                        leaf_count,
                    )?;
                }
            }
        }
        Ok(())
    }

    /// Count pages owned by the tree proper (excludes hash pages): number
    /// of nodes currently reachable. Used by experiments to size buffers.
    pub(crate) fn node_count(&self) -> CoreResult<u64> {
        fn walk(tree: &RTree, pid: PageId, acc: &mut u64) -> CoreResult<()> {
            *acc += 1;
            let node = tree.read_node(pid)?;
            if let NodeEntries::Internal(v) = &node.entries {
                for e in v {
                    walk(tree, e.child, acc)?;
                }
            }
            Ok(())
        }
        let mut acc = 0;
        walk(self, self.root, &mut acc)?;
        Ok(acc)
    }
}
