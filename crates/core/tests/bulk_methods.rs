//! The two bulk loaders (STR tiling and Hilbert packing) against the
//! incremental build: identical query answers, comparable tree quality,
//! correct auxiliary-structure maintenance.

use bur_core::{IndexBuilder, IndexOptions, RTreeIndex};
use bur_geom::{Point, Rect};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn uniform_items(n: usize, seed: u64) -> Vec<(u64, Point)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n as u64)
        .map(|oid| (oid, Point::new(rng.random::<f32>(), rng.random::<f32>())))
        .collect()
}

fn query_fetches(index: &RTreeIndex, windows: &[Rect]) -> u64 {
    let before = index.pool().stats().snapshot();
    for w in windows {
        index.query(w).unwrap();
    }
    index.pool().stats().snapshot().since(&before).fetches
}

#[test]
fn loaders_agree_with_incremental_build() {
    let items = uniform_items(4000, 71);
    let opts = IndexOptions::generalized();
    let str_tree = RTreeIndex::bulk_load_in_memory(opts, &items).unwrap();
    let hil_tree = RTreeIndex::bulk_load_hilbert_in_memory(opts, &items).unwrap();
    let mut incr = IndexBuilder::with_options(opts).build_index().unwrap();
    for &(oid, p) in &items {
        incr.insert(oid, p).unwrap();
    }
    str_tree.validate().unwrap();
    hil_tree.validate().unwrap();

    let mut rng = StdRng::seed_from_u64(72);
    for _ in 0..100 {
        let x = rng.random::<f32>() * 0.85;
        let y = rng.random::<f32>() * 0.85;
        let w = Rect::new(x, y, x + 0.15, y + 0.15);
        let norm = |mut v: Vec<u64>| {
            v.sort_unstable();
            v
        };
        let want = norm(incr.query(&w).unwrap());
        assert_eq!(norm(str_tree.query(&w).unwrap()), want);
        assert_eq!(norm(hil_tree.query(&w).unwrap()), want);
    }
}

#[test]
fn packed_trees_have_comparable_query_quality() {
    // Both packings target 66 % fill with low overlap; their logical
    // query costs should be within 2x of each other and no worse than
    // the insertion-built tree.
    let items = uniform_items(8000, 73);
    let opts = IndexOptions::top_down();
    let str_tree = RTreeIndex::bulk_load_in_memory(opts, &items).unwrap();
    let hil_tree = RTreeIndex::bulk_load_hilbert_in_memory(opts, &items).unwrap();
    let mut incr = IndexBuilder::with_options(opts).build_index().unwrap();
    for &(oid, p) in &items {
        incr.insert(oid, p).unwrap();
    }
    let mut rng = StdRng::seed_from_u64(74);
    let windows: Vec<Rect> = (0..200)
        .map(|_| {
            let x = rng.random::<f32>() * 0.9;
            let y = rng.random::<f32>() * 0.9;
            Rect::new(x, y, x + 0.1, y + 0.1)
        })
        .collect();
    let io_str = query_fetches(&str_tree, &windows);
    let io_hil = query_fetches(&hil_tree, &windows);
    let io_incr = query_fetches(&incr, &windows);
    assert!(
        io_str * 2 >= io_hil && io_hil * 2 >= io_str,
        "packings diverge: STR {io_str} vs Hilbert {io_hil}"
    );
    assert!(
        io_str <= io_incr && io_hil <= io_incr,
        "packed trees must not query worse than insertion-built \
         (STR {io_str}, Hilbert {io_hil}, incremental {io_incr})"
    );
}

#[test]
fn hilbert_load_supports_bottom_up_updates() {
    // A Hilbert-packed GBU index must carry hash + summary state ready
    // for bottom-up updates.
    let items = uniform_items(3000, 75);
    let mut index =
        RTreeIndex::bulk_load_hilbert_in_memory(IndexOptions::generalized(), &items).unwrap();
    let mut rng = StdRng::seed_from_u64(76);
    let mut pts: Vec<Point> = items.iter().map(|&(_, p)| p).collect();
    for _ in 0..6000 {
        let oid = rng.random_range(0..pts.len() as u64);
        let old = pts[oid as usize];
        let new = Point::new(
            old.x + rng.random_range(-0.01..0.01f32),
            old.y + rng.random_range(-0.01..0.01f32),
        );
        index.update(oid, old, new).unwrap();
        pts[oid as usize] = new;
    }
    index.validate().unwrap();
    let snap = index.op_stats().snapshot();
    assert!(
        snap.upd_top_down * 10 < snap.updates,
        "bottom-up paths must dominate: {snap}"
    );
}

#[test]
fn empty_and_tiny_loads() {
    for load in [
        RTreeIndex::bulk_load_in_memory as fn(_, _: &[(u64, Point)]) -> _,
        RTreeIndex::bulk_load_hilbert_in_memory,
    ] {
        let empty = load(IndexOptions::generalized(), &[]).unwrap();
        assert!(empty.is_empty());
        empty.validate().unwrap();

        let one = load(IndexOptions::generalized(), &[(7, Point::new(0.5, 0.5))]).unwrap();
        assert_eq!(one.len(), 1);
        assert_eq!(one.point_query(Point::new(0.5, 0.5)).unwrap(), vec![7]);
        one.validate().unwrap();

        let three: Vec<(u64, Point)> = (0..3)
            .map(|i| (i, Point::new(i as f32 * 0.3 + 0.1, 0.5)))
            .collect();
        let small = load(IndexOptions::localized(), &three).unwrap();
        assert_eq!(small.len(), 3);
        small.validate().unwrap();
    }
}
