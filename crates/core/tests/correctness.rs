//! End-to-end correctness: every update strategy must produce exactly the
//! same query answers as a brute-force baseline, across random workloads
//! heavy enough to force splits, condenses, extensions, shifts and
//! ascents. The deep invariant checker runs between phases.

use bur_core::{
    GbuParams, IndexBuilder, IndexOptions, LbuParams, RTreeIndex, SplitPolicy, UpdateStrategy,
};
use bur_geom::{Point, Rect};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;

/// Brute-force reference index.
#[derive(Default)]
struct Baseline {
    objects: HashMap<u64, Point>,
}

impl Baseline {
    fn insert(&mut self, oid: u64, p: Point) {
        assert!(self.objects.insert(oid, p).is_none());
    }
    fn update(&mut self, oid: u64, p: Point) {
        *self.objects.get_mut(&oid).unwrap() = p;
    }
    fn delete(&mut self, oid: u64) {
        self.objects.remove(&oid).unwrap();
    }
    fn query(&self, w: &Rect) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .objects
            .iter()
            .filter(|(_, p)| w.contains_point(p))
            .map(|(&oid, _)| oid)
            .collect();
        v.sort_unstable();
        v
    }
}

fn strategies() -> Vec<(&'static str, IndexOptions)> {
    let small_buffer = 64;
    let mut td = IndexOptions::top_down();
    td.buffer_frames = small_buffer;
    let mut lbu = IndexOptions::localized();
    lbu.buffer_frames = small_buffer;
    let mut gbu = IndexOptions::generalized();
    gbu.buffer_frames = small_buffer;
    // A GBU variant stressing every knob differently.
    let mut gbu2 = IndexOptions {
        strategy: UpdateStrategy::Generalized(GbuParams {
            epsilon: 0.02,
            distance_threshold: 0.0, // always shift-first
            level_threshold: Some(1),
            piggyback: false,
            summary_queries: false,
        }),
        buffer_frames: small_buffer,
        ..IndexOptions::default()
    };
    gbu2.split = SplitPolicy::Linear;
    // An LBU variant with zero epsilon (sibling shifts only).
    let lbu0 = IndexOptions {
        strategy: UpdateStrategy::Localized(LbuParams {
            epsilon: 0.0,
            ..LbuParams::default()
        }),
        buffer_frames: small_buffer,
        ..IndexOptions::default()
    };
    vec![
        ("TD", td),
        ("LBU", lbu),
        ("GBU", gbu),
        ("GBU-variant", gbu2),
        ("LBU-eps0", lbu0),
    ]
}

fn rand_point(rng: &mut StdRng) -> Point {
    Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0))
}

fn rand_window(rng: &mut StdRng, max_side: f32) -> Rect {
    let w = rng.random_range(0.0..max_side);
    let h = rng.random_range(0.0..max_side);
    let x = rng.random_range(0.0..(1.0 - w));
    let y = rng.random_range(0.0..(1.0 - h));
    Rect::new(x, y, x + w, y + h)
}

fn compare(name: &str, index: &RTreeIndex, base: &Baseline, rng: &mut StdRng, queries: usize) {
    for q in 0..queries {
        let w = rand_window(rng, 0.3);
        let mut got = index.query(&w).unwrap();
        got.sort_unstable();
        let expect = base.query(&w);
        assert_eq!(got, expect, "{name}: query {q} mismatch on window {w}");
    }
}

#[test]
fn random_workload_matches_baseline() {
    for (name, opts) in strategies() {
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        let mut index = IndexBuilder::with_options(opts).build_index().unwrap();
        let mut base = Baseline::default();

        // Phase 1: inserts.
        for oid in 0..2_000u64 {
            let p = rand_point(&mut rng);
            index.insert(oid, p).unwrap();
            base.insert(oid, p);
        }
        index
            .validate()
            .unwrap_or_else(|e| panic!("{name}: after inserts: {e}"));
        assert_eq!(index.len(), 2_000);
        compare(name, &index, &base, &mut rng, 20);

        // Phase 2: updates with a mix of small and large moves.
        for i in 0..6_000u64 {
            let oid = rng.random_range(0..2_000u64);
            let old = base.objects[&oid];
            let dist = if i % 5 == 0 { 0.3 } else { 0.02 };
            let new = old
                .translated(rng.random_range(-dist..dist), rng.random_range(-dist..dist))
                .clamped(0.0, 1.0);
            index.update(oid, old, new).unwrap();
            base.update(oid, new);
        }
        index
            .validate()
            .unwrap_or_else(|e| panic!("{name}: after updates: {e}"));
        compare(name, &index, &base, &mut rng, 20);

        // Phase 3: deletes (every third object) interleaved with updates.
        for oid in (0..2_000u64).step_by(3) {
            let p = base.objects[&oid];
            assert!(index.delete(oid, p).unwrap(), "{name}: delete {oid}");
            base.delete(oid);
        }
        index
            .validate()
            .unwrap_or_else(|e| panic!("{name}: after deletes: {e}"));
        assert_eq!(index.len() as usize, base.objects.len());
        compare(name, &index, &base, &mut rng, 20);

        // Phase 4: reinsert fresh ids.
        for oid in 10_000..10_500u64 {
            let p = rand_point(&mut rng);
            index.insert(oid, p).unwrap();
            base.insert(oid, p);
        }
        index
            .validate()
            .unwrap_or_else(|e| panic!("{name}: after reinserts: {e}"));
        compare(name, &index, &base, &mut rng, 20);
    }
}

#[test]
fn update_outcomes_cover_all_paths() {
    // With locality-heavy movement, GBU must actually exercise the
    // bottom-up machinery, not just fall through to top-down.
    let mut rng = StdRng::seed_from_u64(7);
    let mut index = IndexBuilder::with_options(IndexOptions::generalized())
        .build_index()
        .unwrap();
    let mut positions = HashMap::new();
    for oid in 0..3_000u64 {
        let p = rand_point(&mut rng);
        index.insert(oid, p).unwrap();
        positions.insert(oid, p);
    }
    for _ in 0..20_000u64 {
        let oid = rng.random_range(0..3_000u64);
        let old = positions[&oid];
        let new = old
            .translated(rng.random_range(-0.05..0.05), rng.random_range(-0.05..0.05))
            .clamped(0.0, 1.0);
        index.update(oid, old, new).unwrap();
        positions.insert(oid, new);
    }
    let snap = index.op_stats().snapshot();
    assert_eq!(snap.updates, 20_000);
    assert!(snap.upd_in_place > 0, "no in-place updates: {snap}");
    assert!(snap.upd_extended > 0, "no extensions: {snap}");
    assert!(snap.upd_shifted > 0, "no sibling shifts: {snap}");
    assert!(snap.upd_ascended > 0, "no ascents: {snap}");
    // The whole point of GBU: the vast majority of updates avoid TD.
    assert!(
        snap.upd_top_down < snap.updates / 4,
        "too many top-down fallbacks: {snap}"
    );
    index.validate().unwrap();
}

#[test]
fn gbu_zero_epsilon_never_extends() {
    let mut rng = StdRng::seed_from_u64(21);
    let opts = IndexOptions {
        strategy: UpdateStrategy::Generalized(GbuParams {
            epsilon: 0.0,
            ..GbuParams::default()
        }),
        ..IndexOptions::default()
    };
    let mut index = IndexBuilder::with_options(opts).build_index().unwrap();
    let mut positions = HashMap::new();
    for oid in 0..1_000u64 {
        let p = rand_point(&mut rng);
        index.insert(oid, p).unwrap();
        positions.insert(oid, p);
    }
    for _ in 0..5_000u64 {
        let oid = rng.random_range(0..1_000u64);
        let old = positions[&oid];
        let new = old
            .translated(rng.random_range(-0.03..0.03), rng.random_range(-0.03..0.03))
            .clamped(0.0, 1.0);
        index.update(oid, old, new).unwrap();
        positions.insert(oid, new);
    }
    let snap = index.op_stats().snapshot();
    assert_eq!(snap.upd_extended, 0, "ε = 0 must never extend: {snap}");
    index.validate().unwrap();
}

#[test]
fn summary_and_plain_queries_agree() {
    let mut rng = StdRng::seed_from_u64(99);
    let mut index = IndexBuilder::with_options(IndexOptions::generalized())
        .build_index()
        .unwrap();
    let mut positions = HashMap::new();
    for oid in 0..4_000u64 {
        let p = rand_point(&mut rng);
        index.insert(oid, p).unwrap();
        positions.insert(oid, p);
    }
    for _ in 0..8_000u64 {
        let oid = rng.random_range(0..4_000u64);
        let old = positions[&oid];
        let new = old
            .translated(rng.random_range(-0.1..0.1), rng.random_range(-0.1..0.1))
            .clamped(0.0, 1.0);
        index.update(oid, old, new).unwrap();
        positions.insert(oid, new);
    }
    for _ in 0..50 {
        let w = rand_window(&mut rng, 0.2);
        let mut with_summary = Vec::new();
        index.query_into(&w, &mut with_summary).unwrap();
        let mut plain = Vec::new();
        index.query_top_down(&w, &mut plain).unwrap();
        with_summary.sort_unstable();
        plain.sort_unstable();
        assert_eq!(with_summary, plain, "summary query diverges on {w}");
    }
}

#[test]
fn duplicate_and_missing_objects() {
    let mut index = IndexBuilder::with_options(IndexOptions::generalized())
        .build_index()
        .unwrap();
    index.insert(1, Point::new(0.5, 0.5)).unwrap();
    let err = index.insert(1, Point::new(0.6, 0.6)).unwrap_err();
    assert!(err.to_string().contains("already indexed"));
    let err = index
        .update(42, Point::new(0.1, 0.1), Point::new(0.2, 0.2))
        .unwrap_err();
    assert!(err.to_string().contains("not found"));
    assert!(!index.delete(42, Point::new(0.1, 0.1)).unwrap());
    assert_eq!(index.len(), 1);
}

#[test]
fn empty_and_tiny_trees() {
    for (name, opts) in strategies() {
        let mut index = IndexBuilder::with_options(opts).build_index().unwrap();
        assert!(index.is_empty(), "{name}");
        assert_eq!(index.height(), 1);
        assert!(index.query(&Rect::UNIT).unwrap().is_empty());
        index.validate().unwrap();
        // Single object: update it around (root-leaf special cases).
        index.insert(5, Point::new(0.2, 0.2)).unwrap();
        index
            .update(5, Point::new(0.2, 0.2), Point::new(0.9, 0.9))
            .unwrap();
        assert_eq!(index.query(&Rect::UNIT).unwrap(), vec![5]);
        assert!(index
            .query(&Rect::new(0.0, 0.0, 0.5, 0.5))
            .unwrap()
            .is_empty());
        index.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(index.delete(5, Point::new(0.9, 0.9)).unwrap());
        assert!(index.is_empty());
        index.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn shrinks_back_after_mass_delete() {
    let mut rng = StdRng::seed_from_u64(3);
    let mut index = IndexBuilder::with_options(IndexOptions::top_down())
        .build_index()
        .unwrap();
    let mut pts = Vec::new();
    for oid in 0..3_000u64 {
        let p = rand_point(&mut rng);
        index.insert(oid, p).unwrap();
        pts.push(p);
    }
    assert!(index.height() >= 3);
    for oid in 0..2_990u64 {
        assert!(index.delete(oid, pts[oid as usize]).unwrap());
    }
    index.validate().unwrap();
    assert_eq!(index.len(), 10);
    assert!(
        index.height() <= 2,
        "tree must shrink, is {}",
        index.height()
    );
    let mut all = index.query(&Rect::UNIT).unwrap();
    all.sort_unstable();
    assert_eq!(all, (2_990..3_000).collect::<Vec<_>>());
}

#[test]
fn bulk_load_agrees_with_incremental() {
    let mut rng = StdRng::seed_from_u64(11);
    let items: Vec<(u64, Point)> = (0..5_000u64)
        .map(|oid| (oid, rand_point(&mut rng)))
        .collect();
    for (name, opts) in strategies() {
        let bulk = RTreeIndex::bulk_load_in_memory(opts, &items).unwrap();
        bulk.validate()
            .unwrap_or_else(|e| panic!("{name} bulk: {e}"));
        assert_eq!(bulk.len(), 5_000);
        let mut incr = IndexBuilder::with_options(opts).build_index().unwrap();
        for &(oid, p) in &items {
            incr.insert(oid, p).unwrap();
        }
        for _ in 0..25 {
            let w = rand_window(&mut rng, 0.25);
            let mut a = bulk.query(&w).unwrap();
            let mut b = incr.query(&w).unwrap();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "{name}: bulk vs incremental mismatch");
        }
    }
}

#[test]
fn bulk_load_utilization_near_66_percent() {
    let mut rng = StdRng::seed_from_u64(13);
    let items: Vec<(u64, Point)> = (0..20_000u64)
        .map(|oid| (oid, rand_point(&mut rng)))
        .collect();
    let index = RTreeIndex::bulk_load_in_memory(IndexOptions::top_down(), &items).unwrap();
    // Leaf fanout 42 at 66 % fill → ~27 entries/leaf → ~740 leaves; the
    // whole tree should be within a whisker of n / (42*0.66) + internals.
    let pages = index.tree_pages().unwrap();
    let expect_leaves = (20_000f64 / (42.0 * 0.66)).ceil();
    assert!(
        (pages as f64) < expect_leaves * 1.15,
        "too many pages: {pages} vs ~{expect_leaves} leaves"
    );
    assert!(index.height() >= 3);
}

#[test]
fn point_query_and_count() {
    let mut index = IndexBuilder::with_options(IndexOptions::generalized())
        .build_index()
        .unwrap();
    index.insert(1, Point::new(0.25, 0.25)).unwrap();
    index.insert(2, Point::new(0.25, 0.25)).unwrap(); // co-located
    index.insert(3, Point::new(0.75, 0.75)).unwrap();
    let mut at = index.point_query(Point::new(0.25, 0.25)).unwrap();
    at.sort_unstable();
    assert_eq!(at, vec![1, 2]);
    assert!(index.point_query(Point::new(0.5, 0.5)).unwrap().is_empty());
    assert_eq!(index.count_in(&Rect::UNIT).unwrap(), 3);
    assert_eq!(index.count_in(&Rect::new(0.5, 0.5, 1.0, 1.0)).unwrap(), 1);
}
