//! Ties the implementation to the paper's Section 4 cost accounting:
//! with a 0 % buffer (every touched page is a physical transfer), each
//! bottom-up outcome class must cost what the cost model says — plus the
//! explicitly documented extras our implementation pays (the parent
//! write on extension, hash maintenance on relocation).

use bur_core::{GbuParams, IndexBuilder, IndexOptions, RTreeIndex, UpdateOutcome, UpdateStrategy};
use bur_geom::Point;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn build_gbu(n: u64, seed: u64) -> (RTreeIndex, Vec<Point>) {
    let opts = IndexOptions {
        strategy: UpdateStrategy::Generalized(GbuParams {
            epsilon: 0.005,
            ..GbuParams::default()
        }),
        buffer_frames: 4096,
        ..IndexOptions::default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut index = IndexBuilder::with_options(opts).build_index().unwrap();
    let mut positions = Vec::new();
    for oid in 0..n {
        let p = Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
        index.insert(oid, p).unwrap();
        positions.push(p);
    }
    index.set_buffer_capacity(0).unwrap();
    index.pool().evict_all().unwrap();
    (index, positions)
}

/// Run one update and return (outcome, physical I/O).
fn one_update(index: &mut RTreeIndex, oid: u64, old: Point, new: Point) -> (UpdateOutcome, u64) {
    let before = index.io_stats().snapshot();
    let outcome = index.update(oid, old, new).unwrap();
    let delta = index.io_stats().snapshot().since(&before);
    (outcome, delta.physical())
}

#[test]
fn in_place_costs_exactly_three() {
    // Case 1 of the paper's cost analysis: "one read and one write of
    // the leaf node and an additional I/O to read the hash index" = 3.
    let (mut index, positions) = build_gbu(3_000, 11);
    let mut rng = StdRng::seed_from_u64(12);
    let mut checked = 0;
    let mut exact = 0;
    let mut positions = positions;
    for _ in 0..400 {
        let oid = rng.random_range(0..positions.len() as u64);
        let old = positions[oid as usize];
        // A tiny wiggle: usually within the leaf MBR.
        let new = old.translated(
            rng.random_range(-0.001..0.001),
            rng.random_range(-0.001..0.001),
        );
        let (outcome, io) = one_update(&mut index, oid, old, new);
        positions[oid as usize] = new;
        if outcome == UpdateOutcome::InPlace {
            // Exactly 3 (hash R + leaf R + leaf W); an occasional 4 when
            // the hash probe walks one overflow page.
            assert!(
                io == 3 || io == 4,
                "in-place must cost 3 (+1 for a hash overflow page), got {io}"
            );
            if io == 3 {
                exact += 1;
            }
            checked += 1;
        }
    }
    assert!(checked > 100, "only {checked} in-place updates observed");
    assert!(
        exact * 4 > checked * 3,
        "most in-place updates must cost exactly 3 ({exact}/{checked})"
    );
}

#[test]
fn extension_costs_paper_plus_parent_write() {
    // Case 2a: paper charges 4 (hash R + leaf R/W + parent R). We also
    // write the parent (the extension lives in the parent's entry), so 5.
    let (mut index, positions) = build_gbu(3_000, 21);
    let mut rng = StdRng::seed_from_u64(22);
    let mut checked = 0;
    let mut positions = positions;
    for _ in 0..3_000 {
        let oid = rng.random_range(0..positions.len() as u64);
        let old = positions[oid as usize];
        let new = old.translated(
            rng.random_range(-0.004..0.004),
            rng.random_range(-0.004..0.004),
        );
        let (outcome, io) = one_update(&mut index, oid, old, new);
        positions[oid as usize] = new;
        if outcome == UpdateOutcome::Extended {
            // 5 = hash R + leaf R/W + parent R/W; +1 for a hash overflow
            // page on the probe.
            assert!(
                io == 5 || io == 6,
                "extension must cost 5 (+1 hash overflow), got {io}"
            );
            checked += 1;
        }
    }
    assert!(checked > 30, "only {checked} extensions observed");
}

#[test]
fn shift_and_ascend_bounded_by_constant() {
    // Cases 2b/3: with the direct access table the paper bounds the
    // worst case at 7 I/Os; our implementation adds the source-tighten
    // write, hash maintenance, and up to three piggybacked entries (each
    // a hash R/W when nothing is buffered), so assert a constant bound
    // rather than equality — crucially one that does NOT grow with tree
    // height or distance moved.
    let (mut index, positions) = build_gbu(4_000, 31);
    let mut rng = StdRng::seed_from_u64(32);
    let mut shifts = 0;
    let mut ascents = 0;
    let mut positions = positions;
    for _ in 0..4_000 {
        let oid = rng.random_range(0..positions.len() as u64);
        let old = positions[oid as usize];
        let new = old.translated(rng.random_range(-0.08..0.08), rng.random_range(-0.08..0.08));
        let splits_before = index.op_stats().snapshot().splits;
        let (outcome, io) = one_update(&mut index, oid, old, new);
        let split_happened = index.op_stats().snapshot().splits != splits_before;
        positions[oid as usize] = new;
        if split_happened {
            // Splits legitimately rewrite many pages (two nodes, the
            // parent, and the hash entries of every re-homed object);
            // the constant bound applies to the steady-state repairs.
            continue;
        }
        match outcome {
            UpdateOutcome::Shifted => {
                assert!(io <= 18, "shift cost {io} exceeds bound");
                shifts += 1;
            }
            UpdateOutcome::Ascended { .. } => {
                assert!(io <= 18, "ascend cost {io} exceeds bound");
                ascents += 1;
            }
            _ => {}
        }
    }
    assert!(shifts > 50, "only {shifts} shifts observed");
    assert!(ascents > 50, "only {ascents} ascents observed");
}

#[test]
fn queries_never_write() {
    let (index, _) = build_gbu(2_000, 41);
    let before = index.io_stats().snapshot();
    let _ = index
        .query(&bur_geom::Rect::new(0.2, 0.2, 0.4, 0.4))
        .unwrap();
    let delta = index.io_stats().snapshot().since(&before);
    assert!(delta.reads > 0);
    assert_eq!(delta.writes, 0);
}

#[test]
fn summary_queries_save_internal_reads() {
    // Section 3.2: "we can exploit the summary structure to perform
    // queries more efficiently" — the summary-assisted path must never
    // read MORE pages than the plain descent, and must read strictly
    // fewer on average (internal levels >= 2 are pruned in memory).
    let (index, _) = build_gbu(6_000, 51);
    let mut rng = StdRng::seed_from_u64(52);
    let mut plain_total = 0u64;
    let mut summary_total = 0u64;
    for _ in 0..40 {
        let x = rng.random_range(0.0..0.9);
        let y = rng.random_range(0.0..0.9);
        let w = bur_geom::Rect::new(x, y, x + 0.1, y + 0.1);
        let mut buf = Vec::new();

        index.pool().evict_all().unwrap();
        let before = index.io_stats().snapshot();
        index.query_top_down(&w, &mut buf).unwrap();
        plain_total += index.io_stats().snapshot().since(&before).reads;
        let plain_hits = buf.len();

        buf.clear();
        index.pool().evict_all().unwrap();
        let before = index.io_stats().snapshot();
        index.query_into(&w, &mut buf).unwrap();
        summary_total += index.io_stats().snapshot().since(&before).reads;
        assert_eq!(buf.len(), plain_hits, "same answers either way");
    }
    assert!(
        summary_total < plain_total,
        "summary-assisted queries must read fewer pages ({summary_total} vs {plain_total})"
    );
}

#[test]
fn gbu_cheaper_than_td_without_buffer() {
    // The theorem of Section 4 in measurable form: averaged over a
    // locality-preserving stream with no buffer, bottom-up beats
    // top-down.
    let (mut gbu, positions) = build_gbu(3_000, 61);
    let mut td = {
        let mut opts = IndexOptions::top_down();
        opts.buffer_frames = 4096;
        let mut index = IndexBuilder::with_options(opts).build_index().unwrap();
        for (oid, &p) in positions.iter().enumerate() {
            index.insert(oid as u64, p).unwrap();
        }
        index.set_buffer_capacity(0).unwrap();
        index.pool().evict_all().unwrap();
        index
    };
    let mut rng = StdRng::seed_from_u64(62);
    let mut gbu_io = 0u64;
    let mut td_io = 0u64;
    let mut positions = positions;
    for _ in 0..2_000 {
        let oid = rng.random_range(0..positions.len() as u64);
        let old = positions[oid as usize];
        let new = old.translated(rng.random_range(-0.02..0.02), rng.random_range(-0.02..0.02));
        gbu_io += one_update(&mut gbu, oid, old, new).1;
        td_io += one_update(&mut td, oid, old, new).1;
        positions[oid as usize] = new;
    }
    assert!(
        gbu_io < td_io,
        "unbuffered GBU ({gbu_io}) must beat TD ({td_io})"
    );
}
