//! Property-based tests on the index: arbitrary operation sequences must
//! (a) keep every structural invariant, and (b) agree with a naive model
//! — for every update strategy, for both insertion policies, and for the
//! kNN / distance-query extensions.

use bur_core::{
    internal_capacity, leaf_capacity, GbuParams, IndexBuilder, IndexOptions, InternalEntry,
    LbuParams, LeafEntry, Node, RTreeIndex, SplitPolicy, UpdateStrategy,
};
use bur_geom::{Point, Rect};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(u8, (f32, f32)),
    Update(u8, (f32, f32)),
    Delete(u8),
    Query((f32, f32), (f32, f32)),
}

fn arb_coord() -> impl Strategy<Value = (f32, f32)> {
    (0.0f32..1.0, 0.0f32..1.0)
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (any::<u8>(), arb_coord()).prop_map(|(k, p)| Op::Insert(k, p)),
        4 => (any::<u8>(), arb_coord()).prop_map(|(k, p)| Op::Update(k, p)),
        1 => any::<u8>().prop_map(Op::Delete),
        2 => (arb_coord(), (0.0f32..0.5, 0.0f32..0.5)).prop_map(|(o, s)| Op::Query(o, s)),
    ]
}

fn strategies() -> Vec<IndexOptions> {
    vec![
        IndexOptions::top_down(),
        IndexOptions {
            strategy: UpdateStrategy::Localized(LbuParams {
                epsilon: 0.01,
                ..LbuParams::default()
            }),
            ..IndexOptions::default()
        },
        IndexOptions {
            strategy: UpdateStrategy::Generalized(GbuParams {
                epsilon: 0.01,
                distance_threshold: 0.05,
                level_threshold: Some(2),
                piggyback: true,
                summary_queries: true,
            }),
            split: SplitPolicy::Linear,
            ..IndexOptions::default()
        },
    ]
}

fn apply_ops(opts: IndexOptions, ops: &[Op]) -> Result<(), TestCaseError> {
    // Tiny pages so a few hundred ops build real multi-level trees.
    let opts = IndexOptions {
        page_size: 256,
        buffer_frames: 16,
        ..opts
    };
    let mut index = IndexBuilder::with_options(opts).build_index().unwrap();
    let mut model: HashMap<u8, Point> = HashMap::new();
    for op in ops {
        match op {
            Op::Insert(k, (x, y)) => {
                let p = Point::new(*x, *y);
                if model.contains_key(k) {
                    // Duplicate inserts must be rejected when detectable.
                    if opts.strategy.needs_hash_index() {
                        prop_assert!(index.insert(u64::from(*k), p).is_err());
                    }
                } else {
                    index.insert(u64::from(*k), p).unwrap();
                    model.insert(*k, p);
                }
            }
            Op::Update(k, (x, y)) => {
                if let Some(old) = model.get(k).copied() {
                    let new = Point::new(*x, *y);
                    index.update(u64::from(*k), old, new).unwrap();
                    model.insert(*k, new);
                }
            }
            Op::Delete(k) => {
                if let Some(old) = model.remove(k) {
                    prop_assert!(index.delete(u64::from(*k), old).unwrap());
                } else {
                    prop_assert!(!index.delete(u64::from(*k), Point::new(0.5, 0.5)).unwrap());
                }
            }
            Op::Query((x, y), (w, h)) => {
                let window = Rect::new(*x, *y, x + w, y + h);
                let mut got = index.query(&window).unwrap();
                got.sort_unstable();
                let mut expect: Vec<u64> = model
                    .iter()
                    .filter(|(_, p)| window.contains_point(p))
                    .map(|(&k, _)| u64::from(k))
                    .collect();
                expect.sort_unstable();
                prop_assert_eq!(got, expect, "query mismatch on {}", window);
            }
        }
        prop_assert_eq!(index.len() as usize, model.len());
    }
    index
        .validate()
        .map_err(|e| TestCaseError::fail(format!("invariant violated: {e}")))?;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn td_matches_model(ops in proptest::collection::vec(arb_op(), 1..250)) {
        apply_ops(strategies()[0], &ops)?;
    }

    #[test]
    fn lbu_matches_model(ops in proptest::collection::vec(arb_op(), 1..250)) {
        apply_ops(strategies()[1], &ops)?;
    }

    #[test]
    fn gbu_matches_model(ops in proptest::collection::vec(arb_op(), 1..250)) {
        apply_ops(strategies()[2], &ops)?;
    }

    #[test]
    fn bulk_load_equivalent_to_inserts(
        points in proptest::collection::vec(arb_coord(), 1..400),
        windows in proptest::collection::vec((arb_coord(), (0.0f32..0.4, 0.0f32..0.4)), 1..10),
    ) {
        let opts = IndexOptions {
            page_size: 256,
            ..IndexOptions::generalized()
        };
        let items: Vec<(u64, Point)> = points
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (i as u64, Point::new(x, y)))
            .collect();
        let bulk = RTreeIndex::bulk_load_in_memory(opts, &items).unwrap();
        bulk.validate().map_err(|e| TestCaseError::fail(format!("bulk: {e}")))?;
        let mut incr = IndexBuilder::with_options(opts).build_index().unwrap();
        for &(oid, p) in &items {
            incr.insert(oid, p).unwrap();
        }
        for ((x, y), (w, h)) in windows {
            let window = Rect::new(x, y, x + w, y + h);
            let mut a = bulk.query(&window).unwrap();
            let mut b = incr.query(&window).unwrap();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn hilbert_bulk_load_equivalent_to_inserts(
        points in proptest::collection::vec(arb_coord(), 1..400),
        windows in proptest::collection::vec((arb_coord(), (0.0f32..0.4, 0.0f32..0.4)), 1..10),
    ) {
        let opts = IndexOptions {
            page_size: 256,
            ..IndexOptions::generalized()
        };
        let items: Vec<(u64, Point)> = points
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (i as u64, Point::new(x, y)))
            .collect();
        let bulk = RTreeIndex::bulk_load_hilbert_in_memory(opts, &items).unwrap();
        bulk.validate().map_err(|e| TestCaseError::fail(format!("hilbert bulk: {e}")))?;
        let mut incr = IndexBuilder::with_options(opts).build_index().unwrap();
        for &(oid, p) in &items {
            incr.insert(oid, p).unwrap();
        }
        for ((x, y), (w, h)) in windows {
            let window = Rect::new(x, y, x + w, y + h);
            let mut a = bulk.query(&window).unwrap();
            let mut b = incr.query(&window).unwrap();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn rstar_matches_model(ops in proptest::collection::vec(arb_op(), 1..250)) {
        // The R*-variant under the GBU strategy must satisfy the same
        // model equivalence as the Guttman build.
        apply_ops(strategies()[2].rstar(), &ops)?;
    }

    #[test]
    fn knn_matches_brute_force(
        points in proptest::collection::vec(arb_coord(), 1..300),
        query in arb_coord(),
        k in 1usize..40,
    ) {
        let opts = IndexOptions {
            page_size: 256,
            ..IndexOptions::generalized()
        };
        let mut index = IndexBuilder::with_options(opts).build_index().unwrap();
        for (i, &(x, y)) in points.iter().enumerate() {
            index.insert(i as u64, Point::new(x, y)).unwrap();
        }
        let q = Point::new(query.0, query.1);
        let got = index.nearest_neighbors(q, k).unwrap();
        prop_assert_eq!(got.len(), k.min(points.len()));
        let mut brute: Vec<f32> = points
            .iter()
            .map(|&(x, y)| Point::new(x, y).distance(&q))
            .collect();
        brute.sort_by(f32::total_cmp);
        for (n, want) in got.iter().zip(&brute) {
            prop_assert!((n.distance - want).abs() < 1e-5,
                "got {} want {want}", n.distance);
        }
        // Non-decreasing and internally consistent: the reported distance
        // matches the object's true distance.
        for w in got.windows(2) {
            prop_assert!(w[0].distance <= w[1].distance);
        }
        for n in &got {
            let (x, y) = points[n.oid as usize];
            prop_assert!((Point::new(x, y).distance(&q) - n.distance).abs() < 1e-5);
        }
    }

    #[test]
    fn within_distance_matches_brute_force(
        points in proptest::collection::vec(arb_coord(), 1..300),
        center in arb_coord(),
        radius in 0.0f32..0.7,
    ) {
        let mut index = IndexBuilder::with_options(IndexOptions {
            page_size: 256,
            ..IndexOptions::top_down()
        })
        .build_index()
        .unwrap();
        for (i, &(x, y)) in points.iter().enumerate() {
            index.insert(i as u64, Point::new(x, y)).unwrap();
        }
        let c = Point::new(center.0, center.1);
        let got = index.within_distance(c, radius).unwrap();
        let expect: Vec<u64> = points
            .iter()
            .enumerate()
            .filter(|&(_, &(x, y))| Point::new(x, y).distance(&c) <= radius)
            .map(|(i, _)| i as u64)
            .collect();
        let mut got_ids: Vec<u64> = got.iter().map(|n| n.oid).collect();
        got_ids.sort_unstable();
        let mut expect = expect;
        expect.sort_unstable();
        // f32 boundary cases: allow the sets to differ only on objects
        // sitting within one ulp of the radius.
        for id in got_ids.iter().filter(|i| !expect.contains(i)) {
            let (x, y) = points[*id as usize];
            prop_assert!((Point::new(x, y).distance(&c) - radius).abs() < 1e-5);
        }
        for id in expect.iter().filter(|i| !got_ids.contains(i)) {
            let (x, y) = points[*id as usize];
            prop_assert!((Point::new(x, y).distance(&c) - radius).abs() < 1e-5);
        }
        // Sorted by distance.
        for w in got.windows(2) {
            prop_assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn leaf_node_codec_roundtrip(
        entries in proptest::collection::vec((any::<u64>(), arb_coord()), 0..42),
        parent in any::<u32>(),
    ) {
        let mut node = Node::new_leaf();
        node.parent = parent;
        for &(oid, (x, y)) in &entries {
            node.leaf_entries_mut().push(LeafEntry::point(oid, Point::new(x, y)));
        }
        prop_assume!(node.count() <= leaf_capacity(1024));
        let mut page = vec![0u8; 1024];
        node.encode(&mut page);
        let decoded = Node::decode(7, &page).unwrap();
        prop_assert_eq!(&decoded, &node);
    }

    #[test]
    fn internal_node_codec_roundtrip(
        entries in proptest::collection::vec((any::<u32>(), arb_coord(), arb_coord()), 0..50),
        level in 1u16..8,
    ) {
        let mut node = Node::new_internal(level);
        for &(child, (ax, ay), (bx, by)) in &entries {
            node.internal_entries_mut().push(InternalEntry {
                child,
                rect: Rect::from_corners(Point::new(ax, ay), Point::new(bx, by)),
            });
        }
        prop_assume!(node.count() <= internal_capacity(1024));
        let mut page = vec![0u8; 1024];
        node.encode(&mut page);
        let decoded = Node::decode(3, &page).unwrap();
        prop_assert_eq!(&decoded, &node);
    }

    #[test]
    fn decode_rejects_corrupted_pages(
        entries in proptest::collection::vec((any::<u64>(), arb_coord()), 1..20),
        flip_byte in 0usize..2,
    ) {
        // Corrupting the magic or the count beyond capacity must yield a
        // clean error, never a panic or a silently wrong node.
        let mut node = Node::new_leaf();
        for &(oid, (x, y)) in &entries {
            node.leaf_entries_mut().push(LeafEntry::point(oid, Point::new(x, y)));
        }
        let mut page = vec![0u8; 1024];
        node.encode(&mut page);
        match flip_byte {
            0 => page[0] = 0x77,             // bad magic
            _ => page[2..4].copy_from_slice(&u16::MAX.to_le_bytes()), // absurd count
        }
        prop_assert!(Node::decode(1, &page).is_err());
    }

    #[test]
    fn iextend_always_sound(
        leaf in (arb_coord(), arb_coord()),
        p in arb_coord(),
        eps in 0.0f32..0.5,
    ) {
        let (a, b) = leaf;
        let leaf = Rect::from_corners(Point::new(a.0, a.1), Point::new(b.0, b.1));
        let parent = leaf.expanded_uniform(0.25);
        let point = Point::new(p.0, p.1);
        let ext = bur_core::iextend_mbr(leaf, point, eps, parent);
        // Never shrinks, never escapes the parent, never grows a side by
        // more than eps.
        prop_assert!(ext.contains_rect(&leaf));
        prop_assert!(parent.contains_rect(&ext));
        prop_assert!(ext.min_x >= leaf.min_x - eps - 1e-6);
        prop_assert!(ext.max_x <= leaf.max_x + eps + 1e-6);
        prop_assert!(ext.min_y >= leaf.min_y - eps - 1e-6);
        prop_assert!(ext.max_y <= leaf.max_y + eps + 1e-6);
        // And if the point was reachable within eps (and the parent), it
        // is now contained.
        let reachable = leaf.expanded_uniform(eps).clipped_to(&parent);
        if reachable.contains_point(&point) {
            prop_assert!(ext.contains_point(&point), "reachable point missed: {point}");
        }
    }
}
