//! The R*-variant extension: R* ChooseSubtree + forced reinsertion + R*
//! split, combined with each of the paper's update strategies. The
//! paper's future work is to apply bottom-up updates to "the members of
//! the family of R-tree-based indexing techniques"; these tests pin down
//! that the combination preserves every invariant and answers queries
//! identically to the Guttman build.

use bur_core::{IndexBuilder, IndexOptions, RTreeIndex};
use bur_geom::{Point, Rect};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn uniform_points(n: usize, seed: u64) -> Vec<(u64, Point)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n as u64)
        .map(|oid| (oid, Point::new(rng.random::<f32>(), rng.random::<f32>())))
        .collect()
}

fn build(opts: IndexOptions, pts: &[(u64, Point)]) -> RTreeIndex {
    let mut index = IndexBuilder::with_options(opts).build_index().unwrap();
    for &(oid, p) in pts {
        index.insert(oid, p).unwrap();
    }
    index
}

fn sorted_query(index: &RTreeIndex, w: &Rect) -> Vec<u64> {
    let mut v = index.query(w).unwrap();
    v.sort_unstable();
    v
}

#[test]
fn rstar_build_is_valid_for_every_strategy() {
    let pts = uniform_points(3000, 41);
    for opts in [
        IndexOptions::top_down().rstar(),
        IndexOptions::localized().rstar(),
        IndexOptions::generalized().rstar(),
    ] {
        let index = build(opts, &pts);
        index.validate().unwrap_or_else(|e| {
            panic!("{} on R*: {e}", opts.strategy.name());
        });
        assert_eq!(index.len(), pts.len() as u64);
        assert!(
            index.op_stats().snapshot().forced_reinserts > 0,
            "{}: forced reinsertion never fired",
            opts.strategy.name()
        );
    }
}

#[test]
fn rstar_and_guttman_answer_queries_identically() {
    let pts = uniform_points(2000, 43);
    let guttman = build(IndexOptions::top_down(), &pts);
    let rstar = build(IndexOptions::top_down().rstar(), &pts);
    let mut rng = StdRng::seed_from_u64(44);
    for _ in 0..100 {
        let x = rng.random::<f32>() * 0.9;
        let y = rng.random::<f32>() * 0.9;
        let w = Rect::new(x, y, x + 0.1, y + 0.1);
        assert_eq!(sorted_query(&guttman, &w), sorted_query(&rstar, &w));
    }
}

#[test]
fn rstar_reduces_leaf_overlap() {
    // The point of the R* heuristics: tighter, less overlapping leaves.
    // Compare total level-1 entry-rect area after identical insertions.
    let pts = uniform_points(5000, 47);
    let guttman = build(IndexOptions::top_down(), &pts);
    let rstar = build(IndexOptions::top_down().rstar(), &pts);
    let (_, area_g, _, _, _) = guttman.leaf_geometry().unwrap();
    let (_, area_r, _, _, _) = rstar.leaf_geometry().unwrap();
    assert!(
        area_r < area_g,
        "R* leaf area {area_r} not below Guttman {area_g}"
    );
}

#[test]
fn rstar_query_io_not_worse_than_guttman() {
    let pts = uniform_points(5000, 53);
    let guttman = build(IndexOptions::top_down(), &pts);
    let rstar = build(IndexOptions::top_down().rstar(), &pts);
    let mut rng = StdRng::seed_from_u64(54);
    let windows: Vec<Rect> = (0..200)
        .map(|_| {
            let x = rng.random::<f32>() * 0.9;
            let y = rng.random::<f32>() * 0.9;
            Rect::new(x, y, x + 0.1, y + 0.1)
        })
        .collect();
    let cost = |index: &RTreeIndex| {
        let before = index.pool().stats().snapshot();
        for w in &windows {
            index.query(w).unwrap();
        }
        index.pool().stats().snapshot().since(&before).fetches
    };
    let io_g = cost(&guttman);
    let io_r = cost(&rstar);
    assert!(
        io_r <= io_g,
        "R* logical query I/O {io_r} worse than Guttman {io_g}"
    );
}

#[test]
fn bottom_up_updates_work_on_rstar_trees() {
    let pts = uniform_points(1500, 59);
    for opts in [
        IndexOptions::localized().rstar(),
        IndexOptions::generalized().rstar(),
    ] {
        let mut index = build(opts, &pts);
        let mut rng = StdRng::seed_from_u64(60);
        let mut current: Vec<(u64, Point)> = pts.clone();
        for round in 0..4 {
            for (oid, p) in &mut current {
                let np = Point::new(
                    p.x + rng.random_range(-0.01..0.01f32),
                    p.y + rng.random_range(-0.01..0.01f32),
                );
                index.update(*oid, *p, np).unwrap();
                *p = np;
            }
            index.validate().unwrap_or_else(|e| {
                panic!("{} on R*, round {round}: {e}", opts.strategy.name());
            });
        }
        // Every object is still findable at its final position.
        for &(oid, p) in &current {
            let hits = index.point_query(p).unwrap();
            assert!(hits.contains(&oid), "{oid} lost at {p}");
        }
        // Bottom-up paths actually fired (not everything fell back to TD).
        let snap = index.op_stats().snapshot();
        assert!(
            snap.upd_in_place + snap.upd_extended + snap.upd_shifted + snap.upd_ascended
                > snap.upd_top_down,
            "{}: bottom-up paths starved on R* ({snap})",
            opts.strategy.name()
        );
    }
}

#[test]
fn rstar_handles_deletes_and_underflow() {
    let pts = uniform_points(2000, 61);
    let mut index = build(IndexOptions::generalized().rstar(), &pts);
    // Delete 80% and validate; CondenseTree must compose with the R*
    // insertion used for its re-inserts.
    for &(oid, p) in pts.iter().filter(|(oid, _)| oid % 5 != 0) {
        assert!(index.delete(oid, p).unwrap());
    }
    index.validate().unwrap();
    assert_eq!(index.len(), (pts.len() / 5) as u64);
    for &(oid, p) in pts.iter().filter(|(oid, _)| oid % 5 == 0) {
        assert!(index.point_query(p).unwrap().contains(&oid));
    }
}

#[test]
fn forced_reinsertion_bounded_per_insert() {
    // Forced reinsertion must terminate: a pathological same-point
    // workload overflows the same leaf repeatedly.
    let mut index = IndexBuilder::with_options(IndexOptions::top_down().rstar())
        .build_index()
        .unwrap();
    for oid in 0..2000u64 {
        index
            .insert(oid, Point::new(0.5 + (oid % 7) as f32 * 1e-6, 0.5))
            .unwrap();
    }
    index.validate().unwrap();
    assert_eq!(index.len(), 2000);
}
