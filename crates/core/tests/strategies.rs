//! Strategy-specific behaviour: the knobs of Section 3.2.1 must do what
//! the paper says they do, observably.

use bur_core::{
    GbuParams, IndexBuilder, IndexOptions, LbuParams, RTreeIndex, UpdateOutcome, UpdateStrategy,
};
use bur_geom::{Point, Rect};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn uniform_points(n: u64, seed: u64) -> Vec<(u64, Point)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|oid| {
            (
                oid,
                Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)),
            )
        })
        .collect()
}

fn churn(index: &mut RTreeIndex, positions: &mut [Point], seed: u64, updates: usize, dist: f32) {
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..updates {
        let oid = rng.random_range(0..positions.len() as u64);
        let old = positions[oid as usize];
        let new = old.translated(rng.random_range(-dist..dist), rng.random_range(-dist..dist));
        index.update(oid, old, new).unwrap();
        positions[oid as usize] = new;
    }
}

fn gbu_opts(params: GbuParams) -> IndexOptions {
    IndexOptions {
        strategy: UpdateStrategy::Generalized(params),
        ..IndexOptions::default()
    }
}

#[test]
fn td_keeps_no_auxiliary_structures() {
    let mut index = IndexBuilder::with_options(IndexOptions::top_down())
        .build_index()
        .unwrap();
    for (oid, p) in uniform_points(2_000, 1) {
        index.insert(oid, p).unwrap();
    }
    assert_eq!(index.hash_pages(), 0, "TD must not build a hash index");
    assert!(index.summary().is_none(), "TD must not build a summary");
    assert_eq!(index.locate_leaf(5).unwrap(), None);
    // And every TD update reports the TopDown outcome.
    let snap_before = index.op_stats().snapshot();
    let items = uniform_points(2_000, 1);
    index.update(7, items[7].1, Point::new(0.5, 0.5)).unwrap();
    let d = index.op_stats().snapshot().since(&snap_before);
    assert_eq!(d.upd_top_down, 1);
    assert_eq!(d.updates, 1);
}

#[test]
fn lbu_parent_pointers_survive_splits_and_condenses() {
    // validate() checks every leaf's parent pointer in LBU mode; force
    // lots of structural change and let it verify the maintenance.
    let mut index = IndexBuilder::with_options(IndexOptions::localized())
        .build_index()
        .unwrap();
    let items = uniform_points(4_000, 2);
    let mut positions: Vec<Point> = items.iter().map(|&(_, p)| p).collect();
    for &(oid, p) in &items {
        index.insert(oid, p).unwrap();
    }
    let splits_before = index.op_stats().snapshot().splits;
    churn(&mut index, &mut positions, 3, 8_000, 0.2);
    // Deletes to force condensing too.
    for oid in (0..4_000u64).step_by(2) {
        assert!(index.delete(oid, positions[oid as usize]).unwrap());
    }
    let snap = index.op_stats().snapshot();
    assert!(snap.splits > splits_before, "the churn must actually split");
    assert!(snap.condenses > 0, "the deletes must actually condense");
    index.validate().unwrap(); // includes the parent-pointer check
}

#[test]
fn tau_orders_extend_vs_shift() {
    // τ huge → every mover counts as "slow" → extension attempted first;
    // τ = 0 → every mover counts as "fast" → shift attempted first.
    // Observable effect: with the same stream, extend-first resolves
    // strictly more updates by extension, shift-first more by shifting.
    let run = |tau: f32| {
        let mut index = gbu_index_with(|p| p.distance_threshold = tau);
        let items = uniform_points(3_000, 4);
        let mut positions: Vec<Point> = items.iter().map(|&(_, p)| p).collect();
        for &(oid, p) in &items {
            index.insert(oid, p).unwrap();
        }
        index.op_stats().reset();
        churn(&mut index, &mut positions, 5, 10_000, 0.02);
        index.validate().unwrap();
        index.op_stats().snapshot()
    };
    let extend_first = run(10.0);
    let shift_first = run(0.0);
    assert!(
        extend_first.upd_extended > shift_first.upd_extended,
        "extend-first must extend more ({} vs {})",
        extend_first.upd_extended,
        shift_first.upd_extended
    );
    assert!(
        shift_first.upd_shifted > extend_first.upd_shifted,
        "shift-first must shift more ({} vs {})",
        shift_first.upd_shifted,
        extend_first.upd_shifted
    );
}

fn gbu_index_with(f: impl FnOnce(&mut GbuParams)) -> RTreeIndex {
    let mut params = GbuParams::default();
    f(&mut params);
    IndexBuilder::with_options(gbu_opts(params))
        .build_index()
        .unwrap()
}

#[test]
fn level_threshold_limits_ascent() {
    // With L = 1, no update may report an ascent of 2 levels — either it
    // resolves at the parent (levels = 1) or it falls back to the
    // root-level re-insert (levels = height − 1). Small pages force a
    // tall tree from few objects.
    let params = GbuParams {
        level_threshold: Some(1),
        ..GbuParams::default()
    };
    let opts = IndexOptions {
        page_size: 256,
        ..gbu_opts(params)
    };
    let mut index = IndexBuilder::with_options(opts).build_index().unwrap();
    let items = uniform_points(4_000, 6);
    let mut positions: Vec<Point> = items.iter().map(|&(_, p)| p).collect();
    for &(oid, p) in &items {
        index.insert(oid, p).unwrap();
    }
    assert!(index.height() >= 4, "need height ≥ 4 for the test to bite");
    let root_levels = index.height() - 1;
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..6_000 {
        let oid = rng.random_range(0..positions.len() as u64);
        let old = positions[oid as usize];
        let new = old.translated(rng.random_range(-0.1..0.1), rng.random_range(-0.1..0.1));
        let outcome = index.update(oid, old, new).unwrap();
        if let UpdateOutcome::Ascended { levels } = outcome {
            assert!(
                levels == 1 || levels == root_levels,
                "L=1 must not ascend {levels} levels"
            );
        }
        positions[oid as usize] = new;
    }
    index.validate().unwrap();
}

#[test]
fn piggyback_flag_controls_redistribution() {
    let run = |piggyback: bool| {
        let mut index = gbu_index_with(|p| {
            p.piggyback = piggyback;
            p.distance_threshold = 0.0; // shift-first to maximize shifts
        });
        let items = uniform_points(3_000, 8);
        let mut positions: Vec<Point> = items.iter().map(|&(_, p)| p).collect();
        for &(oid, p) in &items {
            index.insert(oid, p).unwrap();
        }
        index.op_stats().reset();
        churn(&mut index, &mut positions, 9, 8_000, 0.03);
        index.validate().unwrap();
        index.op_stats().snapshot()
    };
    let on = run(true);
    let off = run(false);
    assert!(on.upd_shifted > 100, "need shifts for the test to bite");
    assert!(on.piggybacked > 0, "piggybacking must move entries");
    assert_eq!(off.piggybacked, 0, "disabled piggybacking must move none");
}

#[test]
fn gbu_far_jump_outside_root_goes_top_down() {
    // Algorithm 2 line 1: "if newLocation lies outside rootMBR then
    // Issue a top-down update".
    let mut index = IndexBuilder::with_options(IndexOptions::generalized())
        .build_index()
        .unwrap();
    for (oid, p) in uniform_points(2_000, 10) {
        index.insert(oid, p).unwrap();
    }
    let items = uniform_points(2_000, 10);
    let outcome = index.update(42, items[42].1, Point::new(5.0, 5.0)).unwrap();
    assert_eq!(outcome, UpdateOutcome::TopDown);
    // The object is now findable at its far position.
    let hits = index.query(&Rect::new(4.9, 4.9, 5.1, 5.1)).unwrap();
    assert_eq!(hits, vec![42]);
    index.validate().unwrap();
}

#[test]
fn lbu_extension_bounded_by_parent() {
    // LBU with a huge ε may still never grow a leaf beyond its parent's
    // MBR; validate() enforces the containment invariant after heavy
    // extension-driven churn.
    let opts = IndexOptions {
        strategy: UpdateStrategy::Localized(LbuParams {
            epsilon: 0.5,
            ..LbuParams::default()
        }),
        ..IndexOptions::default()
    };
    let mut index = IndexBuilder::with_options(opts).build_index().unwrap();
    let items = uniform_points(3_000, 11);
    let mut positions: Vec<Point> = items.iter().map(|&(_, p)| p).collect();
    for &(oid, p) in &items {
        index.insert(oid, p).unwrap();
    }
    churn(&mut index, &mut positions, 12, 10_000, 0.05);
    index.validate().unwrap();
}

#[test]
fn kwon_mode_never_shifts() {
    // LbuParams::kwon disables sibling shifts (Section 3.1's lazy-update
    // R-tree): every update resolves in place, by enlargement, or falls
    // back to top-down. The full LBU on the same stream does shift.
    let run = |params: LbuParams| {
        let opts = IndexOptions {
            strategy: UpdateStrategy::Localized(params),
            ..IndexOptions::default()
        };
        let mut index = IndexBuilder::with_options(opts).build_index().unwrap();
        let items = uniform_points(3_000, 21);
        let mut positions: Vec<Point> = items.iter().map(|&(_, p)| p).collect();
        for &(oid, p) in &items {
            index.insert(oid, p).unwrap();
        }
        index.op_stats().reset();
        churn(&mut index, &mut positions, 22, 8_000, 0.03);
        index.validate().unwrap();
        index.op_stats().snapshot()
    };
    let kwon = run(LbuParams::kwon(0.003));
    let full = run(LbuParams::default());
    assert_eq!(kwon.upd_shifted, 0, "Kwon mode must never shift");
    assert!(full.upd_shifted > 0, "full LBU must shift on this stream");
    assert!(
        kwon.upd_top_down > full.upd_top_down,
        "without shifts more updates must fall back to top-down \
         ({} vs {})",
        kwon.upd_top_down,
        full.upd_top_down
    );
}

#[test]
fn summary_fullness_bits_track_reality() {
    // After arbitrary churn, the bit vector must agree with the actual
    // leaf fills (validate checks this; here we also confirm both full
    // and non-full leaves exist so the check is not vacuous).
    let mut index = IndexBuilder::with_options(IndexOptions::generalized())
        .build_index()
        .unwrap();
    let items = uniform_points(5_000, 13);
    let mut positions: Vec<Point> = items.iter().map(|&(_, p)| p).collect();
    for &(oid, p) in &items {
        index.insert(oid, p).unwrap();
    }
    churn(&mut index, &mut positions, 14, 10_000, 0.02);
    index.validate().unwrap();
    let (leaves, _, _, objs, _) = index.leaf_geometry().unwrap();
    assert!(leaves > 50);
    assert!(objs == 5_000);
}

#[test]
fn ascended_outcome_levels_are_sane() {
    let mut index = IndexBuilder::with_options(IndexOptions::generalized())
        .build_index()
        .unwrap();
    let items = uniform_points(4_000, 15);
    let mut positions: Vec<Point> = items.iter().map(|&(_, p)| p).collect();
    for &(oid, p) in &items {
        index.insert(oid, p).unwrap();
    }
    let max_levels = index.height() - 1;
    let mut rng = StdRng::seed_from_u64(16);
    let mut seen_ascent = false;
    for _ in 0..5_000 {
        let oid = rng.random_range(0..positions.len() as u64);
        let old = positions[oid as usize];
        let new = old.translated(rng.random_range(-0.08..0.08), rng.random_range(-0.08..0.08));
        if let UpdateOutcome::Ascended { levels } = index.update(oid, old, new).unwrap() {
            assert!(levels >= 1 && levels <= max_levels, "ascent {levels}");
            seen_ascent = true;
        }
        positions[oid as usize] = new;
    }
    assert!(seen_ascent);
}
