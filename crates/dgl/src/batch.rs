//! Per-granule commit batching.
//!
//! Under write-ahead logging, committing after every single operation
//! serialises updaters on the log: each one pays page logging and (with a
//! synchronous sync policy) an `fsync` inside its critical section. The
//! paper's throughput study runs 50 clients against one disk — exactly
//! the regime where that serialisation erases the bottom-up techniques'
//! advantage.
//!
//! [`CommitBatcher`] is the bookkeeping half of the fix: updaters *note*
//! the granule they touched and keep going; once enough operations have
//! accumulated (or on an explicit flush), the whole batch is committed as
//! **one** group commit record, and [`CommitBatcher::drain`] reports
//! which granules (and how many operations each) that record covered.
//! The durability window is the same as group commit: the unflushed tail
//! of a batch may be lost to a crash, but every flushed batch is atomic.

use crate::Granule;
use parking_lot::Mutex;
use std::collections::HashMap;

/// A batch of commit hooks drained by one group commit record.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CommitBatch {
    /// Total operations in the batch.
    pub ops: u64,
    /// Operations per granule, unordered.
    pub granules: Vec<(Granule, u64)>,
}

#[derive(Default)]
struct BatchState {
    per_granule: HashMap<Granule, u64>,
    ops: u64,
    /// Lifetime counters (survive drains).
    total_ops: u64,
    total_batches: u64,
}

/// Accumulates per-granule commit hooks between group commit records.
///
/// ```
/// use bur_dgl::{CommitBatcher, Granule};
///
/// let batcher = CommitBatcher::new();
/// batcher.note(Granule::Leaf(3));
/// batcher.note(Granule::Leaf(3));
/// batcher.note(Granule::Tree);
/// assert_eq!(batcher.pending(), 3);
/// let batch = batcher.drain();
/// assert_eq!(batch.ops, 3);
/// assert_eq!(batch.granules.len(), 2);
/// assert_eq!(batcher.pending(), 0);
/// ```
#[derive(Default)]
pub struct CommitBatcher {
    state: Mutex<BatchState>,
}

impl CommitBatcher {
    /// Fresh batcher with nothing pending.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one finished operation on `granule`; returns the number of
    /// operations now pending (the caller's flush trigger).
    pub fn note(&self, granule: Granule) -> u64 {
        self.note_n(granule, 1)
    }

    /// Record `n` finished operations on `granule` in one lock
    /// acquisition (the batch-apply path: thousands of operations under
    /// one granule must not pay a mutex round-trip each). Returns the
    /// number of operations now pending.
    pub fn note_n(&self, granule: Granule, n: u64) -> u64 {
        let mut state = self.state.lock();
        if n > 0 {
            *state.per_granule.entry(granule).or_insert(0) += n;
            state.ops += n;
            state.total_ops += n;
        }
        state.ops
    }

    /// Operations accumulated since the last drain.
    #[must_use]
    pub fn pending(&self) -> u64 {
        self.state.lock().ops
    }

    /// Distinct granules touched since the last drain.
    #[must_use]
    pub fn pending_granules(&self) -> usize {
        self.state.lock().per_granule.len()
    }

    /// Take the accumulated batch (the hooks one group commit record just
    /// covered) and reset. An empty batch is returned when nothing was
    /// pending; it does not count towards [`CommitBatcher::batches`].
    pub fn drain(&self) -> CommitBatch {
        let mut state = self.state.lock();
        if state.ops == 0 {
            return CommitBatch::default();
        }
        state.total_batches += 1;
        let ops = std::mem::take(&mut state.ops);
        let granules = std::mem::take(&mut state.per_granule).into_iter().collect();
        CommitBatch { ops, granules }
    }

    /// Lifetime `(operations noted, batches drained)` — the compression
    /// ratio of the batching.
    #[must_use]
    pub fn totals(&self) -> (u64, u64) {
        let state = self.state.lock();
        (state.total_ops, state.total_batches)
    }

    /// Lifetime batches drained.
    #[must_use]
    pub fn batches(&self) -> u64 {
        self.state.lock().total_batches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn note_accumulates_per_granule() {
        let b = CommitBatcher::new();
        assert_eq!(b.note(Granule::Leaf(1)), 1);
        assert_eq!(b.note(Granule::Leaf(1)), 2);
        assert_eq!(b.note(Granule::Leaf(2)), 3);
        assert_eq!(b.note(Granule::Tree), 4);
        assert_eq!(b.pending(), 4);
        assert_eq!(b.pending_granules(), 3);
        let mut batch = b.drain();
        batch.granules.sort();
        assert_eq!(batch.ops, 4);
        assert_eq!(
            batch.granules,
            vec![
                (Granule::Leaf(1), 2),
                (Granule::Leaf(2), 1),
                (Granule::Tree, 1)
            ]
        );
        assert_eq!(b.pending(), 0);
        assert_eq!(b.pending_granules(), 0);
    }

    #[test]
    fn note_n_batches_the_accounting() {
        let b = CommitBatcher::new();
        assert_eq!(b.note_n(Granule::Tree, 5), 5);
        assert_eq!(b.note_n(Granule::Leaf(2), 0), 5, "n = 0 notes nothing");
        assert_eq!(b.note(Granule::Tree), 6);
        let batch = b.drain();
        assert_eq!(batch.ops, 6);
        assert_eq!(batch.granules, vec![(Granule::Tree, 6)]);
        assert_eq!(b.totals(), (6, 1));
    }

    #[test]
    fn empty_drain_is_not_a_batch() {
        let b = CommitBatcher::new();
        assert_eq!(b.drain(), CommitBatch::default());
        assert_eq!(b.batches(), 0);
        b.note(Granule::Leaf(9));
        b.drain();
        b.drain();
        assert_eq!(b.batches(), 1);
        assert_eq!(b.totals(), (1, 1));
    }

    #[test]
    fn concurrent_notes_are_all_counted() {
        let b = std::sync::Arc::new(CommitBatcher::new());
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let b = b.clone();
                s.spawn(move || {
                    for i in 0..100u32 {
                        b.note(Granule::Leaf((t * 100 + i) % 16));
                    }
                });
            }
        });
        assert_eq!(b.pending(), 800);
        assert_eq!(b.drain().ops, 800);
    }
}
