//! Dynamic Granular Locking (DGL) for R-trees.
//!
//! The VLDB 2003 bottom-up update paper adopts DGL (Chakrabarti &
//! Mehrotra, "Dynamic Granular Locking Approach to Phantom Protection in
//! R-trees", ICDE 1998) for its throughput study: "DGL provides low
//! overhead phantom protection in R-trees by utilizing external and leaf
//! granules that can be locked or released. The finest granular level is
//! the leaf MBR."
//!
//! This crate implements the lock-manager half of DGL:
//!
//! * [`Granule`] — a lockable unit: one per leaf node, plus one *external*
//!   granule per internal node covering the space not owned by any child
//!   (new objects that fall outside every leaf MBR are protected by the
//!   external granule of the node that absorbs them).
//! * [`LockManager`] — S/X granule locks with FIFO-fair blocking,
//!   timeout-based deadlock resolution, and deadlock *avoidance* helpers
//!   (lock sets are acquired in sorted order).
//!
//! The paper's observation that bottom-up updates "fit naturally into DGL"
//! holds here too: a bottom-up update X-locks exactly the granules of the
//! leaves it touches, so a concurrent top-down scan acquiring S locks on
//! overlapping granules serializes against it, regardless of the
//! direction either operation walked the tree.

#![warn(missing_docs)]

mod batch;
mod manager;

pub use batch::{CommitBatch, CommitBatcher};
pub use manager::{LockGuard, LockManager, LockMode, LockSetGuard, TryLockError};

/// A lockable granule. The paper associates "each entry in the direct
/// access table and the bit vector with 3 locking bits"; we key granules
/// by the page id they protect instead, which is equivalent and keeps the
/// lock table independent of the summary layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Granule {
    /// The granule of one leaf node (finest granularity: the leaf MBR).
    Leaf(u32),
    /// The external granule of one internal node: protects inserts that
    /// fall outside all current leaf MBRs under that node.
    External(u32),
    /// Whole-tree granule (used for structure-modifying operations).
    Tree,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn granule_ordering_is_total() {
        let mut g = vec![
            Granule::Tree,
            Granule::Leaf(2),
            Granule::External(1),
            Granule::Leaf(1),
        ];
        g.sort();
        // Sorted order is deterministic (variant order, then id) which is
        // all the deadlock-avoidance protocol needs.
        let mut h = g.clone();
        h.sort();
        assert_eq!(g, h);
        assert!(g.windows(2).all(|w| w[0] <= w[1]));
    }
}
