//! The granule lock manager.

use crate::Granule;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::fmt;
use std::time::{Duration, Instant};

/// Lock modes. DGL needs only these two at the granule level; intention
/// modes live on the tree granule which we expose as [`Granule::Tree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared: searchers reading the objects under a granule.
    Shared,
    /// Exclusive: updaters inserting/deleting/moving objects in a granule.
    Exclusive,
}

/// Why a lock acquisition failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryLockError {
    /// The lock is held in a conflicting mode right now.
    WouldBlock,
    /// The wait exceeded the deadline — the caller should release its
    /// locks and retry (timeout-based deadlock resolution).
    Timeout,
}

impl fmt::Display for TryLockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryLockError::WouldBlock => write!(f, "lock is held in a conflicting mode"),
            TryLockError::Timeout => write!(f, "lock wait timed out (possible deadlock)"),
        }
    }
}

impl std::error::Error for TryLockError {}

#[derive(Debug, Default)]
struct LockState {
    shared: usize,
    exclusive: bool,
}

impl LockState {
    fn compatible(&self, mode: LockMode) -> bool {
        match mode {
            LockMode::Shared => !self.exclusive,
            LockMode::Exclusive => !self.exclusive && self.shared == 0,
        }
    }

    fn acquire(&mut self, mode: LockMode) {
        match mode {
            LockMode::Shared => self.shared += 1,
            LockMode::Exclusive => self.exclusive = true,
        }
    }

    fn release(&mut self, mode: LockMode) {
        match mode {
            LockMode::Shared => self.shared -= 1,
            LockMode::Exclusive => self.exclusive = false,
        }
    }

    fn is_free(&self) -> bool {
        self.shared == 0 && !self.exclusive
    }
}

/// S/X lock table over [`Granule`]s with blocking waits and timeouts.
///
/// Deadlock handling is two-layered, mirroring what the paper needs:
/// callers that know their full lock set up front use
/// [`LockManager::lock_set`], which sorts granules so cycles cannot form;
/// callers that discover granules incrementally (a top-down scan meeting a
/// bottom-up update) rely on the timeout in [`LockManager::lock`] and
/// retry from scratch.
///
/// ```
/// use bur_dgl::{Granule, LockManager, LockMode};
/// use std::time::Duration;
///
/// let locks = LockManager::new();
/// let t = Duration::from_millis(50);
/// // A scan shares two leaf granules ...
/// let scan = locks
///     .lock_set(&[Granule::Leaf(1), Granule::Leaf(2)], LockMode::Shared, t)
///     .unwrap();
/// // ... so an update of leaf 2 must wait (here: fail fast).
/// assert!(locks.try_lock(Granule::Leaf(2), LockMode::Exclusive).is_err());
/// drop(scan);
/// assert!(locks.try_lock(Granule::Leaf(2), LockMode::Exclusive).is_ok());
/// ```
#[derive(Default)]
pub struct LockManager {
    table: Mutex<HashMap<Granule, LockState>>,
    released: Condvar,
}

impl LockManager {
    /// Fresh lock manager with no locks held.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of granules currently locked (diagnostics).
    #[must_use]
    pub fn locked_granules(&self) -> usize {
        self.table.lock().len()
    }

    /// Acquire `granule` in `mode`, waiting at most `timeout`.
    pub fn lock(
        &self,
        granule: Granule,
        mode: LockMode,
        timeout: Duration,
    ) -> Result<LockGuard<'_>, TryLockError> {
        let deadline = Instant::now() + timeout;
        let mut table = self.table.lock();
        loop {
            let state = table.entry(granule).or_default();
            if state.compatible(mode) {
                state.acquire(mode);
                return Ok(LockGuard {
                    mgr: self,
                    granule,
                    mode,
                });
            }
            if self.released.wait_until(&mut table, deadline).timed_out() {
                return Err(TryLockError::Timeout);
            }
        }
    }

    /// Acquire without waiting.
    pub fn try_lock(
        &self,
        granule: Granule,
        mode: LockMode,
    ) -> Result<LockGuard<'_>, TryLockError> {
        let mut table = self.table.lock();
        let state = table.entry(granule).or_default();
        if state.compatible(mode) {
            state.acquire(mode);
            Ok(LockGuard {
                mgr: self,
                granule,
                mode,
            })
        } else {
            Err(TryLockError::WouldBlock)
        }
    }

    /// Acquire a whole set of granules in `mode`.
    ///
    /// Granules are deduplicated and acquired in sorted order, so two
    /// `lock_set` callers can never deadlock against each other. On
    /// timeout every granule acquired so far is released.
    pub fn lock_set(
        &self,
        granules: &[Granule],
        mode: LockMode,
        timeout: Duration,
    ) -> Result<LockSetGuard<'_>, TryLockError> {
        let mut sorted: Vec<Granule> = granules.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut guards = Vec::with_capacity(sorted.len());
        for g in sorted {
            match self.lock(g, mode, timeout) {
                Ok(guard) => guards.push(guard),
                Err(e) => return Err(e), // guards drop, releasing everything
            }
        }
        Ok(LockSetGuard { guards })
    }

    fn release(&self, granule: Granule, mode: LockMode) {
        let mut table = self.table.lock();
        let state = table
            .get_mut(&granule)
            .expect("released granule must be in table");
        state.release(mode);
        if state.is_free() {
            table.remove(&granule);
        }
        drop(table);
        self.released.notify_all();
    }
}

/// Holds one granule lock; released on drop.
pub struct LockGuard<'a> {
    mgr: &'a LockManager,
    granule: Granule,
    mode: LockMode,
}

impl LockGuard<'_> {
    /// The locked granule.
    #[must_use]
    pub fn granule(&self) -> Granule {
        self.granule
    }

    /// The held mode.
    #[must_use]
    pub fn mode(&self) -> LockMode {
        self.mode
    }
}

impl Drop for LockGuard<'_> {
    fn drop(&mut self) {
        self.mgr.release(self.granule, self.mode);
    }
}

/// Holds a set of granule locks; all released on drop.
pub struct LockSetGuard<'a> {
    guards: Vec<LockGuard<'a>>,
}

impl LockSetGuard<'_> {
    /// Number of granules held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.guards.len()
    }

    /// `true` when no granules are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.guards.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    const T: Duration = Duration::from_millis(200);

    #[test]
    fn shared_locks_coexist() {
        let m = LockManager::new();
        let a = m.lock(Granule::Leaf(1), LockMode::Shared, T).unwrap();
        let b = m.lock(Granule::Leaf(1), LockMode::Shared, T).unwrap();
        assert_eq!(a.granule(), b.granule());
        assert_eq!(m.locked_granules(), 1);
    }

    #[test]
    fn exclusive_conflicts() {
        let m = LockManager::new();
        let _x = m.lock(Granule::Leaf(1), LockMode::Exclusive, T).unwrap();
        assert_eq!(
            m.try_lock(Granule::Leaf(1), LockMode::Shared).err(),
            Some(TryLockError::WouldBlock)
        );
        assert_eq!(
            m.try_lock(Granule::Leaf(1), LockMode::Exclusive).err(),
            Some(TryLockError::WouldBlock)
        );
        // A different granule is independent.
        assert!(m.try_lock(Granule::Leaf(2), LockMode::Exclusive).is_ok());
        assert!(m.try_lock(Granule::External(1), LockMode::Shared).is_ok());
    }

    #[test]
    fn shared_blocks_exclusive() {
        let m = LockManager::new();
        let _s = m.lock(Granule::External(3), LockMode::Shared, T).unwrap();
        let err = m
            .lock(
                Granule::External(3),
                LockMode::Exclusive,
                Duration::from_millis(50),
            )
            .err();
        assert_eq!(err, Some(TryLockError::Timeout));
    }

    #[test]
    fn release_wakes_waiter() {
        let m = Arc::new(LockManager::new());
        let x = m.lock(Granule::Leaf(9), LockMode::Exclusive, T).unwrap();
        let m2 = m.clone();
        let h = std::thread::spawn(move || {
            m2.lock(Granule::Leaf(9), LockMode::Shared, Duration::from_secs(5))
                .map(|g| g.mode())
        });
        std::thread::sleep(Duration::from_millis(50));
        drop(x);
        assert_eq!(h.join().unwrap().unwrap(), LockMode::Shared);
        // Table is cleaned up after everything drops.
        assert_eq!(m.locked_granules(), 0);
    }

    #[test]
    fn lock_set_sorted_and_deduped() {
        let m = LockManager::new();
        let set = m
            .lock_set(
                &[
                    Granule::Leaf(2),
                    Granule::Leaf(1),
                    Granule::Leaf(2),
                    Granule::External(7),
                ],
                LockMode::Exclusive,
                T,
            )
            .unwrap();
        assert_eq!(set.len(), 3);
        assert!(!set.is_empty());
        assert_eq!(m.locked_granules(), 3);
        drop(set);
        assert_eq!(m.locked_granules(), 0);
    }

    #[test]
    fn lock_set_timeout_releases_partial() {
        let m = LockManager::new();
        let _held = m.lock(Granule::Leaf(5), LockMode::Exclusive, T).unwrap();
        let err = m
            .lock_set(
                &[Granule::Leaf(1), Granule::Leaf(5), Granule::Leaf(9)],
                LockMode::Exclusive,
                Duration::from_millis(50),
            )
            .err();
        assert_eq!(err, Some(TryLockError::Timeout));
        // Leaf(1) acquired before the timeout must have been released.
        assert!(m.try_lock(Granule::Leaf(1), LockMode::Exclusive).is_ok());
        assert!(m.try_lock(Granule::Leaf(9), LockMode::Exclusive).is_ok());
    }

    #[test]
    fn phantom_protection_scenario() {
        // A scanner holds S on the granules its window overlaps. An
        // updater inserting into one of those leaves must block until the
        // scan finishes — this is the phantom-protection contract the
        // paper relies on when mixing top-down scans with bottom-up
        // updates.
        let m = Arc::new(LockManager::new());
        let scan = m
            .lock_set(
                &[Granule::Leaf(1), Granule::Leaf(2), Granule::External(10)],
                LockMode::Shared,
                T,
            )
            .unwrap();
        let m2 = m.clone();
        let updater = std::thread::spawn(move || {
            // Bottom-up update into leaf 2: blocks until scan drops.
            let started = Instant::now();
            let _g = m2
                .lock(
                    Granule::Leaf(2),
                    LockMode::Exclusive,
                    Duration::from_secs(5),
                )
                .unwrap();
            started.elapsed()
        });
        std::thread::sleep(Duration::from_millis(80));
        drop(scan);
        let waited = updater.join().unwrap();
        assert!(
            waited >= Duration::from_millis(60),
            "updater must wait for scan"
        );
    }

    #[test]
    fn stress_mutual_exclusion_invariant() {
        // Many threads hammer a few granules; a per-granule counter
        // checked under X must never observe concurrent modification.
        let m = Arc::new(LockManager::new());
        let counters: Arc<Vec<AtomicUsize>> =
            Arc::new((0..4).map(|_| AtomicUsize::new(0)).collect());
        std::thread::scope(|s| {
            for t in 0..8 {
                let m = m.clone();
                let counters = counters.clone();
                s.spawn(move || {
                    for i in 0..300 {
                        let g = ((t * 31 + i * 7) % 4) as u32;
                        if i % 3 == 0 {
                            let _x = m
                                .lock(
                                    Granule::Leaf(g),
                                    LockMode::Exclusive,
                                    Duration::from_secs(10),
                                )
                                .unwrap();
                            let c = &counters[g as usize];
                            let v = c.load(Ordering::SeqCst);
                            std::thread::yield_now();
                            c.store(v + 1, Ordering::SeqCst);
                        } else {
                            let _s = m
                                .lock(Granule::Leaf(g), LockMode::Shared, Duration::from_secs(10))
                                .unwrap();
                            let _ = counters[g as usize].load(Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        // Every X section incremented exactly once => total = #X sections.
        let total: usize = counters.iter().map(|c| c.load(Ordering::SeqCst)).sum();
        assert_eq!(total, 8 * 100);
        assert_eq!(m.locked_granules(), 0);
    }
}
