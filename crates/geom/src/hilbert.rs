//! Hilbert space-filling curve.
//!
//! Maps 2-D cells onto a 1-D index such that consecutive indices are
//! always adjacent cells — the locality property behind Hilbert-packed
//! R-trees (Kamel & Faloutsos), one of the R-tree variants the paper's
//! related work surveys. Used by the Hilbert bulk loader in `bur-core`.

use crate::{Point, Rect};

/// Cells per axis for a curve of the given order (`2^order`).
#[inline]
#[must_use]
pub fn hilbert_side(order: u32) -> u64 {
    1u64 << order
}

/// Hilbert index of the integer cell `(x, y)` on a curve of the given
/// order. `x` and `y` must be below [`hilbert_side`]`(order)`; the index
/// ranges over `0 .. 4^order`.
#[must_use]
pub fn hilbert_index(mut x: u64, mut y: u64, order: u32) -> u64 {
    let side = hilbert_side(order);
    debug_assert!(
        x < side && y < side,
        "cell ({x}, {y}) outside order-{order} grid"
    );
    let mut d: u64 = 0;
    let mut s = side / 2;
    while s > 0 {
        let rx = u64::from(x & s > 0);
        let ry = u64::from(y & s > 0);
        d += s * s * ((3 * rx) ^ ry);
        // Rotate/flip the quadrant so the sub-curve is oriented
        // canonically (the classic xy2d rotation).
        if ry == 0 {
            if rx == 1 {
                x = side - 1 - x;
                y = side - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

/// Hilbert key of a point in (roughly) the unit square: coordinates are
/// clamped to `[0, 1]` and quantized onto a `2^order × 2^order` grid.
/// Sorting points by this key places spatial neighbors near each other
/// in the sort order.
#[must_use]
pub fn hilbert_key(p: Point, order: u32) -> u64 {
    let side = hilbert_side(order);
    let quantize = |v: f32| -> u64 {
        let clamped = v.clamp(0.0, 1.0) as f64;
        ((clamped * side as f64) as u64).min(side - 1)
    };
    hilbert_index(quantize(p.x), quantize(p.y), order)
}

/// A half-open range `[start, end)` of Hilbert indices on some curve.
///
/// Produced by [`hilbert_ranges`]; consumed by the shard router to decide
/// which key ranges (and therefore which shards) a window query can touch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HilbertRange {
    /// First index covered by the range.
    pub start: u64,
    /// One past the last index covered by the range.
    pub end: u64,
}

impl HilbertRange {
    /// Whether `key` falls inside the range.
    #[inline]
    #[must_use]
    pub fn contains(&self, key: u64) -> bool {
        self.start <= key && key < self.end
    }

    /// Whether this range and the half-open key range `[lo, hi)` overlap.
    #[inline]
    #[must_use]
    pub fn overlaps(&self, lo: u64, hi: u64) -> bool {
        self.start < hi && lo < self.end
    }
}

/// Refinement floor for [`hilbert_ranges`]: the decomposition never
/// descends more than this many levels below the root square, so the
/// number of ranges produced before budget-merging stays bounded
/// (`O(2^depth)` boundary squares) even on high-order curves. Coarser
/// squares only ever *add* covered indices, so the superset guarantee
/// holds regardless.
const DECOMP_MAX_DEPTH: u32 = 10;

/// Decompose a query rectangle into a small set of disjoint, sorted
/// Hilbert-index ranges that together cover **every** grid cell the
/// rectangle touches on the order-`order` curve.
///
/// Guarantees:
///
/// * **Superset coverage.** For any point `p` with `rect.contains_point(&p)`,
///   [`hilbert_key`]`(p, order)` lies inside one of the returned ranges.
///   The converse need not hold: budget-merging and the refinement floor
///   can pull in extra indices, which is fine for routing (shards filter
///   by running the real window query against their trees).
/// * **Exactness on small grids.** With an unlimited budget and
///   `order <= 10`, the result is the *minimal* set of maximal runs of
///   curve indices whose cells intersect the rectangle.
/// * **Budget.** At most `max(budget, 1)` ranges are returned; excess
///   ranges are merged pairwise across the smallest index gaps first,
///   trading precision (false-positive indices) for fan-out.
///
/// An invalid or empty-by-inversion rectangle yields no ranges.
#[must_use]
pub fn hilbert_ranges(rect: &Rect, order: u32, budget: usize) -> Vec<HilbertRange> {
    if !rect.is_valid() {
        return Vec::new();
    }
    let side = hilbert_side(order);
    let quantize = |v: f32| -> u64 {
        let clamped = v.clamp(0.0, 1.0) as f64;
        ((clamped * side as f64) as u64).min(side - 1)
    };
    // Cell interval touched by the rect, inclusive on both ends, using the
    // same quantization as `hilbert_key` so point keys land inside it.
    let (x0, x1) = (quantize(rect.min_x), quantize(rect.max_x));
    let (y0, y1) = (quantize(rect.min_y), quantize(rect.max_y));
    let min_size = side >> DECOMP_MAX_DEPTH.min(order);

    let mut ranges = Vec::new();
    descend(0, 0, side, (x0, x1, y0, y1), order, min_size, &mut ranges);
    ranges.sort_unstable_by_key(|r| r.start);

    // Coalesce ranges that abut on the curve into maximal runs.
    let mut merged: Vec<HilbertRange> = Vec::with_capacity(ranges.len());
    for r in ranges {
        match merged.last_mut() {
            Some(last) if last.end == r.start => last.end = r.end,
            _ => merged.push(r),
        }
    }

    // Enforce the budget by repeatedly bridging the smallest gap between
    // adjacent runs. Each bridge admits `gap` false-positive indices, so
    // taking the smallest gaps first minimizes the slop introduced.
    let budget = budget.max(1);
    while merged.len() > budget {
        let mut best = 1;
        let mut best_gap = u64::MAX;
        for i in 1..merged.len() {
            let gap = merged[i].start - merged[i - 1].end;
            if gap < best_gap {
                best_gap = gap;
                best = i;
            }
        }
        merged[best - 1].end = merged[best].end;
        merged.remove(best);
    }
    merged
}

/// Recursive quadrant descent for [`hilbert_ranges`]. Every axis-aligned
/// `size × size` square at offsets that are multiples of `size` occupies
/// one contiguous run of `size²` curve indices; the run's base is the
/// Hilbert index of any of its cells rounded down to a multiple of
/// `size²`. Emit that run when the square is fully covered (or when the
/// refinement floor is hit), otherwise split into four sub-squares.
fn descend(
    sq_x: u64,
    sq_y: u64,
    size: u64,
    cells: (u64, u64, u64, u64),
    order: u32,
    min_size: u64,
    out: &mut Vec<HilbertRange>,
) {
    let (x0, x1, y0, y1) = cells;
    // Disjoint from the query's cell interval?
    if sq_x > x1 || sq_x + size - 1 < x0 || sq_y > y1 || sq_y + size - 1 < y0 {
        return;
    }
    let covered = x0 <= sq_x && sq_x + size - 1 <= x1 && y0 <= sq_y && sq_y + size - 1 <= y1;
    if covered || size <= min_size.max(1) {
        let span = size * size;
        let base = hilbert_index(sq_x, sq_y, order) / span * span;
        out.push(HilbertRange {
            start: base,
            end: base + span,
        });
        return;
    }
    let half = size / 2;
    descend(sq_x, sq_y, half, cells, order, min_size, out);
    descend(sq_x + half, sq_y, half, cells, order, min_size, out);
    descend(sq_x, sq_y + half, half, cells, order, min_size, out);
    descend(sq_x + half, sq_y + half, half, cells, order, min_size, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn order_one_square() {
        // The order-1 curve visits the four cells in a ⊐ shape:
        // (0,0) → (0,1) → (1,1) → (1,0).
        assert_eq!(hilbert_index(0, 0, 1), 0);
        assert_eq!(hilbert_index(0, 1, 1), 1);
        assert_eq!(hilbert_index(1, 1, 1), 2);
        assert_eq!(hilbert_index(1, 0, 1), 3);
    }

    #[test]
    fn bijective_on_small_grids() {
        for order in 1..=5 {
            let side = hilbert_side(order);
            let mut seen = HashSet::new();
            for x in 0..side {
                for y in 0..side {
                    let d = hilbert_index(x, y, order);
                    assert!(d < side * side, "index {d} out of range");
                    assert!(seen.insert(d), "duplicate index {d} at ({x}, {y})");
                }
            }
            assert_eq!(seen.len() as u64, side * side);
        }
    }

    #[test]
    fn consecutive_indices_are_adjacent_cells() {
        // The defining locality property: walking the curve moves one
        // cell at a time (Manhattan distance 1).
        let order = 4;
        let side = hilbert_side(order);
        let mut by_index = vec![(0u64, 0u64); (side * side) as usize];
        for x in 0..side {
            for y in 0..side {
                by_index[hilbert_index(x, y, order) as usize] = (x, y);
            }
        }
        for w in by_index.windows(2) {
            let (ax, ay) = w[0];
            let (bx, by) = w[1];
            let dist = ax.abs_diff(bx) + ay.abs_diff(by);
            assert_eq!(dist, 1, "curve jumped from {:?} to {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn keys_cluster_neighbors() {
        // Two nearby points get closer keys than two far-apart points,
        // on average; spot-check an unambiguous case.
        let a = hilbert_key(Point::new(0.10, 0.10), 16);
        let b = hilbert_key(Point::new(0.10, 0.11), 16);
        let c = hilbert_key(Point::new(0.90, 0.90), 16);
        assert!(a.abs_diff(b) < a.abs_diff(c));
    }

    /// Brute-force reference: the sorted maximal runs of curve indices
    /// whose cells fall inside the rect's quantized cell interval.
    fn brute_force_runs(rect: &Rect, order: u32) -> Vec<HilbertRange> {
        let side = hilbert_side(order);
        let quantize = |v: f32| -> u64 {
            let clamped = v.clamp(0.0, 1.0) as f64;
            ((clamped * side as f64) as u64).min(side - 1)
        };
        let (x0, x1) = (quantize(rect.min_x), quantize(rect.max_x));
        let (y0, y1) = (quantize(rect.min_y), quantize(rect.max_y));
        let mut indices: Vec<u64> = (x0..=x1)
            .flat_map(|x| (y0..=y1).map(move |y| (x, y)))
            .map(|(x, y)| hilbert_index(x, y, order))
            .collect();
        indices.sort_unstable();
        let mut runs: Vec<HilbertRange> = Vec::new();
        for d in indices {
            match runs.last_mut() {
                Some(last) if last.end == d => last.end = d + 1,
                _ => runs.push(HilbertRange {
                    start: d,
                    end: d + 1,
                }),
            }
        }
        runs
    }

    #[test]
    fn decomposition_matches_brute_force_on_small_grids() {
        // Unlimited budget on a small grid must reproduce the *minimal*
        // run set exactly — same runs, same count, nothing merged over.
        let rects = [
            Rect::new(0.0, 0.0, 1.0, 1.0),
            Rect::new(0.1, 0.2, 0.6, 0.9),
            Rect::new(0.45, 0.45, 0.55, 0.55),
            Rect::new(0.0, 0.7, 0.2, 0.75),
            Rect::new(0.8, 0.0, 1.0, 0.3),
            Rect::from_point(Point::new(0.33, 0.77)),
        ];
        for order in 1..=5 {
            for rect in &rects {
                let got = hilbert_ranges(rect, order, usize::MAX);
                let want = brute_force_runs(rect, order);
                assert_eq!(got, want, "order {order}, rect {rect:?}");
            }
        }
    }

    #[test]
    fn decomposition_is_sorted_and_disjoint() {
        let rect = Rect::new(0.12, 0.34, 0.81, 0.66);
        for order in 1..=8 {
            for budget in [1usize, 2, 4, 16, usize::MAX] {
                let ranges = hilbert_ranges(&rect, order, budget);
                assert!(ranges.len() <= budget.max(1));
                for w in ranges.windows(2) {
                    assert!(
                        w[0].end < w[1].start,
                        "ranges not disjoint/maximal at order {order}: {w:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn budget_merging_keeps_superset_coverage() {
        // Capping the budget may admit false positives but must never
        // drop a cell the rect touches.
        let rect = Rect::new(0.05, 0.1, 0.9, 0.4);
        for order in 2..=6 {
            let exact = brute_force_runs(&rect, order);
            for budget in [1usize, 2, 3, 8] {
                let capped = hilbert_ranges(&rect, order, budget);
                assert!(capped.len() <= budget);
                for run in &exact {
                    for d in run.start..run.end {
                        assert!(
                            capped.iter().any(|r| r.contains(d)),
                            "budget {budget} dropped index {d} at order {order}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn point_keys_land_inside_decomposed_ranges() {
        // The routing contract: any point inside the rect hashes to a key
        // covered by the decomposition, including on high-order curves
        // where the refinement floor kicks in.
        let rect = Rect::new(0.21, 0.43, 0.65, 0.87);
        let mut x = 0.22f32;
        let mut y = 0.44f32;
        for order in [4u32, 10, 16] {
            let ranges = hilbert_ranges(&rect, order, 12);
            for _ in 0..200 {
                // Cheap deterministic walk that stays inside the rect.
                x = rect.min_x + (x * 7.31 + y * 3.7).fract() * (rect.max_x - rect.min_x);
                y = rect.min_y + (y * 5.17 + x * 2.9).fract() * (rect.max_y - rect.min_y);
                let key = hilbert_key(Point::new(x, y), order);
                assert!(
                    ranges.iter().any(|r| r.contains(key)),
                    "key {key} escaped decomposition at order {order}"
                );
            }
        }
    }

    #[test]
    fn invalid_rect_decomposes_to_nothing() {
        assert!(hilbert_ranges(&Rect::EMPTY, 4, 8).is_empty());
        assert!(hilbert_ranges(&Rect::new(0.5, 0.5, 0.1, 0.9), 4, 8).is_empty());
    }

    #[test]
    fn out_of_square_points_clamp() {
        let lo = hilbert_key(Point::new(-5.0, -5.0), 8);
        let hi = hilbert_key(Point::new(5.0, 5.0), 8);
        let side = hilbert_side(8);
        assert!(lo < side * side);
        assert!(hi < side * side);
        assert_eq!(lo, hilbert_key(Point::new(0.0, 0.0), 8));
        assert_eq!(hi, hilbert_key(Point::new(1.0, 1.0), 8));
    }
}
