//! Hilbert space-filling curve.
//!
//! Maps 2-D cells onto a 1-D index such that consecutive indices are
//! always adjacent cells — the locality property behind Hilbert-packed
//! R-trees (Kamel & Faloutsos), one of the R-tree variants the paper's
//! related work surveys. Used by the Hilbert bulk loader in `bur-core`.

use crate::Point;

/// Cells per axis for a curve of the given order (`2^order`).
#[inline]
#[must_use]
pub fn hilbert_side(order: u32) -> u64 {
    1u64 << order
}

/// Hilbert index of the integer cell `(x, y)` on a curve of the given
/// order. `x` and `y` must be below [`hilbert_side`]`(order)`; the index
/// ranges over `0 .. 4^order`.
#[must_use]
pub fn hilbert_index(mut x: u64, mut y: u64, order: u32) -> u64 {
    let side = hilbert_side(order);
    debug_assert!(
        x < side && y < side,
        "cell ({x}, {y}) outside order-{order} grid"
    );
    let mut d: u64 = 0;
    let mut s = side / 2;
    while s > 0 {
        let rx = u64::from(x & s > 0);
        let ry = u64::from(y & s > 0);
        d += s * s * ((3 * rx) ^ ry);
        // Rotate/flip the quadrant so the sub-curve is oriented
        // canonically (the classic xy2d rotation).
        if ry == 0 {
            if rx == 1 {
                x = side - 1 - x;
                y = side - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

/// Hilbert key of a point in (roughly) the unit square: coordinates are
/// clamped to `[0, 1]` and quantized onto a `2^order × 2^order` grid.
/// Sorting points by this key places spatial neighbors near each other
/// in the sort order.
#[must_use]
pub fn hilbert_key(p: Point, order: u32) -> u64 {
    let side = hilbert_side(order);
    let quantize = |v: f32| -> u64 {
        let clamped = v.clamp(0.0, 1.0) as f64;
        ((clamped * side as f64) as u64).min(side - 1)
    };
    hilbert_index(quantize(p.x), quantize(p.y), order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn order_one_square() {
        // The order-1 curve visits the four cells in a ⊐ shape:
        // (0,0) → (0,1) → (1,1) → (1,0).
        assert_eq!(hilbert_index(0, 0, 1), 0);
        assert_eq!(hilbert_index(0, 1, 1), 1);
        assert_eq!(hilbert_index(1, 1, 1), 2);
        assert_eq!(hilbert_index(1, 0, 1), 3);
    }

    #[test]
    fn bijective_on_small_grids() {
        for order in 1..=5 {
            let side = hilbert_side(order);
            let mut seen = HashSet::new();
            for x in 0..side {
                for y in 0..side {
                    let d = hilbert_index(x, y, order);
                    assert!(d < side * side, "index {d} out of range");
                    assert!(seen.insert(d), "duplicate index {d} at ({x}, {y})");
                }
            }
            assert_eq!(seen.len() as u64, side * side);
        }
    }

    #[test]
    fn consecutive_indices_are_adjacent_cells() {
        // The defining locality property: walking the curve moves one
        // cell at a time (Manhattan distance 1).
        let order = 4;
        let side = hilbert_side(order);
        let mut by_index = vec![(0u64, 0u64); (side * side) as usize];
        for x in 0..side {
            for y in 0..side {
                by_index[hilbert_index(x, y, order) as usize] = (x, y);
            }
        }
        for w in by_index.windows(2) {
            let (ax, ay) = w[0];
            let (bx, by) = w[1];
            let dist = ax.abs_diff(bx) + ay.abs_diff(by);
            assert_eq!(dist, 1, "curve jumped from {:?} to {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn keys_cluster_neighbors() {
        // Two nearby points get closer keys than two far-apart points,
        // on average; spot-check an unambiguous case.
        let a = hilbert_key(Point::new(0.10, 0.10), 16);
        let b = hilbert_key(Point::new(0.10, 0.11), 16);
        let c = hilbert_key(Point::new(0.90, 0.90), 16);
        assert!(a.abs_diff(b) < a.abs_diff(c));
    }

    #[test]
    fn out_of_square_points_clamp() {
        let lo = hilbert_key(Point::new(-5.0, -5.0), 8);
        let hi = hilbert_key(Point::new(5.0, 5.0), 8);
        let side = hilbert_side(8);
        assert!(lo < side * side);
        assert!(hi < side * side);
        assert_eq!(lo, hilbert_key(Point::new(0.0, 0.0), 8));
        assert_eq!(hi, hilbert_key(Point::new(1.0, 1.0), 8));
    }
}
