//! 2-D geometry primitives for the `bur` workspace.
//!
//! The paper ("Supporting Frequent Updates in R-Trees: A Bottom-Up
//! Approach", VLDB 2003) indexes 2-D points moving inside the unit square,
//! bounded by minimum bounding rectangles (MBRs). This crate provides the
//! two value types everything else is built on:
//!
//! * [`Point`] — a 2-D point with `f32` coordinates (the on-page format of
//!   the index stores coordinates as little-endian `f32`).
//! * [`Rect`] — an axis-aligned rectangle used both as an MBR and as a
//!   query window.
//!
//! All operations are total for *valid* geometry (finite coordinates,
//! `min <= max` per axis). Invalid rectangles are representable — e.g. the
//! [`Rect::EMPTY`] identity for unions — and every predicate documents how
//! it treats them.

#![warn(missing_docs)]

pub mod hilbert;
mod point;
mod rect;

pub use point::Point;
pub use rect::Rect;

/// A direction of movement along one axis, used by the directional MBR
/// extension of the paper's Algorithm 4 (`iExtendMBR`): "if the object
/// moves Northeast, we enlarge the MBR towards the North and East only".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AxisDir {
    /// Moving towards negative coordinates (West / South).
    Neg,
    /// No movement along this axis.
    None,
    /// Moving towards positive coordinates (East / North).
    Pos,
}

/// Movement of a point decomposed per axis, as needed by `iExtendMBR`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Movement {
    /// Horizontal component (East = `Pos`).
    pub x: AxisDir,
    /// Vertical component (North = `Pos`).
    pub y: AxisDir,
}

impl Movement {
    /// Decompose the movement from `old` to `new` into per-axis directions.
    #[must_use]
    pub fn between(old: Point, new: Point) -> Self {
        let x = if new.x > old.x {
            AxisDir::Pos
        } else if new.x < old.x {
            AxisDir::Neg
        } else {
            AxisDir::None
        };
        let y = if new.y > old.y {
            AxisDir::Pos
        } else if new.y < old.y {
            AxisDir::Neg
        } else {
            AxisDir::None
        };
        Self { x, y }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn movement_decomposition() {
        let m = Movement::between(Point::new(0.5, 0.5), Point::new(0.7, 0.2));
        assert_eq!(m.x, AxisDir::Pos);
        assert_eq!(m.y, AxisDir::Neg);
        let m = Movement::between(Point::new(0.5, 0.5), Point::new(0.5, 0.5));
        assert_eq!(m.x, AxisDir::None);
        assert_eq!(m.y, AxisDir::None);
    }
}
