//! 2-D points.

use std::fmt;

/// A 2-D point with `f32` coordinates.
///
/// Points are the objects indexed by the paper's experiments ("Each object
/// is a 2D point in a unit square"). `f32` matches the on-page storage
/// format of the index; the unit-square workloads need ~7 decimal digits of
/// precision at most.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f32,
    /// Vertical coordinate.
    pub y: f32,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Create a point from its coordinates.
    #[inline]
    #[must_use]
    pub const fn new(x: f32, y: f32) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to another point.
    #[inline]
    #[must_use]
    pub fn distance(&self, other: &Point) -> f32 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance (cheaper when only comparing distances).
    #[inline]
    #[must_use]
    pub fn distance_sq(&self, other: &Point) -> f32 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Chebyshev (L∞) distance: the largest per-axis displacement. The
    /// paper's distance threshold τ classifies objects as fast or slow by
    /// "the distance moved in-between consecutive updates"; either norm
    /// works, we expose both.
    #[inline]
    #[must_use]
    pub fn chebyshev_distance(&self, other: &Point) -> f32 {
        (self.x - other.x).abs().max((self.y - other.y).abs())
    }

    /// Componentwise translation.
    #[inline]
    #[must_use]
    pub fn translated(&self, dx: f32, dy: f32) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }

    /// Clamp each coordinate into `[lo, hi]` (used to keep moving objects
    /// inside the unit data space).
    #[inline]
    #[must_use]
    pub fn clamped(&self, lo: f32, hi: f32) -> Point {
        Point::new(self.x.clamp(lo, hi), self.y.clamp(lo, hi))
    }

    /// `true` when both coordinates are finite numbers.
    #[inline]
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(f32, f32)> for Point {
    fn from((x, y): (f32, f32)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
        assert_eq!(a.chebyshev_distance(&b), 4.0);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn translate_and_clamp() {
        let p = Point::new(0.875, 0.125).translated(0.25, -0.25);
        assert_eq!(p, Point::new(1.125, -0.125));
        assert_eq!(p.clamped(0.0, 1.0), Point::new(1.0, 0.0));
    }

    #[test]
    fn finiteness() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f32::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f32::INFINITY).is_finite());
    }

    #[test]
    fn display_and_from() {
        let p: Point = (1.5, 2.5).into();
        assert_eq!(format!("{p}"), "(1.5, 2.5)");
    }
}
