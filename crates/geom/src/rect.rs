//! Axis-aligned rectangles (MBRs and query windows).

use crate::Point;
use std::fmt;

/// An axis-aligned rectangle `[min_x, max_x] × [min_y, max_y]`.
///
/// `Rect` is used both as the *minimum bounding rectangle* (MBR) stored in
/// R-tree nodes and as a window-query argument. Rectangles are closed on
/// all sides: a point on the boundary is *contained*, and two rectangles
/// sharing only an edge *intersect* — this matches Guttman's original
/// definitions and keeps the update algorithms simple (an object sitting
/// exactly on a leaf MBR edge needs no extension).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Rect {
    /// Smallest x coordinate.
    pub min_x: f32,
    /// Smallest y coordinate.
    pub min_y: f32,
    /// Largest x coordinate.
    pub max_x: f32,
    /// Largest y coordinate.
    pub max_y: f32,
}

impl Rect {
    /// The identity for [`Rect::union`]: contains nothing, unions to the
    /// other operand. Encoded with inverted infinite bounds.
    pub const EMPTY: Rect = Rect {
        min_x: f32::INFINITY,
        min_y: f32::INFINITY,
        max_x: f32::NEG_INFINITY,
        max_y: f32::NEG_INFINITY,
    };

    /// The unit square `[0,1]²` — the paper's normalized data space.
    pub const UNIT: Rect = Rect {
        min_x: 0.0,
        min_y: 0.0,
        max_x: 1.0,
        max_y: 1.0,
    };

    /// Create a rectangle from its bounds. Callers must pass
    /// `min <= max` per axis; use [`Rect::from_corners`] for unordered
    /// input.
    #[inline]
    #[must_use]
    pub const fn new(min_x: f32, min_y: f32, max_x: f32, max_y: f32) -> Self {
        Self {
            min_x,
            min_y,
            max_x,
            max_y,
        }
    }

    /// Create a rectangle from two arbitrary corner points.
    #[inline]
    #[must_use]
    pub fn from_corners(a: Point, b: Point) -> Self {
        Self {
            min_x: a.x.min(b.x),
            min_y: a.y.min(b.y),
            max_x: a.x.max(b.x),
            max_y: a.y.max(b.y),
        }
    }

    /// The degenerate rectangle covering exactly one point.
    #[inline]
    #[must_use]
    pub fn from_point(p: Point) -> Self {
        Self::new(p.x, p.y, p.x, p.y)
    }

    /// A rectangle given its lower-left corner and side lengths.
    #[inline]
    #[must_use]
    pub fn with_size(origin: Point, width: f32, height: f32) -> Self {
        Self::new(origin.x, origin.y, origin.x + width, origin.y + height)
    }

    /// `true` when `min <= max` holds on both axes and all coordinates are
    /// finite. [`Rect::EMPTY`] is *not* valid.
    #[inline]
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.min_x <= self.max_x
            && self.min_y <= self.max_y
            && self.min_x.is_finite()
            && self.min_y.is_finite()
            && self.max_x.is_finite()
            && self.max_y.is_finite()
    }

    /// `true` for rectangles that contain no point (inverted bounds).
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.min_x > self.max_x || self.min_y > self.max_y
    }

    /// Horizontal extent (0 for empty rectangles).
    #[inline]
    #[must_use]
    pub fn width(&self) -> f32 {
        (self.max_x - self.min_x).max(0.0)
    }

    /// Vertical extent (0 for empty rectangles).
    #[inline]
    #[must_use]
    pub fn height(&self) -> f32 {
        (self.max_y - self.min_y).max(0.0)
    }

    /// Area; 0 for empty or degenerate rectangles.
    #[inline]
    #[must_use]
    pub fn area(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.width() * self.height()
        }
    }

    /// Half-perimeter (the "margin" of R*-tree literature); 0 when empty.
    #[inline]
    #[must_use]
    pub fn margin(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.width() + self.height()
        }
    }

    /// Center point. Meaningless for empty rectangles.
    #[inline]
    #[must_use]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min_x + self.max_x) * 0.5,
            (self.min_y + self.max_y) * 0.5,
        )
    }

    /// `true` when the point lies inside or on the boundary.
    #[inline]
    #[must_use]
    pub fn contains_point(&self, p: &Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// `true` when `other` lies entirely inside `self` (boundaries
    /// included). Every rectangle contains the empty rectangle.
    #[inline]
    #[must_use]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        if other.is_empty() {
            return true;
        }
        other.min_x >= self.min_x
            && other.max_x <= self.max_x
            && other.min_y >= self.min_y
            && other.max_y <= self.max_y
    }

    /// `true` when the rectangles share at least one point (closed-side
    /// semantics: touching edges intersect). Empty rectangles intersect
    /// nothing.
    #[inline]
    #[must_use]
    pub fn intersects(&self, other: &Rect) -> bool {
        !(self.is_empty() || other.is_empty())
            && self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    /// The overlap region, or [`Rect::EMPTY`] when disjoint.
    #[inline]
    #[must_use]
    pub fn intersection(&self, other: &Rect) -> Rect {
        if !self.intersects(other) {
            return Rect::EMPTY;
        }
        Rect::new(
            self.min_x.max(other.min_x),
            self.min_y.max(other.min_y),
            self.max_x.min(other.max_x),
            self.max_y.min(other.max_y),
        )
    }

    /// Area of the overlap region (0 when disjoint).
    #[inline]
    #[must_use]
    pub fn intersection_area(&self, other: &Rect) -> f32 {
        self.intersection(other).area()
    }

    /// Smallest rectangle covering both operands. [`Rect::EMPTY`] is the
    /// identity.
    #[inline]
    #[must_use]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect::new(
            self.min_x.min(other.min_x),
            self.min_y.min(other.min_y),
            self.max_x.max(other.max_x),
            self.max_y.max(other.max_y),
        )
    }

    /// Smallest rectangle covering `self` and the point.
    #[inline]
    #[must_use]
    pub fn union_point(&self, p: &Point) -> Rect {
        self.union(&Rect::from_point(*p))
    }

    /// The extra area `area(self ∪ other) − area(self)` needed to absorb
    /// `other`. This is Guttman's ChooseLeaf criterion.
    #[inline]
    #[must_use]
    pub fn enlargement(&self, other: &Rect) -> f32 {
        self.union(other).area() - self.area()
    }

    /// Grow the rectangle by `delta` *equally in all directions* — the
    /// Kwon-style lazy-update enlargement used by the localized bottom-up
    /// algorithm (LBU, Algorithm 1 of the paper).
    #[inline]
    #[must_use]
    pub fn expanded_uniform(&self, delta: f32) -> Rect {
        Rect::new(
            self.min_x - delta,
            self.min_y - delta,
            self.max_x + delta,
            self.max_y + delta,
        )
    }

    /// Clip the rectangle so it lies inside `bound`. Useful to keep an
    /// enlarged leaf MBR inside its parent's MBR, which the paper requires
    /// "in order to preserve the R-tree structure".
    #[inline]
    #[must_use]
    pub fn clipped_to(&self, bound: &Rect) -> Rect {
        Rect::new(
            self.min_x.max(bound.min_x),
            self.min_y.max(bound.min_y),
            self.max_x.min(bound.max_x),
            self.max_y.min(bound.max_y),
        )
    }

    /// Euclidean distance from the rectangle to a point (0 when the point
    /// is inside). Used for the "closest sibling" tie break.
    #[must_use]
    pub fn distance_to_point(&self, p: &Point) -> f32 {
        self.distance_sq_to_point(p).sqrt()
    }

    /// Squared Euclidean distance from the rectangle to a point (0 when
    /// the point is inside). This is the `MINDIST` bound of R-tree
    /// nearest-neighbor search: no object inside the rectangle can be
    /// closer than this, so a best-first traversal ordered by it visits
    /// nodes in non-decreasing distance order.
    #[inline]
    #[must_use]
    pub fn distance_sq_to_point(&self, p: &Point) -> f32 {
        let dx = (self.min_x - p.x).max(0.0).max(p.x - self.max_x);
        let dy = (self.min_y - p.y).max(0.0).max(p.y - self.max_y);
        dx * dx + dy * dy
    }

    /// `true` when all coordinates are finite.
    #[inline]
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.min_x.is_finite()
            && self.min_y.is_finite()
            && self.max_x.is_finite()
            && self.max_y.is_finite()
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}, {}]x[{}, {}]",
            self.min_x, self.max_x, self.min_y, self.max_y
        )
    }
}

impl From<Point> for Rect {
    fn from(p: Point) -> Self {
        Rect::from_point(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(a: f32, b: f32, c: f32, d: f32) -> Rect {
        Rect::new(a, b, c, d)
    }

    #[test]
    fn empty_identity() {
        let x = r(0.1, 0.2, 0.5, 0.9);
        assert_eq!(Rect::EMPTY.union(&x), x);
        assert_eq!(x.union(&Rect::EMPTY), x);
        assert!(Rect::EMPTY.is_empty());
        assert!(!Rect::EMPTY.is_valid());
        assert_eq!(Rect::EMPTY.area(), 0.0);
        assert_eq!(Rect::EMPTY.margin(), 0.0);
        assert!(!Rect::EMPTY.intersects(&x));
        assert!(!x.intersects(&Rect::EMPTY));
        assert!(x.contains_rect(&Rect::EMPTY));
    }

    #[test]
    fn area_margin_size() {
        let x = r(0.0, 0.0, 2.0, 3.0);
        assert_eq!(x.area(), 6.0);
        assert_eq!(x.margin(), 5.0);
        assert_eq!(x.width(), 2.0);
        assert_eq!(x.height(), 3.0);
        assert_eq!(x.center(), Point::new(1.0, 1.5));
        let p = Rect::from_point(Point::new(0.5, 0.5));
        assert_eq!(p.area(), 0.0);
        assert!(p.is_valid());
    }

    #[test]
    fn containment_closed_boundaries() {
        let x = r(0.0, 0.0, 1.0, 1.0);
        assert!(x.contains_point(&Point::new(0.0, 0.0)));
        assert!(x.contains_point(&Point::new(1.0, 1.0)));
        assert!(x.contains_point(&Point::new(0.5, 1.0)));
        assert!(!x.contains_point(&Point::new(1.0001, 0.5)));
        assert!(x.contains_rect(&r(0.0, 0.0, 1.0, 1.0)));
        assert!(x.contains_rect(&r(0.2, 0.2, 0.8, 0.8)));
        assert!(!x.contains_rect(&r(0.2, 0.2, 1.2, 0.8)));
    }

    #[test]
    fn intersection_touching_edges() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(1.0, 0.0, 2.0, 1.0); // shares the x=1 edge
        assert!(a.intersects(&b));
        assert_eq!(a.intersection_area(&b), 0.0);
        let c = r(1.1, 0.0, 2.0, 1.0);
        assert!(!a.intersects(&c));
        assert!(a.intersection(&c).is_empty());
    }

    #[test]
    fn intersection_region() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        let b = r(1.0, 1.0, 3.0, 3.0);
        assert_eq!(a.intersection(&b), r(1.0, 1.0, 2.0, 2.0));
        assert_eq!(a.intersection_area(&b), 1.0);
        assert_eq!(a.intersection(&b), b.intersection(&a));
    }

    #[test]
    fn union_and_enlargement() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(2.0, 2.0, 3.0, 3.0);
        let u = a.union(&b);
        assert_eq!(u, r(0.0, 0.0, 3.0, 3.0));
        assert!(u.contains_rect(&a) && u.contains_rect(&b));
        assert_eq!(a.enlargement(&b), 9.0 - 1.0);
        assert_eq!(a.enlargement(&a), 0.0);
        let up = a.union_point(&Point::new(-1.0, 0.5));
        assert_eq!(up, r(-1.0, 0.0, 1.0, 1.0));
    }

    #[test]
    fn uniform_expansion_and_clipping() {
        let a = r(0.375, 0.375, 0.625, 0.625);
        let e = a.expanded_uniform(0.125);
        assert_eq!(e, r(0.25, 0.25, 0.75, 0.75));
        let parent = r(0.375, 0.0, 1.0, 1.0);
        let clipped = e.clipped_to(&parent);
        assert_eq!(clipped, r(0.375, 0.25, 0.75, 0.75));
        assert!(parent.contains_rect(&clipped));
    }

    #[test]
    fn point_distance() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        assert_eq!(a.distance_to_point(&Point::new(0.5, 0.5)), 0.0);
        assert_eq!(a.distance_to_point(&Point::new(2.0, 0.5)), 1.0);
        assert_eq!(a.distance_to_point(&Point::new(1.0, 2.0)), 1.0);
        let d = a.distance_to_point(&Point::new(2.0, 2.0));
        assert!((d - std::f32::consts::SQRT_2).abs() < 1e-6);
    }

    #[test]
    fn point_distance_squared() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        // Inside and on the boundary: zero.
        assert_eq!(a.distance_sq_to_point(&Point::new(0.5, 0.5)), 0.0);
        assert_eq!(a.distance_sq_to_point(&Point::new(1.0, 1.0)), 0.0);
        // Axis-aligned outside: per-axis distance squared.
        assert_eq!(a.distance_sq_to_point(&Point::new(3.0, 0.5)), 4.0);
        assert_eq!(a.distance_sq_to_point(&Point::new(0.5, -2.0)), 4.0);
        // Diagonal outside: sum of both axes.
        assert_eq!(a.distance_sq_to_point(&Point::new(2.0, 2.0)), 2.0);
        // MINDIST lower-bounds the distance to any contained point.
        let p = Point::new(1.7, -0.3);
        for q in [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.5, 1.0),
        ] {
            assert!(a.distance_sq_to_point(&p) <= p.distance_sq(&q) + 1e-6);
        }
    }

    #[test]
    fn corners_constructor() {
        let a = Rect::from_corners(Point::new(1.0, 0.0), Point::new(0.0, 1.0));
        assert_eq!(a, r(0.0, 0.0, 1.0, 1.0));
        let b = Rect::with_size(Point::new(0.25, 0.25), 0.5, 0.25);
        assert_eq!(b, r(0.25, 0.25, 0.75, 0.5));
    }
}
