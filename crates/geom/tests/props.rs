//! Property-based tests for the geometry primitives.

use bur_geom::{Point, Rect};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (-10.0f32..10.0, -10.0f32..10.0).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (arb_point(), arb_point()).prop_map(|(a, b)| Rect::from_corners(a, b))
}

proptest! {
    #[test]
    fn union_contains_both(a in arb_rect(), b in arb_rect()) {
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
        prop_assert!(u.area() + 1e-3 >= a.area().max(b.area()));
    }

    #[test]
    fn union_commutative(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.union(&b), b.union(&a));
    }

    #[test]
    fn union_idempotent(a in arb_rect()) {
        prop_assert_eq!(a.union(&a), a);
    }

    #[test]
    fn intersects_symmetric(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
    }

    #[test]
    fn containment_implies_intersection(a in arb_rect(), b in arb_rect()) {
        if a.contains_rect(&b) && !b.is_empty() {
            prop_assert!(a.intersects(&b));
            prop_assert!(a.area() >= b.area() - 1e-3);
        }
    }

    #[test]
    fn intersection_contained_in_both(a in arb_rect(), b in arb_rect()) {
        let i = a.intersection(&b);
        if !i.is_empty() {
            prop_assert!(a.contains_rect(&i));
            prop_assert!(b.contains_rect(&i));
        }
    }

    #[test]
    fn enlargement_nonnegative(a in arb_rect(), b in arb_rect()) {
        prop_assert!(a.enlargement(&b) >= -1e-3);
    }

    #[test]
    fn point_union_contains_point(a in arb_rect(), p in arb_point()) {
        let u = a.union_point(&p);
        prop_assert!(u.contains_point(&p));
        prop_assert!(u.contains_rect(&a));
    }

    #[test]
    fn uniform_expansion_contains(a in arb_rect(), d in 0.0f32..2.0) {
        let e = a.expanded_uniform(d);
        prop_assert!(e.contains_rect(&a));
    }

    #[test]
    fn clipping_respects_bound(a in arb_rect(), b in arb_rect()) {
        let c = a.clipped_to(&b);
        if !c.is_empty() {
            prop_assert!(b.contains_rect(&c));
            prop_assert!(a.contains_rect(&c));
        }
    }

    #[test]
    fn distance_zero_when_contained(a in arb_rect(), p in arb_point()) {
        let d = a.distance_to_point(&p);
        if a.contains_point(&p) {
            prop_assert_eq!(d, 0.0);
        }
        if d > 1e-3 {
            prop_assert!(!a.contains_point(&p));
        }
    }

    #[test]
    fn contains_point_consistent_with_rect(a in arb_rect(), p in arb_point()) {
        prop_assert_eq!(a.contains_point(&p), a.contains_rect(&Rect::from_point(p)));
    }
}
