//! On-page bucket layout.
//!
//! ```text
//! byte 0..2   count (u16, number of entries in this page)
//! byte 4..8   overflow page id (u32, INVALID_PAGE when none)
//! byte 8..    entries: [key u64 LE][value u32 LE] × count
//! ```

use crate::{Key, Value};
use bur_storage::{PageId, INVALID_PAGE};

const COUNT_OFF: usize = 0;
const OVERFLOW_OFF: usize = 4;
const ENTRIES_OFF: usize = 8;
/// Bytes per entry: 8-byte key + 4-byte value.
pub(crate) const ENTRY_SIZE: usize = 12;

/// Number of entries a bucket page of `page_size` bytes can hold.
#[inline]
pub(crate) fn capacity(page_size: usize) -> usize {
    (page_size - ENTRIES_OFF) / ENTRY_SIZE
}

/// Zero-copy view over a bucket page's bytes.
pub(crate) struct BucketView<'a>(pub &'a [u8]);

impl BucketView<'_> {
    pub(crate) fn count(&self) -> usize {
        u16::from_le_bytes([self.0[COUNT_OFF], self.0[COUNT_OFF + 1]]) as usize
    }

    pub(crate) fn overflow(&self) -> Option<PageId> {
        let pid = u32::from_le_bytes(self.0[OVERFLOW_OFF..OVERFLOW_OFF + 4].try_into().unwrap());
        (pid != INVALID_PAGE).then_some(pid)
    }

    pub(crate) fn entry(&self, i: usize) -> (Key, Value) {
        let off = ENTRIES_OFF + i * ENTRY_SIZE;
        let key = u64::from_le_bytes(self.0[off..off + 8].try_into().unwrap());
        let value = u32::from_le_bytes(self.0[off + 8..off + 12].try_into().unwrap());
        (key, value)
    }

    /// Linear scan for `key`; buckets are small (≈84 entries/KiB page).
    pub(crate) fn find(&self, key: Key) -> Option<(usize, Value)> {
        let n = self.count();
        (0..n).find_map(|i| {
            let (k, v) = self.entry(i);
            (k == key).then_some((i, v))
        })
    }
}

/// Mutable view over a bucket page's bytes.
pub(crate) struct BucketViewMut<'a>(pub &'a mut [u8]);

impl BucketViewMut<'_> {
    pub(crate) fn as_view(&self) -> BucketView<'_> {
        BucketView(self.0)
    }

    pub(crate) fn set_count(&mut self, n: usize) {
        self.0[COUNT_OFF..COUNT_OFF + 2].copy_from_slice(&(n as u16).to_le_bytes());
    }

    pub(crate) fn set_overflow(&mut self, pid: Option<PageId>) {
        let raw = pid.unwrap_or(INVALID_PAGE);
        self.0[OVERFLOW_OFF..OVERFLOW_OFF + 4].copy_from_slice(&raw.to_le_bytes());
    }

    pub(crate) fn set_entry(&mut self, i: usize, key: Key, value: Value) {
        let off = ENTRIES_OFF + i * ENTRY_SIZE;
        self.0[off..off + 8].copy_from_slice(&key.to_le_bytes());
        self.0[off + 8..off + 12].copy_from_slice(&value.to_le_bytes());
    }

    /// Append an entry; caller checks capacity.
    pub(crate) fn push(&mut self, key: Key, value: Value) {
        let n = self.as_view().count();
        self.set_entry(n, key, value);
        self.set_count(n + 1);
    }

    /// Remove entry `i` by swapping in the last entry (order-free).
    pub(crate) fn swap_remove(&mut self, i: usize) {
        let n = self.as_view().count();
        debug_assert!(i < n);
        if i + 1 < n {
            let (k, v) = self.as_view().entry(n - 1);
            self.set_entry(i, k, v);
        }
        self.set_count(n - 1);
    }

    /// Reset to an empty bucket with no overflow.
    pub(crate) fn clear(&mut self) {
        self.set_count(0);
        self.set_overflow(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_math() {
        assert_eq!(capacity(1024), (1024 - 8) / 12); // 84
        assert_eq!(capacity(128), 10);
    }

    #[test]
    fn push_find_remove_roundtrip() {
        let mut page = vec![0u8; 256];
        let mut b = BucketViewMut(&mut page);
        b.clear();
        b.push(100, 1);
        b.push(200, 2);
        b.push(300, 3);
        let v = b.as_view();
        assert_eq!(v.count(), 3);
        assert_eq!(v.find(200), Some((1, 2)));
        assert_eq!(v.find(999), None);
        b.swap_remove(0); // 300 swaps into slot 0
        let v = b.as_view();
        assert_eq!(v.count(), 2);
        assert_eq!(v.find(100), None);
        assert_eq!(v.find(300), Some((0, 3)));
        assert_eq!(v.find(200), Some((1, 2)));
    }

    #[test]
    fn overflow_pointer() {
        let mut page = vec![0u8; 128];
        let mut b = BucketViewMut(&mut page);
        b.clear();
        assert_eq!(b.as_view().overflow(), None);
        b.set_overflow(Some(77));
        assert_eq!(b.as_view().overflow(), Some(77));
        b.set_overflow(None);
        assert_eq!(b.as_view().overflow(), None);
    }

    #[test]
    fn remove_last_entry() {
        let mut page = vec![0u8; 128];
        let mut b = BucketViewMut(&mut page);
        b.clear();
        b.push(1, 10);
        b.swap_remove(0);
        assert_eq!(b.as_view().count(), 0);
        assert_eq!(b.as_view().find(1), None);
    }
}
