//! Litwin linear hashing over buffer-pool pages.

use crate::bucket::{capacity, BucketView, BucketViewMut};
use crate::{mix, Key, Value};
use bur_storage::{BufferPool, PageId, StorageResult};
use parking_lot::Mutex;
use std::sync::Arc;

/// Tuning knobs for [`LinearHashIndex`].
#[derive(Debug, Clone, Copy)]
pub struct HashIndexConfig {
    /// Number of buckets at level 0. Must be a power of two.
    pub initial_buckets: usize,
    /// Split when `entries / (buckets * bucket_capacity)` exceeds this.
    pub max_load: f64,
}

impl Default for HashIndexConfig {
    fn default() -> Self {
        Self {
            initial_buckets: 4,
            max_load: 0.75,
        }
    }
}

struct State {
    /// Primary page of every bucket; index is the bucket number.
    buckets: Vec<PageId>,
    /// Current doubling round.
    level: u32,
    /// Next bucket to split in this round.
    next: usize,
    /// Total entries stored.
    entries: usize,
    /// Buckets at level 0.
    initial: usize,
    /// Pages released by collapsed overflow chains, reused before
    /// allocating fresh pages (the disk itself is append-only).
    free_pages: Vec<PageId>,
    /// Overflow pages currently in use (for space accounting).
    overflow_pages: usize,
    /// Pages owned by the persisted directory chain (plus spares from
    /// chains that shrank). [`LinearHashIndex::persist`] recycles them for
    /// the next chain instead of allocating a fresh run every time, so
    /// repeated checkpoints of a durable index no longer leak a
    /// directory's worth of pages each.
    chain: Vec<PageId>,
}

impl State {
    /// Bucket number for a key under the current split state.
    fn bucket_of(&self, key: Key) -> usize {
        let h = mix(key) as usize;
        let n_low = self.initial << self.level;
        let b = h & (n_low - 1);
        if b < self.next {
            h & (2 * n_low - 1)
        } else {
            b
        }
    }
}

/// A linear-hash index `object id → page id` stored in buffer-pool pages.
///
/// All probes and maintenance go through the shared [`BufferPool`], so the
/// index contributes to (and is measured by) the same physical-I/O
/// counters as the R-tree it serves. See the crate docs for the role this
/// plays in the paper's cost model.
///
/// ```
/// use bur_hashindex::{HashIndexConfig, LinearHashIndex};
/// use bur_storage::{BufferPool, MemDisk, PoolConfig};
/// use std::sync::Arc;
///
/// let pool = Arc::new(BufferPool::new(
///     Arc::new(MemDisk::new(1024)),
///     PoolConfig { capacity: 32, ..PoolConfig::default() },
/// ));
/// let index = LinearHashIndex::create(pool, HashIndexConfig::default()).unwrap();
/// index.insert(42, 7).unwrap();          // object 42 lives on page 7
/// assert_eq!(index.get(42).unwrap(), Some(7));
/// index.insert(42, 9).unwrap();          // it moved to page 9
/// assert_eq!(index.get(42).unwrap(), Some(9));
/// assert_eq!(index.remove(42).unwrap(), Some(9));
/// ```
pub struct LinearHashIndex {
    pool: Arc<BufferPool>,
    config: HashIndexConfig,
    state: Mutex<State>,
}

impl LinearHashIndex {
    /// Create an empty index, allocating its initial bucket pages.
    pub fn create(pool: Arc<BufferPool>, config: HashIndexConfig) -> StorageResult<Self> {
        assert!(
            config.initial_buckets.is_power_of_two(),
            "initial_buckets must be a power of two"
        );
        let mut buckets = Vec::with_capacity(config.initial_buckets);
        for _ in 0..config.initial_buckets {
            let (pid, guard) = pool.new_page()?;
            BucketViewMut(&mut guard.write()).clear();
            buckets.push(pid);
        }
        Ok(Self {
            pool,
            config,
            state: Mutex::new(State {
                buckets,
                level: 0,
                next: 0,
                entries: 0,
                initial: config.initial_buckets,
                free_pages: Vec::new(),
                overflow_pages: 0,
                chain: Vec::new(),
            }),
        })
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().entries
    }

    /// `true` when no entries are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total pages used (primary buckets + overflow pages). The
    /// experiments size the buffer as a percentage of *all* data pages.
    #[must_use]
    pub fn page_count(&self) -> usize {
        let s = self.state.lock();
        s.buckets.len() + s.overflow_pages
    }

    /// Look up the page currently associated with `key`.
    pub fn get(&self, key: Key) -> StorageResult<Option<Value>> {
        let state = self.state.lock();
        let mut pid = state.buckets[state.bucket_of(key)];
        loop {
            let guard = self.pool.fetch(pid)?;
            let data = guard.read();
            let view = BucketView(&data);
            if let Some((_, v)) = view.find(key) {
                return Ok(Some(v));
            }
            match view.overflow() {
                Some(next) => pid = next,
                None => return Ok(None),
            }
        }
    }

    /// Insert or replace; returns the previous value when the key existed.
    pub fn insert(&self, key: Key, value: Value) -> StorageResult<Option<Value>> {
        let mut state = self.state.lock();
        let bucket = state.bucket_of(key);
        let head = state.buckets[bucket];
        let replaced = self.chain_upsert(head, key, value, &mut state)?;
        if replaced.is_none() {
            state.entries += 1;
            self.maybe_split(&mut state)?;
        }
        Ok(replaced)
    }

    /// Remove a key; returns its value when present.
    pub fn remove(&self, key: Key) -> StorageResult<Option<Value>> {
        let mut state = self.state.lock();
        let mut pid = state.buckets[state.bucket_of(key)];
        loop {
            let guard = self.pool.fetch(pid)?;
            let found = {
                let data = guard.read();
                BucketView(&data).find(key)
            };
            if let Some((i, v)) = found {
                BucketViewMut(&mut guard.write()).swap_remove(i);
                state.entries -= 1;
                return Ok(Some(v));
            }
            let next = {
                let data = guard.read();
                BucketView(&data).overflow()
            };
            match next {
                Some(n) => pid = n,
                None => return Ok(None),
            }
        }
    }

    /// Visit every `(key, value)` pair (test/diagnostic helper; touches
    /// every page).
    pub fn for_each<F: FnMut(Key, Value)>(&self, mut f: F) -> StorageResult<()> {
        let state = self.state.lock();
        for &head in &state.buckets {
            let mut pid = Some(head);
            while let Some(p) = pid {
                let guard = self.pool.fetch(p)?;
                let data = guard.read();
                let view = BucketView(&data);
                for i in 0..view.count() {
                    let (k, v) = view.entry(i);
                    f(k, v);
                }
                pid = view.overflow();
            }
        }
        Ok(())
    }

    /// Insert into a chain, replacing an existing key or appending to the
    /// first page with room (allocating an overflow page when all full).
    fn chain_upsert(
        &self,
        head: PageId,
        key: Key,
        value: Value,
        state: &mut State,
    ) -> StorageResult<Option<Value>> {
        let cap = capacity(self.pool.page_size());
        let mut pid = head;
        let mut first_with_room: Option<PageId> = None;
        loop {
            let guard = self.pool.fetch(pid)?;
            let (found, count, next) = {
                let data = guard.read();
                let view = BucketView(&data);
                (view.find(key), view.count(), view.overflow())
            };
            if let Some((i, old)) = found {
                BucketViewMut(&mut guard.write()).set_entry(i, key, value);
                return Ok(Some(old));
            }
            if count < cap && first_with_room.is_none() {
                first_with_room = Some(pid);
            }
            match next {
                Some(n) => pid = n,
                None => {
                    // Key absent; place it.
                    if let Some(slot) = first_with_room {
                        let g = self.pool.fetch(slot)?;
                        BucketViewMut(&mut g.write()).push(key, value);
                    } else {
                        // Chain full: append an overflow page.
                        let new_pid = self.alloc_bucket_page(state)?;
                        state.overflow_pages += 1;
                        {
                            let g = self.pool.fetch(new_pid)?;
                            let mut w = g.write();
                            let mut b = BucketViewMut(&mut w);
                            b.clear();
                            b.push(key, value);
                        }
                        BucketViewMut(&mut guard.write()).set_overflow(Some(new_pid));
                    }
                    return Ok(None);
                }
            }
        }
    }

    /// Allocate a bucket/overflow page, reusing freed pages first.
    fn alloc_bucket_page(&self, state: &mut State) -> StorageResult<PageId> {
        if let Some(pid) = state.free_pages.pop() {
            let g = self.pool.fetch(pid)?;
            BucketViewMut(&mut g.write()).clear();
            return Ok(pid);
        }
        let (pid, guard) = self.pool.new_page()?;
        BucketViewMut(&mut guard.write()).clear();
        Ok(pid)
    }

    /// Split one bucket when over the configured load factor.
    fn maybe_split(&self, state: &mut State) -> StorageResult<()> {
        let cap = capacity(self.pool.page_size());
        let load = state.entries as f64 / (state.buckets.len() * cap) as f64;
        if load <= self.config.max_load {
            return Ok(());
        }
        // Collect the split bucket's whole chain.
        let split_bucket = state.next;
        let head = state.buckets[split_bucket];
        let mut entries: Vec<(Key, Value)> = Vec::new();
        let mut pid = Some(head);
        let mut chain_pages = Vec::new();
        while let Some(p) = pid {
            chain_pages.push(p);
            let guard = self.pool.fetch(p)?;
            let data = guard.read();
            let view = BucketView(&data);
            for i in 0..view.count() {
                entries.push(view.entry(i));
            }
            pid = view.overflow();
        }
        // Release overflow pages (all but the primary) to the free list.
        for &p in &chain_pages[1..] {
            state.free_pages.push(p);
            state.overflow_pages -= 1;
        }
        {
            let g = self.pool.fetch(head)?;
            BucketViewMut(&mut g.write()).clear();
        }
        // Create the image bucket.
        let new_pid = self.alloc_bucket_page(state)?;
        let new_bucket = state.buckets.len();
        state.buckets.push(new_pid);
        // Advance the split pointer *before* redistribution so that
        // bucket_of routes keys with the widened mask.
        let n_low = state.initial << state.level;
        state.next += 1;
        if state.next == n_low {
            state.level += 1;
            state.next = 0;
        }
        // Redistribute: each key lands in the old or the image bucket.
        let wide_mask = 2 * n_low - 1;
        for (k, v) in entries {
            let target = if (mix(k) as usize) & wide_mask == split_bucket {
                head
            } else {
                debug_assert_eq!((mix(k) as usize) & wide_mask, new_bucket);
                state.buckets[new_bucket]
            };
            // No replacement possible here (keys are unique), and the
            // entry count is unchanged, so bypass the load-factor check.
            let prev = self.chain_upsert(target, k, v, state)?;
            debug_assert!(prev.is_none());
        }
        let _ = new_pid;
        Ok(())
    }

    // ---- persistence ----------------------------------------------------

    /// Serialize the in-memory directory into a chain of pages; returns
    /// the head page id. Call after quiescing writers; bucket pages are
    /// already on disk once the pool is flushed.
    ///
    /// The previous chain's pages are recycled for the new chain (the old
    /// chain is superseded the moment this returns), so repeated persists
    /// keep the directory's page footprint flat instead of leaking one
    /// chain per call.
    pub fn persist(&self) -> StorageResult<PageId> {
        let mut state = self.state.lock();
        // The old chain (and any spares from earlier shrinks) becomes the
        // allocation pool for the new one.
        let mut avail = std::mem::take(&mut state.chain);
        let mut payload = Vec::new();
        payload.extend_from_slice(&state.level.to_le_bytes());
        payload.extend_from_slice(&(state.next as u64).to_le_bytes());
        payload.extend_from_slice(&(state.entries as u64).to_le_bytes());
        payload.extend_from_slice(&(state.initial as u32).to_le_bytes());
        payload.extend_from_slice(&(state.overflow_pages as u64).to_le_bytes());
        payload.extend_from_slice(&(state.buckets.len() as u32).to_le_bytes());
        for &b in &state.buckets {
            payload.extend_from_slice(&b.to_le_bytes());
        }
        payload.extend_from_slice(&(state.free_pages.len() as u32).to_le_bytes());
        for &p in &state.free_pages {
            payload.extend_from_slice(&p.to_le_bytes());
        }
        let (head, used) = write_page_chain(&self.pool, &payload, &mut avail)?;
        // Retain both the live chain and any leftover spares for the next
        // persist; neither may be handed out as bucket pages.
        avail.extend(used);
        state.chain = avail;
        Ok(head)
    }

    /// Reload an index persisted with [`LinearHashIndex::persist`].
    pub fn load(
        pool: Arc<BufferPool>,
        config: HashIndexConfig,
        head: PageId,
    ) -> StorageResult<Self> {
        let (payload, chain) = read_page_chain(&pool, head)?;
        let mut cur = Cursor::new(&payload);
        let level = cur.u32();
        let next = cur.u64() as usize;
        let entries = cur.u64() as usize;
        let initial = cur.u32() as usize;
        let overflow_pages = cur.u64() as usize;
        let n_buckets = cur.u32() as usize;
        let buckets = (0..n_buckets).map(|_| cur.u32()).collect();
        let n_free = cur.u32() as usize;
        let free_pages = (0..n_free).map(|_| cur.u32()).collect();
        Ok(Self {
            pool,
            config,
            state: Mutex::new(State {
                buckets,
                level,
                next,
                entries,
                initial,
                free_pages,
                overflow_pages,
                chain,
            }),
        })
    }
}

/// Little-endian payload reader for [`LinearHashIndex::load`].
struct Cursor<'a> {
    data: &'a [u8],
    off: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self { data, off: 0 }
    }
    fn u32(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.data[self.off..self.off + 4].try_into().unwrap());
        self.off += 4;
        v
    }
    fn u64(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.data[self.off..self.off + 8].try_into().unwrap());
        self.off += 8;
        v
    }
}

/// Page-chain format: `[next u32][len u16][data ...]` per page. Pages are
/// taken from `avail` (the superseded chain) before allocating fresh
/// ones; returns the head and every page the new chain occupies.
fn write_page_chain(
    pool: &BufferPool,
    payload: &[u8],
    avail: &mut Vec<PageId>,
) -> StorageResult<(PageId, Vec<PageId>)> {
    let chunk = pool.page_size() - 6;
    let chunks: Vec<&[u8]> = if payload.is_empty() {
        vec![&[]]
    } else {
        payload.chunks(chunk).collect()
    };
    let mut head = bur_storage::INVALID_PAGE;
    let mut used = Vec::with_capacity(chunks.len());
    let mut prev: Option<PageId> = None;
    for part in &chunks {
        let pid = match avail.pop() {
            Some(p) => p,
            None => {
                let (pid, guard) = pool.new_page()?;
                drop(guard);
                pid
            }
        };
        let guard = pool.fetch_for_overwrite(pid)?;
        {
            let mut w = guard.write();
            w.fill(0);
            w[0..4].copy_from_slice(&bur_storage::INVALID_PAGE.to_le_bytes());
            w[4..6].copy_from_slice(&(part.len() as u16).to_le_bytes());
            w[6..6 + part.len()].copy_from_slice(part);
        }
        drop(guard);
        used.push(pid);
        if let Some(p) = prev {
            let g = pool.fetch(p)?;
            g.write()[0..4].copy_from_slice(&pid.to_le_bytes());
        } else {
            head = pid;
        }
        prev = Some(pid);
    }
    Ok((head, used))
}

/// Read a chain back; returns the payload and the pages it occupies (so
/// a reloaded index keeps recycling its directory chain). A cycle or an
/// oversized chunk length means a corrupt chain: surfaced as an error,
/// never a panic or an endless walk.
fn read_page_chain(pool: &BufferPool, head: PageId) -> StorageResult<(Vec<u8>, Vec<PageId>)> {
    fn corrupt(msg: &'static str) -> bur_storage::StorageError {
        bur_storage::StorageError::Io(std::io::Error::other(msg))
    }
    let mut payload = Vec::new();
    let mut pages = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let mut pid = head;
    loop {
        if !seen.insert(pid) {
            return Err(corrupt("hash directory chain loops (corrupt chain)"));
        }
        let guard = pool.fetch(pid)?;
        let data = guard.read();
        let next = u32::from_le_bytes(data[0..4].try_into().unwrap());
        let len = u16::from_le_bytes(data[4..6].try_into().unwrap()) as usize;
        if len > data.len() - 6 {
            return Err(corrupt(
                "hash directory chunk overruns its page (corrupt chain)",
            ));
        }
        payload.extend_from_slice(&data[6..6 + len]);
        pages.push(pid);
        if next == bur_storage::INVALID_PAGE {
            break;
        }
        pid = next;
    }
    Ok((payload, pages))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bur_storage::{MemDisk, PoolConfig};

    fn make_pool(page_size: usize, capacity: usize) -> Arc<BufferPool> {
        Arc::new(BufferPool::new(
            Arc::new(MemDisk::new(page_size)),
            PoolConfig {
                capacity,
                ..PoolConfig::default()
            },
        ))
    }

    #[test]
    fn insert_get_remove() {
        let idx = LinearHashIndex::create(make_pool(256, 64), HashIndexConfig::default()).unwrap();
        assert!(idx.is_empty());
        assert_eq!(idx.insert(1, 100).unwrap(), None);
        assert_eq!(idx.insert(2, 200).unwrap(), None);
        assert_eq!(idx.get(1).unwrap(), Some(100));
        assert_eq!(idx.get(2).unwrap(), Some(200));
        assert_eq!(idx.get(3).unwrap(), None);
        assert_eq!(idx.insert(1, 101).unwrap(), Some(100), "upsert replaces");
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.remove(1).unwrap(), Some(101));
        assert_eq!(idx.remove(1).unwrap(), None);
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn growth_through_many_splits() {
        let idx = LinearHashIndex::create(make_pool(128, 256), HashIndexConfig::default()).unwrap();
        let n = 5_000u64;
        for k in 0..n {
            idx.insert(k, (k * 3) as u32).unwrap();
        }
        assert_eq!(idx.len(), n as usize);
        for k in 0..n {
            assert_eq!(idx.get(k).unwrap(), Some((k * 3) as u32), "key {k}");
        }
        assert_eq!(idx.get(n + 1).unwrap(), None);
        // Page 128 holds 10 entries; 5000 entries need >= 500 pages.
        assert!(idx.page_count() >= 500, "got {}", idx.page_count());
    }

    #[test]
    fn delete_heavy_then_reinsert() {
        let idx = LinearHashIndex::create(make_pool(128, 256), HashIndexConfig::default()).unwrap();
        for k in 0..2_000u64 {
            idx.insert(k, k as u32).unwrap();
        }
        for k in 0..2_000u64 {
            if k % 2 == 0 {
                assert_eq!(idx.remove(k).unwrap(), Some(k as u32));
            }
        }
        assert_eq!(idx.len(), 1_000);
        for k in 0..2_000u64 {
            let expect = (k % 2 == 1).then_some(k as u32);
            assert_eq!(idx.get(k).unwrap(), expect);
        }
        for k in 0..2_000u64 {
            idx.insert(k, (k + 7) as u32).unwrap();
        }
        assert_eq!(idx.len(), 2_000);
        for k in 0..2_000u64 {
            assert_eq!(idx.get(k).unwrap(), Some((k + 7) as u32));
        }
    }

    #[test]
    fn for_each_sees_everything_once() {
        let idx = LinearHashIndex::create(make_pool(128, 64), HashIndexConfig::default()).unwrap();
        for k in 0..500u64 {
            idx.insert(k, k as u32).unwrap();
        }
        let mut seen = std::collections::HashMap::new();
        idx.for_each(|k, v| {
            assert!(seen.insert(k, v).is_none(), "duplicate key {k}");
        })
        .unwrap();
        assert_eq!(seen.len(), 500);
        for k in 0..500u64 {
            assert_eq!(seen[&k], k as u32);
        }
    }

    #[test]
    fn cold_probe_costs_about_one_read() {
        let pool = make_pool(1024, 1024);
        let idx = LinearHashIndex::create(pool.clone(), HashIndexConfig::default()).unwrap();
        for k in 0..20_000u64 {
            idx.insert(k, k as u32).unwrap();
        }
        pool.evict_all().unwrap();
        pool.set_capacity(0).unwrap(); // no caching: every probe is cold
        let before = pool.stats().snapshot();
        let probes = 500;
        for k in 0..probes {
            idx.get(k * 37 % 20_000).unwrap();
        }
        let d = pool.stats().snapshot().since(&before);
        let per_probe = d.reads as f64 / probes as f64;
        // One primary bucket read, occasionally one overflow page.
        assert!(
            (1.0..1.5).contains(&per_probe),
            "expected ~1 read per cold probe, got {per_probe}"
        );
    }

    #[test]
    fn persist_and_load_roundtrip() {
        let pool = make_pool(256, 256);
        let idx = LinearHashIndex::create(pool.clone(), HashIndexConfig::default()).unwrap();
        for k in 0..3_000u64 {
            idx.insert(k, (k * 11) as u32).unwrap();
        }
        let head = idx.persist().unwrap();
        pool.flush_all().unwrap();
        drop(idx);
        let idx2 = LinearHashIndex::load(pool, HashIndexConfig::default(), head).unwrap();
        assert_eq!(idx2.len(), 3_000);
        for k in 0..3_000u64 {
            assert_eq!(idx2.get(k).unwrap(), Some((k * 11) as u32));
        }
        // The reloaded index must keep working (splits continue correctly).
        for k in 3_000..4_000u64 {
            idx2.insert(k, k as u32).unwrap();
        }
        for k in 0..4_000u64 {
            let expect = if k < 3_000 { (k * 11) as u32 } else { k as u32 };
            assert_eq!(idx2.get(k).unwrap(), Some(expect));
        }
    }

    #[test]
    fn repeated_persists_recycle_the_directory_chain() {
        let pool = make_pool(256, 256);
        let idx = LinearHashIndex::create(pool.clone(), HashIndexConfig::default()).unwrap();
        for k in 0..3_000u64 {
            idx.insert(k, (k * 3) as u32).unwrap();
        }
        // First persist lays out the steady-state chain.
        let head0 = idx.persist().unwrap();
        let baseline = pool.disk().num_pages();
        let mut last_head = head0;
        for _ in 0..10 {
            last_head = idx.persist().unwrap();
        }
        assert_eq!(
            pool.disk().num_pages(),
            baseline,
            "superseded directory chains must be recycled, not leaked"
        );
        pool.flush_all().unwrap();
        // The recycled chain still loads correctly — including after a
        // reload (the chain pages are rediscovered by the walk).
        let idx2 =
            LinearHashIndex::load(pool.clone(), HashIndexConfig::default(), last_head).unwrap();
        assert_eq!(idx2.len(), 3_000);
        let head3 = idx2.persist().unwrap();
        assert_eq!(
            pool.disk().num_pages(),
            baseline,
            "recycling must survive a reload"
        );
        pool.flush_all().unwrap();
        let idx3 = LinearHashIndex::load(pool, HashIndexConfig::default(), head3).unwrap();
        for k in (0..3_000u64).step_by(97) {
            assert_eq!(idx3.get(k).unwrap(), Some((k * 3) as u32));
        }
    }

    #[test]
    fn values_can_collide() {
        // Different keys mapping to the same value (many objects on one
        // leaf page) must coexist.
        let idx = LinearHashIndex::create(make_pool(128, 64), HashIndexConfig::default()).unwrap();
        for k in 0..100u64 {
            idx.insert(k, 7).unwrap();
        }
        assert_eq!(idx.len(), 100);
        for k in 0..100u64 {
            assert_eq!(idx.get(k).unwrap(), Some(7));
        }
    }
}
