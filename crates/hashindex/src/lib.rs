//! Paged linear-hash secondary index: object id → page id.
//!
//! Both bottom-up algorithms in the VLDB 2003 paper "locate via the
//! secondary object-ID index (e.g., hash table) the leaf node with the
//! object" — their cost model charges one disk read per probe. This crate
//! implements that index as a real on-disk structure so the charge emerges
//! from the buffer pool instead of being hard-coded:
//!
//! * buckets are pages of the shared [`bur_storage::BufferPool`] (so hash
//!   I/O competes with tree I/O for buffer space exactly like in a real
//!   system),
//! * the directory (bucket page ids + split state) is main-memory, like
//!   the paper's summary structure, and can be persisted to a page chain
//!   for reopening a stored index,
//! * growth follows Litwin's linear hashing: one bucket splits at a time,
//!   keeping the directory dense and splits cheap.
//!
//! Keys are `u64` object ids; values are `u32` page ids.

#![warn(missing_docs)]

mod bucket;
mod index;

pub use index::{HashIndexConfig, LinearHashIndex};

/// Key type: object identifier.
pub type Key = u64;

/// Value type: page id of the leaf currently holding the object.
pub type Value = u32;

/// Mix a key into a well-distributed 64-bit hash (splitmix64 finalizer).
///
/// Object ids in workloads are dense integers; without mixing, linear
/// hashing would split pathologically.
#[inline]
#[must_use]
pub fn mix(key: Key) -> u64 {
    let mut z = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_spreads_dense_keys() {
        // Dense keys must not collide in the low bits used for buckets.
        let mut low_bits = std::collections::HashSet::new();
        for k in 0..64u64 {
            low_bits.insert(mix(k) & 0xff);
        }
        assert!(low_bits.len() > 48, "low bits too collision-prone");
    }

    #[test]
    fn mix_deterministic() {
        assert_eq!(mix(42), mix(42));
        assert_ne!(mix(42), mix(43));
    }
}
