//! Model-based property test: the paged linear-hash index must behave
//! exactly like `std::collections::HashMap` under arbitrary operation
//! sequences (including sequences long enough to force bucket splits and
//! overflow chains).

use bur_hashindex::{HashIndexConfig, LinearHashIndex};
use bur_storage::{BufferPool, MemDisk, PoolConfig};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u32),
    Remove(u64),
    Get(u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    // Small key space so operations collide often.
    prop_oneof![
        (0u64..64, 0u32..1000).prop_map(|(k, v)| Op::Insert(k, v)),
        (0u64..64).prop_map(Op::Remove),
        (0u64..64).prop_map(Op::Get),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn behaves_like_hashmap(ops in proptest::collection::vec(arb_op(), 1..400)) {
        // Tiny pages (10 entries each) force splits and overflows early.
        let pool = Arc::new(BufferPool::new(
            Arc::new(MemDisk::new(128)),
            PoolConfig { capacity: 16, ..PoolConfig::default() },
        ));
        let idx = LinearHashIndex::create(pool, HashIndexConfig::default()).unwrap();
        let mut model: HashMap<u64, u32> = HashMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    let got = idx.insert(k, v).unwrap();
                    let expect = model.insert(k, v);
                    prop_assert_eq!(got, expect);
                }
                Op::Remove(k) => {
                    let got = idx.remove(k).unwrap();
                    let expect = model.remove(&k);
                    prop_assert_eq!(got, expect);
                }
                Op::Get(k) => {
                    let got = idx.get(k).unwrap();
                    let expect = model.get(&k).copied();
                    prop_assert_eq!(got, expect);
                }
            }
            prop_assert_eq!(idx.len(), model.len());
        }
        // Final full comparison via iteration.
        let mut seen = HashMap::new();
        idx.for_each(|k, v| { seen.insert(k, v); }).unwrap();
        prop_assert_eq!(seen, model);
    }

    #[test]
    fn bulk_insert_then_verify(n in 100usize..1500) {
        let pool = Arc::new(BufferPool::new(
            Arc::new(MemDisk::new(128)),
            PoolConfig { capacity: 64, ..PoolConfig::default() },
        ));
        let idx = LinearHashIndex::create(pool, HashIndexConfig::default()).unwrap();
        for k in 0..n as u64 {
            idx.insert(k, (k % 97) as u32).unwrap();
        }
        prop_assert_eq!(idx.len(), n);
        for k in 0..n as u64 {
            prop_assert_eq!(idx.get(k).unwrap(), Some((k % 97) as u32));
        }
    }
}
