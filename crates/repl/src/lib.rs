//! # bur-repl — warm-standby replication for `bur` indexes
//!
//! The `bur-wal` log is a self-describing, CRC-framed, generation-tagged
//! record stream living on the primary's own page disk. This crate ships
//! that stream to a **follower**: a second index image on its own disk
//! that redoes the primary's page records and serves read-only window /
//! kNN queries from a consistent committed prefix — and, at failover,
//! promotes into a fully writable primary.
//!
//! * [`LogShipper`] — tails the primary's log with an incremental
//!   [`bur_wal::LogCursor`]: each [`LogShipper::poll`] returns the
//!   records appended since the last poll as a torn-tail-safe
//!   [`ShipBatch`], surviving checkpoint rewinds via the generation tag.
//! * [`Follower`] — applies shipped batches onto its own disk through
//!   the same redo rules as crash recovery (full images overwrite,
//!   deltas chain onto the image at their recorded `base_lsn`), but
//!   **only at commit boundaries**: page records stay buffered until
//!   their covering commit arrives, so the replica's pages never contain
//!   an unacknowledged suffix and every query — served through a
//!   read-only [`Bur`] handle from [`Follower::handle`] — sees exactly
//!   the primary's state at the apply-LSN watermark.
//! * [`Follower::promote`] — the failover path: discard the uncommitted
//!   tail, run the tail of recovery (summary / hash / parent-pointer
//!   rebuild, log reattach + checkpoint-rewind) and flip every
//!   outstanding read handle writable in place.
//!
//! When the primary **checkpoints**, its log rewinds onto a fresh
//! generation whose base image is the primary's disk — state the log no
//! longer describes. The shipper reports the rewind and the follower
//! *resyncs*: it recopies the primary's page image and replays the new
//! generation from its opening checkpoint record, never replaying stale
//! records (LSNs are globally monotonic across generations). The same
//! mechanism seeds a fresh follower at [`Follower::attach`] time.
//!
//! The base-image copy is *fuzzy* (the primary keeps writing while it is
//! taken, like any online basebackup): each page read is atomic, and
//! because the first record for a page in a generation is always a full
//! image, replaying the generation normalizes every logged page. Under
//! the synchronous sync policies a page can only be flushed once its
//! covering commit is durable, so the replica is commit-consistent from
//! the first applied batch; under [`bur_storage::SyncPolicy::Async`] it becomes so as
//! soon as the first post-copy commit applies.
//!
//! ```
//! use bur_core::{Batch, IndexBuilder, IndexOptions};
//! use bur_geom::{Point, Rect};
//! use bur_repl::{Follower, LogShipper};
//! use bur_storage::MemDisk;
//! use std::sync::Arc;
//!
//! // A durable primary on a shared in-memory disk.
//! let disk = Arc::new(MemDisk::new(1024));
//! let primary = IndexBuilder::generalized().durable().disk(disk.clone()).build().unwrap();
//! let mut batch = Batch::new();
//! batch.insert(1, Point::new(0.2, 0.2)).insert(2, Point::new(0.8, 0.8));
//! primary.apply(&batch).unwrap().wait().unwrap();
//!
//! // Attach a follower, ship the log, query the replica read-only.
//! let mut shipper = LogShipper::new(disk);
//! let mut follower = Follower::attach_in_memory(&mut shipper, IndexOptions::durable()).unwrap();
//! follower.sync_once(&mut shipper).unwrap();
//! let replica = follower.handle();
//! assert_eq!(replica.len(), 2);
//! assert!(replica.insert(3, Point::new(0.5, 0.5)).is_err(), "read-only");
//!
//! // Failover: promote the follower into a writable primary.
//! let new_primary = follower.promote().unwrap();
//! new_primary.insert(3, Point::new(0.5, 0.5)).unwrap();
//! assert_eq!(new_primary.count_in(&Rect::new(0.0, 0.0, 1.0, 1.0)).unwrap(), 3);
//! ```

#![warn(missing_docs)]

use bur_core::{Bur, CoreError, IndexOptions, RTreeIndex, WAL_ANCHOR};
use bur_storage::{DiskBackend, Lsn, MemDisk, PageId, StorageError};
use bur_wal::{apply_delta, LogCursor, WalRecord};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

pub use bur_wal::ShipBatch;

/// Result alias for replication operations.
pub type ReplResult<T> = Result<T, ReplError>;

/// Errors raised by the replication layer.
#[derive(Debug)]
pub enum ReplError {
    /// Propagated index failure (replay, view construction, promote).
    Core(CoreError),
    /// Propagated disk failure (shipping, base-image copy).
    Storage(StorageError),
    /// The shipped stream violated the replication protocol: a delta
    /// chained to a state the follower never replayed, records arrived
    /// out of LSN order, or a batch belonged to a generation the
    /// follower cannot reach. The follower is desynchronized and must
    /// resync or fail over.
    Protocol(String),
    /// The primary's disk carries no write-ahead log at the anchor page:
    /// only durable indexes can be replicated.
    NotDurable,
}

impl fmt::Display for ReplError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplError::Core(e) => write!(f, "replication: {e}"),
            ReplError::Storage(e) => write!(f, "replication storage: {e}"),
            ReplError::Protocol(msg) => write!(f, "replication protocol: {msg}"),
            ReplError::NotDurable => write!(
                f,
                "primary has no write-ahead log (index not built with durability?)"
            ),
        }
    }
}

impl std::error::Error for ReplError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplError::Core(e) => Some(e),
            ReplError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ReplError {
    fn from(e: CoreError) -> Self {
        ReplError::Core(e)
    }
}

impl From<StorageError> for ReplError {
    fn from(e: StorageError) -> Self {
        ReplError::Storage(e)
    }
}

/// Lifetime counters of a [`Follower`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplStats {
    /// Records received from the shipper (all kinds).
    pub records_shipped: u64,
    /// Commit/checkpoint records applied (watermark advances).
    pub commits_applied: u64,
    /// Full page images redone.
    pub images_applied: u64,
    /// Page deltas redone.
    pub deltas_applied: u64,
    /// Base-image resynchronizations (attach + checkpoint rewinds).
    pub resyncs: u64,
    /// Pages copied by those resyncs.
    pub pages_copied: u64,
}

/// What one [`Follower::apply`] / [`Follower::sync_once`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApplyReport {
    /// Records consumed from the batch.
    pub records: u64,
    /// Commits applied (how often the watermark advanced).
    pub commits: u64,
    /// `true` when the batch carried a generation change and the base
    /// image was recopied from the primary.
    pub resynced: bool,
    /// The apply-LSN watermark after this batch.
    pub applied_lsn: Lsn,
    /// Page records still buffered, waiting for their covering commit.
    pub pending: u64,
}

/// Tails a primary's write-ahead log for shipping (see the crate docs).
///
/// The shipper only ever *reads* the primary's disk; it holds no lock
/// and no reference into the primary's index, so it can run in any
/// thread — or any process that can see the pages.
pub struct LogShipper {
    disk: Arc<dyn DiskBackend>,
    cursor: LogCursor,
}

impl fmt::Debug for LogShipper {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (generation, lsn) = self.cursor.position();
        f.debug_struct("LogShipper")
            .field("generation", &generation)
            .field("shipped_lsn", &lsn)
            .finish_non_exhaustive()
    }
}

impl LogShipper {
    /// Tail the log of the durable index living on `primary` (the chain
    /// anchored at [`WAL_ANCHOR`]).
    #[must_use]
    pub fn new(primary: Arc<dyn DiskBackend>) -> Self {
        Self {
            cursor: LogCursor::new(WAL_ANCHOR),
            disk: primary,
        }
    }

    /// The primary's disk (what followers resync their base image from).
    #[must_use]
    pub fn primary(&self) -> &Arc<dyn DiskBackend> {
        &self.disk
    }

    /// `(generation, last shipped LSN)` — where the shipper stands.
    #[must_use]
    pub fn position(&self) -> (u32, Lsn) {
        self.cursor.position()
    }

    /// Ship everything appended since the last poll. An empty
    /// [`ShipBatch::records`] means the follower is caught up.
    pub fn poll(&mut self) -> ReplResult<ShipBatch> {
        self.cursor.poll(self.disk.as_ref()).map_err(|e| match &e {
            StorageError::Io(io) if io.to_string().contains("not a write-ahead log") => {
                ReplError::NotDurable
            }
            _ => ReplError::Storage(e),
        })
    }
}

/// A warm standby: redoes shipped batches onto its own disk and serves
/// read-only queries at the apply-LSN watermark (see the crate docs).
pub struct Follower {
    /// The primary's disk — the base-image source for resyncs. Dropped
    /// (detached) by [`Follower::promote`].
    primary: Arc<dyn DiskBackend>,
    /// The replica's own disk, wrapped by `bur`'s buffer pool.
    bur: Bur,
    /// Options the follower promotes with (strategy, durability, ...).
    opts: IndexOptions,
    /// Generation currently being applied.
    generation: u32,
    /// LSN of the last applied commit — the consistent-prefix watermark.
    applied_lsn: Lsn,
    /// Page records since the last commit, held back so queries never
    /// see an unacknowledged suffix.
    pending: Vec<(Lsn, WalRecord)>,
    /// Last replayed record per page, for delta chain verification.
    page_lsns: HashMap<PageId, Lsn>,
    stats: ReplStats,
}

impl fmt::Debug for Follower {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Follower")
            .field("generation", &self.generation)
            .field("applied_lsn", &self.applied_lsn)
            .field("pending", &self.pending.len())
            .finish_non_exhaustive()
    }
}

impl Follower {
    /// Attach a fresh follower: copy the primary's base image onto the
    /// (empty) `replica` disk, position at the current log generation,
    /// and apply its surviving records. `opts` is the configuration the
    /// follower will [`Follower::promote`] with; its page size must
    /// match the primary's.
    pub fn attach(
        shipper: &mut LogShipper,
        replica: Arc<dyn DiskBackend>,
        opts: IndexOptions,
    ) -> ReplResult<Self> {
        let ps = shipper.primary().page_size();
        if replica.page_size() != ps {
            return Err(ReplError::Protocol(format!(
                "replica page size {} != primary's {ps}",
                replica.page_size()
            )));
        }
        if replica.num_pages() != 0 {
            return Err(ReplError::Protocol(
                "attach requires an empty replica disk".into(),
            ));
        }
        let batch = shipper.poll()?;
        if !batch.rewound {
            return Err(ReplError::Protocol(
                "attach poll must start a generation (cursor already used?)".into(),
            ));
        }
        let Some((first_lsn, WalRecord::Checkpoint { meta })) = batch.records.first() else {
            // Every live generation opens with its checkpoint record; a
            // missing one means the primary crashed mid-rewind — recover
            // it first, then attach.
            return Err(ReplError::Protocol(
                "primary log has no opening checkpoint (crashed mid-rewind? recover it first)"
                    .into(),
            ));
        };
        let meta = meta.clone();
        let mut follower = Self {
            primary: shipper.primary().clone(),
            // Placeholder; replaced right after the base copy below.
            bur: Bur::from_index_read_only(RTreeIndex::replica_view(
                replica.clone(),
                opts.buffer_frames,
                &meta,
            )?),
            opts,
            generation: batch.generation,
            applied_lsn: *first_lsn,
            pending: Vec::new(),
            page_lsns: HashMap::new(),
            stats: ReplStats::default(),
        };
        // The view above was built before the copy only to validate the
        // snapshot; the real base image lands now (atomically with the
        // snapshot install), then the rest of the generation replays
        // through the ordinary path.
        follower.resync_base(*first_lsn, &meta)?;
        follower.stats.records_shipped += batch.records.len() as u64;
        follower.apply_records(&batch.records[1..])?;
        Ok(follower)
    }

    /// [`Follower::attach`] onto a fresh in-memory disk sized like the
    /// primary's pages.
    pub fn attach_in_memory(shipper: &mut LogShipper, opts: IndexOptions) -> ReplResult<Self> {
        let disk = Arc::new(MemDisk::new(shipper.primary().page_size()));
        Self::attach(shipper, disk, opts)
    }

    /// A read-only handle on the replica for query threads. Clones stay
    /// valid across applies and resyncs, and become writable handles on
    /// the new primary after [`Follower::promote`].
    #[must_use]
    pub fn handle(&self) -> Bur {
        self.bur.clone()
    }

    /// The apply-LSN watermark: every query through [`Follower::handle`]
    /// sees exactly the primary's committed state at this LSN.
    #[must_use]
    pub fn applied_lsn(&self) -> Lsn {
        self.applied_lsn
    }

    /// The log generation the follower is applying.
    #[must_use]
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// Page records buffered since the last commit (never visible to
    /// queries; discarded by a promote).
    #[must_use]
    pub fn pending_records(&self) -> usize {
        self.pending.len()
    }

    /// Lifetime counters.
    #[must_use]
    pub fn stats(&self) -> ReplStats {
        self.stats
    }

    /// Poll the shipper once and apply what arrived — the standby pump.
    pub fn sync_once(&mut self, shipper: &mut LogShipper) -> ReplResult<ApplyReport> {
        let batch = shipper.poll()?;
        self.apply(&batch)
    }

    /// Ship-and-apply until the follower is caught up with the log's
    /// current end (two consecutive empty polls), e.g. before a planned
    /// failover. Returns the final report.
    pub fn catch_up(&mut self, shipper: &mut LogShipper) -> ReplResult<ApplyReport> {
        let mut report = self.sync_once(shipper)?;
        let mut quiet = 0;
        while quiet < 2 {
            let r = self.sync_once(shipper)?;
            if r.records == 0 {
                quiet += 1;
            } else {
                quiet = 0;
                report = r;
            }
        }
        Ok(report)
    }

    /// Apply one shipped batch.
    ///
    /// A batch carrying a generation change ([`ShipBatch::rewound`])
    /// triggers a base-image resync from the primary's disk before its
    /// records (which restart at the new generation's checkpoint) are
    /// applied. Page records are redone in LSN order but only become
    /// visible — and [`Follower::applied_lsn`] only advances — when
    /// their covering commit record applies.
    pub fn apply(&mut self, batch: &ShipBatch) -> ReplResult<ApplyReport> {
        let before_commits = self.stats.commits_applied;
        let mut resynced = false;
        let mut records: &[(Lsn, WalRecord)] = &batch.records;
        if batch.rewound || batch.generation != self.generation {
            if batch.generation < self.generation {
                return Err(ReplError::Protocol(format!(
                    "batch generation {} behind follower's {}",
                    batch.generation, self.generation
                )));
            }
            // The primary checkpoint-rewound. Resync only once the new
            // generation's opening checkpoint record has arrived — the
            // base image and its snapshot swap together, atomically
            // under the index lock, so readers never see new pages under
            // old metadata. Until then (e.g. a poll that caught the
            // rewind mid-write) the follower keeps serving its last
            // consistent state.
            let Some((ckpt_lsn, first)) = records.first() else {
                return Ok(ApplyReport {
                    records: 0,
                    commits: 0,
                    resynced: false,
                    applied_lsn: self.applied_lsn,
                    pending: self.pending.len() as u64,
                });
            };
            let WalRecord::Checkpoint { meta } = first else {
                return Err(ReplError::Protocol(
                    "rewound stream does not open with a checkpoint record".into(),
                ));
            };
            let meta = meta.clone();
            self.generation = batch.generation;
            self.pending.clear();
            self.page_lsns.clear();
            self.resync_base(*ckpt_lsn, &meta)?;
            self.stats.records_shipped += 1;
            resynced = true;
            records = &records[1..];
        }
        self.stats.records_shipped += records.len() as u64;
        self.apply_records(records)?;
        Ok(ApplyReport {
            records: batch.records.len() as u64,
            commits: self.stats.commits_applied - before_commits,
            resynced,
            applied_lsn: self.applied_lsn,
            pending: self.pending.len() as u64,
        })
    }

    /// Fail over: detach from the primary, discard the uncommitted tail,
    /// and promote the replica into a writable index with the options
    /// given at attach time. Every [`Follower::handle`] clone becomes a
    /// handle on the new primary. The returned [`Bur`] serves writes
    /// immediately; with durable options its write-ahead log starts a
    /// fresh generation over the adopted state.
    pub fn promote(self) -> ReplResult<Bur> {
        let Follower { bur, opts, .. } = self;
        bur.promote_replica(opts)?;
        Ok(bur)
    }

    /// Redo `records` in order, releasing them to queries per commit.
    fn apply_records(&mut self, records: &[(Lsn, WalRecord)]) -> ReplResult<()> {
        for (lsn, rec) in records {
            let last = self.pending.last().map_or(self.applied_lsn, |&(l, _)| l);
            if *lsn <= last {
                return Err(ReplError::Protocol(format!(
                    "record lsn {lsn} arrived at or behind shipped lsn {last}"
                )));
            }
            match rec {
                WalRecord::PageImage { .. } | WalRecord::PageDelta { .. } => {
                    self.pending.push((*lsn, rec.clone()));
                }
                WalRecord::Commit { meta } | WalRecord::Checkpoint { meta } => {
                    self.apply_commit(*lsn, meta)?;
                }
            }
        }
        Ok(())
    }

    /// Redo the buffered page records and install the commit's snapshot
    /// — one atomic step under the index's exclusive lock, so concurrent
    /// readers jump from watermark to watermark.
    fn apply_commit(&mut self, lsn: Lsn, meta: &[u8]) -> ReplResult<()> {
        let Follower {
            bur,
            pending,
            page_lsns,
            stats,
            ..
        } = self;
        let drained = std::mem::take(pending);
        bur.with_index_mut(|index| -> ReplResult<()> {
            let pool = index.pool().clone();
            for (rlsn, rec) in &drained {
                match rec {
                    WalRecord::PageImage { pid, data } => {
                        if data.len() != pool.page_size() {
                            return Err(ReplError::Protocol(format!(
                                "image of page {pid} has {} bytes, expected {}",
                                data.len(),
                                pool.page_size()
                            )));
                        }
                        while *pid >= pool.disk().num_pages() {
                            pool.disk().allocate().map_err(ReplError::Storage)?;
                        }
                        let guard = pool.fetch_for_overwrite(*pid).map_err(ReplError::Storage)?;
                        guard.write().copy_from_slice(data);
                        drop(guard);
                        page_lsns.insert(*pid, *rlsn);
                        stats.images_applied += 1;
                    }
                    WalRecord::PageDelta {
                        pid,
                        base_lsn,
                        ranges,
                    } => {
                        match page_lsns.get(pid) {
                            Some(&have) if have == *base_lsn => {}
                            _ => {
                                return Err(ReplError::Protocol(format!(
                                    "delta for page {pid} at lsn {rlsn} does not chain to a \
                                     replayed image"
                                )))
                            }
                        }
                        let guard = pool.fetch(*pid).map_err(ReplError::Storage)?;
                        if !apply_delta(&mut guard.write(), ranges) {
                            return Err(ReplError::Protocol(format!(
                                "delta for page {pid} at lsn {rlsn} exceeds the page bounds"
                            )));
                        }
                        drop(guard);
                        page_lsns.insert(*pid, *rlsn);
                        stats.deltas_applied += 1;
                    }
                    _ => unreachable!("only page records are buffered"),
                }
            }
            index.install_replica_snapshot(meta)?;
            Ok(())
        })?;
        self.applied_lsn = lsn;
        self.stats.commits_applied += 1;
        Ok(())
    }

    /// Copy every primary page onto the replica through its buffer pool
    /// (so cached frames stay coherent, extending the replica disk as
    /// needed) and install the new generation's opening checkpoint
    /// snapshot — one atomic step under the index's exclusive lock, so
    /// readers move from the old consistent state to the new one without
    /// ever seeing new pages under old metadata. The copy itself is
    /// fuzzy — see the crate docs for why replaying the generation on
    /// top of it converges.
    fn resync_base(&mut self, checkpoint_lsn: Lsn, meta: &[u8]) -> ReplResult<()> {
        let Follower {
            primary,
            bur,
            stats,
            ..
        } = self;
        bur.with_index_mut(|index| -> ReplResult<()> {
            let pool = index.pool().clone();
            let ps = pool.page_size();
            let mut buf = vec![0u8; ps];
            let n = primary.num_pages();
            for pid in 0..n {
                primary.read(pid, &mut buf).map_err(ReplError::Storage)?;
                while pid >= pool.disk().num_pages() {
                    pool.disk().allocate().map_err(ReplError::Storage)?;
                }
                let guard = pool.fetch_for_overwrite(pid).map_err(ReplError::Storage)?;
                guard.write().copy_from_slice(&buf);
            }
            stats.pages_copied += u64::from(n);
            index.install_replica_snapshot(meta)?;
            Ok(())
        })?;
        self.applied_lsn = checkpoint_lsn;
        self.stats.commits_applied += 1;
        self.stats.resyncs += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bur_core::{Batch, IndexBuilder};
    use bur_geom::{Point, Rect};

    const PAGE: usize = 1024;

    fn primary_pair() -> (Bur, Arc<MemDisk>) {
        let disk = Arc::new(MemDisk::new(PAGE));
        let primary = IndexBuilder::generalized()
            .durable()
            .disk(disk.clone())
            .build()
            .unwrap();
        (primary, disk)
    }

    fn grid_batch(range: std::ops::Range<u64>) -> Batch {
        let mut batch = Batch::new();
        for oid in range {
            batch.insert(
                oid,
                Point::new((oid % 16) as f32 / 16.0, ((oid / 16) % 16) as f32 / 16.0),
            );
        }
        batch
    }

    #[test]
    fn follower_tracks_primary_and_serves_reads() {
        let (primary, disk) = primary_pair();
        primary.apply(&grid_batch(0..64)).unwrap().wait().unwrap();

        let mut shipper = LogShipper::new(disk);
        let mut follower =
            Follower::attach_in_memory(&mut shipper, IndexOptions::durable()).unwrap();
        let replica = follower.handle();
        assert!(replica.is_read_only());
        assert_eq!(replica.len(), 64);

        // More primary writes arrive incrementally.
        primary.apply(&grid_batch(64..128)).unwrap().wait().unwrap();
        let report = follower.sync_once(&mut shipper).unwrap();
        assert!(report.commits >= 1);
        assert_eq!(replica.len(), 128);
        let w = Rect::new(0.0, 0.0, 0.49, 0.49);
        let mut a: Vec<u64> = primary.query(&w).unwrap().collect();
        let mut b: Vec<u64> = replica.query(&w).unwrap().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        replica.validate().unwrap();
    }

    #[test]
    fn read_only_handle_refuses_writes_until_promoted() {
        let (primary, disk) = primary_pair();
        primary.apply(&grid_batch(0..32)).unwrap().wait().unwrap();
        let mut shipper = LogShipper::new(disk);
        let mut follower =
            Follower::attach_in_memory(&mut shipper, IndexOptions::durable()).unwrap();
        follower.catch_up(&mut shipper).unwrap();
        let replica = follower.handle();
        assert!(matches!(
            replica.insert(900, Point::new(0.5, 0.5)),
            Err(CoreError::ReadOnly)
        ));
        assert!(matches!(
            replica.apply(&grid_batch(900..901)),
            Err(CoreError::ReadOnly)
        ));
        assert!(matches!(replica.checkpoint(), Err(CoreError::ReadOnly)));
        assert!(matches!(
            replica.update(0, Point::new(0.0, 0.0), Point::new(0.1, 0.1)),
            Err(CoreError::ReadOnly)
        ));
        assert!(matches!(
            replica.delete(0, Point::new(0.0, 0.0)),
            Err(CoreError::ReadOnly)
        ));

        let new_primary = follower.promote().unwrap();
        assert!(!replica.is_read_only(), "clones flip writable in place");
        new_primary.insert(900, Point::new(0.5, 0.5)).unwrap();
        assert_eq!(replica.len(), 33);
        new_primary.validate().unwrap();
    }

    #[test]
    fn uncommitted_tail_is_invisible_and_discarded_by_promote() {
        let (primary, disk) = primary_pair();
        let mut shipper = LogShipper::new(disk);
        let mut follower =
            Follower::attach_in_memory(&mut shipper, IndexOptions::durable()).unwrap();
        primary.apply(&grid_batch(0..48)).unwrap().wait().unwrap();
        let mut full = shipper.poll().unwrap();
        assert!(!full.records.is_empty());
        // Strip the trailing commit: pure page records, no covering
        // commit — the batch a crash would cut mid-flight.
        while matches!(
            full.records.last(),
            Some((_, WalRecord::Commit { .. } | WalRecord::Checkpoint { .. }))
        ) {
            full.records.pop();
        }
        let before = follower.applied_lsn();
        let report = follower.apply(&full).unwrap();
        assert_eq!(report.commits, 0);
        assert_eq!(follower.applied_lsn(), before, "watermark must not move");
        assert!(follower.pending_records() > 0);
        assert_eq!(follower.handle().len(), 0, "tail stays invisible");

        let promoted = follower.promote().unwrap();
        assert_eq!(promoted.len(), 0, "unacked batch not half-applied");
        promoted.validate().unwrap();
    }

    #[test]
    fn checkpoint_rewind_resyncs_without_stale_records() {
        let (primary, disk) = primary_pair();
        primary.apply(&grid_batch(0..40)).unwrap().wait().unwrap();
        let mut shipper = LogShipper::new(disk);
        let mut follower =
            Follower::attach_in_memory(&mut shipper, IndexOptions::durable()).unwrap();
        follower.catch_up(&mut shipper).unwrap();
        let gen_before = follower.generation();
        let resyncs_before = follower.stats().resyncs;

        primary.checkpoint().unwrap(); // log rewinds
        primary.apply(&grid_batch(40..80)).unwrap().wait().unwrap();
        let report = follower.catch_up(&mut shipper).unwrap();
        let _ = report;
        assert!(follower.generation() > gen_before);
        assert_eq!(follower.stats().resyncs, resyncs_before + 1);
        assert_eq!(follower.handle().len(), 80);
        follower.handle().validate().unwrap();
    }

    #[test]
    fn attach_rejects_bad_replica_disks_and_dead_primaries() {
        let (_primary, disk) = primary_pair();
        let mut shipper = LogShipper::new(disk.clone());
        // Wrong page size.
        let bad = Arc::new(MemDisk::new(512));
        assert!(Follower::attach(&mut shipper, bad, IndexOptions::durable()).is_err());
        // Non-empty replica disk.
        let used = Arc::new(MemDisk::new(PAGE));
        used.allocate().unwrap();
        let mut shipper = LogShipper::new(disk);
        assert!(Follower::attach(&mut shipper, used, IndexOptions::durable()).is_err());
        // A disk that was never durable.
        let cold = Arc::new(MemDisk::new(PAGE));
        cold.allocate().unwrap();
        cold.allocate().unwrap();
        let mut shipper = LogShipper::new(cold);
        assert!(matches!(
            Follower::attach_in_memory(&mut shipper, IndexOptions::durable()),
            Err(ReplError::NotDurable)
        ));
    }

    #[test]
    fn error_display_names_the_failure() {
        assert!(ReplError::NotDurable.to_string().contains("write-ahead"));
        assert!(ReplError::Protocol("x".into()).to_string().contains('x'));
        let e: ReplError = StorageError::DiskFull.into();
        assert!(e.to_string().contains("storage"));
        let e: ReplError = CoreError::ReadOnly.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
