//! A frame-aware TCP chaos proxy — the network analogue of the storage
//! layer's `FaultyDisk`.
//!
//! [`ChaosProxy`] sits between a client and `burd`, forwards whole wire
//! frames in both directions, and injects faults according to a seeded,
//! scriptable [`FaultPlan`]: drop the connection, truncate a frame
//! mid-payload, delay it, or black-hole one direction (read and discard
//! forever — the peer sees a connection that is alive but silent). All
//! randomized decisions derive from `seed ^ hash(conn, direction)`, so a
//! drill that fails under seed N replays bit-for-bit under seed N.
//!
//! The proxy never parses payloads — it only needs frame boundaries, so
//! the faults it injects land at protocol-meaningful points (a
//! truncated frame is a *malformed* frame to the receiver, a dropped
//! ack is a *lost* ack, not a half-written length prefix the next frame
//! would resynchronise past).

use crate::wire::{self, FrameError};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt;
use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

/// How long a pump thread's blocked read waits before re-checking the
/// stop flag.
const PUMP_TICK: Duration = Duration::from_millis(100);

/// Which way a frame is travelling through the proxy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Requests: client → server.
    ClientToServer,
    /// Responses: server → client.
    ServerToClient,
}

impl Direction {
    fn tag(self) -> u64 {
        match self {
            Direction::ClientToServer => 0x1,
            Direction::ServerToClient => 0x2,
        }
    }

    /// Short label used by [`FaultPlan::parse`] scripts (`c2s`/`s2c`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Direction::ClientToServer => "c2s",
            Direction::ServerToClient => "s2c",
        }
    }
}

/// One injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Close both directions of the connection instead of forwarding
    /// this frame (the peer sees a reset/EOF mid-conversation).
    Drop,
    /// Forward the frame's header plus half its payload, then close —
    /// the receiver gets a provably malformed frame.
    Truncate,
    /// Stop forwarding this direction entirely (frames are read and
    /// discarded): the peer's connection stays open but goes silent,
    /// which is what client-side timeouts exist for.
    Blackhole,
    /// Forward the frame after sleeping.
    Delay(Duration),
}

/// A fault pinned to an exact `(connection, direction, frame index)`
/// coordinate — for deterministic tests that need, say, "eat exactly
/// the first ack".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScriptedFault {
    /// 0-based connection number in accept order.
    pub conn: u64,
    /// Which pump the fault applies to.
    pub direction: Direction,
    /// 0-based frame index within that pump.
    pub frame: u64,
    /// What to do to it.
    pub fault: Fault,
}

/// The seeded fault schedule for one proxy. Rates are per-frame
/// probabilities in `[0, 1]`; scripted faults override the dice for
/// their exact coordinate.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Master seed; every `(conn, direction)` pump derives its own
    /// stream from it.
    pub seed: u64,
    /// Probability a frame drops the whole connection.
    pub drop_rate: f64,
    /// Probability a frame is truncated mid-payload (then closed).
    pub truncate_rate: f64,
    /// Probability a pump goes permanently silent at a frame.
    pub blackhole_rate: f64,
    /// Probability a frame is delayed by [`FaultPlan::delay`].
    pub delay_rate: f64,
    /// The delay applied to delayed frames.
    pub delay: Duration,
    /// Per-direction byte budget: once a pump has forwarded this many
    /// bytes the connection is cut mid-stream ("drop connection after
    /// N bytes"). `None` = unlimited.
    pub cut_after_bytes: Option<u64>,
    /// Exact-coordinate overrides, consulted before the dice.
    pub script: Vec<ScriptedFault>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            drop_rate: 0.0,
            truncate_rate: 0.0,
            blackhole_rate: 0.0,
            delay_rate: 0.0,
            delay: Duration::from_millis(1),
            cut_after_bytes: None,
            script: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// Parse the compact CLI spec used by `burctl chaos --plan`:
    /// comma-separated `key=value` pairs.
    ///
    /// ```text
    /// seed=42,drop=0.05,truncate=0.02,delay=0.1:5,blackhole=0.01,cut-after=4096
    /// ```
    ///
    /// Keys: `seed=<u64>`, `drop=<rate>`, `truncate=<rate>`,
    /// `blackhole=<rate>`, `delay=<rate>` or `delay=<rate>:<millis>`,
    /// `cut-after=<bytes>`, and `script=<conn>/<c2s|s2c>/<frame>/<drop|truncate|blackhole|delay>`
    /// (repeatable, `+`-separated).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::default();
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got {part:?}"))?;
            let rate = |v: &str| -> Result<f64, String> {
                let r: f64 = v.parse().map_err(|_| format!("bad rate {v:?}"))?;
                if (0.0..=1.0).contains(&r) {
                    Ok(r)
                } else {
                    Err(format!("rate {r} outside [0, 1]"))
                }
            };
            match key {
                "seed" => plan.seed = value.parse().map_err(|_| format!("bad seed {value:?}"))?,
                "drop" => plan.drop_rate = rate(value)?,
                "truncate" => plan.truncate_rate = rate(value)?,
                "blackhole" => plan.blackhole_rate = rate(value)?,
                "delay" => match value.split_once(':') {
                    Some((r, ms)) => {
                        plan.delay_rate = rate(r)?;
                        plan.delay = Duration::from_millis(
                            ms.parse().map_err(|_| format!("bad delay millis {ms:?}"))?,
                        );
                    }
                    None => plan.delay_rate = rate(value)?,
                },
                "cut-after" => {
                    plan.cut_after_bytes = Some(
                        value
                            .parse()
                            .map_err(|_| format!("bad byte count {value:?}"))?,
                    );
                }
                "script" => {
                    for item in value.split('+').filter(|s| !s.is_empty()) {
                        plan.script.push(Self::parse_scripted(item)?);
                    }
                }
                other => return Err(format!("unknown plan key {other:?}")),
            }
        }
        Ok(plan)
    }

    fn parse_scripted(item: &str) -> Result<ScriptedFault, String> {
        let fields: Vec<&str> = item.split('/').collect();
        let [conn, dir, frame, fault] = fields.as_slice() else {
            return Err(format!(
                "script entry {item:?} is not <conn>/<dir>/<frame>/<fault>"
            ));
        };
        Ok(ScriptedFault {
            conn: conn.parse().map_err(|_| format!("bad conn {conn:?}"))?,
            direction: match *dir {
                "c2s" => Direction::ClientToServer,
                "s2c" => Direction::ServerToClient,
                other => return Err(format!("bad direction {other:?} (use c2s/s2c)")),
            },
            frame: frame.parse().map_err(|_| format!("bad frame {frame:?}"))?,
            fault: match *fault {
                "drop" => Fault::Drop,
                "truncate" => Fault::Truncate,
                "blackhole" => Fault::Blackhole,
                "delay" => Fault::Delay(Duration::from_millis(5)),
                other => {
                    return Err(format!(
                        "bad fault {other:?} (use drop/truncate/blackhole/delay)"
                    ))
                }
            },
        })
    }

    fn decide(
        &self,
        rng: &mut StdRng,
        conn: u64,
        direction: Direction,
        frame: u64,
    ) -> Option<Fault> {
        // Scripted coordinates override the dice entirely.
        for s in &self.script {
            if s.conn == conn && s.direction == direction && s.frame == frame {
                return Some(s.fault);
            }
        }
        // Fixed draw order keeps a seed's schedule stable regardless of
        // which rates are zero.
        let d_drop = rng.random_bool(self.drop_rate);
        let d_trunc = rng.random_bool(self.truncate_rate);
        let d_hole = rng.random_bool(self.blackhole_rate);
        let d_delay = rng.random_bool(self.delay_rate);
        if d_drop {
            Some(Fault::Drop)
        } else if d_trunc {
            Some(Fault::Truncate)
        } else if d_hole {
            Some(Fault::Blackhole)
        } else if d_delay {
            Some(Fault::Delay(self.delay))
        } else {
            None
        }
    }
}

/// Counters for one proxy's lifetime, for assertions ("the drill
/// actually injected faults") and the standalone tool's logging.
#[derive(Debug, Default)]
struct SharedStats {
    connections: AtomicU64,
    frames_forwarded: AtomicU64,
    bytes_forwarded: AtomicU64,
    drops: AtomicU64,
    truncations: AtomicU64,
    blackholes: AtomicU64,
    delays: AtomicU64,
}

/// Snapshot of a proxy's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Connections accepted.
    pub connections: u64,
    /// Frames forwarded intact (delayed frames count once forwarded).
    pub frames_forwarded: u64,
    /// Bytes forwarded (including truncated fragments).
    pub bytes_forwarded: u64,
    /// Connections dropped by fault injection (including byte-budget
    /// cuts).
    pub drops: u64,
    /// Frames truncated mid-payload.
    pub truncations: u64,
    /// Pumps that went silent.
    pub blackholes: u64,
    /// Frames delayed.
    pub delays: u64,
}

impl ChaosStats {
    /// Total faults injected.
    #[must_use]
    pub fn faults(&self) -> u64 {
        self.drops + self.truncations + self.blackholes + self.delays
    }
}

/// A running chaos proxy. Dropping the handle shuts it down.
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<SharedStats>,
    streams: Arc<Mutex<Vec<TcpStream>>>,
    accept: Mutex<Option<JoinHandle<()>>>,
}

impl fmt::Debug for ChaosProxy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChaosProxy")
            .field("addr", &self.addr)
            .field("stats", &self.stats())
            .finish()
    }
}

impl ChaosProxy {
    /// Bind `listen` (port 0 allowed), forward every accepted
    /// connection to `upstream`, and inject faults per `plan`.
    pub fn start(
        listen: &str,
        upstream: impl ToSocketAddrs,
        plan: FaultPlan,
    ) -> io::Result<ChaosProxy> {
        let upstream = upstream.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::AddrNotAvailable,
                "upstream resolved to nothing",
            )
        })?;
        let listener = TcpListener::bind(listen)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(SharedStats::default());
        let streams: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            let streams = Arc::clone(&streams);
            std::thread::Builder::new()
                .name("chaos-accept".into())
                .spawn(move || accept_loop(&listener, upstream, &plan, &stop, &stats, &streams))
                .expect("spawn chaos accept thread")
        };
        Ok(ChaosProxy {
            addr,
            stop,
            stats,
            streams,
            accept: Mutex::new(Some(accept)),
        })
    }

    /// The proxy's bound address — point clients here.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Counters so far.
    #[must_use]
    pub fn stats(&self) -> ChaosStats {
        ChaosStats {
            connections: self.stats.connections.load(Ordering::Relaxed),
            frames_forwarded: self.stats.frames_forwarded.load(Ordering::Relaxed),
            bytes_forwarded: self.stats.bytes_forwarded.load(Ordering::Relaxed),
            drops: self.stats.drops.load(Ordering::Relaxed),
            truncations: self.stats.truncations.load(Ordering::Relaxed),
            blackholes: self.stats.blackholes.load(Ordering::Relaxed),
            delays: self.stats.delays.load(Ordering::Relaxed),
        }
    }

    /// Stop accepting, tear down every proxied connection, join the
    /// pump threads. Idempotent.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the listener so it observes the flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(500));
        for stream in self.streams.lock().drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
        if let Some(accept) = self.accept.lock().take() {
            let _ = accept.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    upstream: SocketAddr,
    plan: &FaultPlan,
    stop: &Arc<AtomicBool>,
    stats: &Arc<SharedStats>,
    streams: &Arc<Mutex<Vec<TcpStream>>>,
) {
    let mut pumps: Vec<JoinHandle<()>> = Vec::new();
    let mut conn_id = 0u64;
    loop {
        let client = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(_) => break,
        };
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let server = match TcpStream::connect_timeout(&upstream, Duration::from_secs(2)) {
            Ok(stream) => stream,
            Err(_) => {
                // Upstream unreachable: the client sees an immediate
                // close, which is itself a realistic fault.
                let _ = client.shutdown(Shutdown::Both);
                continue;
            }
        };
        stats.connections.fetch_add(1, Ordering::Relaxed);
        let _ = client.set_nodelay(true);
        let _ = server.set_nodelay(true);
        {
            let mut tracked = streams.lock();
            if let Ok(c) = client.try_clone() {
                tracked.push(c);
            }
            if let Ok(s) = server.try_clone() {
                tracked.push(s);
            }
        }
        pumps.retain(|h| !h.is_finished());
        for (direction, src, dst) in [
            (
                Direction::ClientToServer,
                client.try_clone(),
                server.try_clone(),
            ),
            (
                Direction::ServerToClient,
                server.try_clone(),
                client.try_clone(),
            ),
        ] {
            let (Ok(src), Ok(dst)) = (src, dst) else {
                continue;
            };
            let plan = plan.clone();
            let stop = Arc::clone(stop);
            let stats = Arc::clone(stats);
            let handle = std::thread::Builder::new()
                .name(format!("chaos-pump-{}", direction.label()))
                .spawn(move || pump(src, dst, &plan, conn_id, direction, &stop, &stats))
                .expect("spawn chaos pump thread");
            pumps.push(handle);
        }
        conn_id += 1;
    }
    for pump in pumps {
        let _ = pump.join();
    }
}

/// Forward frames from `src` to `dst`, consulting the plan once per
/// frame. Runs until EOF, connection teardown, or the stop flag.
fn pump(
    mut src: TcpStream,
    mut dst: TcpStream,
    plan: &FaultPlan,
    conn: u64,
    direction: Direction,
    stop: &AtomicBool,
    stats: &SharedStats,
) {
    // Independent deterministic stream per (conn, direction) pump.
    let mut rng = StdRng::seed_from_u64(
        plan.seed ^ (conn.wrapping_mul(0x9e37_79b9_7f4a_7c15)) ^ direction.tag(),
    );
    let _ = src.set_read_timeout(Some(PUMP_TICK));
    let mut frame_idx = 0u64;
    let mut bytes_sent = 0u64;
    let mut blackholed = false;
    let teardown = |src: &TcpStream, dst: &TcpStream| {
        let _ = src.shutdown(Shutdown::Both);
        let _ = dst.shutdown(Shutdown::Both);
    };
    loop {
        if stop.load(Ordering::SeqCst) {
            teardown(&src, &dst);
            return;
        }
        let frame = match wire::read_frame(&mut src) {
            Ok(Some(frame)) => frame,
            Ok(None) => {
                // Clean EOF: half-close the forward direction so the
                // peer sees it too.
                let _ = dst.shutdown(Shutdown::Write);
                return;
            }
            Err(FrameError::Io(e))
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => {
                teardown(&src, &dst);
                return;
            }
        };
        let fault = plan.decide(&mut rng, conn, direction, frame_idx);
        frame_idx += 1;
        if blackholed {
            // Keep reading (so the sender never blocks) but forward
            // nothing.
            continue;
        }
        let mut buf = Vec::with_capacity(frame.payload.len() + 18);
        wire::write_frame_deadline(
            &mut buf,
            frame.request_id,
            frame.opcode,
            frame.deadline_ms,
            &frame.payload,
        );
        match fault {
            Some(Fault::Drop) => {
                stats.drops.fetch_add(1, Ordering::Relaxed);
                teardown(&src, &dst);
                return;
            }
            Some(Fault::Truncate) => {
                stats.truncations.fetch_add(1, Ordering::Relaxed);
                let cut = buf.len() - frame.payload.len() / 2 - 1;
                let fragment = &buf[..cut.max(1)];
                let _ = dst.write_all(fragment);
                stats
                    .bytes_forwarded
                    .fetch_add(fragment.len() as u64, Ordering::Relaxed);
                teardown(&src, &dst);
                return;
            }
            Some(Fault::Blackhole) => {
                stats.blackholes.fetch_add(1, Ordering::Relaxed);
                blackholed = true;
                continue;
            }
            Some(Fault::Delay(d)) => {
                stats.delays.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(d);
            }
            None => {}
        }
        // Byte-budget cut: forward only up to the budget, then drop the
        // connection mid-stream.
        if let Some(budget) = plan.cut_after_bytes {
            let remaining = budget.saturating_sub(bytes_sent);
            if (buf.len() as u64) > remaining {
                let fragment = &buf[..remaining as usize];
                if !fragment.is_empty() {
                    let _ = dst.write_all(fragment);
                    stats
                        .bytes_forwarded
                        .fetch_add(fragment.len() as u64, Ordering::Relaxed);
                }
                stats.drops.fetch_add(1, Ordering::Relaxed);
                teardown(&src, &dst);
                return;
            }
        }
        if dst.write_all(&buf).is_err() {
            teardown(&src, &dst);
            return;
        }
        bytes_sent += buf.len() as u64;
        stats.frames_forwarded.fetch_add(1, Ordering::Relaxed);
        stats
            .bytes_forwarded
            .fetch_add(buf.len() as u64, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_spec_parses() {
        let plan = FaultPlan::parse(
            "seed=42,drop=0.05,truncate=0.02,delay=0.1:5,blackhole=0.01,cut-after=4096",
        )
        .expect("parses");
        assert_eq!(plan.seed, 42);
        assert!((plan.drop_rate - 0.05).abs() < 1e-9);
        assert!((plan.truncate_rate - 0.02).abs() < 1e-9);
        assert!((plan.delay_rate - 0.1).abs() < 1e-9);
        assert_eq!(plan.delay, Duration::from_millis(5));
        assert!((plan.blackhole_rate - 0.01).abs() < 1e-9);
        assert_eq!(plan.cut_after_bytes, Some(4096));

        let scripted = FaultPlan::parse("script=0/s2c/0/drop+1/c2s/2/truncate").expect("parses");
        assert_eq!(
            scripted.script,
            vec![
                ScriptedFault {
                    conn: 0,
                    direction: Direction::ServerToClient,
                    frame: 0,
                    fault: Fault::Drop,
                },
                ScriptedFault {
                    conn: 1,
                    direction: Direction::ClientToServer,
                    frame: 2,
                    fault: Fault::Truncate,
                },
            ]
        );

        assert!(FaultPlan::parse("drop=1.5").is_err());
        assert!(FaultPlan::parse("volume=11").is_err());
        assert!(FaultPlan::parse("script=0/xyz/0/drop").is_err());
        assert!(FaultPlan::parse("seed").is_err());
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let plan = FaultPlan {
            seed: 7,
            drop_rate: 0.2,
            truncate_rate: 0.2,
            blackhole_rate: 0.1,
            delay_rate: 0.3,
            ..FaultPlan::default()
        };
        let draw = |conn: u64, dir: Direction| -> Vec<Option<Fault>> {
            let mut rng = StdRng::seed_from_u64(
                plan.seed ^ (conn.wrapping_mul(0x9e37_79b9_7f4a_7c15)) ^ dir.tag(),
            );
            (0..64)
                .map(|i| plan.decide(&mut rng, conn, dir, i))
                .collect()
        };
        assert_eq!(
            draw(0, Direction::ClientToServer),
            draw(0, Direction::ClientToServer)
        );
        assert_ne!(
            draw(0, Direction::ClientToServer),
            draw(1, Direction::ClientToServer),
            "different connections draw different schedules"
        );
        assert_ne!(
            draw(0, Direction::ClientToServer),
            draw(0, Direction::ServerToClient),
            "directions draw independent schedules"
        );
        let faults: usize = draw(0, Direction::ClientToServer)
            .iter()
            .filter(|f| f.is_some())
            .count();
        assert!(faults > 0, "rates this high must inject something");
    }

    #[test]
    fn scripted_faults_override_dice() {
        let plan = FaultPlan {
            script: vec![ScriptedFault {
                conn: 3,
                direction: Direction::ServerToClient,
                frame: 2,
                fault: Fault::Drop,
            }],
            ..FaultPlan::default()
        };
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            plan.decide(&mut rng, 3, Direction::ServerToClient, 2),
            Some(Fault::Drop)
        );
        assert_eq!(plan.decide(&mut rng, 3, Direction::ServerToClient, 1), None);
        assert_eq!(plan.decide(&mut rng, 2, Direction::ServerToClient, 2), None);
    }
}
