//! The write coalescer: merges concurrently arriving client batches
//! into one [`Batch`] → one index lock acquisition → ONE WAL group
//! commit record, then acks every contributing client once the
//! durable-LSN watermark covers the round.
//!
//! This is where the server beats N independent handles: N clients
//! fsyncing independently pay N syncs; N clients coalesced pay one.
//! The committer thread runs `recv` (blocking, zero idle cost), drains
//! whatever else queued while it slept, and commits the merged batch.
//! While it waits on the watermark, the next round's submissions pile
//! up behind it — load itself creates the grouping, no timer needed.

use bur_core::{Batch, Bur, CoreError, Op};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

/// Ops merged into a single round before the committer cuts it off
/// (bounds commit latency under a firehose; the remainder queues for
/// the next round).
const MAX_ROUND_OPS: usize = 8192;

/// Tuning knobs for one index's coalescer, set server-wide via
/// `ServerConfig` / `burd --queue-limit`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoalescerConfig {
    /// Admission ceiling: a write batch is refused with
    /// [`ApplyError::Overloaded`] when accepting it would push the
    /// queued-or-in-flight op count past this. Half of it is the
    /// degraded-mode watermark ([`Coalescer::is_degraded`]): queries
    /// are shed before writes, so the write path keeps its budget.
    pub max_queued_ops: usize,
    /// Bound on the retry-dedup table: distinct client sessions
    /// remembered (last sequence number + cached ack each). Oldest
    /// completed sessions are evicted first.
    pub max_sessions: usize,
}

impl Default for CoalescerConfig {
    fn default() -> Self {
        CoalescerConfig {
            max_queued_ops: 16_384,
            max_sessions: 1024,
        }
    }
}

/// Why a submission was refused or abandoned without (full) effect.
/// Distinct from the stringly-typed commit errors because the server
/// maps each variant to its own wire response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApplyError {
    /// Shed at admission: the bounded queue is full. No side effects;
    /// retry after backoff.
    Overloaded {
        /// Ops queued or in flight when the batch was refused.
        queued: usize,
        /// The configured admission ceiling.
        limit: usize,
    },
    /// The deadline passed before the batch was committed. No side
    /// effects; safe to retry with a fresh deadline.
    Expired,
    /// The batch (or the index) rejected it; the message crosses the
    /// wire verbatim. Partial-failure messages name the failing op.
    Rejected(String),
}

impl fmt::Display for ApplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApplyError::Overloaded { queued, limit } => {
                write!(f, "overloaded: {queued} ops queued (limit {limit})")
            }
            ApplyError::Expired => write!(f, "deadline expired before commit"),
            ApplyError::Rejected(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ApplyError {}

/// Durable acknowledgement for one coalesced submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteAck {
    /// LSN of the group commit record that covered this submission
    /// (0 on a non-durable index).
    pub lsn: u64,
    /// Operations applied for this submission.
    pub applied: u64,
    /// Submissions merged into the same group commit round, including
    /// this one.
    pub merged: u64,
}

/// Counters exposed on the `stats` opcode and consumed by the serving
/// tests to demonstrate coalescing (`rounds < submissions`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoalescerStats {
    /// Group commit rounds executed (= WAL group commit records cut by
    /// this coalescer).
    pub rounds: u64,
    /// Client submissions acknowledged.
    pub submissions: u64,
    /// Total operations committed.
    pub ops: u64,
    /// Write batches refused at admission (queue full).
    pub shed_writes: u64,
    /// Submissions whose deadline passed before commit.
    pub expired: u64,
    /// Retried batches answered from the dedup table instead of
    /// re-applying.
    pub dedup_hits: u64,
    /// Client sessions currently tracked by the dedup table.
    pub dedup_sessions: u64,
    /// Ops queued or in flight right now (admission gauge).
    pub queued_ops: u64,
}

impl CoalescerStats {
    /// Mean submissions merged per round (1.0 = no coalescing).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.submissions as f64 / self.rounds as f64
        }
    }
}

/// How a round-level failure reaches the submitting thread; `Expired`
/// guarantees the ops were *not* applied (the committer drops expired
/// submissions before batching them).
enum RoundError {
    Expired,
    Failed(String),
}

struct Submission {
    ops: Vec<Op>,
    deadline: Option<Instant>,
    reply: SyncSender<Result<WriteAck, RoundError>>,
}

#[derive(Default)]
struct SharedStats {
    rounds: AtomicU64,
    submissions: AtomicU64,
    ops: AtomicU64,
    shed_writes: AtomicU64,
    expired: AtomicU64,
    queued_ops: AtomicUsize,
}

// ---- retry dedup -----------------------------------------------------------

enum SlotState {
    /// The original attempt is somewhere between admission and ack;
    /// duplicates wait on the condvar instead of re-applying.
    InFlight,
    /// The attempt finished; duplicates replay this result.
    Done(Result<WriteAck, String>),
}

struct SessionSlot {
    seq: u64,
    state: SlotState,
    /// Logical clock for least-recently-touched eviction.
    tick: u64,
}

/// What [`DedupTable::begin`] decided for an incoming `(session, seq)`.
enum Admission {
    /// First sighting — caller must apply and then call `finish` (or
    /// `abandon` if it never reached the committer).
    Fresh,
    /// A duplicate of a finished attempt — return this result verbatim.
    Replay(Result<WriteAck, String>),
    /// The session has already moved past this sequence number.
    Stale,
    /// A duplicate arrived while the original was in flight and the
    /// wait for it outlived the duplicate's deadline.
    WaitExpired,
}

/// One completed retry-dedup slot, exportable across coalescers (see
/// [`Coalescer::export_dedup`] / [`Coalescer::merge_dedup`]). Carries
/// the session's highest finished sequence number and the cached
/// outcome a retry of that sequence must replay.
#[derive(Debug, Clone)]
pub struct DedupEntry {
    /// Client session id.
    pub session: u128,
    /// Highest finished sequence number for the session.
    pub seq: u64,
    /// The outcome to replay: the original ack, or the original
    /// deterministic rejection.
    pub ack: Result<WriteAck, String>,
}

/// Bounded per-session retry memory: the highest sequence number seen
/// and the cached outcome for it. One entry per client session, evicted
/// least-recently-touched once `max_sessions` is exceeded (only
/// completed entries are evictable).
struct DedupTable {
    max_sessions: usize,
    slots: Mutex<HashMap<u128, SessionSlot>>,
    done: Condvar,
    hits: AtomicU64,
    ticks: AtomicU64,
}

impl DedupTable {
    fn new(max_sessions: usize) -> Self {
        DedupTable {
            max_sessions: max_sessions.max(1),
            slots: Mutex::new(HashMap::new()),
            done: Condvar::new(),
            hits: AtomicU64::new(0),
            ticks: AtomicU64::new(0),
        }
    }

    fn tick(&self) -> u64 {
        self.ticks.fetch_add(1, Ordering::Relaxed)
    }

    fn begin(&self, session: u128, seq: u64, deadline: Option<Instant>) -> Admission {
        let mut slots = self.slots.lock();
        loop {
            match slots.get_mut(&session) {
                Some(slot) if slot.seq > seq => return Admission::Stale,
                Some(slot) if slot.seq == seq => match &slot.state {
                    SlotState::Done(result) => {
                        slot.tick = self.tick();
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return Admission::Replay(result.clone());
                    }
                    SlotState::InFlight => match deadline {
                        Some(d) => {
                            if self.done.wait_until(&mut slots, d).timed_out() {
                                return Admission::WaitExpired;
                            }
                        }
                        None => self.done.wait(&mut slots),
                    },
                },
                _ => {
                    if slots.len() >= self.max_sessions {
                        // Evict the least-recently-touched completed
                        // session; in-flight ones must keep their slot.
                        let victim = slots
                            .iter()
                            .filter(|(_, s)| matches!(s.state, SlotState::Done(_)))
                            .min_by_key(|(_, s)| s.tick)
                            .map(|(k, _)| *k);
                        if let Some(victim) = victim {
                            slots.remove(&victim);
                        }
                    }
                    let tick = self.tick();
                    slots.insert(
                        session,
                        SessionSlot {
                            seq,
                            state: SlotState::InFlight,
                            tick,
                        },
                    );
                    return Admission::Fresh;
                }
            }
        }
    }

    /// Record the outcome of a fresh attempt and wake duplicates.
    fn finish(&self, session: u128, seq: u64, result: Result<WriteAck, String>) {
        let mut slots = self.slots.lock();
        if let Some(slot) = slots.get_mut(&session) {
            if slot.seq == seq && matches!(slot.state, SlotState::InFlight) {
                slot.state = SlotState::Done(result);
                slot.tick = self.tick();
            }
        }
        drop(slots);
        self.done.notify_all();
    }

    /// Forget a fresh attempt that had no effect (shed, expired, or the
    /// index shut down) so a retry of the same sequence starts over.
    fn abandon(&self, session: u128, seq: u64) {
        let mut slots = self.slots.lock();
        if let Some(slot) = slots.get(&session) {
            if slot.seq == seq && matches!(slot.state, SlotState::InFlight) {
                slots.remove(&session);
            }
        }
        drop(slots);
        self.done.notify_all();
    }

    fn sessions(&self) -> usize {
        self.slots.lock().len()
    }

    /// Snapshot every completed slot. In-flight slots are skipped: they
    /// belong to submissions still working through *this* coalescer,
    /// and their waiters sit on this table's condvar.
    fn export(&self) -> Vec<DedupEntry> {
        self.slots
            .lock()
            .iter()
            .filter_map(|(session, slot)| match &slot.state {
                SlotState::Done(result) => Some(DedupEntry {
                    session: *session,
                    seq: slot.seq,
                    ack: result.clone(),
                }),
                SlotState::InFlight => None,
            })
            .collect()
    }

    /// Adopt exported slots from another coalescer's table. A donated
    /// entry lands only where it advances knowledge: inserted when the
    /// session is unknown here, replacing a *completed* slot at a lower
    /// sequence. On an equal sequence the local slot wins — a batch
    /// split across shards reuses one `(session, seq)` with different
    /// per-shard payloads, and the local ack is the one this shard's
    /// retries must replay. In-flight local slots are never displaced
    /// (their originals still own them). Over-capacity trims the
    /// least-recently-touched completed slots, same policy as `begin`.
    fn merge(&self, entries: Vec<DedupEntry>) {
        let mut slots = self.slots.lock();
        for entry in entries {
            match slots.get(&entry.session) {
                Some(slot) if slot.seq >= entry.seq => continue,
                Some(slot) if matches!(slot.state, SlotState::InFlight) => continue,
                _ => {}
            }
            let tick = self.tick();
            slots.insert(
                entry.session,
                SessionSlot {
                    seq: entry.seq,
                    state: SlotState::Done(entry.ack),
                    tick,
                },
            );
        }
        while slots.len() > self.max_sessions {
            let victim = slots
                .iter()
                .filter(|(_, s)| matches!(s.state, SlotState::Done(_)))
                .min_by_key(|(_, s)| s.tick)
                .map(|(k, _)| *k);
            match victim {
                Some(victim) => slots.remove(&victim),
                None => break,
            };
        }
    }
}

/// Per-index write coalescer. Clonable via `Arc` at the registry
/// layer; [`Coalescer::apply`] blocks the calling connection thread
/// until its submission is durable (or failed).
pub struct Coalescer {
    tx: Mutex<Option<Sender<Submission>>>,
    worker: Mutex<Option<JoinHandle<()>>>,
    stats: Arc<SharedStats>,
    dedup: DedupTable,
    config: CoalescerConfig,
}

impl std::fmt::Debug for Coalescer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coalescer")
            .field("stats", &self.stats())
            .finish()
    }
}

impl Coalescer {
    /// Start a committer thread for `bur` with default limits.
    #[must_use]
    pub fn new(bur: Bur) -> Self {
        Self::with_config(bur, CoalescerConfig::default())
    }

    /// Start a committer thread for `bur` with explicit limits.
    #[must_use]
    pub fn with_config(bur: Bur, config: CoalescerConfig) -> Self {
        let (tx, rx) = mpsc::channel::<Submission>();
        let stats = Arc::new(SharedStats::default());
        let worker_stats = Arc::clone(&stats);
        let worker = std::thread::Builder::new()
            .name("burd-committer".into())
            .spawn(move || committer_loop(&bur, &rx, &worker_stats))
            .expect("spawn committer thread");
        Coalescer {
            tx: Mutex::new(Some(tx)),
            worker: Mutex::new(Some(worker)),
            stats,
            dedup: DedupTable::new(config.max_sessions),
            config,
        }
    }

    /// Submit a batch without retry protection or a deadline and block
    /// until it is durable. Errors are stringly-typed because they
    /// cross the wire verbatim.
    pub fn apply(&self, ops: Vec<Op>) -> Result<WriteAck, String> {
        self.apply_session(0, 0, ops, None)
            .map_err(|e| e.to_string())
    }

    /// Submit a batch and block until it is durable, refused, or past
    /// `deadline`.
    ///
    /// A non-zero `session` enables retry deduplication: the table
    /// remembers the highest `seq` per session together with its
    /// outcome, so a retried batch (same `session`, same `seq`) replays
    /// the original ack or error instead of applying twice. Duplicates
    /// that arrive while the original is still in flight wait for it.
    /// [`ApplyError::Overloaded`] and [`ApplyError::Expired`] guarantee
    /// "no side effects", which is what makes blind client retries
    /// safe.
    pub fn apply_session(
        &self,
        session: u128,
        seq: u64,
        ops: Vec<Op>,
        deadline: Option<Instant>,
    ) -> Result<WriteAck, ApplyError> {
        if ops.is_empty() {
            return Ok(WriteAck {
                lsn: 0,
                applied: 0,
                merged: 0,
            });
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            self.stats.expired.fetch_add(1, Ordering::Relaxed);
            return Err(ApplyError::Expired);
        }
        if session != 0 {
            match self.dedup.begin(session, seq, deadline) {
                Admission::Fresh => {}
                Admission::Replay(result) => return result.map_err(ApplyError::Rejected),
                Admission::Stale => {
                    return Err(ApplyError::Rejected(format!(
                        "stale sequence {seq} for session {session:#034x}"
                    )))
                }
                Admission::WaitExpired => {
                    self.stats.expired.fetch_add(1, Ordering::Relaxed);
                    return Err(ApplyError::Expired);
                }
            }
        }
        match self.submit(ops, deadline) {
            Ok(ack) => {
                if session != 0 {
                    self.dedup.finish(session, seq, Ok(ack));
                }
                Ok(ack)
            }
            Err(ApplyError::Rejected(msg)) => {
                // Cache deterministic rejections too: a retried
                // partial-failure batch must replay the original error,
                // not re-apply its successful prefix.
                if session != 0 {
                    self.dedup.finish(session, seq, Err(msg.clone()));
                }
                Err(ApplyError::Rejected(msg))
            }
            Err(e) => {
                // Shed or expired: nothing was applied, so a retry of
                // the same sequence must start from scratch.
                if session != 0 {
                    self.dedup.abandon(session, seq);
                }
                Err(e)
            }
        }
    }

    /// Admission control + queueing + the blocking wait for the ack.
    fn submit(&self, ops: Vec<Op>, deadline: Option<Instant>) -> Result<WriteAck, ApplyError> {
        let n = ops.len();
        let queued = self.stats.queued_ops.load(Ordering::Relaxed);
        if queued + n > self.config.max_queued_ops {
            self.stats.shed_writes.fetch_add(1, Ordering::Relaxed);
            return Err(ApplyError::Overloaded {
                queued,
                limit: self.config.max_queued_ops,
            });
        }
        let tx = match &*self.tx.lock() {
            Some(tx) => tx.clone(),
            None => return Err(ApplyError::Rejected("index is shutting down".into())),
        };
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        self.stats.queued_ops.fetch_add(n, Ordering::Relaxed);
        let sent = tx.send(Submission {
            ops,
            deadline,
            reply: reply_tx,
        });
        if sent.is_err() {
            self.stats.queued_ops.fetch_sub(n, Ordering::Relaxed);
            return Err(ApplyError::Rejected("index is shutting down".into()));
        }
        let outcome = reply_rx.recv();
        self.stats.queued_ops.fetch_sub(n, Ordering::Relaxed);
        match outcome {
            Ok(Ok(ack)) => Ok(ack),
            Ok(Err(RoundError::Failed(msg))) => Err(ApplyError::Rejected(msg)),
            Ok(Err(RoundError::Expired)) => {
                self.stats.expired.fetch_add(1, Ordering::Relaxed);
                Err(ApplyError::Expired)
            }
            Err(_) => Err(ApplyError::Rejected(
                "committer exited before acknowledging".into(),
            )),
        }
    }

    /// Ops queued or in flight right now.
    #[must_use]
    pub fn queued_ops(&self) -> usize {
        self.stats.queued_ops.load(Ordering::Relaxed)
    }

    /// Whether the write queue is past its degraded-mode watermark
    /// (half the admission ceiling). The server sheds queries — but not
    /// writes — while this holds.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        if self.config.max_queued_ops == 0 {
            return true;
        }
        self.queued_ops() >= (self.config.max_queued_ops / 2).max(1)
    }

    /// Snapshot this coalescer's completed retry-dedup entries, for
    /// handover to another shard's coalescer via
    /// [`Self::merge_dedup`]. Exactly-once retry protection is
    /// per-coalescer state: when a range migration re-homes a key range
    /// (`ShardedBur::migrate_range`), a retry of an already-acked batch
    /// routes to the *recipient* shard, whose table has never seen the
    /// `(session, seq)` — without the handover it would apply the batch
    /// a second time. Dedup slots are keyed by session, not key range,
    /// so the whole table travels; donated entries are advisory
    /// replay-cache state and never displace fresher local knowledge.
    #[must_use]
    pub fn export_dedup(&self) -> Vec<DedupEntry> {
        self.dedup.export()
    }

    /// Adopt exported retry-dedup entries from a donor coalescer (see
    /// [`Self::export_dedup`]): inserted when the session is unknown
    /// here, replacing a completed slot at a lower sequence, dropped
    /// otherwise — on an equal sequence the local slot wins, because a
    /// batch split across shards reuses one `(session, seq)` with
    /// different per-shard payloads and local retries must replay the
    /// local ack.
    pub fn merge_dedup(&self, entries: Vec<DedupEntry>) {
        self.dedup.merge(entries);
    }

    /// Counters so far.
    #[must_use]
    pub fn stats(&self) -> CoalescerStats {
        CoalescerStats {
            rounds: self.stats.rounds.load(Ordering::Relaxed),
            submissions: self.stats.submissions.load(Ordering::Relaxed),
            ops: self.stats.ops.load(Ordering::Relaxed),
            shed_writes: self.stats.shed_writes.load(Ordering::Relaxed),
            expired: self.stats.expired.load(Ordering::Relaxed),
            dedup_hits: self.dedup.hits.load(Ordering::Relaxed),
            dedup_sessions: self.dedup.sessions() as u64,
            queued_ops: self.stats.queued_ops.load(Ordering::Relaxed) as u64,
        }
    }

    /// Drain every queued submission (each gets its ack or error) and
    /// stop the committer thread. Idempotent.
    pub fn shutdown(&self) {
        // Dropping the sender lets the committer drain the buffered
        // queue; `recv` only disconnects once it is empty.
        drop(self.tx.lock().take());
        if let Some(worker) = self.worker.lock().take() {
            let _ = worker.join();
        }
    }
}

impl Drop for Coalescer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn committer_loop(bur: &Bur, rx: &Receiver<Submission>, stats: &SharedStats) {
    let mut carryover: VecDeque<Submission> = VecDeque::new();
    // Expired submissions are answered without ever joining a batch —
    // that is the "no side effects" half of the deadline contract.
    let admit = |sub: Submission, round: &mut Vec<Submission>, round_ops: &mut usize| {
        if sub.deadline.is_some_and(|d| Instant::now() >= d) {
            let _ = sub.reply.send(Err(RoundError::Expired));
            return;
        }
        *round_ops += sub.ops.len();
        round.push(sub);
    };
    loop {
        let mut round: Vec<Submission> = Vec::new();
        let mut round_ops = 0usize;
        // Re-admit submissions deferred by a previous partial failure
        // before taking new work, preserving arrival order.
        while round_ops < MAX_ROUND_OPS {
            match carryover.pop_front() {
                Some(sub) => admit(sub, &mut round, &mut round_ops),
                None => break,
            }
        }
        if round.is_empty() {
            // Idle: block until work arrives or every sender is gone.
            match rx.recv() {
                Ok(sub) => admit(sub, &mut round, &mut round_ops),
                Err(_) => return,
            }
        }
        // Sweep everything else that queued while we slept or committed
        // the previous round — this is the coalescing window.
        while round_ops < MAX_ROUND_OPS {
            match rx.try_recv() {
                Ok(sub) => admit(sub, &mut round, &mut round_ops),
                Err(_) => break,
            }
        }
        if round.is_empty() {
            // Everything drawn this round had already expired.
            continue;
        }
        commit_round(bur, round, &mut carryover, stats);
    }
}

fn commit_round(
    bur: &Bur,
    round: Vec<Submission>,
    carryover: &mut VecDeque<Submission>,
    stats: &SharedStats,
) {
    let merged = round.len() as u64;
    let mut batch = Batch::new();
    for sub in &round {
        for op in &sub.ops {
            batch.push(*op);
        }
    }
    match bur.apply(&batch) {
        Ok(ticket) => {
            let lsn = match ticket.wait() {
                Ok(lsn) => lsn,
                Err(e) => {
                    let msg = format!("commit applied but durability wait failed: {e}");
                    for sub in round {
                        let _ = sub.reply.send(Err(RoundError::Failed(msg.clone())));
                    }
                    return;
                }
            };
            stats.rounds.fetch_add(1, Ordering::Relaxed);
            stats.submissions.fetch_add(merged, Ordering::Relaxed);
            stats.ops.fetch_add(batch.len() as u64, Ordering::Relaxed);
            for sub in round {
                let applied = sub.ops.len() as u64;
                let _ = sub.reply.send(Ok(WriteAck {
                    lsn,
                    applied,
                    merged,
                }));
            }
        }
        Err(CoreError::Batch { op_index, source }) => {
            // Operations before `op_index` were applied and flushed;
            // the failing op and everything after were not. Map that
            // contract back onto per-client submissions.
            let flushed_lsn = bur
                .wal_waiter()
                .map(|w| {
                    let lsn = w.last_lsn();
                    let _ = w.wait(lsn);
                    lsn
                })
                .unwrap_or(0);
            let mut offset = 0usize;
            let mut failed_round = false;
            for sub in round {
                let len = sub.ops.len();
                if offset + len <= op_index {
                    // Entirely before the failure: applied + durable.
                    stats.submissions.fetch_add(1, Ordering::Relaxed);
                    stats.ops.fetch_add(len as u64, Ordering::Relaxed);
                    let _ = sub.reply.send(Ok(WriteAck {
                        lsn: flushed_lsn,
                        applied: len as u64,
                        merged,
                    }));
                } else if offset > op_index {
                    // Entirely after: untouched — retry next round.
                    carryover.push_back(sub);
                } else {
                    // Contains the failing op.
                    failed_round = true;
                    let local = op_index - offset;
                    let _ = sub.reply.send(Err(RoundError::Failed(format!(
                        "batch operation #{local} failed: {source} \
                         (operations before it were applied)"
                    ))));
                }
                offset += len;
            }
            if failed_round {
                stats.rounds.fetch_add(1, Ordering::Relaxed);
            }
        }
        Err(e) => {
            let msg = format!("batch rejected: {e}");
            for sub in round {
                let _ = sub.reply.send(Err(RoundError::Failed(msg.clone())));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bur_core::IndexBuilder;
    use bur_geom::Point;

    fn mem_bur() -> Bur {
        IndexBuilder::generalized().build().expect("build")
    }

    fn inserts(range: std::ops::Range<u64>) -> Vec<Op> {
        range
            .map(|oid| Op::Insert {
                oid,
                rect: bur_geom::Rect::from_point(Point::new(
                    (oid % 97) as f32 / 97.0,
                    (oid % 89) as f32 / 89.0,
                )),
            })
            .collect()
    }

    #[test]
    fn applies_and_counts() {
        let bur = mem_bur();
        let c = Coalescer::new(bur.clone());
        let ack = c.apply(inserts(0..10)).expect("ack");
        assert_eq!(ack.applied, 10);
        assert!(ack.merged >= 1);
        assert_eq!(bur.len(), 10);
        let stats = c.stats();
        assert_eq!(stats.submissions, 1);
        assert_eq!(stats.ops, 10);
        c.shutdown();
        assert!(c.apply(inserts(10..11)).is_err(), "rejects after shutdown");
    }

    #[test]
    fn concurrent_submissions_coalesce() {
        let bur = mem_bur();
        let c = Arc::new(Coalescer::new(bur.clone()));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for b in 0..16u64 {
                        let base = t * 10_000 + b * 100;
                        c.apply(inserts(base..base + 25)).expect("ack");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("join");
        }
        assert_eq!(bur.len(), 8 * 16 * 25);
        let stats = c.stats();
        assert_eq!(stats.submissions, 8 * 16);
        assert!(
            stats.rounds <= stats.submissions,
            "rounds {} > submissions {}",
            stats.rounds,
            stats.submissions
        );
    }

    #[test]
    fn dedup_handover_merges_without_displacing_local_knowledge() {
        let donor_bur = mem_bur();
        let donor = Coalescer::new(donor_bur.clone());
        let recipient_bur = mem_bur();
        let recipient = Coalescer::new(recipient_bur.clone());

        // Donor finishes (1, 3) with 4 ops and (4, 7) with 2 ops.
        donor.apply_session(1, 3, inserts(0..4), None).expect("ack");
        donor
            .apply_session(4, 7, inserts(10..12), None)
            .expect("ack");
        // Recipient already knows session 1 at the SAME seq (its half of
        // a split batch: 3 ops) and session 2 at a HIGHER seq.
        let local = recipient
            .apply_session(1, 3, inserts(20..23), None)
            .expect("ack");
        recipient
            .apply_session(2, 5, inserts(30..32), None)
            .expect("ack");

        recipient.merge_dedup(donor.export_dedup());
        let len_before = recipient_bur.len();

        // Unknown session: the donated entry replays verbatim, applying
        // nothing here.
        let replayed = recipient
            .apply_session(4, 7, inserts(10..12), None)
            .expect("replayed");
        assert_eq!(replayed.applied, 2, "the donor's ack came back");
        assert_eq!(recipient_bur.len(), len_before, "nothing re-applied");

        // Equal seq: the local slot wins — split batches share a
        // (session, seq) with different per-shard payloads.
        let same = recipient
            .apply_session(1, 3, inserts(20..23), None)
            .expect("replayed");
        assert_eq!(same.applied, local.applied);
        assert_eq!(same.lsn, local.lsn);

        // Lower donated seq never rolls a session backwards.
        let err = recipient
            .apply_session(2, 1, inserts(40..41), None)
            .expect_err("stale");
        assert!(err.to_string().contains("stale"), "{err}");

        assert!(recipient.stats().dedup_hits >= 2);
        donor.shutdown();
        recipient.shutdown();
    }

    #[test]
    fn partial_failure_maps_to_the_guilty_submission() {
        let bur = mem_bur();
        let c = Coalescer::new(bur.clone());
        c.apply(inserts(0..5)).expect("seed");
        // oid 3 already exists → duplicate-insert failure at op #2.
        let bad = vec![
            Op::Insert {
                oid: 100,
                rect: bur_geom::Rect::from_point(Point::new(0.5, 0.5)),
            },
            Op::Insert {
                oid: 101,
                rect: bur_geom::Rect::from_point(Point::new(0.6, 0.6)),
            },
            Op::Insert {
                oid: 3,
                rect: bur_geom::Rect::from_point(Point::new(0.7, 0.7)),
            },
        ];
        let err = c.apply(bad).expect_err("duplicate rejected");
        assert!(err.contains("#2"), "error names the local op index: {err}");
        assert!(err.contains("already indexed"), "cause preserved: {err}");
        // The two good inserts before the failure were applied.
        assert_eq!(bur.len(), 7);
        // The coalescer keeps working afterwards.
        let ack = c.apply(inserts(200..210)).expect("still alive");
        assert_eq!(ack.applied, 10);
    }
}
