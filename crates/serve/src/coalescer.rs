//! The write coalescer: merges concurrently arriving client batches
//! into one [`Batch`] → one index lock acquisition → ONE WAL group
//! commit record, then acks every contributing client once the
//! durable-LSN watermark covers the round.
//!
//! This is where the server beats N independent handles: N clients
//! fsyncing independently pay N syncs; N clients coalesced pay one.
//! The committer thread runs `recv` (blocking, zero idle cost), drains
//! whatever else queued while it slept, and commits the merged batch.
//! While it waits on the watermark, the next round's submissions pile
//! up behind it — load itself creates the grouping, no timer needed.

use bur_core::{Batch, Bur, CoreError, Op};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

/// Ops merged into a single round before the committer cuts it off
/// (bounds commit latency under a firehose; the remainder queues for
/// the next round).
const MAX_ROUND_OPS: usize = 8192;

/// Durable acknowledgement for one coalesced submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteAck {
    /// LSN of the group commit record that covered this submission
    /// (0 on a non-durable index).
    pub lsn: u64,
    /// Operations applied for this submission.
    pub applied: u64,
    /// Submissions merged into the same group commit round, including
    /// this one.
    pub merged: u64,
}

/// Counters exposed on the `stats` opcode and consumed by the serving
/// tests to demonstrate coalescing (`rounds < submissions`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoalescerStats {
    /// Group commit rounds executed (= WAL group commit records cut by
    /// this coalescer).
    pub rounds: u64,
    /// Client submissions acknowledged.
    pub submissions: u64,
    /// Total operations committed.
    pub ops: u64,
}

impl CoalescerStats {
    /// Mean submissions merged per round (1.0 = no coalescing).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.submissions as f64 / self.rounds as f64
        }
    }
}

struct Submission {
    ops: Vec<Op>,
    reply: SyncSender<Result<WriteAck, String>>,
}

#[derive(Default)]
struct SharedStats {
    rounds: AtomicU64,
    submissions: AtomicU64,
    ops: AtomicU64,
}

/// Per-index write coalescer. Clonable via `Arc` at the registry
/// layer; [`Coalescer::apply`] blocks the calling connection thread
/// until its submission is durable (or failed).
pub struct Coalescer {
    tx: Mutex<Option<Sender<Submission>>>,
    worker: Mutex<Option<JoinHandle<()>>>,
    stats: Arc<SharedStats>,
}

impl std::fmt::Debug for Coalescer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coalescer")
            .field("stats", &self.stats())
            .finish()
    }
}

impl Coalescer {
    /// Start a committer thread for `bur`.
    #[must_use]
    pub fn new(bur: Bur) -> Self {
        let (tx, rx) = mpsc::channel::<Submission>();
        let stats = Arc::new(SharedStats::default());
        let worker_stats = Arc::clone(&stats);
        let worker = std::thread::Builder::new()
            .name("burd-committer".into())
            .spawn(move || committer_loop(&bur, &rx, &worker_stats))
            .expect("spawn committer thread");
        Coalescer {
            tx: Mutex::new(Some(tx)),
            worker: Mutex::new(Some(worker)),
            stats,
        }
    }

    /// Submit a batch and block until it is durable. Errors are
    /// stringly-typed because they cross the wire verbatim.
    pub fn apply(&self, ops: Vec<Op>) -> Result<WriteAck, String> {
        if ops.is_empty() {
            return Ok(WriteAck {
                lsn: 0,
                applied: 0,
                merged: 0,
            });
        }
        let tx = match &*self.tx.lock() {
            Some(tx) => tx.clone(),
            None => return Err("index is shutting down".into()),
        };
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        tx.send(Submission {
            ops,
            reply: reply_tx,
        })
        .map_err(|_| "index is shutting down".to_string())?;
        reply_rx
            .recv()
            .map_err(|_| "committer exited before acknowledging".to_string())?
    }

    /// Counters so far.
    #[must_use]
    pub fn stats(&self) -> CoalescerStats {
        CoalescerStats {
            rounds: self.stats.rounds.load(Ordering::Relaxed),
            submissions: self.stats.submissions.load(Ordering::Relaxed),
            ops: self.stats.ops.load(Ordering::Relaxed),
        }
    }

    /// Drain every queued submission (each gets its ack or error) and
    /// stop the committer thread. Idempotent.
    pub fn shutdown(&self) {
        // Dropping the sender lets the committer drain the buffered
        // queue; `recv` only disconnects once it is empty.
        drop(self.tx.lock().take());
        if let Some(worker) = self.worker.lock().take() {
            let _ = worker.join();
        }
    }
}

impl Drop for Coalescer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn committer_loop(bur: &Bur, rx: &Receiver<Submission>, stats: &SharedStats) {
    let mut carryover: VecDeque<Submission> = VecDeque::new();
    loop {
        let mut round: Vec<Submission> = Vec::new();
        let mut round_ops = 0usize;
        // Re-admit submissions deferred by a previous partial failure
        // before taking new work, preserving arrival order.
        while round_ops < MAX_ROUND_OPS {
            match carryover.pop_front() {
                Some(sub) => {
                    round_ops += sub.ops.len();
                    round.push(sub);
                }
                None => break,
            }
        }
        if round.is_empty() {
            // Idle: block until work arrives or every sender is gone.
            match rx.recv() {
                Ok(sub) => {
                    round_ops += sub.ops.len();
                    round.push(sub);
                }
                Err(_) => return,
            }
        }
        // Sweep everything else that queued while we slept or committed
        // the previous round — this is the coalescing window.
        while round_ops < MAX_ROUND_OPS {
            match rx.try_recv() {
                Ok(sub) => {
                    round_ops += sub.ops.len();
                    round.push(sub);
                }
                Err(_) => break,
            }
        }
        commit_round(bur, round, &mut carryover, stats);
    }
}

fn commit_round(
    bur: &Bur,
    round: Vec<Submission>,
    carryover: &mut VecDeque<Submission>,
    stats: &SharedStats,
) {
    let merged = round.len() as u64;
    let mut batch = Batch::new();
    for sub in &round {
        for op in &sub.ops {
            batch.push(*op);
        }
    }
    match bur.apply(&batch) {
        Ok(ticket) => {
            let lsn = match ticket.wait() {
                Ok(lsn) => lsn,
                Err(e) => {
                    let msg = format!("commit applied but durability wait failed: {e}");
                    for sub in round {
                        let _ = sub.reply.send(Err(msg.clone()));
                    }
                    return;
                }
            };
            stats.rounds.fetch_add(1, Ordering::Relaxed);
            stats.submissions.fetch_add(merged, Ordering::Relaxed);
            stats.ops.fetch_add(batch.len() as u64, Ordering::Relaxed);
            for sub in round {
                let applied = sub.ops.len() as u64;
                let _ = sub.reply.send(Ok(WriteAck {
                    lsn,
                    applied,
                    merged,
                }));
            }
        }
        Err(CoreError::Batch { op_index, source }) => {
            // Operations before `op_index` were applied and flushed;
            // the failing op and everything after were not. Map that
            // contract back onto per-client submissions.
            let flushed_lsn = bur
                .wal_waiter()
                .map(|w| {
                    let lsn = w.last_lsn();
                    let _ = w.wait(lsn);
                    lsn
                })
                .unwrap_or(0);
            let mut offset = 0usize;
            let mut failed_round = false;
            for sub in round {
                let len = sub.ops.len();
                if offset + len <= op_index {
                    // Entirely before the failure: applied + durable.
                    stats.submissions.fetch_add(1, Ordering::Relaxed);
                    stats.ops.fetch_add(len as u64, Ordering::Relaxed);
                    let _ = sub.reply.send(Ok(WriteAck {
                        lsn: flushed_lsn,
                        applied: len as u64,
                        merged,
                    }));
                } else if offset > op_index {
                    // Entirely after: untouched — retry next round.
                    carryover.push_back(sub);
                } else {
                    // Contains the failing op.
                    failed_round = true;
                    let local = op_index - offset;
                    let _ = sub.reply.send(Err(format!(
                        "batch operation #{local} failed: {source} \
                         (operations before it were applied)"
                    )));
                }
                offset += len;
            }
            if failed_round {
                stats.rounds.fetch_add(1, Ordering::Relaxed);
            }
        }
        Err(e) => {
            let msg = format!("batch rejected: {e}");
            for sub in round {
                let _ = sub.reply.send(Err(msg.clone()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bur_core::IndexBuilder;
    use bur_geom::Point;

    fn mem_bur() -> Bur {
        IndexBuilder::generalized().build().expect("build")
    }

    fn inserts(range: std::ops::Range<u64>) -> Vec<Op> {
        range
            .map(|oid| Op::Insert {
                oid,
                rect: bur_geom::Rect::from_point(Point::new(
                    (oid % 97) as f32 / 97.0,
                    (oid % 89) as f32 / 89.0,
                )),
            })
            .collect()
    }

    #[test]
    fn applies_and_counts() {
        let bur = mem_bur();
        let c = Coalescer::new(bur.clone());
        let ack = c.apply(inserts(0..10)).expect("ack");
        assert_eq!(ack.applied, 10);
        assert!(ack.merged >= 1);
        assert_eq!(bur.len(), 10);
        let stats = c.stats();
        assert_eq!(stats.submissions, 1);
        assert_eq!(stats.ops, 10);
        c.shutdown();
        assert!(c.apply(inserts(10..11)).is_err(), "rejects after shutdown");
    }

    #[test]
    fn concurrent_submissions_coalesce() {
        let bur = mem_bur();
        let c = Arc::new(Coalescer::new(bur.clone()));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for b in 0..16u64 {
                        let base = t * 10_000 + b * 100;
                        c.apply(inserts(base..base + 25)).expect("ack");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("join");
        }
        assert_eq!(bur.len(), 8 * 16 * 25);
        let stats = c.stats();
        assert_eq!(stats.submissions, 8 * 16);
        assert!(
            stats.rounds <= stats.submissions,
            "rounds {} > submissions {}",
            stats.rounds,
            stats.submissions
        );
    }

    #[test]
    fn partial_failure_maps_to_the_guilty_submission() {
        let bur = mem_bur();
        let c = Coalescer::new(bur.clone());
        c.apply(inserts(0..5)).expect("seed");
        // oid 3 already exists → duplicate-insert failure at op #2.
        let bad = vec![
            Op::Insert {
                oid: 100,
                rect: bur_geom::Rect::from_point(Point::new(0.5, 0.5)),
            },
            Op::Insert {
                oid: 101,
                rect: bur_geom::Rect::from_point(Point::new(0.6, 0.6)),
            },
            Op::Insert {
                oid: 3,
                rect: bur_geom::Rect::from_point(Point::new(0.7, 0.7)),
            },
        ];
        let err = c.apply(bad).expect_err("duplicate rejected");
        assert!(err.contains("#2"), "error names the local op index: {err}");
        assert!(err.contains("already indexed"), "cause preserved: {err}");
        // The two good inserts before the failure were applied.
        assert_eq!(bur.len(), 7);
        // The coalescer keeps working afterwards.
        let ack = c.apply(inserts(200..210)).expect("still alive");
        assert_eq!(ack.applied, 10);
    }
}
