//! `bur-serve` — the `burd` network server: bottom-up R-tree updates
//! as a service.
//!
//! Everything PRs 1–6 built in-process (durable write-ahead logging,
//! batch-first writes, leaf-parallel application) becomes reachable
//! over TCP here, through a hand-rolled length-prefixed binary wire
//! protocol on the standard library's `TcpListener` — no async
//! runtime, no serialization framework. The pieces:
//!
//! - [`wire`]: the frame envelope (`len | request_id | opcode |
//!   payload`) and the checked little-endian payload codec.
//! - [`protocol`]: the request/response vocabulary and opcode table.
//! - [`registry`]: named indexes in one data directory, opened through
//!   `IndexBuilder` and shared across connections.
//! - [`coalescer`]: the write path — concurrent client batches merged
//!   into one `Batch`, one lock acquisition, ONE WAL group-commit
//!   record, with per-client durable acks off the shared watermark.
//! - [`server`]: accept loop, bounded thread-per-connection pool,
//!   request dispatch, graceful shutdown.
//! - [`metrics`]: per-opcode log-bucket latency histograms and server
//!   counters behind the `metrics` opcode.
//! - [`chaos`]: a frame-aware TCP chaos proxy (seeded, scriptable
//!   fault plans) — the network analogue of the storage layer's
//!   `FaultyDisk` — used by the fault-tolerance drills.
//!
//! ```no_run
//! use bur_serve::{start, ServerConfig};
//!
//! let handle = start(ServerConfig::new("/var/lib/bur"))?;
//! println!("burd listening on {}", handle.addr());
//! handle.wait();
//! # Ok::<(), bur_serve::ServeError>(())
//! ```

pub mod chaos;
pub mod coalescer;
pub mod metrics;
pub mod protocol;
pub mod registry;
pub mod server;
pub mod wire;

pub use chaos::{ChaosProxy, ChaosStats, Direction, Fault, FaultPlan, ScriptedFault};
pub use coalescer::{ApplyError, Coalescer, CoalescerConfig, CoalescerStats, DedupEntry, WriteAck};
pub use metrics::{LatencyHistogram, ServerMetrics};
pub use protocol::{Request, Response, StrategyKind, WireNeighbor};
pub use registry::{IndexEntry, IndexRegistry, ServeError, ServeResult};
pub use server::{start, ServerConfig, ServerHandle};
pub use wire::{Frame, FrameError, WireError, FRAME_HEADER_BYTES, MAX_FRAME_BYTES};
