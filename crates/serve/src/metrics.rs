//! Dependency-free server observability: per-opcode latency histograms
//! and connection/coalescer counters, rendered as a plaintext dump for
//! the `metrics` opcode.

use crate::protocol::opcode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two latency buckets (bucket `i` covers
/// `[2^i, 2^(i+1))` nanoseconds; the last bucket is open-ended).
const BUCKETS: usize = 40;

/// A fixed log-bucket latency histogram. Lock-free: one atomic per
/// bucket plus count/sum, so the request hot path pays two or three
/// relaxed increments.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_nanos: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Record one observation.
    pub fn record(&self, elapsed: Duration) {
        let nanos = elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
        let bucket = (63u32.saturating_sub(nanos.max(1).leading_zeros()) as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in nanoseconds (0 when empty).
    #[must_use]
    pub fn mean_nanos(&self) -> u64 {
        self.sum_nanos
            .load(Ordering::Relaxed)
            .checked_div(self.count())
            .unwrap_or(0)
    }

    /// Approximate quantile (`q` in `0.0..=1.0`) in nanoseconds: the
    /// upper bound of the bucket containing the `q`-th observation.
    /// Resolution is a factor of two — adequate for spotting order-of-
    /// magnitude shifts, which is all a log-bucket histogram promises.
    #[must_use]
    pub fn quantile_nanos(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return upper_bound_nanos(i);
            }
        }
        upper_bound_nanos(BUCKETS - 1)
    }
}

fn upper_bound_nanos(bucket: usize) -> u64 {
    1u64 << (bucket as u32 + 1).min(63)
}

/// Request opcodes that get their own histogram, with stable labels.
const TRACKED: &[(u8, &str)] = &[
    (opcode::PING, "ping"),
    (opcode::CREATE, "create"),
    (opcode::OPEN, "open"),
    (opcode::CLOSE, "close"),
    (opcode::LIST, "list"),
    (opcode::APPLY, "apply"),
    (opcode::QUERY, "query"),
    (opcode::KNN, "knn"),
    (opcode::LEN, "len"),
    (opcode::STATS, "stats"),
    (opcode::METRICS, "metrics"),
    (opcode::SHUTDOWN, "shutdown"),
];

/// Server-wide counters and per-opcode latency histograms.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    histograms: [LatencyHistogram; TRACKED.len()],
    /// Connections accepted into the pool.
    pub connections_accepted: AtomicU64,
    /// Connections refused because the pool was at capacity.
    pub connections_refused: AtomicU64,
    /// Currently live connection threads.
    pub connections_active: AtomicU64,
    /// Frames that failed to parse (framing or payload level).
    pub malformed_frames: AtomicU64,
    /// Requests answered with an error response.
    pub request_errors: AtomicU64,
    /// Requests whose deadline passed before (or while) they were
    /// served; answered with an `expired` frame, no side effects.
    pub requests_expired: AtomicU64,
    /// Queries shed in degraded mode (answered `overloaded`).
    pub queries_shed: AtomicU64,
    /// Write batches shed at the coalescer's admission ceiling
    /// (answered `overloaded`).
    pub writes_shed: AtomicU64,
    /// Retried applies answered from a dedup table instead of
    /// re-applying.
    pub dedup_hits: AtomicU64,
}

impl ServerMetrics {
    /// Record one served request of the given opcode.
    pub fn record(&self, op: u8, elapsed: Duration) {
        if let Some(i) = TRACKED.iter().position(|&(code, _)| code == op) {
            self.histograms[i].record(elapsed);
        }
    }

    /// The histogram for an opcode, if tracked.
    #[must_use]
    pub fn histogram(&self, op: u8) -> Option<&LatencyHistogram> {
        TRACKED
            .iter()
            .position(|&(code, _)| code == op)
            .map(|i| &self.histograms[i])
    }

    /// Render the plaintext metrics dump served by the `metrics` opcode:
    /// one `name{label} value` line per gauge, flat and grep-friendly.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(1024);
        let gauge = |out: &mut String, name: &str, v: u64| {
            out.push_str(&format!("burd_{name} {v}\n"));
        };
        gauge(
            &mut out,
            "connections_accepted",
            self.connections_accepted.load(Ordering::Relaxed),
        );
        gauge(
            &mut out,
            "connections_refused",
            self.connections_refused.load(Ordering::Relaxed),
        );
        gauge(
            &mut out,
            "connections_active",
            self.connections_active.load(Ordering::Relaxed),
        );
        gauge(
            &mut out,
            "malformed_frames",
            self.malformed_frames.load(Ordering::Relaxed),
        );
        gauge(
            &mut out,
            "request_errors",
            self.request_errors.load(Ordering::Relaxed),
        );
        gauge(
            &mut out,
            "requests_expired",
            self.requests_expired.load(Ordering::Relaxed),
        );
        gauge(
            &mut out,
            "queries_shed",
            self.queries_shed.load(Ordering::Relaxed),
        );
        gauge(
            &mut out,
            "writes_shed",
            self.writes_shed.load(Ordering::Relaxed),
        );
        gauge(
            &mut out,
            "dedup_hits",
            self.dedup_hits.load(Ordering::Relaxed),
        );
        for (i, &(_, label)) in TRACKED.iter().enumerate() {
            let h = &self.histograms[i];
            let n = h.count();
            if n == 0 {
                continue;
            }
            out.push_str(&format!("burd_requests_total{{op=\"{label}\"}} {n}\n"));
            out.push_str(&format!(
                "burd_latency_mean_ns{{op=\"{label}\"}} {}\n",
                h.mean_nanos()
            ));
            out.push_str(&format!(
                "burd_latency_p50_ns{{op=\"{label}\"}} {}\n",
                h.quantile_nanos(0.50)
            ));
            out.push_str(&format!(
                "burd_latency_p99_ns{{op=\"{label}\"}} {}\n",
                h.quantile_nanos(0.99)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_nanos(0.5), 0);
        for micros in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 1000] {
            h.record(Duration::from_micros(micros));
        }
        assert_eq!(h.count(), 10);
        // p50 lands in the ~1µs bucket, p99 in the ~1ms bucket.
        let p50 = h.quantile_nanos(0.50);
        let p99 = h.quantile_nanos(0.99);
        assert!((1_000..=4_096).contains(&p50), "p50 = {p50}");
        assert!((1_000_000..=4_194_304).contains(&p99), "p99 = {p99}");
        assert!(h.mean_nanos() >= 100_000);
    }

    #[test]
    fn render_includes_tracked_opcodes() {
        let m = ServerMetrics::default();
        m.record(opcode::APPLY, Duration::from_micros(30));
        m.connections_accepted.fetch_add(2, Ordering::Relaxed);
        let text = m.render();
        assert!(text.contains("burd_connections_accepted 2"));
        assert!(text.contains("burd_requests_total{op=\"apply\"} 1"));
        assert!(!text.contains("op=\"knn\""), "untouched ops are omitted");
    }
}
