//! The request/response vocabulary spoken over [`crate::wire`] frames.
//!
//! Requests flow client → server, responses server → client; every
//! response frame echoes the request's id. Most requests get exactly one
//! response frame; `Query` and `Knn` stream — the server sends zero or
//! more chunk frames with `last == false` and terminates the stream with
//! one `last == true` chunk (possibly empty). The normative frame
//! layout, the opcode table and the ack semantics are documented in
//! `docs/ARCHITECTURE.md` ("Wire protocol").

use crate::wire::{put, Reader, WireError};
use bur_core::Op;
use bur_geom::{Point, Rect};

/// Request opcodes (client → server).
pub mod opcode {
    /// Liveness probe.
    pub const PING: u8 = 0x01;
    /// Create a named index.
    pub const CREATE: u8 = 0x02;
    /// Open a named index from the server's data directory.
    pub const OPEN: u8 = 0x03;
    /// Close a named index (drain, flush, checkpoint).
    pub const CLOSE: u8 = 0x04;
    /// List indexes (open and on disk).
    pub const LIST: u8 = 0x05;
    /// Create a named index sharded N ways by Hilbert-key range.
    pub const CREATE_SHARDED: u8 = 0x06;
    /// Apply a write batch (coalesced server-side).
    pub const APPLY: u8 = 0x10;
    /// Window query (streamed response).
    pub const QUERY: u8 = 0x11;
    /// k-nearest-neighbor query (streamed response).
    pub const KNN: u8 = 0x12;
    /// Number of indexed objects.
    pub const LEN: u8 = 0x13;
    /// Per-index gauge dump.
    pub const STATS: u8 = 0x20;
    /// Server-wide plaintext metrics dump.
    pub const METRICS: u8 = 0x21;
    /// Graceful server shutdown.
    pub const SHUTDOWN: u8 = 0x2f;

    // ---- responses (server → client) -----------------------------------

    /// Success, no payload.
    pub const OK: u8 = 0x80;
    /// Failure, message payload.
    pub const ERR: u8 = 0x81;
    /// Ping reply.
    pub const PONG: u8 = 0x82;
    /// Name list.
    pub const NAMES: u8 = 0x83;
    /// Durable write acknowledgement.
    pub const ACK: u8 = 0x84;
    /// Window-query result chunk.
    pub const ID_CHUNK: u8 = 0x85;
    /// kNN result chunk.
    pub const NEIGHBOR_CHUNK: u8 = 0x86;
    /// A single counter.
    pub const COUNT: u8 = 0x87;
    /// Plaintext payload (stats / metrics dumps).
    pub const TEXT: u8 = 0x88;
    /// Load shed: the request was refused without side effects because
    /// the server is over its queue watermark (or degraded). Retryable
    /// after backoff.
    pub const OVERLOADED: u8 = 0x89;
    /// Deadline exceeded: the request's deadline passed before the
    /// server started (or finished queueing) it; it had no effect.
    pub const EXPIRED: u8 = 0x8a;
}

/// Update strategy selector carried by `Create` (paper defaults on the
/// server side; the wire carries only the family).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// Classic top-down delete + insert.
    TopDown,
    /// Localized bottom-up (Algorithm 1).
    Localized,
    /// Generalized bottom-up (Algorithm 2, the default).
    Generalized,
}

impl StrategyKind {
    /// Stable wire tag.
    #[must_use]
    pub fn to_wire(self) -> u8 {
        match self {
            StrategyKind::TopDown => 0,
            StrategyKind::Localized => 1,
            StrategyKind::Generalized => 2,
        }
    }

    /// Decode a wire tag.
    pub fn from_wire(tag: u8) -> Result<Self, WireError> {
        match tag {
            0 => Ok(StrategyKind::TopDown),
            1 => Ok(StrategyKind::Localized),
            2 => Ok(StrategyKind::Generalized),
            other => Err(WireError::BadPayload(format!(
                "unknown strategy tag {other}"
            ))),
        }
    }

    /// CLI-style short name (`td` / `lbu` / `gbu`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::TopDown => "td",
            StrategyKind::Localized => "lbu",
            StrategyKind::Generalized => "gbu",
        }
    }

    /// Parse a CLI-style short name.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "td" => Some(StrategyKind::TopDown),
            "lbu" => Some(StrategyKind::Localized),
            "gbu" => Some(StrategyKind::Generalized),
            _ => None,
        }
    }
}

/// One client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Create the named index in the server's data directory.
    Create {
        /// Registry name (also the file stem on disk).
        name: String,
        /// Update strategy family.
        strategy: StrategyKind,
        /// Write-ahead-logged durability (required for durable acks).
        durable: bool,
    },
    /// Create the named index split into `shards` Hilbert-range shards.
    /// The server hosts every shard behind the one logical name: writes
    /// route by key, queries scatter-gather (see `docs/ARCHITECTURE.md`,
    /// "Sharding").
    CreateSharded {
        /// Registry name (shard files get `.s<k>` suffixes on disk).
        name: String,
        /// Update strategy family, applied to every shard.
        strategy: StrategyKind,
        /// Write-ahead-logged durability (required for durable acks).
        durable: bool,
        /// Number of shards (1..=1024).
        shards: u32,
    },
    /// Open the named index (a no-op if it is already open).
    Open {
        /// Registry name.
        name: String,
    },
    /// Close the named index: drain its coalescer, flush the log,
    /// checkpoint, drop the handle.
    Close {
        /// Registry name.
        name: String,
    },
    /// List indexes; answered with [`Response::Names`].
    List,
    /// Apply a write batch to the named index. Concurrent `Apply`
    /// requests are coalesced into shared group commits server-side;
    /// the [`Response::Ack`] arrives only once the submitting client's
    /// operations are covered by the durable-LSN watermark.
    Apply {
        /// Registry name.
        index: String,
        /// Client session id for retry deduplication; `0` opts out of
        /// dedup (fire-and-forget clients, hand-rolled tools).
        session: u128,
        /// Monotonic per-session batch sequence number. A retried batch
        /// resends the same `seq`; the server answers from its dedup
        /// table instead of applying twice.
        seq: u64,
        /// The operations, in application order.
        ops: Vec<Op>,
    },
    /// Window query; answered with a stream of [`Response::IdChunk`]s.
    Query {
        /// Registry name.
        index: String,
        /// Query window.
        window: Rect,
    },
    /// k-nearest-neighbor query; answered with a stream of
    /// [`Response::NeighborChunk`]s.
    Knn {
        /// Registry name.
        index: String,
        /// Query point.
        point: Point,
        /// Number of neighbors.
        k: u32,
    },
    /// Number of indexed objects; answered with [`Response::Count`].
    Len {
        /// Registry name.
        index: String,
    },
    /// Per-index gauges; answered with [`Response::Text`].
    Stats {
        /// Registry name.
        index: String,
    },
    /// Server-wide metrics dump; answered with [`Response::Text`].
    Metrics,
    /// Ask the server to shut down gracefully (drain coalescers, flush
    /// logs, checkpoint). Answered with [`Response::Ok`] before the
    /// listener closes.
    Shutdown,
}

/// One neighbor in a [`Response::NeighborChunk`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireNeighbor {
    /// Object id.
    pub oid: u64,
    /// Euclidean distance from the query point.
    pub distance: f32,
}

/// One server response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Success without payload.
    Ok,
    /// Failure; the request had no effect unless the message says
    /// otherwise (partial batch failures name the failing operation).
    Err {
        /// Human-readable cause.
        message: String,
    },
    /// Ping reply.
    Pong,
    /// Index names: `(name, currently_open)` pairs.
    Names {
        /// Registry content, sorted by name.
        names: Vec<(String, bool)>,
    },
    /// Durable write acknowledgement: the submitting client's operations
    /// are applied and covered by the log's durable-LSN watermark.
    Ack {
        /// LSN of the covering group commit record.
        lsn: u64,
        /// Operations applied for *this* client.
        applied: u64,
        /// Client submissions merged into the same group commit round
        /// (including this one) — the coalescing observability signal.
        merged: u64,
    },
    /// Window-query ids; `last == true` terminates the stream.
    IdChunk {
        /// Result ids (ascending within the full stream's ordering).
        ids: Vec<u64>,
        /// Whether this is the final chunk.
        last: bool,
    },
    /// kNN results, closest first; `last == true` terminates the stream.
    NeighborChunk {
        /// Result neighbors.
        neighbors: Vec<WireNeighbor>,
        /// Whether this is the final chunk.
        last: bool,
    },
    /// A single counter.
    Count {
        /// The value.
        value: u64,
    },
    /// Plaintext dump (stats / metrics).
    Text {
        /// The dump.
        text: String,
    },
    /// The server shed this request under load; it had no side effects
    /// and may be retried after backoff.
    Overloaded {
        /// What was shed and why (queue depth, degraded mode).
        message: String,
    },
    /// The request's deadline passed before it was served; it had no
    /// side effects.
    Expired {
        /// Which stage noticed the expiry.
        message: String,
    },
}

// ---- op codec --------------------------------------------------------------

const OP_INSERT: u8 = 0;
const OP_UPDATE: u8 = 1;
const OP_DELETE: u8 = 2;

fn put_op(out: &mut Vec<u8>, op: &Op) {
    match *op {
        Op::Insert { oid, rect } => {
            put::u8(out, OP_INSERT);
            put::u64(out, oid);
            put_rect(out, &rect);
        }
        Op::Update { oid, old, new } => {
            put::u8(out, OP_UPDATE);
            put::u64(out, oid);
            put_point(out, &old);
            put_point(out, &new);
        }
        Op::Delete { oid, position } => {
            put::u8(out, OP_DELETE);
            put::u64(out, oid);
            put_point(out, &position);
        }
    }
}

fn get_op(r: &mut Reader<'_>) -> Result<Op, WireError> {
    let tag = r.u8("op tag")?;
    let oid = r.u64("op oid")?;
    match tag {
        OP_INSERT => Ok(Op::Insert {
            oid,
            rect: get_rect(r)?,
        }),
        OP_UPDATE => Ok(Op::Update {
            oid,
            old: get_point(r)?,
            new: get_point(r)?,
        }),
        OP_DELETE => Ok(Op::Delete {
            oid,
            position: get_point(r)?,
        }),
        other => Err(WireError::BadPayload(format!("unknown op tag {other}"))),
    }
}

fn put_point(out: &mut Vec<u8>, p: &Point) {
    put::f32(out, p.x);
    put::f32(out, p.y);
}

fn get_point(r: &mut Reader<'_>) -> Result<Point, WireError> {
    Ok(Point::new(r.f32("point x")?, r.f32("point y")?))
}

fn put_rect(out: &mut Vec<u8>, rect: &Rect) {
    put::f32(out, rect.min_x);
    put::f32(out, rect.min_y);
    put::f32(out, rect.max_x);
    put::f32(out, rect.max_y);
}

fn get_rect(r: &mut Reader<'_>) -> Result<Rect, WireError> {
    Ok(Rect::new(
        r.f32("rect min_x")?,
        r.f32("rect min_y")?,
        r.f32("rect max_x")?,
        r.f32("rect max_y")?,
    ))
}

// ---- request codec ---------------------------------------------------------

impl Request {
    /// The request's wire opcode.
    #[must_use]
    pub fn opcode(&self) -> u8 {
        match self {
            Request::Ping => opcode::PING,
            Request::Create { .. } => opcode::CREATE,
            Request::CreateSharded { .. } => opcode::CREATE_SHARDED,
            Request::Open { .. } => opcode::OPEN,
            Request::Close { .. } => opcode::CLOSE,
            Request::List => opcode::LIST,
            Request::Apply { .. } => opcode::APPLY,
            Request::Query { .. } => opcode::QUERY,
            Request::Knn { .. } => opcode::KNN,
            Request::Len { .. } => opcode::LEN,
            Request::Stats { .. } => opcode::STATS,
            Request::Metrics => opcode::METRICS,
            Request::Shutdown => opcode::SHUTDOWN,
        }
    }

    /// Encode the payload (frame envelope excluded).
    #[must_use]
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Ping | Request::List | Request::Metrics | Request::Shutdown => {}
            Request::Create {
                name,
                strategy,
                durable,
            } => {
                put::str(&mut out, name);
                put::u8(&mut out, strategy.to_wire());
                put::u8(&mut out, u8::from(*durable));
            }
            Request::CreateSharded {
                name,
                strategy,
                durable,
                shards,
            } => {
                put::str(&mut out, name);
                put::u8(&mut out, strategy.to_wire());
                put::u8(&mut out, u8::from(*durable));
                put::u32(&mut out, *shards);
            }
            Request::Open { name } | Request::Close { name } => put::str(&mut out, name),
            Request::Apply {
                index,
                session,
                seq,
                ops,
            } => {
                put::str(&mut out, index);
                put::u64(&mut out, *session as u64);
                put::u64(&mut out, (*session >> 64) as u64);
                put::u64(&mut out, *seq);
                put::u32(&mut out, ops.len() as u32);
                for op in ops {
                    put_op(&mut out, op);
                }
            }
            Request::Query { index, window } => {
                put::str(&mut out, index);
                put_rect(&mut out, window);
            }
            Request::Knn { index, point, k } => {
                put::str(&mut out, index);
                put_point(&mut out, point);
                put::u32(&mut out, *k);
            }
            Request::Len { index } | Request::Stats { index } => put::str(&mut out, index),
        }
        out
    }

    /// Decode a request from its opcode + payload.
    pub fn decode(op: u8, payload: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(payload);
        let req = match op {
            opcode::PING => Request::Ping,
            opcode::CREATE => Request::Create {
                name: r.str("index name")?,
                strategy: StrategyKind::from_wire(r.u8("strategy")?)?,
                durable: r.u8("durable flag")? != 0,
            },
            opcode::CREATE_SHARDED => Request::CreateSharded {
                name: r.str("index name")?,
                strategy: StrategyKind::from_wire(r.u8("strategy")?)?,
                durable: r.u8("durable flag")? != 0,
                shards: r.u32("shard count")?,
            },
            opcode::OPEN => Request::Open {
                name: r.str("index name")?,
            },
            opcode::CLOSE => Request::Close {
                name: r.str("index name")?,
            },
            opcode::LIST => Request::List,
            opcode::APPLY => {
                let index = r.str("index name")?;
                let session_lo = r.u64("session lo")?;
                let session_hi = r.u64("session hi")?;
                let session = (u128::from(session_hi) << 64) | u128::from(session_lo);
                let seq = r.u64("session seq")?;
                let n = r.u32("op count")? as usize;
                // The frame ceiling already bounds `n`; this guards a
                // length field inconsistent with the payload size.
                if n > r.remaining() {
                    return Err(WireError::BadPayload(format!(
                        "op count {n} exceeds payload size"
                    )));
                }
                let mut ops = Vec::with_capacity(n);
                for _ in 0..n {
                    ops.push(get_op(&mut r)?);
                }
                Request::Apply {
                    index,
                    session,
                    seq,
                    ops,
                }
            }
            opcode::QUERY => Request::Query {
                index: r.str("index name")?,
                window: get_rect(&mut r)?,
            },
            opcode::KNN => Request::Knn {
                index: r.str("index name")?,
                point: get_point(&mut r)?,
                k: r.u32("k")?,
            },
            opcode::LEN => Request::Len {
                index: r.str("index name")?,
            },
            opcode::STATS => Request::Stats {
                index: r.str("index name")?,
            },
            opcode::METRICS => Request::Metrics,
            opcode::SHUTDOWN => Request::Shutdown,
            other => return Err(WireError::UnknownOpcode(other)),
        };
        r.finish()?;
        Ok(req)
    }
}

// ---- response codec --------------------------------------------------------

impl Response {
    /// The response's wire opcode.
    #[must_use]
    pub fn opcode(&self) -> u8 {
        match self {
            Response::Ok => opcode::OK,
            Response::Err { .. } => opcode::ERR,
            Response::Pong => opcode::PONG,
            Response::Names { .. } => opcode::NAMES,
            Response::Ack { .. } => opcode::ACK,
            Response::IdChunk { .. } => opcode::ID_CHUNK,
            Response::NeighborChunk { .. } => opcode::NEIGHBOR_CHUNK,
            Response::Count { .. } => opcode::COUNT,
            Response::Text { .. } => opcode::TEXT,
            Response::Overloaded { .. } => opcode::OVERLOADED,
            Response::Expired { .. } => opcode::EXPIRED,
        }
    }

    /// Encode the payload (frame envelope excluded).
    #[must_use]
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Ok | Response::Pong => {}
            Response::Err { message } => put::str(&mut out, message),
            Response::Names { names } => {
                put::u32(&mut out, names.len() as u32);
                for (name, open) in names {
                    put::str(&mut out, name);
                    put::u8(&mut out, u8::from(*open));
                }
            }
            Response::Ack {
                lsn,
                applied,
                merged,
            } => {
                put::u64(&mut out, *lsn);
                put::u64(&mut out, *applied);
                put::u64(&mut out, *merged);
            }
            Response::IdChunk { ids, last } => {
                put::u8(&mut out, u8::from(*last));
                put::u32(&mut out, ids.len() as u32);
                for id in ids {
                    put::u64(&mut out, *id);
                }
            }
            Response::NeighborChunk { neighbors, last } => {
                put::u8(&mut out, u8::from(*last));
                put::u32(&mut out, neighbors.len() as u32);
                for n in neighbors {
                    put::u64(&mut out, n.oid);
                    put::f32(&mut out, n.distance);
                }
            }
            Response::Count { value } => put::u64(&mut out, *value),
            Response::Overloaded { message } | Response::Expired { message } => {
                put::str(&mut out, message);
            }
            Response::Text { text } => {
                // Texts can exceed the u16 string limit; length-prefix
                // with u32 instead.
                let bytes = text.as_bytes();
                put::u32(&mut out, bytes.len() as u32);
                out.extend_from_slice(bytes);
            }
        }
        out
    }

    /// Decode a response from its opcode + payload.
    pub fn decode(op: u8, payload: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(payload);
        let resp = match op {
            opcode::OK => Response::Ok,
            opcode::ERR => Response::Err {
                message: r.str("error message")?,
            },
            opcode::PONG => Response::Pong,
            opcode::NAMES => {
                let n = r.u32("name count")? as usize;
                if n > r.remaining() {
                    return Err(WireError::BadPayload(format!(
                        "name count {n} exceeds payload size"
                    )));
                }
                let mut names = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = r.str("name")?;
                    let open = r.u8("open flag")? != 0;
                    names.push((name, open));
                }
                Response::Names { names }
            }
            opcode::ACK => Response::Ack {
                lsn: r.u64("lsn")?,
                applied: r.u64("applied")?,
                merged: r.u64("merged")?,
            },
            opcode::ID_CHUNK => {
                let last = r.u8("last flag")? != 0;
                let n = r.u32("id count")? as usize;
                if n.saturating_mul(8) > r.remaining() {
                    return Err(WireError::BadPayload(format!(
                        "id count {n} exceeds payload size"
                    )));
                }
                let mut ids = Vec::with_capacity(n);
                for _ in 0..n {
                    ids.push(r.u64("id")?);
                }
                Response::IdChunk { ids, last }
            }
            opcode::NEIGHBOR_CHUNK => {
                let last = r.u8("last flag")? != 0;
                let n = r.u32("neighbor count")? as usize;
                if n.saturating_mul(12) > r.remaining() {
                    return Err(WireError::BadPayload(format!(
                        "neighbor count {n} exceeds payload size"
                    )));
                }
                let mut neighbors = Vec::with_capacity(n);
                for _ in 0..n {
                    neighbors.push(WireNeighbor {
                        oid: r.u64("neighbor oid")?,
                        distance: r.f32("neighbor distance")?,
                    });
                }
                Response::NeighborChunk { neighbors, last }
            }
            opcode::COUNT => Response::Count {
                value: r.u64("count")?,
            },
            opcode::OVERLOADED => Response::Overloaded {
                message: r.str("overloaded message")?,
            },
            opcode::EXPIRED => Response::Expired {
                message: r.str("expired message")?,
            },
            opcode::TEXT => {
                let n = r.u32("text length")? as usize;
                if n > r.remaining() {
                    return Err(WireError::BadPayload(format!(
                        "text length {n} exceeds payload size"
                    )));
                }
                let mut bytes = Vec::with_capacity(n);
                for _ in 0..n {
                    bytes.push(r.u8("text byte")?);
                }
                Response::Text {
                    text: String::from_utf8(bytes)
                        .map_err(|_| WireError::BadPayload("text: invalid UTF-8".into()))?,
                }
            }
            other => return Err(WireError::UnknownOpcode(other)),
        };
        r.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip_request(req: &Request) {
        let payload = req.encode_payload();
        let back = Request::decode(req.opcode(), &payload).expect("request decodes");
        assert_eq!(*req, back);
    }

    fn roundtrip_response(resp: &Response) {
        let payload = resp.encode_payload();
        let back = Response::decode(resp.opcode(), &payload).expect("response decodes");
        assert_eq!(*resp, back);
    }

    #[test]
    fn fixed_request_roundtrips() {
        for req in [
            Request::Ping,
            Request::List,
            Request::Metrics,
            Request::Shutdown,
            Request::Create {
                name: "fleet".into(),
                strategy: StrategyKind::Generalized,
                durable: true,
            },
            Request::CreateSharded {
                name: "grid".into(),
                strategy: StrategyKind::Generalized,
                durable: true,
                shards: 8,
            },
            Request::Open { name: "a".into() },
            Request::Close { name: "a".into() },
            Request::Len { index: "a".into() },
            Request::Stats { index: "a".into() },
            Request::Query {
                index: "a".into(),
                window: Rect::new(0.0, 0.1, 0.5, 0.9),
            },
            Request::Knn {
                index: "a".into(),
                point: Point::new(0.5, 0.5),
                k: 10,
            },
        ] {
            roundtrip_request(&req);
        }
    }

    #[test]
    fn fixed_response_roundtrips() {
        for resp in [
            Response::Ok,
            Response::Pong,
            Response::Err {
                message: "batch operation #3 failed".into(),
            },
            Response::Names {
                names: vec![("a".into(), true), ("b".into(), false)],
            },
            Response::Ack {
                lsn: 42,
                applied: 64,
                merged: 3,
            },
            Response::IdChunk {
                ids: vec![1, 2, 3],
                last: false,
            },
            Response::NeighborChunk {
                neighbors: vec![WireNeighbor {
                    oid: 7,
                    distance: 0.25,
                }],
                last: true,
            },
            Response::Count { value: 9000 },
            Response::Text {
                text: "bur_requests_total{op=\"apply\"} 12\n".into(),
            },
            Response::Overloaded {
                message: "write queue full (8192 ops)".into(),
            },
            Response::Expired {
                message: "deadline passed before dispatch".into(),
            },
        ] {
            roundtrip_response(&resp);
        }
    }

    #[test]
    fn unknown_opcodes_and_garbage_payloads_error() {
        assert!(matches!(
            Request::decode(0x77, &[]),
            Err(WireError::UnknownOpcode(0x77))
        ));
        assert!(matches!(
            Response::decode(0x13, &[]),
            Err(WireError::UnknownOpcode(0x13))
        ));
        // Truncated payloads fail field-by-field, never panic.
        let full = Request::Create {
            name: "x".into(),
            strategy: StrategyKind::TopDown,
            durable: false,
        }
        .encode_payload();
        for cut in 0..full.len() {
            assert!(Request::decode(opcode::CREATE, &full[..cut]).is_err());
        }
        // Trailing bytes are rejected.
        let mut padded = Request::Ping.encode_payload();
        padded.push(0);
        assert!(matches!(
            Request::decode(opcode::PING, &padded),
            Err(WireError::TrailingBytes(1))
        ));
        // An op count inconsistent with the payload is rejected without
        // a huge allocation.
        let mut apply = Vec::new();
        put::str(&mut apply, "a");
        put::u64(&mut apply, 1); // session lo
        put::u64(&mut apply, 2); // session hi
        put::u64(&mut apply, 3); // seq
        put::u32(&mut apply, u32::MAX);
        assert!(Request::decode(opcode::APPLY, &apply).is_err());
    }

    fn arb_point() -> impl Strategy<Value = Point> {
        (0.0f32..1.0, 0.0f32..1.0).prop_map(|(x, y)| Point::new(x, y))
    }

    fn arb_op() -> BoxedStrategy<Op> {
        prop_oneof![
            (any::<u64>(), arb_point()).prop_map(|(oid, p)| Op::Insert {
                oid,
                rect: Rect::from_point(p),
            }),
            (any::<u64>(), arb_point(), arb_point()).prop_map(|(oid, old, new)| Op::Update {
                oid,
                old,
                new
            }),
            (any::<u64>(), arb_point()).prop_map(|(oid, position)| Op::Delete { oid, position }),
        ]
        .boxed()
    }

    fn arb_name() -> impl Strategy<Value = String> {
        (0u64..u64::MAX).prop_map(|n| format!("idx-{}", n % 997))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn apply_roundtrips(
            name in arb_name(),
            session_lo in any::<u64>(),
            session_hi in any::<u64>(),
            seq in any::<u64>(),
            ops in proptest::collection::vec(arb_op(), 0..64),
        ) {
            let session = (u128::from(session_hi) << 64) | u128::from(session_lo);
            roundtrip_request(&Request::Apply { index: name, session, seq, ops });
        }

        #[test]
        fn query_roundtrips(name in arb_name(), a in arb_point(), b in arb_point()) {
            let window = Rect::new(
                a.x.min(b.x), a.y.min(b.y), a.x.max(b.x), a.y.max(b.y),
            );
            roundtrip_request(&Request::Query { index: name, window });
        }

        #[test]
        fn ack_roundtrips(lsn in any::<u64>(), applied in any::<u64>(), merged in any::<u64>()) {
            roundtrip_response(&Response::Ack { lsn, applied, merged });
        }

        #[test]
        fn id_chunks_roundtrip(ids in proptest::collection::vec(any::<u64>(), 0..512), last in any::<bool>()) {
            roundtrip_response(&Response::IdChunk { ids, last });
        }

        #[test]
        fn neighbor_chunks_roundtrip(
            raw in proptest::collection::vec((any::<u64>(), 0.0f32..10.0), 0..128),
            last in any::<bool>(),
        ) {
            let neighbors = raw
                .into_iter()
                .map(|(oid, distance)| WireNeighbor { oid, distance })
                .collect();
            roundtrip_response(&Response::NeighborChunk { neighbors, last });
        }

        #[test]
        fn random_payload_bytes_never_panic(op in any::<u8>(), bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            // Either decodes or errors; must not panic or over-allocate.
            let _ = Request::decode(op, &bytes);
            let _ = Response::decode(op, &bytes);
        }
    }
}
