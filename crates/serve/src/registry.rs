//! Multi-tenant index registry: named indexes living in one data
//! directory, each paired with its own write [`Coalescer`].

use crate::coalescer::{Coalescer, CoalescerConfig};
use crate::protocol::StrategyKind;
use bur_core::{Bur, CoreError, IndexBuilder};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Errors surfaced by registry operations; rendered into wire `Err`
/// responses verbatim.
#[derive(Debug)]
pub enum ServeError {
    /// The index name contains characters outside `[A-Za-z0-9_.-]`, is
    /// empty, or starts with a dot.
    BadName(String),
    /// The named index is neither open nor present on disk.
    NotFound(String),
    /// The named index already exists (create refused).
    AlreadyExists(String),
    /// Propagated core failure.
    Core(CoreError),
    /// Filesystem failure outside the index files proper.
    Io(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::BadName(name) => write!(
                f,
                "bad index name {name:?}: use [A-Za-z0-9_.-], non-empty, no leading dot"
            ),
            ServeError::NotFound(name) => write!(f, "index {name:?} not found"),
            ServeError::AlreadyExists(name) => write!(f, "index {name:?} already exists"),
            ServeError::Core(e) => write!(f, "{e}"),
            ServeError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Core(e) => Some(e),
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Core(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// Result alias for registry operations.
pub type ServeResult<T> = Result<T, ServeError>;

/// One open index: the shared handle plus its write coalescer.
#[derive(Debug)]
pub struct IndexEntry {
    /// Registry name.
    pub name: String,
    /// The clonable index handle (reads go straight here).
    pub bur: Bur,
    /// The write path (all `Apply` requests funnel through it).
    pub coalescer: Coalescer,
}

/// Named indexes in one data directory. Each index lives at
/// `<root>/<name>.bur`; opening is idempotent and crash-safe (`Open`
/// mode replays the write-ahead log when the stored metadata records a
/// log anchor).
#[derive(Debug)]
pub struct IndexRegistry {
    root: PathBuf,
    entries: Mutex<BTreeMap<String, Arc<IndexEntry>>>,
    coalescer_config: CoalescerConfig,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && !name.starts_with('.')
        && name.len() <= 128
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-'))
}

impl IndexRegistry {
    /// Open a registry rooted at `root`, creating the directory if
    /// needed. No indexes are opened eagerly.
    pub fn new(root: impl Into<PathBuf>) -> ServeResult<Self> {
        Self::with_config(root, CoalescerConfig::default())
    }

    /// [`IndexRegistry::new`] with explicit per-index coalescer limits
    /// (queue ceiling, dedup-table bound) applied to every index this
    /// registry opens.
    pub fn with_config(root: impl Into<PathBuf>, config: CoalescerConfig) -> ServeResult<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(IndexRegistry {
            root,
            entries: Mutex::new(BTreeMap::new()),
            coalescer_config: config,
        })
    }

    /// The data directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn file_for(&self, name: &str) -> PathBuf {
        self.root.join(format!("{name}.bur"))
    }

    fn check_name(name: &str) -> ServeResult<()> {
        if valid_name(name) {
            Ok(())
        } else {
            Err(ServeError::BadName(name.to_string()))
        }
    }

    /// Create a named index. Refuses to clobber an existing one.
    pub fn create(&self, name: &str, strategy: StrategyKind, durable: bool) -> ServeResult<()> {
        Self::check_name(name)?;
        let mut entries = self.entries.lock();
        if entries.contains_key(name) {
            return Err(ServeError::AlreadyExists(name.to_string()));
        }
        let file = self.file_for(name);
        if file.exists() {
            return Err(ServeError::AlreadyExists(name.to_string()));
        }
        let mut builder = match strategy {
            StrategyKind::TopDown => IndexBuilder::top_down(),
            StrategyKind::Localized => IndexBuilder::localized(),
            StrategyKind::Generalized => IndexBuilder::generalized(),
        };
        if durable {
            builder = builder.durable();
        }
        let bur = builder.file(&file).create().build()?;
        entries.insert(name.to_string(), self.entry(name, bur));
        Ok(())
    }

    fn entry(&self, name: &str, bur: Bur) -> Arc<IndexEntry> {
        Arc::new(IndexEntry {
            name: name.to_string(),
            coalescer: Coalescer::with_config(bur.clone(), self.coalescer_config),
            bur,
        })
    }

    /// Open the named index from disk, or return the already-open
    /// entry. `Open` mode auto-recovers from the write-ahead log, so
    /// this is also the post-crash path.
    pub fn open(&self, name: &str) -> ServeResult<Arc<IndexEntry>> {
        Self::check_name(name)?;
        let mut entries = self.entries.lock();
        if let Some(entry) = entries.get(name) {
            return Ok(Arc::clone(entry));
        }
        let file = self.file_for(name);
        if !file.exists() {
            return Err(ServeError::NotFound(name.to_string()));
        }
        let bur = IndexBuilder::new().file(&file).open().build()?;
        let entry = self.entry(name, bur);
        entries.insert(name.to_string(), Arc::clone(&entry));
        Ok(entry)
    }

    /// The open entry for `name`, opening it from disk on demand.
    pub fn get(&self, name: &str) -> ServeResult<Arc<IndexEntry>> {
        self.open(name)
    }

    /// Close the named index: drain its coalescer, flush and persist.
    /// Late `Apply` submissions racing the close are refused by the
    /// drained coalescer rather than lost.
    pub fn close(&self, name: &str) -> ServeResult<()> {
        Self::check_name(name)?;
        let entry = {
            let mut entries = self.entries.lock();
            entries
                .remove(name)
                .ok_or_else(|| ServeError::NotFound(name.to_string()))?
        };
        entry.coalescer.shutdown();
        entry.bur.persist()?;
        Ok(())
    }

    /// Every index this registry knows about: open entries plus `.bur`
    /// files on disk, as `(name, open)` pairs sorted by name.
    pub fn list(&self) -> ServeResult<Vec<(String, bool)>> {
        let mut names: BTreeMap<String, bool> = self
            .entries
            .lock()
            .keys()
            .map(|name| (name.clone(), true))
            .collect();
        for dirent in std::fs::read_dir(&self.root)? {
            let path = dirent?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("bur") {
                continue;
            }
            if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                if valid_name(stem) {
                    names.entry(stem.to_string()).or_insert(false);
                }
            }
        }
        Ok(names.into_iter().collect())
    }

    /// Close every open index (drain, flush, persist). The registry
    /// stays usable; this is the graceful-shutdown tail.
    pub fn shutdown(&self) {
        let entries: Vec<Arc<IndexEntry>> = {
            let mut map = self.entries.lock();
            std::mem::take(&mut *map).into_values().collect()
        };
        for entry in entries {
            entry.coalescer.shutdown();
            let _ = entry.bur.persist();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bur_core::Op;
    use bur_geom::{Point, Rect};

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bur-registry-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn create_open_close_list_roundtrip() {
        let root = tempdir("lifecycle");
        let reg = IndexRegistry::new(&root).expect("registry");
        reg.create("fleet", StrategyKind::Generalized, true)
            .expect("create");
        assert!(matches!(
            reg.create("fleet", StrategyKind::Generalized, true),
            Err(ServeError::AlreadyExists(_))
        ));
        let entry = reg.get("fleet").expect("get");
        entry
            .coalescer
            .apply(vec![Op::Insert {
                oid: 1,
                rect: Rect::from_point(Point::new(0.5, 0.5)),
            }])
            .expect("apply");
        assert_eq!(entry.bur.len(), 1);
        reg.close("fleet").expect("close");
        assert_eq!(reg.list().expect("list"), vec![("fleet".into(), false)]);
        // Reopen from disk; the insert survived.
        let entry = reg.open("fleet").expect("reopen");
        assert_eq!(entry.bur.len(), 1);
        assert_eq!(reg.list().expect("list"), vec![("fleet".into(), true)]);
        reg.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn names_are_validated() {
        let root = tempdir("names");
        let reg = IndexRegistry::new(&root).expect("registry");
        for bad in ["", ".hidden", "a/b", "a b", "..", "x\u{0}"] {
            assert!(
                matches!(
                    reg.create(bad, StrategyKind::TopDown, false),
                    Err(ServeError::BadName(_))
                ),
                "accepted {bad:?}"
            );
        }
        assert!(matches!(reg.open("missing"), Err(ServeError::NotFound(_))));
        let _ = std::fs::remove_dir_all(&root);
    }
}
