//! Multi-tenant index registry: named indexes living in one data
//! directory, each paired with its own write [`Coalescer`].

use crate::coalescer::{Coalescer, CoalescerConfig};
use crate::protocol::StrategyKind;
use bur_core::{Bur, CoreError, IndexBuilder};
use bur_shard::{ShardError, ShardOptions, ShardedBur};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Errors surfaced by registry operations; rendered into wire `Err`
/// responses verbatim.
#[derive(Debug)]
pub enum ServeError {
    /// The index name contains characters outside `[A-Za-z0-9_.-]`, is
    /// empty, starts with a dot, or collides with the reserved
    /// `<name>.s<k>` shard-file stems.
    BadName(String),
    /// The named index is neither open nor present on disk.
    NotFound(String),
    /// The named index already exists (create refused).
    AlreadyExists(String),
    /// Propagated core failure.
    Core(CoreError),
    /// Propagated sharding-layer failure.
    Shard(ShardError),
    /// Filesystem failure outside the index files proper.
    Io(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::BadName(name) => write!(
                f,
                "bad index name {name:?}: use [A-Za-z0-9_.-], non-empty, no leading dot, \
                 no `.s<digits>` suffix"
            ),
            ServeError::NotFound(name) => write!(f, "index {name:?} not found"),
            ServeError::AlreadyExists(name) => write!(f, "index {name:?} already exists"),
            ServeError::Core(e) => write!(f, "{e}"),
            ServeError::Shard(e) => write!(f, "{e}"),
            ServeError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Core(e) => Some(e),
            ServeError::Shard(e) => Some(e),
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Core(e)
    }
}

impl From<ShardError> for ServeError {
    fn from(e: ShardError) -> Self {
        ServeError::Shard(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// Result alias for registry operations.
pub type ServeResult<T> = Result<T, ServeError>;

/// One open index: the shared handle plus its write coalescer.
#[derive(Debug)]
pub struct IndexEntry {
    /// Registry name.
    pub name: String,
    /// The clonable index handle (reads go straight here).
    pub bur: Bur,
    /// The write path (all `Apply` requests funnel through it).
    pub coalescer: Coalescer,
}

/// One open *sharded* index: the logical handle plus one write
/// coalescer per shard. `Apply` batches split by routing key and each
/// sub-batch funnels through its shard's coalescer under the client's
/// unchanged `(session, seq)` — the split is deterministic for a fixed
/// routing map, so per-shard retry dedup stays exactly-once.
///
/// The coalescers are `Arc`-shared with the sharded handle's migration
/// hook: when `migrate_range` re-homes a key range, the donor
/// coalescer's completed dedup entries merge into the recipient's right
/// before the ownership flip, so a retry that crosses the migration
/// replays its original ack on the new owner instead of re-applying.
#[derive(Debug)]
pub struct ShardedEntry {
    /// Registry name.
    pub name: String,
    /// The logical index over all shards (reads go straight here).
    pub sharded: ShardedBur,
    /// Per-shard write paths, indexed by shard id.
    pub coalescers: Vec<Arc<Coalescer>>,
}

impl ShardedEntry {
    /// Whether any shard's write queue is past its degraded watermark.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.coalescers.iter().any(|c| c.is_degraded())
    }

    /// Ops queued across every shard's coalescer.
    #[must_use]
    pub fn queued_ops(&self) -> usize {
        self.coalescers.iter().map(|c| c.queued_ops()).sum()
    }
}

/// Either kind of open index the registry can hand out.
#[derive(Debug, Clone)]
pub enum Entry {
    /// A single-shard index (one file, one coalescer).
    Plain(Arc<IndexEntry>),
    /// A sharded index (N shard files + a shard manifest).
    Sharded(Arc<ShardedEntry>),
}

impl Entry {
    /// Registry name.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            Entry::Plain(e) => &e.name,
            Entry::Sharded(e) => &e.name,
        }
    }

    /// Objects in the index (summed across shards when sharded).
    #[must_use]
    pub fn len(&self) -> u64 {
        match self {
            Entry::Plain(e) => e.bur.len(),
            Entry::Sharded(e) => e.sharded.len(),
        }
    }

    /// Whether the index holds nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The plain (unsharded) entry, if this is one.
    #[must_use]
    pub fn as_plain(&self) -> Option<&Arc<IndexEntry>> {
        match self {
            Entry::Plain(e) => Some(e),
            Entry::Sharded(_) => None,
        }
    }

    /// The sharded entry, if this is one.
    #[must_use]
    pub fn as_sharded(&self) -> Option<&Arc<ShardedEntry>> {
        match self {
            Entry::Plain(_) => None,
            Entry::Sharded(e) => Some(e),
        }
    }
}

/// Named indexes in one data directory. A plain index lives at
/// `<root>/<name>.bur`; a sharded one at `<root>/<name>.s<k>.bur` (one
/// file per shard) plus the `<root>/<name>.shardmap` routing manifest.
/// Opening is idempotent and crash-safe (`Open` mode replays each write-
/// ahead log; an interrupted shard migration rolls back or forward from
/// the manifest).
#[derive(Debug)]
pub struct IndexRegistry {
    root: PathBuf,
    entries: Mutex<BTreeMap<String, Entry>>,
    coalescer_config: CoalescerConfig,
}

/// Shard files of a sharded index are named `<name>.s<k>.bur`, so a
/// stem ending in `.s<digits>` is reserved and refused as an index name.
fn is_shard_stem(name: &str) -> bool {
    name.rsplit_once('.').is_some_and(|(_, suffix)| {
        suffix.len() >= 2
            && suffix.starts_with('s')
            && suffix[1..].bytes().all(|b| b.is_ascii_digit())
    })
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && !name.starts_with('.')
        && name.len() <= 128
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-'))
        && !is_shard_stem(name)
}

impl IndexRegistry {
    /// Open a registry rooted at `root`, creating the directory if
    /// needed. No indexes are opened eagerly.
    pub fn new(root: impl Into<PathBuf>) -> ServeResult<Self> {
        Self::with_config(root, CoalescerConfig::default())
    }

    /// [`IndexRegistry::new`] with explicit per-index coalescer limits
    /// (queue ceiling, dedup-table bound) applied to every index this
    /// registry opens.
    pub fn with_config(root: impl Into<PathBuf>, config: CoalescerConfig) -> ServeResult<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(IndexRegistry {
            root,
            entries: Mutex::new(BTreeMap::new()),
            coalescer_config: config,
        })
    }

    /// The data directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn file_for(&self, name: &str) -> PathBuf {
        self.root.join(format!("{name}.bur"))
    }

    fn shard_file_for(&self, name: &str, shard: u32) -> PathBuf {
        self.root.join(format!("{name}.s{shard}.bur"))
    }

    fn manifest_for(&self, name: &str) -> PathBuf {
        self.root.join(format!("{name}.shardmap"))
    }

    fn check_name(name: &str) -> ServeResult<()> {
        if valid_name(name) {
            Ok(())
        } else {
            Err(ServeError::BadName(name.to_string()))
        }
    }

    fn builder_for(strategy: StrategyKind, durable: bool) -> IndexBuilder {
        let mut builder = match strategy {
            StrategyKind::TopDown => IndexBuilder::top_down(),
            StrategyKind::Localized => IndexBuilder::localized(),
            StrategyKind::Generalized => IndexBuilder::generalized(),
        };
        if durable {
            builder = builder.durable();
        }
        builder
    }

    /// Create a named index. Refuses to clobber an existing one.
    pub fn create(&self, name: &str, strategy: StrategyKind, durable: bool) -> ServeResult<()> {
        Self::check_name(name)?;
        let mut entries = self.entries.lock();
        if entries.contains_key(name) {
            return Err(ServeError::AlreadyExists(name.to_string()));
        }
        let file = self.file_for(name);
        if file.exists() || self.manifest_for(name).exists() {
            return Err(ServeError::AlreadyExists(name.to_string()));
        }
        let bur = Self::builder_for(strategy, durable)
            .file(&file)
            .create()
            .build()?;
        entries.insert(name.to_string(), Entry::Plain(self.entry(name, bur)));
        Ok(())
    }

    /// Create a named index sharded `shards` ways by Hilbert-key range.
    /// Shard files land at `<name>.s<k>.bur` and the routing manifest at
    /// `<name>.shardmap`. Refuses to clobber an existing index of
    /// either kind.
    pub fn create_sharded(
        &self,
        name: &str,
        strategy: StrategyKind,
        durable: bool,
        shards: u32,
    ) -> ServeResult<()> {
        Self::check_name(name)?;
        if shards == 0 || shards > 1024 {
            return Err(ServeError::Shard(ShardError::Config(format!(
                "shard count {shards} outside 1..=1024"
            ))));
        }
        let mut entries = self.entries.lock();
        if entries.contains_key(name) {
            return Err(ServeError::AlreadyExists(name.to_string()));
        }
        if self.file_for(name).exists() || self.manifest_for(name).exists() {
            return Err(ServeError::AlreadyExists(name.to_string()));
        }
        let mut burs = Vec::with_capacity(shards as usize);
        for k in 0..shards {
            let bur = Self::builder_for(strategy, durable)
                .file(self.shard_file_for(name, k))
                .create()
                .build()?;
            burs.push(bur);
        }
        let sharded =
            ShardedBur::with_manifest(burs, ShardOptions::default(), self.manifest_for(name))?;
        entries.insert(
            name.to_string(),
            Entry::Sharded(self.sharded_entry(name, sharded)),
        );
        Ok(())
    }

    fn entry(&self, name: &str, bur: Bur) -> Arc<IndexEntry> {
        Arc::new(IndexEntry {
            name: name.to_string(),
            coalescer: Coalescer::with_config(bur.clone(), self.coalescer_config),
            bur,
        })
    }

    fn sharded_entry(&self, name: &str, sharded: ShardedBur) -> Arc<ShardedEntry> {
        let coalescers: Vec<Arc<Coalescer>> = (0..sharded.shard_count())
            .map(|k| {
                Arc::new(Coalescer::with_config(
                    sharded.shard(k).clone(),
                    self.coalescer_config,
                ))
            })
            .collect();
        // Exactly-once across rebalances: hand the donor's completed
        // retry-dedup entries to the recipient before each migration's
        // ownership flip. The hook runs while writes into the moving
        // range are frozen, so no slot it exports can race a retry.
        let hooked = coalescers.clone();
        sharded.set_migration_hook(move |from, to| {
            let donor = &hooked[from as usize];
            hooked[to as usize].merge_dedup(donor.export_dedup());
        });
        Arc::new(ShardedEntry {
            name: name.to_string(),
            sharded,
            coalescers,
        })
    }

    /// Open the named index from disk, or return the already-open
    /// entry. The kind is auto-detected: a `<name>.shardmap` manifest
    /// means sharded, a bare `<name>.bur` means plain. `Open` mode
    /// auto-recovers from each write-ahead log, and an interrupted
    /// shard migration is rolled back or forward from the manifest, so
    /// this is also the post-crash path.
    pub fn open(&self, name: &str) -> ServeResult<Entry> {
        Self::check_name(name)?;
        let mut entries = self.entries.lock();
        if let Some(entry) = entries.get(name) {
            return Ok(entry.clone());
        }
        let manifest = self.manifest_for(name);
        let entry = if manifest.exists() {
            let m = bur_shard::load_manifest(&manifest)?;
            let mut burs = Vec::with_capacity(m.shards as usize);
            for k in 0..m.shards {
                let file = self.shard_file_for(name, k);
                if !file.exists() {
                    return Err(ServeError::Shard(ShardError::Manifest(format!(
                        "manifest names {} shards but {} is missing",
                        m.shards,
                        file.display()
                    ))));
                }
                burs.push(IndexBuilder::new().file(&file).open().build()?);
            }
            let sharded = ShardedBur::with_manifest(burs, ShardOptions::default(), manifest)?;
            Entry::Sharded(self.sharded_entry(name, sharded))
        } else {
            let file = self.file_for(name);
            if !file.exists() {
                return Err(ServeError::NotFound(name.to_string()));
            }
            let bur = IndexBuilder::new().file(&file).open().build()?;
            Entry::Plain(self.entry(name, bur))
        };
        entries.insert(name.to_string(), entry.clone());
        Ok(entry)
    }

    /// The open entry for `name`, opening it from disk on demand.
    pub fn get(&self, name: &str) -> ServeResult<Entry> {
        self.open(name)
    }

    /// Every currently open entry (metrics, maintenance sweeps).
    #[must_use]
    pub fn open_entries(&self) -> Vec<Entry> {
        self.entries.lock().values().cloned().collect()
    }

    /// Close the named index: drain its coalescer(s), flush and
    /// persist. Late `Apply` submissions racing the close are refused by
    /// the drained coalescers rather than lost.
    pub fn close(&self, name: &str) -> ServeResult<()> {
        Self::check_name(name)?;
        let entry = {
            let mut entries = self.entries.lock();
            entries
                .remove(name)
                .ok_or_else(|| ServeError::NotFound(name.to_string()))?
        };
        match entry {
            Entry::Plain(e) => {
                e.coalescer.shutdown();
                e.bur.persist()?;
            }
            Entry::Sharded(e) => {
                for c in &e.coalescers {
                    c.shutdown();
                }
                e.sharded.persist()?;
            }
        }
        Ok(())
    }

    /// Every index this registry knows about: open entries plus index
    /// files on disk, as `(name, open)` pairs sorted by name. A sharded
    /// index appears once under its logical name (its `<name>.s<k>.bur`
    /// shard files are not listed individually).
    pub fn list(&self) -> ServeResult<Vec<(String, bool)>> {
        let mut names: BTreeMap<String, bool> = self
            .entries
            .lock()
            .keys()
            .map(|name| (name.clone(), true))
            .collect();
        for dirent in std::fs::read_dir(&self.root)? {
            let path = dirent?.path();
            let ext = path.extension().and_then(|e| e.to_str());
            if !matches!(ext, Some("bur" | "shardmap")) {
                continue;
            }
            if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                // `valid_name` rejects `<name>.s<k>` shard-file stems,
                // so a sharded index is listed only via its manifest.
                if valid_name(stem) {
                    names.entry(stem.to_string()).or_insert(false);
                }
            }
        }
        Ok(names.into_iter().collect())
    }

    /// Close every open index (drain, flush, persist). The registry
    /// stays usable; this is the graceful-shutdown tail.
    pub fn shutdown(&self) {
        let entries: Vec<Entry> = {
            let mut map = self.entries.lock();
            std::mem::take(&mut *map).into_values().collect()
        };
        for entry in entries {
            match entry {
                Entry::Plain(e) => {
                    e.coalescer.shutdown();
                    let _ = e.bur.persist();
                }
                Entry::Sharded(e) => {
                    for c in &e.coalescers {
                        c.shutdown();
                    }
                    let _ = e.sharded.persist();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bur_core::Op;
    use bur_geom::{Point, Rect};

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bur-registry-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn plain(entry: Entry) -> Arc<IndexEntry> {
        match entry {
            Entry::Plain(e) => e,
            Entry::Sharded(_) => panic!("expected a plain entry"),
        }
    }

    fn sharded(entry: Entry) -> Arc<ShardedEntry> {
        match entry {
            Entry::Sharded(e) => e,
            Entry::Plain(_) => panic!("expected a sharded entry"),
        }
    }

    #[test]
    fn create_open_close_list_roundtrip() {
        let root = tempdir("lifecycle");
        let reg = IndexRegistry::new(&root).expect("registry");
        reg.create("fleet", StrategyKind::Generalized, true)
            .expect("create");
        assert!(matches!(
            reg.create("fleet", StrategyKind::Generalized, true),
            Err(ServeError::AlreadyExists(_))
        ));
        let entry = plain(reg.get("fleet").expect("get"));
        entry
            .coalescer
            .apply(vec![Op::Insert {
                oid: 1,
                rect: Rect::from_point(Point::new(0.5, 0.5)),
            }])
            .expect("apply");
        assert_eq!(entry.bur.len(), 1);
        reg.close("fleet").expect("close");
        assert_eq!(reg.list().expect("list"), vec![("fleet".into(), false)]);
        // Reopen from disk; the insert survived.
        let entry = plain(reg.open("fleet").expect("reopen"));
        assert_eq!(entry.bur.len(), 1);
        assert_eq!(reg.list().expect("list"), vec![("fleet".into(), true)]);
        reg.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn sharded_lifecycle_roundtrip() {
        let root = tempdir("sharded");
        let reg = IndexRegistry::new(&root).expect("registry");
        reg.create_sharded("grid", StrategyKind::Generalized, true, 4)
            .expect("create sharded");
        // Name now taken for both kinds.
        assert!(matches!(
            reg.create("grid", StrategyKind::Generalized, true),
            Err(ServeError::AlreadyExists(_))
        ));
        assert!(matches!(
            reg.create_sharded("grid", StrategyKind::Generalized, true, 2),
            Err(ServeError::AlreadyExists(_))
        ));
        let entry = sharded(reg.get("grid").expect("get"));
        assert_eq!(entry.coalescers.len(), 4);
        // Writes through per-shard coalescers, routed by key.
        let ops: Vec<Op> = (0..32u64)
            .map(|i| Op::Insert {
                oid: i,
                rect: Rect::from_point(Point::new((i as f32) / 32.0, ((i * 7) % 32) as f32 / 32.0)),
            })
            .collect();
        let routed = entry.sharded.route_for_write(&ops).expect("route");
        assert!(routed.parts().len() > 1, "spread over shards");
        for (shard, sub) in routed.parts() {
            entry.coalescers[*shard as usize]
                .apply(sub.clone())
                .expect("apply");
        }
        drop(routed);
        assert_eq!(entry.sharded.len(), 32);
        // The logical name lists once; shard files are not listed.
        assert_eq!(reg.list().expect("list"), vec![("grid".into(), true)]);
        reg.close("grid").expect("close");
        assert_eq!(reg.list().expect("list"), vec![("grid".into(), false)]);
        // Reopen auto-detects the sharded kind and finds every object.
        let entry = sharded(reg.open("grid").expect("reopen"));
        assert_eq!(entry.sharded.len(), 32);
        assert_eq!(entry.sharded.shard_count(), 4);
        reg.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn names_are_validated() {
        let root = tempdir("names");
        let reg = IndexRegistry::new(&root).expect("registry");
        for bad in [
            "", ".hidden", "a/b", "a b", "..", "x\u{0}", "grid.s0", "a.s12",
        ] {
            assert!(
                matches!(
                    reg.create(bad, StrategyKind::TopDown, false),
                    Err(ServeError::BadName(_))
                ),
                "accepted {bad:?}"
            );
        }
        // `.s<digits>`-free names that merely resemble shard stems pass.
        reg.create("a.sx", StrategyKind::TopDown, false)
            .expect("a.sx is fine");
        reg.create("b.s", StrategyKind::TopDown, false)
            .expect("b.s is fine");
        assert!(matches!(reg.open("missing"), Err(ServeError::NotFound(_))));
        assert!(matches!(
            reg.create_sharded("z", StrategyKind::TopDown, false, 0),
            Err(ServeError::Shard(_))
        ));
        let _ = std::fs::remove_dir_all(&root);
    }
}
