//! The `burd` server proper: a std `TcpListener` accept loop feeding a
//! bounded thread-per-connection pool, request dispatch over the wire
//! protocol, and the graceful-shutdown contract (stop accepting → join
//! connections → drain coalescers → flush and checkpoint every index).

use crate::coalescer::{ApplyError, Coalescer, CoalescerConfig, WriteAck};
use crate::metrics::ServerMetrics;
use crate::protocol::{Request, Response, WireNeighbor};
use crate::registry::{Entry, IndexRegistry, ServeResult, ShardedEntry};
use crate::wire::{self, FrameError};
use parking_lot::Mutex;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Result ids per streamed response frame (window queries and kNN).
const CHUNK: usize = 512;

/// How long a blocked connection read waits before re-checking the
/// shutdown flag.
const READ_TICK: Duration = Duration::from_millis(250);

/// Everything `burd` needs to start.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Data directory holding the named `.bur` index files.
    pub data_dir: std::path::PathBuf,
    /// Bind address; use port 0 to let the OS pick (the bound address
    /// is on [`ServerHandle::addr`]).
    pub addr: String,
    /// Connection-pool bound: further clients are refused with an
    /// error frame, not queued.
    pub max_connections: usize,
    /// Per-index write-queue admission ceiling (ops queued or in
    /// flight); batches past it are shed with `overloaded` frames, and
    /// half of it is the degraded-mode watermark that sheds queries.
    pub max_queued_ops: usize,
    /// Shard count for plain `create` requests: with a value > 1 the
    /// server creates every new index sharded that many ways
    /// (`burd --shards N`). Explicit `create_sharded` requests carry
    /// their own count and ignore this.
    pub default_shards: u32,
}

impl ServerConfig {
    /// Defaults: loopback on an OS-assigned port, 64 connections,
    /// 16384-op write queues, unsharded creates.
    pub fn new(data_dir: impl Into<std::path::PathBuf>) -> Self {
        ServerConfig {
            data_dir: data_dir.into(),
            addr: "127.0.0.1:0".to_string(),
            max_connections: 64,
            max_queued_ops: CoalescerConfig::default().max_queued_ops,
            default_shards: 1,
        }
    }
}

struct ConnCtx {
    registry: Arc<IndexRegistry>,
    metrics: Arc<ServerMetrics>,
    stop: Arc<AtomicBool>,
    degraded: Arc<AtomicBool>,
    addr: SocketAddr,
    default_shards: u32,
}

/// A running server. Dropping the handle does NOT stop the server;
/// call [`ServerHandle::shutdown`] (or send the `shutdown` opcode) and
/// then [`ServerHandle::wait`].
pub struct ServerHandle {
    addr: SocketAddr,
    registry: Arc<IndexRegistry>,
    metrics: Arc<ServerMetrics>,
    stop: Arc<AtomicBool>,
    degraded: Arc<AtomicBool>,
    accept: Mutex<Option<JoinHandle<Vec<JoinHandle<()>>>>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .finish()
    }
}

/// Bind, start the accept loop, return immediately.
pub fn start(config: ServerConfig) -> ServeResult<ServerHandle> {
    let registry = Arc::new(IndexRegistry::with_config(
        &config.data_dir,
        CoalescerConfig {
            max_queued_ops: config.max_queued_ops,
            ..CoalescerConfig::default()
        },
    )?);
    let metrics = Arc::new(ServerMetrics::default());
    let stop = Arc::new(AtomicBool::new(false));
    let degraded = Arc::new(AtomicBool::new(false));
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let ctx = Arc::new(ConnCtx {
        registry: Arc::clone(&registry),
        metrics: Arc::clone(&metrics),
        stop: Arc::clone(&stop),
        degraded: Arc::clone(&degraded),
        addr,
        default_shards: config.default_shards.max(1),
    });
    let max_connections = config.max_connections.max(1);
    let accept = std::thread::Builder::new()
        .name("burd-accept".into())
        .spawn(move || accept_loop(&listener, &ctx, max_connections))
        .expect("spawn accept thread");
    Ok(ServerHandle {
        addr,
        registry,
        metrics,
        stop,
        degraded,
        accept: Mutex::new(Some(accept)),
    })
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The index registry (shared with the serving threads).
    #[must_use]
    pub fn registry(&self) -> &Arc<IndexRegistry> {
        &self.registry
    }

    /// Server-wide metrics.
    #[must_use]
    pub fn metrics(&self) -> &Arc<ServerMetrics> {
        &self.metrics
    }

    /// Force (or clear) degraded mode: while set, queries are shed with
    /// `overloaded` frames and writes keep flowing. The same mode also
    /// engages automatically when an index's write queue crosses its
    /// watermark; this override is for drills and manual load relief.
    pub fn set_degraded(&self, degraded: bool) {
        self.degraded.store(degraded, Ordering::SeqCst);
    }

    /// Whether the manual degraded-mode override is set.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::SeqCst)
    }

    /// Ask the server to stop and block until it has: stop accepting,
    /// join every connection thread, drain each index's coalescer,
    /// flush and checkpoint. Idempotent.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        poke(self.addr);
        self.wait();
    }

    /// Block until the server has stopped (via [`ServerHandle::shutdown`]
    /// or a client's `shutdown` request) and the shutdown tail —
    /// connection joins, coalescer drains, flush, checkpoint — has run.
    pub fn wait(&self) {
        let accept = self.accept.lock().take();
        if let Some(accept) = accept {
            let conns = accept.join().unwrap_or_default();
            for conn in conns {
                let _ = conn.join();
            }
            self.registry.shutdown();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    ctx: &Arc<ConnCtx>,
    max_connections: usize,
) -> Vec<JoinHandle<()>> {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    loop {
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(_) => break,
        };
        if ctx.stop.load(Ordering::SeqCst) {
            break;
        }
        conns.retain(|h| !h.is_finished());
        if conns.len() >= max_connections {
            ctx.metrics
                .connections_refused
                .fetch_add(1, Ordering::Relaxed);
            refuse(stream);
            continue;
        }
        ctx.metrics
            .connections_accepted
            .fetch_add(1, Ordering::Relaxed);
        ctx.metrics
            .connections_active
            .fetch_add(1, Ordering::Relaxed);
        let ctx = Arc::clone(ctx);
        let handle = std::thread::Builder::new()
            .name("burd-conn".into())
            .spawn(move || {
                connection_loop(stream, &ctx);
                ctx.metrics
                    .connections_active
                    .fetch_sub(1, Ordering::Relaxed);
            })
            .expect("spawn connection thread");
        conns.push(handle);
    }
    conns
}

/// Wake a listener blocked in `accept` so it can observe the stop flag.
fn poke(addr: SocketAddr) {
    let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(500));
}

fn refuse(mut stream: TcpStream) {
    let _ = send(
        &mut stream,
        0,
        &Response::Err {
            message: "server at capacity".to_string(),
        },
    );
}

fn send(stream: &mut TcpStream, request_id: u64, resp: &Response) -> io::Result<()> {
    let mut out = Vec::with_capacity(64);
    wire::write_frame(&mut out, request_id, resp.opcode(), &resp.encode_payload());
    stream.write_all(&out)
}

fn connection_loop(mut stream: TcpStream, ctx: &ConnCtx) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_TICK));
    loop {
        if ctx.stop.load(Ordering::SeqCst) {
            break;
        }
        let frame = match wire::read_frame(&mut stream) {
            Ok(Some(frame)) => frame,
            Ok(None) => break,
            Err(FrameError::Io(e))
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(FrameError::Io(_)) => break,
            Err(FrameError::Wire(e)) => {
                // A malformed frame poisons only this connection: answer
                // with an error frame (id 0 — the real id is unknowable)
                // and close. The server and its sibling connections are
                // untouched.
                ctx.metrics.malformed_frames.fetch_add(1, Ordering::Relaxed);
                let _ = send(
                    &mut stream,
                    0,
                    &Response::Err {
                        message: format!("malformed frame: {e}"),
                    },
                );
                break;
            }
        };
        let started = Instant::now();
        // Relative budget → absolute deadline, anchored at frame
        // receipt (clients and servers need not share a clock).
        let deadline = frame
            .deadline_ms
            .map(|ms| started + Duration::from_millis(u64::from(ms)));
        let req = match Request::decode(frame.opcode, &frame.payload) {
            Ok(req) => req,
            Err(e) => {
                ctx.metrics.malformed_frames.fetch_add(1, Ordering::Relaxed);
                let _ = send(
                    &mut stream,
                    frame.request_id,
                    &Response::Err {
                        message: format!("bad request: {e}"),
                    },
                );
                break;
            }
        };
        let is_shutdown = matches!(req, Request::Shutdown);
        let io = serve_request(&mut stream, frame.request_id, req, ctx, deadline);
        ctx.metrics.record(frame.opcode, started.elapsed());
        if io.is_err() {
            break;
        }
        if is_shutdown {
            ctx.stop.store(true, Ordering::SeqCst);
            poke(ctx.addr);
            break;
        }
    }
}

fn serve_request(
    stream: &mut TcpStream,
    id: u64,
    req: Request,
    ctx: &ConnCtx,
    deadline: Option<Instant>,
) -> io::Result<()> {
    let reply = |stream: &mut TcpStream, resp: Response| -> io::Result<()> {
        if matches!(resp, Response::Err { .. }) {
            ctx.metrics.request_errors.fetch_add(1, Ordering::Relaxed);
        }
        send(stream, id, &resp)
    };
    let err = |e: &dyn std::fmt::Display| Response::Err {
        message: e.to_string(),
    };
    // A request that is already past its deadline gets an `expired`
    // frame instead of a coalescer slot or an index lock; the
    // connection itself stays healthy.
    if deadline.is_some_and(|d| Instant::now() >= d) {
        ctx.metrics.requests_expired.fetch_add(1, Ordering::Relaxed);
        return reply(
            stream,
            Response::Expired {
                message: "deadline passed before dispatch".to_string(),
            },
        );
    }
    match req {
        Request::Ping => reply(stream, Response::Pong),
        Request::Shutdown => reply(stream, Response::Ok),
        Request::Create {
            name,
            strategy,
            durable,
        } => {
            // `burd --shards N` makes every plain create sharded N ways.
            let resp = if ctx.default_shards > 1 {
                match ctx
                    .registry
                    .create_sharded(&name, strategy, durable, ctx.default_shards)
                {
                    Ok(()) => Response::Ok,
                    Err(e) => err(&e),
                }
            } else {
                match ctx.registry.create(&name, strategy, durable) {
                    Ok(()) => Response::Ok,
                    Err(e) => err(&e),
                }
            };
            reply(stream, resp)
        }
        Request::CreateSharded {
            name,
            strategy,
            durable,
            shards,
        } => {
            let resp = match ctx
                .registry
                .create_sharded(&name, strategy, durable, shards)
            {
                Ok(()) => Response::Ok,
                Err(e) => err(&e),
            };
            reply(stream, resp)
        }
        Request::Open { name } => {
            let resp = match ctx.registry.open(&name) {
                Ok(_) => Response::Ok,
                Err(e) => err(&e),
            };
            reply(stream, resp)
        }
        Request::Close { name } => {
            let resp = match ctx.registry.close(&name) {
                Ok(()) => Response::Ok,
                Err(e) => err(&e),
            };
            reply(stream, resp)
        }
        Request::List => {
            let resp = match ctx.registry.list() {
                Ok(names) => Response::Names { names },
                Err(e) => err(&e),
            };
            reply(stream, resp)
        }
        Request::Apply {
            index,
            session,
            seq,
            ops,
        } => {
            let resp = match ctx.registry.get(&index) {
                Ok(Entry::Plain(entry)) => {
                    match coalesced_apply(ctx, &entry.coalescer, session, seq, ops, deadline) {
                        Ok(WriteAck {
                            lsn,
                            applied,
                            merged,
                        }) => Response::Ack {
                            lsn,
                            applied,
                            merged,
                        },
                        Err(resp) => resp,
                    }
                }
                Ok(Entry::Sharded(entry)) => {
                    apply_sharded(ctx, &entry, session, seq, &ops, deadline)
                }
                Err(e) => err(&e),
            };
            reply(stream, resp)
        }
        Request::Query { index, window } => match ctx.registry.get(&index) {
            Ok(Entry::Plain(entry)) => {
                if let Some(resp) = shed_query(ctx, &entry) {
                    return reply(stream, resp);
                }
                let cursor = match entry.bur.query(&window) {
                    Ok(cursor) => cursor,
                    Err(e) => return reply(stream, err(&e)),
                };
                stream_chunks(stream, id, cursor.remaining(), |ids| Response::IdChunk {
                    ids: ids.to_vec(),
                    last: false,
                })
            }
            Ok(Entry::Sharded(entry)) => {
                if let Some(resp) = shed_sharded_query(ctx, &entry) {
                    return reply(stream, resp);
                }
                let mut scatter = match entry.sharded.query(&window) {
                    Ok(scatter) => scatter,
                    Err(e) => return reply(stream, err(&e)),
                };
                let mut ids = Vec::new();
                bur_shard::ScatterQuery::collect_into(&mut scatter, &mut ids);
                stream_chunks(stream, id, &ids, |ids| Response::IdChunk {
                    ids: ids.to_vec(),
                    last: false,
                })
            }
            Err(e) => reply(stream, err(&e)),
        },
        Request::Knn { index, point, k } => {
            let neighbors: Vec<WireNeighbor> = match ctx.registry.get(&index) {
                Ok(Entry::Plain(entry)) => {
                    if let Some(resp) = shed_query(ctx, &entry) {
                        return reply(stream, resp);
                    }
                    match entry.bur.nearest(point, k as usize) {
                        Ok(cursor) => cursor
                            .map(|n| WireNeighbor {
                                oid: n.oid,
                                distance: n.distance,
                            })
                            .collect(),
                        Err(e) => return reply(stream, err(&e)),
                    }
                }
                Ok(Entry::Sharded(entry)) => {
                    if let Some(resp) = shed_sharded_query(ctx, &entry) {
                        return reply(stream, resp);
                    }
                    match entry
                        .sharded
                        .nearest(point, k as usize)
                        .and_then(bur_shard::MergedNeighbors::try_collect)
                    {
                        Ok(neighbors) => neighbors
                            .into_iter()
                            .map(|n| WireNeighbor {
                                oid: n.oid,
                                distance: n.distance,
                            })
                            .collect(),
                        Err(e) => return reply(stream, err(&e)),
                    }
                }
                Err(e) => return reply(stream, err(&e)),
            };
            stream_chunks(stream, id, &neighbors, |chunk| Response::NeighborChunk {
                neighbors: chunk.to_vec(),
                last: false,
            })
        }
        Request::Len { index } => {
            let resp = match ctx.registry.get(&index) {
                Ok(entry) => Response::Count { value: entry.len() },
                Err(e) => err(&e),
            };
            reply(stream, resp)
        }
        Request::Stats { index } => {
            let resp = match ctx.registry.get(&index) {
                Ok(Entry::Plain(entry)) => Response::Text {
                    text: index_stats_text(&entry),
                },
                Ok(Entry::Sharded(entry)) => Response::Text {
                    text: sharded_stats_text(&entry),
                },
                Err(e) => err(&e),
            };
            reply(stream, resp)
        }
        Request::Metrics => {
            // The server-wide dump plus the per-shard gauges of every
            // open sharded index, and the escalation total across every
            // open index (the shared write path's contention tripwire).
            let mut text = ctx.metrics.render();
            let mut escalations = 0u64;
            for entry in ctx.registry.open_entries() {
                match entry {
                    Entry::Plain(e) => {
                        escalations += e.bur.with_op_stats(|s| s.snapshot()).escalations;
                    }
                    Entry::Sharded(e) => {
                        for k in 0..e.sharded.shard_count() {
                            escalations += e
                                .sharded
                                .shard(k)
                                .with_op_stats(|s| s.snapshot())
                                .escalations;
                        }
                        text.push_str(&shard_gauges(&e));
                    }
                }
            }
            text.push_str(&format!("burd_escalations {escalations}\n"));
            reply(stream, Response::Text { text })
        }
    }
}

/// Submit one op list to one coalescer, translating coalescer failures
/// into their wire responses and counting the shared metrics.
fn coalesced_apply(
    ctx: &ConnCtx,
    coalescer: &Coalescer,
    session: u128,
    seq: u64,
    ops: Vec<bur_core::Op>,
    deadline: Option<Instant>,
) -> Result<WriteAck, Response> {
    let before = coalescer.stats().dedup_hits;
    match coalescer.apply_session(session, seq, ops, deadline) {
        Ok(ack) => {
            let hits = coalescer.stats().dedup_hits - before;
            ctx.metrics.dedup_hits.fetch_add(hits, Ordering::Relaxed);
            Ok(ack)
        }
        Err(e @ ApplyError::Overloaded { .. }) => {
            ctx.metrics.writes_shed.fetch_add(1, Ordering::Relaxed);
            Err(Response::Overloaded {
                message: e.to_string(),
            })
        }
        Err(e @ ApplyError::Expired) => {
            ctx.metrics.requests_expired.fetch_add(1, Ordering::Relaxed);
            Err(Response::Expired {
                message: e.to_string(),
            })
        }
        Err(ApplyError::Rejected(message)) => Err(Response::Err { message }),
    }
}

/// Apply one client batch to a sharded index: split by routing key
/// (waiting out any migration overlapping the ops) and funnel each
/// sub-batch through its shard's coalescer under the client's unchanged
/// `(session, seq)`.
///
/// A shed or expiry after some shards already applied is still safe to
/// surface as retryable: the split is deterministic for a fixed routing
/// map, so a retry re-sends identical sub-batches and the shards that
/// already applied answer from their dedup tables instead of applying
/// twice.
fn apply_sharded(
    ctx: &ConnCtx,
    entry: &ShardedEntry,
    session: u128,
    seq: u64,
    ops: &[bur_core::Op],
    deadline: Option<Instant>,
) -> Response {
    let routed = match entry.sharded.route_for_write(ops) {
        Ok(routed) => routed,
        Err(e) => {
            return Response::Err {
                message: e.to_string(),
            }
        }
    };
    let mut lsn = 0u64;
    let mut applied = 0u64;
    let mut merged = 0u64;
    for (shard, sub) in routed.parts() {
        let coalescer = &entry.coalescers[*shard as usize];
        match coalesced_apply(ctx, coalescer, session, seq, sub.clone(), deadline) {
            Ok(ack) => {
                // Shard logs are independent; the folded LSN is only an
                // "everything acked" watermark, like AggregateTicket's.
                lsn = lsn.max(ack.lsn);
                applied += ack.applied;
                merged = merged.max(ack.merged);
            }
            Err(resp) => return resp,
        }
    }
    Response::Ack {
        // A cross-shard update ran as delete + insert; count it as the
        // one logical op the client submitted.
        applied: applied.saturating_sub(routed.split_updates()),
        lsn,
        merged,
    }
}

/// Degraded-mode check for read requests: queries are shed — with a
/// retryable `overloaded` frame — when the operator forced degraded
/// mode or the index's write queue is past its watermark. Writes are
/// never shed here; the coalescer's own admission ceiling governs them.
fn shed_query(ctx: &ConnCtx, entry: &crate::registry::IndexEntry) -> Option<Response> {
    if ctx.degraded.load(Ordering::SeqCst) || entry.coalescer.is_degraded() {
        ctx.metrics.queries_shed.fetch_add(1, Ordering::Relaxed);
        return Some(Response::Overloaded {
            message: format!(
                "degraded: query shed ({} ops queued on {:?}); retry later",
                entry.coalescer.queued_ops(),
                entry.name
            ),
        });
    }
    None
}

/// [`shed_query`] for a sharded index: one shard past its watermark
/// sheds the whole scatter (a gather blocked on the hot shard would
/// hold every other shard's results hostage anyway).
fn shed_sharded_query(ctx: &ConnCtx, entry: &ShardedEntry) -> Option<Response> {
    if ctx.degraded.load(Ordering::SeqCst) || entry.is_degraded() {
        ctx.metrics.queries_shed.fetch_add(1, Ordering::Relaxed);
        return Some(Response::Overloaded {
            message: format!(
                "degraded: query shed ({} ops queued across {} shards of {:?}); retry later",
                entry.queued_ops(),
                entry.coalescers.len(),
                entry.name
            ),
        });
    }
    None
}

/// Send `items` as a sequence of chunk frames under one request id,
/// flipping `last` on the final (possibly empty) chunk.
fn stream_chunks<T>(
    stream: &mut TcpStream,
    id: u64,
    items: &[T],
    make: impl Fn(&[T]) -> Response,
) -> io::Result<()> {
    let mut sent = 0;
    while items.len() - sent > CHUNK {
        send(stream, id, &make(&items[sent..sent + CHUNK]))?;
        sent += CHUNK;
    }
    let mut tail = make(&items[sent..]);
    match &mut tail {
        Response::IdChunk { last, .. } | Response::NeighborChunk { last, .. } => *last = true,
        _ => {}
    }
    send(stream, id, &tail)
}

/// The `stats` opcode's plaintext gauge dump for one index.
fn index_stats_text(entry: &crate::registry::IndexEntry) -> String {
    let mut out = String::with_capacity(512);
    let bur = &entry.bur;
    let label = &entry.name;
    let mut gauge = |name: &str, v: u64| {
        out.push_str(&format!("bur_{name}{{index=\"{label}\"}} {v}\n"));
    };
    gauge("objects", bur.len());
    gauge("height", u64::from(bur.height()));
    gauge("durable", u64::from(bur.is_durable()));
    let io = bur.io_snapshot();
    gauge("io_reads", io.reads);
    gauge("io_writes", io.writes);
    gauge("io_fetches", io.fetches);
    gauge("io_allocations", io.allocations);
    let ops = bur.with_op_stats(|s| s.snapshot());
    gauge("op_inserts", ops.inserts);
    gauge("op_updates", ops.updates);
    gauge("op_deletes", ops.deletes);
    gauge("op_queries", ops.queries);
    gauge("op_splits", ops.splits);
    gauge("op_escalations", ops.escalations);
    gauge("op_make_room_splits", ops.make_room_splits);
    gauge(
        "peak_concurrent_batches",
        bur.peak_concurrent_batches() as u64,
    );
    let co = entry.coalescer.stats();
    gauge("coalescer_rounds", co.rounds);
    gauge("coalescer_submissions", co.submissions);
    gauge("coalescer_ops", co.ops);
    gauge("coalescer_shed_writes", co.shed_writes);
    gauge("coalescer_expired", co.expired);
    gauge("coalescer_dedup_hits", co.dedup_hits);
    gauge("coalescer_dedup_sessions", co.dedup_sessions);
    gauge("coalescer_queued_ops", co.queued_ops);
    gauge("degraded", u64::from(entry.coalescer.is_degraded()));
    if let Some(wal) = bur.wal_stats() {
        gauge("wal_records", wal.records);
        gauge("wal_commits", wal.commits);
        gauge("wal_syncs", wal.syncs);
        gauge("wal_checkpoints", wal.checkpoints);
        gauge("wal_last_lsn", wal.last_lsn);
        gauge("wal_durable_lsn", wal.durable_lsn);
    }
    out
}

/// The `stats` opcode's plaintext gauge dump for one sharded index:
/// logical totals plus the per-shard gauges from [`shard_gauges`].
fn sharded_stats_text(entry: &ShardedEntry) -> String {
    let label = &entry.name;
    let stats = entry.sharded.stats();
    let mut out = String::with_capacity(1024);
    let mut gauge = |name: &str, v: u64| {
        out.push_str(&format!("bur_{name}{{index=\"{label}\"}} {v}\n"));
    };
    gauge("objects", entry.sharded.len());
    gauge("durable", u64::from(entry.sharded.is_durable()));
    gauge("shards", stats.shards.len() as u64);
    gauge("shard_epoch", stats.epoch);
    gauge("shard_segments", stats.segments as u64);
    gauge("shard_migrating", u64::from(stats.migrating));
    gauge("degraded", u64::from(entry.is_degraded()));
    out.push_str(&shard_gauges(entry));
    out
}

/// Per-shard size/depth/queue gauges plus the imbalance ratio, labeled
/// `{index, shard}`; appended to both `stats` and the server-wide
/// `metrics` dump.
fn shard_gauges(entry: &ShardedEntry) -> String {
    let label = &entry.name;
    let stats = entry.sharded.stats();
    let mut out = String::with_capacity(256 * stats.shards.len());
    for (k, load) in stats.shards.iter().enumerate() {
        let mut gauge = |name: &str, v: u64| {
            out.push_str(&format!(
                "bur_{name}{{index=\"{label}\",shard=\"{k}\"}} {v}\n"
            ));
        };
        gauge("shard_objects", load.len);
        gauge("shard_height", u64::from(load.height));
        let co = entry.coalescers[k].stats();
        gauge("shard_queued_ops", co.queued_ops);
        gauge("shard_coalescer_rounds", co.rounds);
        gauge("shard_dedup_hits", co.dedup_hits);
        gauge(
            "shard_escalations",
            entry
                .sharded
                .shard(k)
                .with_op_stats(|s| s.snapshot())
                .escalations,
        );
        gauge(
            "shard_degraded",
            u64::from(entry.coalescers[k].is_degraded()),
        );
    }
    // Milli-units: the gauge grammar is integer-only.
    out.push_str(&format!(
        "bur_shard_imbalance_milli{{index=\"{label}\"}} {}\n",
        (stats.imbalance * 1000.0) as u64
    ));
    out
}
