//! Byte-level framing: the length-prefixed envelope every request and
//! response travels in, plus the little-endian primitive codec the
//! payload encoders share.
//!
//! One frame on the wire (framing version 2) is
//!
//! ```text
//! len: u32 LE | request_id: u64 LE | opcode: u8 | flags: u8
//!             | deadline_ms: u32 LE (iff flags & 0x01) | payload: [u8]
//! ```
//!
//! where `len` counts everything after itself (so `len >= 10`), and
//! `request_id` is chosen by the client and echoed verbatim in every
//! response frame belonging to that request (streamed responses send
//! several frames under one id). The `flags` byte versions the header:
//! bit 0 ([`FLAG_DEADLINE`]) marks an optional relative deadline in
//! milliseconds (a budget, not a wall-clock time, so client and server
//! clocks need not agree); all other bits must be zero and are rejected
//! with [`WireError::BadFlags`] so a future header extension cannot be
//! silently misparsed. Frames larger than [`MAX_FRAME_BYTES`] are
//! rejected before any allocation, so a malicious or corrupt length
//! prefix cannot balloon server memory.

use std::fmt;
use std::io::{self, Read};
use std::time::Instant;

/// Hard ceiling on one frame's `len` field (4 MiB). Large batches and
/// query results are chunked well below this; anything above it is a
/// corrupt or hostile frame.
pub const MAX_FRAME_BYTES: u32 = 4 << 20;

/// Bytes of the fixed header covered by `len`: request id + opcode +
/// flags. The optional deadline field adds [`DEADLINE_FIELD_BYTES`]
/// more when [`FLAG_DEADLINE`] is set.
pub const FRAME_HEADER_BYTES: u32 = 8 + 1 + 1;

/// Header flag bit 0: the header carries a `deadline_ms: u32` field
/// directly after the flags byte.
pub const FLAG_DEADLINE: u8 = 0x01;

/// Size of the optional deadline field.
pub const DEADLINE_FIELD_BYTES: u32 = 4;

/// Mask of flag bits this framing version understands; anything else in
/// the flags byte is a framing error.
const KNOWN_FLAGS: u8 = FLAG_DEADLINE;

/// A decoding failure. The connection that produced it is broken by
/// contract: the server answers with an error frame where it still can
/// (a well-framed payload that fails to parse) and closes; the client
/// surfaces the error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The stream ended inside a frame, or a payload ended inside a
    /// field.
    Truncated(&'static str),
    /// The length prefix exceeds [`MAX_FRAME_BYTES`] (or undercuts the
    /// fixed header).
    BadLength(u32),
    /// No such opcode.
    UnknownOpcode(u8),
    /// The flags byte carries bits this framing version does not know.
    BadFlags(u8),
    /// A well-framed payload that does not parse as its opcode demands.
    BadPayload(String),
    /// A payload parsed but left unconsumed trailing bytes.
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated(what) => write!(f, "truncated frame: {what}"),
            WireError::BadLength(len) => write!(
                f,
                "bad frame length {len} (frame ceiling {MAX_FRAME_BYTES}, floor {FRAME_HEADER_BYTES})"
            ),
            WireError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            WireError::BadFlags(flags) => write!(f, "unknown header flags {flags:#04x}"),
            WireError::BadPayload(msg) => write!(f, "bad payload: {msg}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after payload"),
        }
    }
}

impl std::error::Error for WireError {}

/// Why reading a frame off a stream failed: transport trouble or a
/// malformed frame.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed (or timed out).
    Io(io::Error),
    /// The bytes violate the framing contract.
    Wire(WireError),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "i/o: {e}"),
            FrameError::Wire(e) => write!(f, "wire: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl From<WireError> for FrameError {
    fn from(e: WireError) -> Self {
        FrameError::Wire(e)
    }
}

/// One decoded frame: the echoed request id, the opcode, and the raw
/// payload (interpreted by [`crate::protocol`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Client-chosen correlation id, echoed in responses.
    pub request_id: u64,
    /// What the payload means.
    pub opcode: u8,
    /// Remaining time budget for serving this request, in milliseconds,
    /// if the sender attached one. `Some(0)` means "already expired on
    /// arrival" by contract.
    pub deadline_ms: Option<u32>,
    /// Opcode-specific bytes.
    pub payload: Vec<u8>,
}

/// Append one frame without a deadline to `out` (client and server
/// share the writer; responses never carry deadlines).
pub fn write_frame(out: &mut Vec<u8>, request_id: u64, opcode: u8, payload: &[u8]) {
    write_frame_deadline(out, request_id, opcode, None, payload);
}

/// Append one frame, optionally carrying a relative deadline budget in
/// milliseconds.
pub fn write_frame_deadline(
    out: &mut Vec<u8>,
    request_id: u64,
    opcode: u8,
    deadline_ms: Option<u32>,
    payload: &[u8],
) {
    let extra = if deadline_ms.is_some() {
        DEADLINE_FIELD_BYTES
    } else {
        0
    };
    let len = FRAME_HEADER_BYTES + extra + payload.len() as u32;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&request_id.to_le_bytes());
    out.push(opcode);
    match deadline_ms {
        Some(ms) => {
            out.push(FLAG_DEADLINE);
            out.extend_from_slice(&ms.to_le_bytes());
        }
        None => out.push(0),
    }
    out.extend_from_slice(payload);
}

/// Read one frame. `Ok(None)` means the peer closed the connection
/// cleanly *between* frames; a close inside a frame is
/// [`WireError::Truncated`]. The length prefix is validated before the
/// payload is allocated. Once a frame has started, read timeouts are
/// ridden out indefinitely (the server's stop-flag tick only applies
/// between frames).
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>, FrameError> {
    read_frame_deadline(r, None)
}

/// [`read_frame`] with a bound on how long a *started* frame may take:
/// once `deadline` passes mid-frame the read fails with
/// [`io::ErrorKind::TimedOut`] instead of riding out socket timeouts
/// forever. Clients use this so a black-holed server cannot hang them;
/// the connection is unusable afterwards (the stream may be mid-frame)
/// and must be dropped.
pub fn read_frame_deadline(
    r: &mut impl Read,
    deadline: Option<Instant>,
) -> Result<Option<Frame>, FrameError> {
    let mut len_buf = [0u8; 4];
    match read_exact_or_eof(r, &mut len_buf, false, deadline)? {
        ReadOutcome::Eof => return Ok(None),
        ReadOutcome::Partial => return Err(WireError::Truncated("length prefix").into()),
        ReadOutcome::Full => {}
    }
    let len = u32::from_le_bytes(len_buf);
    if !(FRAME_HEADER_BYTES..=MAX_FRAME_BYTES).contains(&len) {
        return Err(WireError::BadLength(len).into());
    }
    let mut head = [0u8; FRAME_HEADER_BYTES as usize];
    if !matches!(
        read_exact_or_eof(r, &mut head, true, deadline)?,
        ReadOutcome::Full
    ) {
        return Err(WireError::Truncated("frame header").into());
    }
    let request_id = u64::from_le_bytes(head[..8].try_into().expect("8 bytes"));
    let opcode = head[8];
    let flags = head[9];
    if flags & !KNOWN_FLAGS != 0 {
        return Err(WireError::BadFlags(flags).into());
    }
    let mut body_len = len - FRAME_HEADER_BYTES;
    let deadline_ms = if flags & FLAG_DEADLINE != 0 {
        if body_len < DEADLINE_FIELD_BYTES {
            return Err(WireError::BadLength(len).into());
        }
        let mut field = [0u8; DEADLINE_FIELD_BYTES as usize];
        if !matches!(
            read_exact_or_eof(r, &mut field, true, deadline)?,
            ReadOutcome::Full
        ) {
            return Err(WireError::Truncated("deadline field").into());
        }
        body_len -= DEADLINE_FIELD_BYTES;
        Some(u32::from_le_bytes(field))
    } else {
        None
    };
    let mut payload = vec![0u8; body_len as usize];
    if !matches!(
        read_exact_or_eof(r, &mut payload, true, deadline)?,
        ReadOutcome::Full
    ) {
        return Err(WireError::Truncated("payload").into());
    }
    Ok(Some(Frame {
        request_id,
        opcode,
        deadline_ms,
        payload,
    }))
}

enum ReadOutcome {
    Full,
    Eof,
    Partial,
}

/// `read_exact` that distinguishes a clean EOF before the first byte
/// from one mid-buffer. With `started` set (any frame byte already
/// consumed) read timeouts are ridden out — a peer that began a frame
/// is mid-write, and abandoning the read would desynchronise the
/// stream — unless `deadline` has passed, in which case the wait ends
/// with [`io::ErrorKind::TimedOut`] and the caller must discard the
/// connection.
fn read_exact_or_eof(
    r: &mut impl Read,
    buf: &mut [u8],
    started: bool,
    deadline: Option<Instant>,
) -> io::Result<ReadOutcome> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 && !started {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::Partial
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if (started || filled > 0)
                    && matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
            {
                if let Some(d) = deadline {
                    if Instant::now() >= d {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "frame read deadline exceeded",
                        ));
                    }
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(ReadOutcome::Full)
}

// ---- payload codec ---------------------------------------------------------

/// Little-endian primitive writers over a byte vector. Free functions,
/// not a builder: payload encoders just push fields in order.
pub mod put {
    /// Append a `u8`.
    pub fn u8(out: &mut Vec<u8>, v: u8) {
        out.push(v);
    }

    /// Append a `u16` (little-endian).
    pub fn u16(out: &mut Vec<u8>, v: u16) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32` (little-endian).
    pub fn u32(out: &mut Vec<u8>, v: u32) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64` (little-endian).
    pub fn u64(out: &mut Vec<u8>, v: u64) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f32` (little-endian bits).
    pub fn f32(out: &mut Vec<u8>, v: f32) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a length-prefixed UTF-8 string (`u16` length; longer
    /// strings are a caller bug — names and messages are short).
    pub fn str(out: &mut Vec<u8>, v: &str) {
        let bytes = v.as_bytes();
        let n = u16::try_from(bytes.len()).expect("wire strings are short");
        u16(out, n);
        out.extend_from_slice(bytes);
    }
}

/// A checked little-endian payload reader. Every getter fails with
/// [`WireError::Truncated`] instead of panicking, and [`Reader::finish`]
/// rejects trailing bytes — decoders call it last so a frame either
/// parses exactly or errors.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a payload.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(WireError::Truncated(what))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    /// Read a `u16`.
    pub fn u16(&mut self, what: &'static str) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    /// Read a `u32`.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    /// Read a `u64`.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// Read an `f32`.
    pub fn f32(&mut self, what: &'static str) -> Result<f32, WireError> {
        Ok(f32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &'static str) -> Result<String, WireError> {
        let n = self.u16(what)? as usize;
        let bytes = self.take(n, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::BadPayload(format!("{what}: invalid UTF-8")))
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Assert the payload is fully consumed.
    pub fn finish(self) -> Result<(), WireError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(WireError::TrailingBytes(n)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_roundtrip() {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, 7, 0x42, b"hello");
        write_frame(&mut bytes, 8, 0x01, b"");
        let mut cursor = Cursor::new(bytes);
        let a = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(
            (a.request_id, a.opcode, a.payload.as_slice()),
            (7, 0x42, &b"hello"[..])
        );
        let b = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!((b.request_id, b.opcode, b.payload.len()), (8, 0x01, 0));
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn truncated_and_oversized_frames_error() {
        // Clean EOF between frames.
        assert!(read_frame(&mut Cursor::new(Vec::new())).unwrap().is_none());
        // EOF inside the length prefix.
        let err = read_frame(&mut Cursor::new(vec![1u8, 0])).unwrap_err();
        assert!(matches!(err, FrameError::Wire(WireError::Truncated(_))));
        // EOF inside the payload.
        let mut bytes = Vec::new();
        write_frame(&mut bytes, 1, 0x10, &[0u8; 64]);
        bytes.truncate(bytes.len() - 10);
        let err = read_frame(&mut Cursor::new(bytes)).unwrap_err();
        assert!(matches!(err, FrameError::Wire(WireError::Truncated(_))));
        // Length prefix above the ceiling — rejected before allocation.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_le_bytes());
        bytes.extend_from_slice(&[0u8; 16]);
        let err = read_frame(&mut Cursor::new(bytes)).unwrap_err();
        assert!(matches!(err, FrameError::Wire(WireError::BadLength(_))));
        // Length prefix below the header floor.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&3u32.to_le_bytes());
        let err = read_frame(&mut Cursor::new(bytes)).unwrap_err();
        assert!(matches!(err, FrameError::Wire(WireError::BadLength(3))));
    }

    #[test]
    fn reader_is_checked() {
        let mut buf = Vec::new();
        put::u32(&mut buf, 9);
        put::str(&mut buf, "abc");
        put::f32(&mut buf, 0.5);
        let mut r = Reader::new(&buf);
        assert_eq!(r.u32("n").unwrap(), 9);
        assert_eq!(r.str("s").unwrap(), "abc");
        assert_eq!(r.f32("x").unwrap(), 0.5);
        r.finish().unwrap();

        let mut r = Reader::new(&buf);
        assert_eq!(r.u32("n").unwrap(), 9);
        assert_eq!(r.str("s").unwrap(), "abc");
        assert!(matches!(r.u64("too much"), Err(WireError::Truncated(_))));

        let mut r = Reader::new(&buf);
        r.u8("one").unwrap();
        assert!(matches!(r.finish(), Err(WireError::TrailingBytes(_))));
    }

    #[test]
    fn invalid_utf8_is_bad_payload() {
        let mut buf = Vec::new();
        put::u16(&mut buf, 2);
        buf.extend_from_slice(&[0xff, 0xfe]);
        let mut r = Reader::new(&buf);
        assert!(matches!(r.str("s"), Err(WireError::BadPayload(_))));
    }
}
